"""Shim so legacy editable installs work offline (no `wheel` package
available, so PEP-517 editable wheels cannot be built)."""

from setuptools import setup

setup()
