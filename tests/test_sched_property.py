"""Property-based tests (hypothesis) for the stream scheduler.

Each example generates a small shared cluster and a random job stream
(mixed recovery families, geometries, arrival times, priorities) and
drives it to drain under a random policy mix.  Checked invariants:

* **no double-booking** -- no node serves two tenants at once, ever
  (checked against the per-attempt occupancy ledger);
* **no starvation** -- FCFS with EASY backfill always drains: every
  satisfiable job completes, and a job only ever backfills past the
  head while the head genuinely cannot fit;
* **FCFS order** -- non-backfilled first starts happen in submission
  order;
* **conservation** -- every start grants exactly the spec's footprint,
  and after the stream drains every node is back in the idle pool.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.sched import JobSpec, StreamScheduler
from repro.simt import Simulator
from repro.simt.rng import RngRegistry

MAX_EVENTS = 1_500_000


# ------------------------------------------------------------- strategies
def job_specs():
    # ranks >= 2: a 1-rank FMI job has no XOR group to encode into.
    return st.builds(
        JobSpec,
        name=st.just("j"),
        ranks=st.sampled_from([2, 4]),
        ppn=st.just(1),
        recovery=st.sampled_from(["global", "failstop"]),
        iterations=st.integers(1, 3),
        work_s=st.sampled_from([0.05, 0.1]),
        priority=st.integers(0, 2),
    )


streams = st.lists(
    st.tuples(job_specs(), st.integers(0, 40)),  # (spec, arrival decisecond)
    min_size=2,
    max_size=7,
)


def run_stream(num_nodes, stream, backfill, preempt, spare_pool):
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(num_nodes), RngRegistry(0))
    sched = StreamScheduler(
        machine, backfill=backfill, preempt=preempt, spare_pool=spare_pool
    )
    # Arrival streams are time-ordered (as poisson_arrivals/trace_arrivals
    # produce them), so submission seq == arrival order.
    for spec, at_ds in sorted(stream, key=lambda p: p[1]):
        sched.submit(spec, at=at_ds / 10.0)
    drained = sched.drain()
    sim.run(until=drained, max_events=MAX_EVENTS)
    assert drained.triggered, "stream failed to drain (starvation/livelock)"
    return machine, sched, drained.value


def assert_invariants(machine, sched, summary):
    cluster = machine.spec.num_nodes
    # -- every job reached a terminal state; satisfiable ones completed
    for rec in summary.records:
        if rec.spec.total_nodes <= cluster:
            assert rec.state == "done", (rec.job_id, rec.state, rec.failure)
            want = rec.spec.expected_results()
            assert all(
                np.array_equal(g, w) for g, w in zip(rec.result, want)
            ), f"{rec.job_id} diverged from its solo run"
        else:
            assert rec.state == "rejected"
    # -- no double-booking across tenants
    busy = {}
    for rec in summary.records:
        for start, end, nodes in rec.attempts:
            assert len(nodes) == rec.spec.total_nodes
            for nid in nodes:
                busy.setdefault(nid, []).append((start, end, rec.job_id))
    for nid, spans in busy.items():
        spans.sort()
        for (s0, e0, j0), (s1, e1, j1) in zip(spans, spans[1:]):
            assert j0 == j1 or s1 >= e0, (
                f"node {nid} double-booked: {j0} [{s0},{e0}) vs {j1} [{s1},{e1})"
            )
    # -- a backfilled start only happens while the head cannot fit
    for rec in summary.records:
        if rec.backfilled and rec.head_need_at_start is not None:
            assert rec.idle_before_start < rec.head_need_at_start, (
                f"{rec.job_id} backfilled although the head "
                f"(need {rec.head_need_at_start}) had "
                f"{rec.idle_before_start} idle nodes"
            )
    # -- conservation: after drain + shutdown every node is idle again
    sched.shutdown()
    assert machine.rm.idle_count == len(machine.live_nodes)


@settings(max_examples=25, deadline=None)
@given(
    num_nodes=st.integers(3, 10),
    stream=streams,
    backfill=st.booleans(),
    spare_pool=st.integers(0, 2),
)
def test_stream_invariants(num_nodes, stream, backfill, spare_pool):
    machine, sched, summary = run_stream(
        num_nodes, stream, backfill, preempt=False, spare_pool=spare_pool
    )
    assert_invariants(machine, sched, summary)
    # FCFS within a priority class: non-backfilled first starts happen
    # in submission order among jobs of equal priority.
    by_prio = {}
    for r in summary.records:
        if not r.backfilled and r.started_at is not None and r.restarts == 0:
            by_prio.setdefault(r.spec.priority, []).append(r)
    for recs in by_prio.values():
        order = sorted(recs, key=lambda r: (r.started_at, r.seq))
        assert [r.seq for r in order] == sorted(r.seq for r in order)


@settings(max_examples=15, deadline=None)
@given(num_nodes=st.integers(4, 10), stream=streams)
def test_stream_invariants_with_preemption(num_nodes, stream):
    machine, sched, summary = run_stream(
        num_nodes, stream, backfill=True, preempt=True, spare_pool=0
    )
    assert_invariants(machine, sched, summary)
    # Preempted victims still finish (they requeue at their seq).
    for rec in summary.records:
        if rec.preemptions and rec.spec.total_nodes <= machine.spec.num_nodes:
            assert rec.state == "done"
