"""Unit tests for the observability primitives themselves.

The end-to-end contracts (byte-identical replay, model regression,
hop bounds) live in their own files; this one pins the small parts:
tracer recording semantics, the null objects, metric arithmetic,
exporter formats and the summary CLI.
"""

import json

import pytest

from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    TraceEvent,
    dumps_jsonl,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.summary import main as summary_main
from repro.obs.summary import notification_summary, state_dwell_times
from repro.simt import Simulator


# ------------------------------------------------------------------- tracer
def test_tracer_attaches_to_simulator():
    sim = Simulator()
    assert sim.tracer is NULL_TRACER  # the zero-overhead default
    tracer = Tracer(sim)
    assert sim.tracer is tracer
    detached = Tracer(sim, attach=False)
    assert sim.tracer is tracer
    assert detached.events == []


def test_instants_and_spans_record_sim_time():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc():
        tracer.instant("a", "cat", rank=3, hop=2)
        start = sim.now
        yield sim.timeout(1.5)
        tracer.complete("b", "cat", start, node=7, phase="enc")

    sim.spawn(proc())
    sim.run()

    a, b = tracer.events
    assert (a.name, a.ph, a.ts, a.rank, a.args) == ("a", "i", 0.0, 3, {"hop": 2})
    assert a.dur is None and a.end == a.ts
    assert (b.name, b.ph, b.ts, b.dur, b.node) == ("b", "X", 0.0, 1.5, 7)
    assert b.end == 1.5
    assert b.args == {"phase": "enc"}


def test_disabled_tracer_records_nothing():
    sim = Simulator()
    tracer = Tracer(sim, enabled=False)
    tracer.instant("a", "cat")
    tracer.complete("b", "cat", 0.0)
    assert len(tracer) == 0
    # Flipping the switch starts recording without reconstruction.
    tracer.enabled = True
    tracer.instant("c", "cat")
    assert [ev.name for ev in tracer.events] == ["c"]
    tracer.clear()
    assert len(tracer) == 0


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    NULL_TRACER.instant("x", "cat", rank=1)
    NULL_TRACER.complete("y", "cat", 0.0)
    assert len(NULL_TRACER) == 0
    assert list(NULL_TRACER.select()) == []


def test_select_filters_by_cat_and_name():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.instant("send", "net")
    tracer.instant("recv", "net")
    tracer.instant("send", "other")
    assert [ev.cat for ev in tracer.select(name="send")] == ["net", "other"]
    assert [ev.name for ev in tracer.select(cat="net")] == ["send", "recv"]
    assert len(list(tracer.select(cat="net", name="send"))) == 1


# ------------------------------------------------------------------ metrics
def test_counter_gauge_histogram_arithmetic():
    reg = MetricsRegistry()
    c = reg.counter("msgs", node=1)
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)
    assert reg.counter("msgs", node=1) is c  # get-or-create
    assert reg.counter("msgs", node=2) is not c

    g = reg.gauge("epoch")
    g.set(4)
    g.set(2)
    assert g.snapshot() == 2

    h = reg.histogram("lat")
    for v in [3.0, 1.0, 5.0, 2.0, 4.0]:
        h.observe(v)
    assert h.count == 5
    assert h.total == 15.0
    assert h.mean == 3.0
    assert (h.min, h.max) == (1.0, 5.0)
    assert h.percentile(0) == 1.0
    assert h.percentile(50) == 3.0
    assert h.percentile(100) == 5.0


def test_registry_aggregation_and_snapshot_determinism():
    def build():
        reg = MetricsRegistry()
        reg.counter("net.msgs", node=2).inc(5)
        reg.counter("net.msgs", node=1).inc(3)
        reg.histogram("hops", node=1).observe(1.0)
        reg.histogram("hops", node=2).observe(3.0)
        reg.gauge("epoch").set(1)
        return reg

    reg = build()
    assert reg.sum_counters("net.msgs") == 8
    assert reg.merged_histogram("hops").values == [1.0, 3.0]
    snap = reg.snapshot()
    assert snap["counter:net.msgs{node=1}"] == 3
    assert snap["gauge:epoch{}"] == 1
    # Same updates in a fresh registry give the same snapshot, including
    # key order (the replay test's metrics comparison relies on this).
    assert list(snap) == list(build().snapshot())
    assert snap == build().snapshot()


def test_null_metrics_accepts_everything():
    assert NULL_METRICS.enabled is False
    c = NULL_METRICS.counter("x", node=1)
    c.inc(10)
    NULL_METRICS.gauge("y").set(3)
    NULL_METRICS.histogram("z").observe(1.0)
    assert c.value == 0.0
    assert NULL_METRICS.snapshot() == {}


# ---------------------------------------------------------------- exporters
def _sample_events():
    return [
        TraceEvent("send", "net", "i", 1.25, rank=2, node=1,
                   args={"nbytes": 64, "dst": 3}),
        TraceEvent("encode", "ckpt", "X", 2.0, dur=0.5, rank=0, node=0,
                   incarnation=1, epoch=2),
    ]


def test_jsonl_is_deterministic_and_roundtrips(tmp_path):
    events = _sample_events()
    text = dumps_jsonl(events)
    lines = text.splitlines()
    assert len(lines) == 2
    # Fixed key order and compact separators -> byte-stable output.
    assert lines[0] == (
        '{"ts":1.25,"ph":"i","cat":"net","name":"send","rank":2,"node":1,'
        '"args":{"dst":3,"nbytes":64}}'
    )
    path = str(tmp_path / "t.jsonl")
    assert write_jsonl(events, path) == 2
    back = read_jsonl(path)
    assert dumps_jsonl(back) == text


def test_chrome_trace_mapping():
    doc = to_chrome_trace(_sample_events())
    ev_i, ev_x = doc["traceEvents"]
    assert ev_i["ph"] == "i"
    assert ev_i["ts"] == pytest.approx(1.25e6)  # microseconds
    assert (ev_i["pid"], ev_i["tid"]) == (1, 2)
    assert "dur" not in ev_i
    assert ev_x["dur"] == pytest.approx(0.5e6)
    # Identity labels with no native Chrome field ride in args.
    assert ev_x["args"] == {"incarnation": 1, "epoch": 2}


def test_chrome_trace_file_is_json(tmp_path):
    path = str(tmp_path / "t.json")
    assert write_chrome_trace(_sample_events(), path) == 2
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["displayTimeUnit"] == "ms"
    assert len(doc["traceEvents"]) == 2


# ------------------------------------------------------------------ summary
def test_notification_summary_counts_hops_and_latency():
    events = [
        TraceEvent("node.crash", "failure", "i", 10.0, node=5),
        TraceEvent("overlay.notified", "overlay", "i", 10.2, rank=1, epoch=1,
                   args={"hop": 1}),
        TraceEvent("overlay.notified", "overlay", "i", 10.25, rank=2, epoch=1,
                   args={"hop": 2}),
        TraceEvent("overlay.notified", "overlay", "i", 10.25, rank=3, epoch=1,
                   args={"hop": 2}),
    ]
    gen1 = notification_summary(events)[1]
    assert gen1["count"] == 3
    assert gen1["hops"] == {1: 1, 2: 2}
    assert gen1["max_hop"] == 2
    assert gen1["failure_at"] == 10.0
    assert gen1["latency"] == pytest.approx(0.25)


def test_state_dwell_times_use_consecutive_transitions():
    events = [
        TraceEvent("fmi.state", "state", "i", 0.0, rank=0, incarnation=0,
                   args={"state": "H1"}),
        TraceEvent("fmi.state", "state", "i", 1.0, rank=0, incarnation=0,
                   args={"state": "H2"}),
        TraceEvent("fmi.state", "state", "i", 1.5, rank=0, incarnation=0,
                   args={"state": "H3"}),
    ]
    dwell = state_dwell_times(events)
    assert dwell["H1"]["mean"] == pytest.approx(1.0)
    assert dwell["H2"]["mean"] == pytest.approx(0.5)
    assert "H3" not in dwell  # final state has no successor


def test_summary_cli_renders_a_report(tmp_path, capsys):
    path = str(tmp_path / "trace.jsonl")
    write_jsonl(_sample_events(), path)
    assert summary_main([path]) == 0
    out = capsys.readouterr().out
    assert "trace: 2 events" in out
    assert "Checkpoint / restore phases" in out
    assert summary_main([]) == 2  # usage error
