"""Gray failures: partitions, omission faults, and limping nodes.

Unit coverage of the fabric partition state, the transport's cut
handling (stall + drop modes), the seeded link-fault model, limping
node plumbing, and the detector's suspicion machinery -- plus the
end-to-end acceptance scenarios from the gray-failure campaigns.
"""

import numpy as np
import pytest

from repro.chaos import GRAY_CAMPAIGNS, run_campaign
from repro.cluster import Machine
from repro.cluster.failures import LimpInjector
from repro.cluster.node import NodeDownError
from repro.cluster.spec import SIERRA
from repro.net import LinkFaultModel
from repro.net.endpoint import ConnectionManager
from repro.net.message import Envelope
from repro.net.transport import Transport
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


def setup(n=4):
    sim = Simulator()
    m = Machine(sim, SIERRA.with_nodes(n), RngRegistry(0))
    return sim, m, Transport(m)


def env(src, dst, data=None, nbytes=8, epoch=0, tag=0):
    return Envelope(src, dst, tag, 0, epoch, nbytes, data)


# ------------------------------------------------------------ fabric state
def test_partition_reachability_and_tag():
    sim, m, _tp = setup()
    tag = m.fabric.partition([[0, 1], [2, 3]], tag="cut")
    assert tag == "cut"
    assert m.fabric.partitioned and m.fabric.partition_tag == "cut"
    assert m.fabric.reachable(0, 1)
    assert m.fabric.reachable(2, 3)
    assert not m.fabric.reachable(0, 2)
    assert not m.fabric.reachable(1, 3)
    m.fabric.heal()
    assert not m.fabric.partitioned and m.fabric.partition_tag == ""
    assert m.fabric.reachable(0, 2)


def test_unlisted_nodes_join_component_zero():
    sim, m, _tp = setup()
    m.fabric.partition([[2, 3]])  # cleave {2,3} off from everyone else
    assert m.fabric.reachable(0, 1)
    assert not m.fabric.reachable(0, 2)


def test_partition_generates_tags():
    sim, m, _tp = setup()
    assert m.fabric.partition([[1]]) == "p1"
    m.fabric.heal()
    assert m.fabric.partition([[1]]) == "p2"


def test_double_partition_refused():
    sim, m, _tp = setup()
    m.fabric.partition([[1]])
    with pytest.raises(RuntimeError, match="already partitioned"):
        m.fabric.partition([[2]])


def test_overlapping_groups_rejected():
    sim, m, _tp = setup()
    with pytest.raises(ValueError, match="two partition groups"):
        m.fabric.partition([[0, 1], [1, 2]])


def test_heal_when_connected_is_noop():
    sim, m, _tp = setup()
    heals = []
    m.fabric.on_heal(heals.append)
    m.fabric.heal()
    assert heals == []


def test_partition_and_heal_listeners_fire():
    sim, m, _tp = setup()
    cuts, heals = [], []
    m.fabric.on_partition(lambda tag, comp: cuts.append((tag, dict(comp))))
    m.fabric.on_heal(heals.append)
    m.fabric.partition([[0], [1, 2]], tag="t")
    m.fabric.heal()
    assert cuts == [("t", {0: 1, 1: 2, 2: 2})]
    assert heals == ["t"]


# --------------------------------------------------- transport: stall mode
def test_cut_message_stalls_and_heals_exactly_once():
    sim, m, tp = setup()
    a = tp.create_context(m.node(0))
    b = tp.create_context(m.node(1))
    m.fabric.partition([[1]])
    recv = b.matching.post(source=0, tag=0, comm_id=0)
    done = tp.send(a, b.addr, env(0, 1, data="parked"))
    sim.run()
    assert tp.partition_stalls == 1 and len(tp._stalled) == 1
    assert not recv.triggered  # parked at the cut, not lost
    m.fabric.heal()
    sim.run()
    assert recv.value.data == "parked"
    assert done.ok
    assert tp.partition_flushed == 1 and tp._stalled == []
    assert b.matching.delivered == 1  # exactly once


def test_stalled_messages_flush_in_send_order():
    sim, m, tp = setup()
    a = tp.create_context(m.node(0))
    b = tp.create_context(m.node(1))
    m.fabric.partition([[1]])
    for i in range(3):
        tp.send(a, b.addr, env(0, 1, data=i, tag=i))
    sim.run()
    assert tp.partition_stalls == 3
    order = []
    for i in range(3):
        b.matching.post(source=0, tag=i, comm_id=0).callbacks.append(
            lambda e, i=i: order.append(i)
        )
    m.fabric.heal()
    sim.run()
    assert order == [0, 1, 2]


# ---------------------------------------------------- transport: drop mode
def test_cut_message_retransmits_until_heal():
    sim, m, tp = setup()
    tp.partition_mode = "drop"
    a = tp.create_context(m.node(0))
    b = tp.create_context(m.node(1))
    m.fabric.partition([[1]])
    recv = b.matching.post(source=0, tag=0, comm_id=0)
    tp.send(a, b.addr, env(0, 1, data="retry"))
    sim.run(until=sim.timeout(1.0))
    assert tp.partition_retries >= 10  # burning rto after rto at the cut
    assert not recv.triggered
    m.fabric.heal()
    sim.run()
    assert recv.value.data == "retry"
    assert b.matching.delivered == 1


def test_same_side_traffic_unaffected_by_partition():
    sim, m, tp = setup()
    a = tp.create_context(m.node(0))
    b = tp.create_context(m.node(1))
    m.fabric.partition([[2, 3]])
    recv = b.matching.post(source=0, tag=0, comm_id=0)
    tp.send(a, b.addr, env(0, 1, data="local"))
    sim.run()
    assert recv.value.data == "local"
    assert tp.partition_stalls == 0


# ------------------------------------------------ connections across a cut
def test_partition_breaks_crossing_connections_on_both_ends():
    sim, m, _tp = setup()
    cm = ConnectionManager(m)
    conn = cm.connect("a", m.node(0), "b", m.node(2))
    events = []
    conn.on_disconnect("a", lambda c, k, r: events.append((k, r, sim.now)))
    conn.on_disconnect("b", lambda c, k, r: events.append((k, r, sim.now)))
    m.fabric.partition([[2, 3]], tag="cut")
    sim.run()
    assert not conn.open
    assert sorted(k for k, _r, _t in events) == ["a", "b"]
    for _k, reason, t in events:
        assert reason == "partition:cut"
        assert t == pytest.approx(cm.close_delay)


def test_same_side_connection_survives_partition():
    sim, m, _tp = setup()
    cm = ConnectionManager(m)
    conn = cm.connect("a", m.node(0), "b", m.node(1))
    m.fabric.partition([[2, 3]])
    sim.run()
    assert conn.open


def test_connect_across_cut_refused():
    sim, m, _tp = setup()
    cm = ConnectionManager(m)
    m.fabric.partition([[1]])
    with pytest.raises(ConnectionError, match="partitioned"):
        cm.connect("a", m.node(0), "b", m.node(1))
    m.fabric.heal()
    assert cm.connect("a", m.node(0), "b", m.node(1)).open


# ------------------------------------------------------- link-fault model
def test_fault_model_validates_probabilities():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError, match="drop_p"):
        LinkFaultModel(rng, drop_p=1.0)
    with pytest.raises(ValueError, match="dup_p"):
        LinkFaultModel(rng, dup_p=-0.1)
    with pytest.raises(ValueError, match="positive"):
        LinkFaultModel(rng, rto=0.0)


def test_fault_model_loopback_immune():
    model = LinkFaultModel(np.random.default_rng(0), drop_p=0.9)
    assert not model.applies(3, 3)
    assert model.applies(0, 1)
    assert model.plan(5, 5).clean


def test_fault_model_link_restriction():
    model = LinkFaultModel(
        np.random.default_rng(0), drop_p=0.9, links={(0, 1)}
    )
    assert model.applies(0, 1)
    assert not model.applies(1, 0)  # directed


def test_dropped_messages_are_redelivered_after_rto():
    sim, m, tp = setup()
    a = tp.create_context(m.node(0))
    b = tp.create_context(m.node(1))
    tp.set_faults(LinkFaultModel(np.random.default_rng(1), drop_p=0.5))
    n = 40
    for i in range(n):
        b.matching.post(source=0, tag=i, comm_id=0)
        tp.send(a, b.addr, env(0, 1, data=i, tag=i))
    sim.run()
    # Lossy, but nothing is lost: every message lands exactly once.
    assert b.matching.delivered == n
    assert tp.omission_drops > 0


def test_duplicates_are_suppressed_at_receiver():
    sim, m, tp = setup()
    a = tp.create_context(m.node(0))
    b = tp.create_context(m.node(1))
    tp.set_faults(LinkFaultModel(np.random.default_rng(2), dup_p=0.8))
    n = 25
    for i in range(n):
        b.matching.post(source=0, tag=i, comm_id=0)
        tp.send(a, b.addr, env(0, 1, data=i, tag=i))
    sim.run()
    assert b.matching.delivered == n
    assert tp.omission_dups > 0
    assert tp.dup_dropped == tp.omission_dups


def test_dedup_stays_armed_after_model_detached():
    sim, m, tp = setup()
    tp.set_faults(LinkFaultModel(np.random.default_rng(0), dup_p=0.5))
    tp.clear_faults()
    assert tp.faults is None
    assert tp._lossy  # in-flight duplicates must still be suppressed


def test_fault_plans_are_seed_deterministic():
    def draw(seed):
        model = LinkFaultModel(
            np.random.default_rng(seed), drop_p=0.3, dup_p=0.3, delay_p=0.3
        )
        return [
            (p.drops, p.delay, p.duplicate)
            for p in (model.plan(0, 1) for _ in range(50))
        ]

    assert draw(7) == draw(7)
    assert draw(7) != draw(8)


# ---------------------------------------------------------- limping nodes
def test_set_limp_validation():
    sim, m, _tp = setup()
    with pytest.raises(ValueError, match=">= 1.0"):
        m.node(0).set_limp(0.5, 1.0)
    m.node(0).crash()
    with pytest.raises(NodeDownError):
        m.node(0).set_limp(2.0, 2.0)


def test_limp_slows_transfers_and_clear_restores():
    def timed(limped):
        sim, m, tp = setup()
        if limped:
            m.node(1).set_limp(8.0, 4.0)
        a = tp.create_context(m.node(0))
        b = tp.create_context(m.node(1))
        b.matching.post(source=0, tag=0, comm_id=0)
        tp.send(a, b.addr, env(0, 1, nbytes=1 << 20, data="x"))
        sim.run()
        return sim.now

    assert timed(limped=True) > 2 * timed(limped=False)
    sim, m, _tp = setup()
    m.node(1).set_limp(8.0, 4.0)
    assert m.node(1).limping
    m.node(1).clear_limp()
    assert not m.node(1).limping
    assert m.node(1).limp_bw == 1.0 and m.node(1).limp_latency == 1.0


def test_machine_limp_wrappers():
    sim, m, _tp = setup()
    m.limp_nodes([0, 2], bw_factor=4.0, latency_factor=2.0)
    assert m.node(0).limping and m.node(2).limping and not m.node(1).limping
    m.unlimp_nodes([0, 2])
    assert not m.node(0).limping and not m.node(2).limping


def test_limp_injector_is_deterministic_and_stop_heals():
    def episodes(seed):
        sim, m, _tp = setup()
        inj = LimpInjector(
            sim, np.random.default_rng(seed), list(m.nodes),
            mean_interval=0.5, mean_duration=0.3,
        )
        inj.start()
        sim.run(until=sim.timeout(5.0))
        inj.stop()
        assert all(not n.limping for n in m.nodes if n.alive)
        return inj.episodes

    eps = episodes(3)
    assert eps and eps == episodes(3)
    assert eps != episodes(4)


def test_limp_injector_validates_args():
    sim, m, _tp = setup()
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        LimpInjector(sim, rng, [], 1.0, 1.0)
    with pytest.raises(ValueError):
        LimpInjector(sim, rng, [m.node(0)], 0.0, 1.0)


# -------------------------------------------------- end-to-end acceptance
def test_partition_heal_alone_never_triggers_recovery():
    """A cut that heals must look like nothing happened: suspicions are
    raised (the edges did break) but no recovery epoch ever opens, and
    the overlay is repaired in place."""
    for seed in range(3):
        result = run_campaign("partition-heal", seed)
        assert result.violations == []
        assert result.recoveries == 0
        assert result.repaired_edges > 0
        assert result.partition_stalls > 0 or result.partition_retries > 0


def test_partition_kill_mid_heal_recovers_exactly_the_real_death():
    """The acceptance scenario: partition, kill a rank mid-cut, heal.
    Only the real death recovers -- the partition itself must not add
    epochs on either side (no split brain), and the answer stays
    bit-equal to the failure-free run (checked by the invariants)."""
    for seed in range(3):
        result = run_campaign("partition-kill-mid-heal", seed)
        assert result.violations == []
        assert result.recoveries >= 1


def test_flapping_partition_clears_every_suspicion():
    result = run_campaign("flapping-partition", seed=0)
    assert result.violations == []
    assert result.recoveries == 0


def test_lossy_links_survive_kill_under_omission():
    result = run_campaign("lossy-links", seed=0)
    assert result.violations == []
    assert result.omission_drops > 0
    assert result.dup_dropped <= result.omission_dups


def test_gray_campaigns_registered():
    assert set(GRAY_CAMPAIGNS) == {
        "partition-heal", "partition-kill-mid-heal", "flapping-partition",
        "lossy-links", "limping-node",
    }
