"""MPI fail-stop semantics, the restart driver, and SCR."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.mpi.runtime import JobAborted, MpiJob, MpiRestartDriver
from repro.mpi.scr import Scr
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


def make(num_nodes=8, seed=0):
    sim = Simulator()
    return sim, Machine(sim, SIERRA.with_nodes(num_nodes), RngRegistry(seed))


# ------------------------------------------------------------------ fail-stop
def test_node_crash_aborts_whole_job():
    sim, machine = make()

    def app(mpi):
        yield mpi.elapse(100.0)
        return "done"

    job = MpiJob(machine, app, nprocs=8, procs_per_node=2, charge_init=False)
    done = job.launch()

    def killer():
        yield sim.timeout(5.0)
        machine.node(1).crash("hw")

    sim.spawn(killer())
    with pytest.raises(JobAborted):
        sim.run(until=done)
    # Fail-stop: every rank process is dead, not just node 1's.
    assert all(not p.alive for p in job._procs)
    assert sim.now < 100.0


def test_rank_exception_aborts_job():
    def app(mpi):
        yield mpi.elapse(1.0)
        if mpi.rank == 2:
            raise ValueError("app bug")
        yield mpi.elapse(100.0)

    sim, machine = make()
    job = MpiJob(machine, app, nprocs=4, charge_init=False)
    with pytest.raises(JobAborted):
        sim.run(until=job.launch())


def test_mpi_init_cost_charged():
    def app(mpi):
        return mpi.now
        yield  # pragma: no cover

    sim, machine = make()
    job = MpiJob(machine, app, nprocs=8, procs_per_node=2, charge_init=True)
    results = sim.run(until=job.launch())
    expected = machine.spec.mpi_init_time(8)
    assert job.init_done_at >= expected
    assert all(t >= expected for t in results)


def test_own_allocation_released_on_completion():
    def app(mpi):
        yield mpi.elapse(1.0)

    sim, machine = make()
    assert machine.rm.idle_count == 8
    job = MpiJob(machine, app, nprocs=4, procs_per_node=1)
    sim.run(until=job.launch())
    assert machine.rm.idle_count == 8


def test_job_validation():
    sim, machine = make()
    with pytest.raises(ValueError):
        MpiJob(machine, lambda api: iter(()), nprocs=5, procs_per_node=2)
    with pytest.raises(ValueError):
        MpiJob(machine, lambda api: iter(()), nprocs=0)


# ------------------------------------------------------------- restart driver
def make_scr_app(num_loops, work, record):
    """Traditional C/R app: restart from SCR, loop, checkpoint each
    iteration."""

    def app(mpi):
        scr = Scr(mpi, procs_per_node=2, group_size=4, interval=1)
        u = np.zeros(8, dtype=np.float64)
        start = 0
        found = yield from scr.restart()
        if found is not None:
            dataset_id, payloads = found
            yield from scr.restore_into([u], payloads)
            start = dataset_id + 1
        record.append((mpi.rank, "start", start))
        for n in range(start, num_loops):
            yield mpi.elapse(work)
            u[0] = n + 1.0
            total = yield from mpi.allreduce(float(n))
            u[1] = total
            yield from scr.checkpoint([u], dataset_id=n)
        yield from mpi.barrier()
        return u.copy()

    return app


def test_restart_driver_completes_without_failures():
    sim, machine = make(10)
    record = []
    driver = MpiRestartDriver(
        machine, make_scr_app(4, 0.1, record), nprocs=8, procs_per_node=2
    )
    proc = sim.spawn(driver.run())
    sim.run()
    results = proc.value
    assert driver.restarts == 0
    for u in results:
        assert u[0] == 4.0


def test_restart_driver_recovers_from_node_crash():
    sim, machine = make(10, seed=1)
    record = []
    driver = MpiRestartDriver(
        machine, make_scr_app(6, 0.5, record), nprocs=8, procs_per_node=2
    )
    proc = sim.spawn(driver.run())

    def killer():
        # Crash a node of the first job's allocation mid-run.
        yield sim.timeout(machine.spec.mpi_init_time(8) + 1.5)
        node = driver.jobs[0].nodes[1]
        node.crash("injected")

    sim.spawn(killer())
    sim.run()
    results = proc.value
    assert driver.restarts == 1
    for u in results:
        assert u[0] == 6.0
    # Second attempt resumed from a checkpoint, not from scratch.
    starts = [s for r, tag, s in record if tag == "start"]
    assert max(starts) > 0
    # The replaced node's ranks rebuilt their files from the XOR group:
    # they also resumed from the same dataset (group-consistent).
    assert len({s for s in starts[8:]}) == 1


def test_restart_driver_respects_max_restarts():
    sim, machine = make(10, seed=2)

    def hopeless(mpi):
        yield mpi.elapse(1000.0)

    driver = MpiRestartDriver(
        machine, hopeless, nprocs=8, procs_per_node=2, max_restarts=1
    )
    proc = sim.spawn(driver.run())

    def killer():
        while True:
            yield sim.timeout(30.0)
            for job in driver.jobs[::-1]:
                live = [n for n in job.nodes if n.alive]
                if live:
                    live[0].crash("again")
                    break

    k = sim.spawn(killer())
    with pytest.raises(JobAborted):
        sim.run(until=proc)
    assert driver.restarts == 2  # max_restarts=1 allows one relaunch
    k.kill()


# ------------------------------------------------------------------------ SCR
def test_scr_level2_flush_to_pfs():
    sim, machine = make(10)

    def app(mpi):
        scr = Scr(mpi, procs_per_node=2, group_size=4, interval=1)
        u = np.full(16, float(mpi.rank), dtype=np.float64)
        yield from scr.checkpoint([u], dataset_id=0)
        yield from scr.flush_to_pfs(0)
        return machine.pfs.exists(f"scr/l2/ds0/rank{mpi.rank}")

    job = MpiJob(machine, app, nprocs=8, procs_per_node=2, charge_init=False)
    results = sim.run(until=job.launch())
    assert all(results)


def test_scr_vaidya_mtbf_mode_sets_interval():
    sim, machine = make(10)
    intervals = {}

    def app(mpi):
        scr = Scr(mpi, procs_per_node=2, group_size=4, mtbf_seconds=60.0)
        u = np.zeros(1024, dtype=np.float64)
        assert scr.need_checkpoint()  # first call always checkpoints
        yield from scr.checkpoint([u], dataset_id=0)
        intervals[mpi.rank] = scr.policy.time_interval
        return None

    job = MpiJob(machine, app, nprocs=8, procs_per_node=2, charge_init=False)
    sim.run(until=job.launch())
    assert all(iv is not None and iv > 0 for iv in intervals.values())


def test_scr_tmpfs_cost_exceeds_fmi_memcpy():
    """The SCR filesystem detour must be slower than FMI's raw memcpy
    for the same data -- the mechanism behind Fig 15's 10.3 % gap."""
    from repro.fmi.checkpoint import MemoryStorage, TmpfsStorage
    from repro.fmi.payload import Payload

    sim, machine = make(2)
    node = machine.node(0)
    p = Payload.synthetic(800e6, seed=0)

    def timed(storage):
        t0 = sim.now

        def run():
            yield from storage.store("k", p)

        proc = sim.spawn(run())
        sim.run(until=proc)
        return sim.now - t0

    t_mem = timed(MemoryStorage(node))
    t_fs = timed(TmpfsStorage(node, "x"))
    assert t_fs > t_mem * 2
