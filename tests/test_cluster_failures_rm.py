"""Failure injectors and the resource manager."""

import pytest

from repro.cluster import Machine
from repro.cluster.failures import (
    FailureInjector,
    FailureType,
    MtbfInjector,
    TSUBAME2_FAILURE_TYPES,
    TSUBAME2_TABLE1_CLASSES,
)
from repro.cluster.resource_manager import AllocationError
from repro.cluster.spec import SECONDS_PER_YEAR, SIERRA, TSUBAME2
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


# ------------------------------------------------------------ failure types
def test_tsubame_table1_class_totals():
    # The component split must sum back to Table I's per-class totals.
    expected = {
        "PFS, Core switch": 5.61,
        "Rack": 4.20,
        "Edge switch": 21.02,
        "PSU": 12.61,
        "Compute node": 554.10,
    }
    for cls_name, _affected, members in TSUBAME2_TABLE1_CLASSES:
        total = sum(
            t.failures_per_year for t in TSUBAME2_FAILURE_TYPES if t.name in members
        )
        assert total == pytest.approx(expected[cls_name], rel=0.01), cls_name


def test_tsubame_table1_mtbf_days():
    # Table I MTBF column: 65.10, 86.90, 17.37, 28.94, 0.658 days.
    expected = {
        "PFS, Core switch": 65.10,
        "Rack": 86.90,
        "Edge switch": 17.37,
        "PSU": 28.94,
        "Compute node": 0.658,
    }
    for cls_name, _affected, members in TSUBAME2_TABLE1_CLASSES:
        rate = sum(
            t.rate_per_second for t in TSUBAME2_FAILURE_TYPES if t.name in members
        )
        mtbf_days = 1.0 / rate / 86400.0
        assert mtbf_days == pytest.approx(expected[cls_name], rel=0.02), cls_name


def test_failure_levels_match_affected_counts():
    for t in TSUBAME2_FAILURE_TYPES:
        expected_level = {1: 1, 4: 2, 16: 3, 32: 4, 1408: 5}[t.affected_nodes]
        assert t.level == expected_level


def test_failure_type_conversions():
    t = FailureType.from_per_year("x", 1, SECONDS_PER_YEAR, 1)
    assert t.rate_per_second == pytest.approx(1.0)
    assert t.mtbf_seconds == pytest.approx(1.0)


# ------------------------------------------------------------- injector
def test_injector_records_match_poisson_rates():
    sim = Simulator()
    rng = RngRegistry(42).stream("failures")
    inj = FailureInjector(sim, rng, TSUBAME2_FAILURE_TYPES, num_nodes=1408)
    inj.start()
    years = 20
    duration = years * SECONDS_PER_YEAR
    sim.run(until=duration)
    inj.stop()
    # Compute-node class: expect ~554/yr within ~10% over 20 years.
    stats = {name: (per_year, mtbf) for name, _a, per_year, mtbf in inj.class_stats(duration)}
    assert stats["Compute node"][0] == pytest.approx(554.1, rel=0.10)
    assert stats["Edge switch"][0] == pytest.approx(21.02, rel=0.35)
    assert stats["Compute node"][1] == pytest.approx(0.658, rel=0.10)


def test_injector_node_pick_respects_affected_count():
    sim = Simulator()
    rng = RngRegistry(1).stream("f")
    inj = FailureInjector(sim, rng, TSUBAME2_FAILURE_TYPES, num_nodes=1408)
    for t in TSUBAME2_FAILURE_TYPES:
        nodes = inj._pick_nodes(t)
        assert len(nodes) == min(t.affected_nodes, 1408)
        assert len(set(nodes)) == len(nodes)
        if 1 < t.affected_nodes < 1408:
            # aligned block
            assert nodes == list(range(nodes[0], nodes[0] + t.affected_nodes))
            assert nodes[0] % t.affected_nodes == 0


def test_injector_crashes_machine_nodes():
    sim = Simulator()
    m = Machine(sim, TSUBAME2.with_nodes(64), RngRegistry(3))
    one_per_hour = [FailureType("node", 1, 1.0 / 3600.0, 1)]
    inj = m.make_injector(one_per_hour)
    inj.start()
    sim.run(until=50 * 3600.0)
    inj.stop()
    assert len(inj.records) > 0
    dead = {n.id for n in m.nodes if not n.alive}
    hit = set()
    for r in inj.records:
        hit.update(r.nodes)
    assert dead == hit


def test_injector_double_start_rejected():
    sim = Simulator()
    inj = FailureInjector(
        sim, RngRegistry(0).stream("x"), TSUBAME2_FAILURE_TYPES, 16
    )
    inj.start()
    with pytest.raises(RuntimeError):
        inj.start()


def test_mtbf_injector_rate():
    sim = Simulator()
    kills = []
    inj = MtbfInjector(
        sim,
        RngRegistry(5).stream("mtbf"),
        mtbf_seconds=60.0,
        kill=lambda nid: kills.append(nid),
        num_nodes=32,
    )
    inj.start()
    sim.run(until=60.0 * 1000)
    inj.stop()
    assert len(kills) == pytest.approx(1000, rel=0.15)
    assert all(0 <= k < 32 for k in kills)


def test_mtbf_injector_validates():
    with pytest.raises(ValueError):
        MtbfInjector(Simulator(), RngRegistry(0).stream("x"), 0.0, lambda n: None, 4)


# -------------------------------------------------------- resource manager
def test_allocate_and_spares():
    sim = Simulator()
    m = Machine(sim, SIERRA.with_nodes(10), RngRegistry(0))
    alloc = m.rm.allocate(6, num_spares=2)
    assert len(alloc.nodes) == 6
    assert len(alloc.spares) == 2
    assert m.rm.idle_count == 2
    spare = alloc.take_spare()
    assert spare is not None and spare.alive
    assert len(alloc.spares) == 1


def test_take_spare_skips_dead():
    sim = Simulator()
    m = Machine(sim, SIERRA.with_nodes(8), RngRegistry(0))
    alloc = m.rm.allocate(4, num_spares=2)
    alloc.spares[0].crash()
    spare = alloc.take_spare()
    assert spare is not None and spare.alive
    assert alloc.take_spare() is None


def test_overallocation_raises():
    sim = Simulator()
    m = Machine(sim, SIERRA.with_nodes(4), RngRegistry(0))
    with pytest.raises(AllocationError):
        m.rm.allocate(5)


def test_replacement_grant_latency():
    sim = Simulator()
    m = Machine(sim, SIERRA.with_nodes(5), RngRegistry(0))
    m.rm.allocate(4)
    got = []

    def asker():
        node = yield m.rm.request_replacement()
        got.append((node.id, sim.now))

    sim.spawn(asker())
    sim.run()
    assert len(got) == 1
    assert got[0][1] == pytest.approx(m.spec.spare_grant_latency)


def test_replacement_waits_for_release():
    sim = Simulator()
    m = Machine(sim, SIERRA.with_nodes(4), RngRegistry(0))
    alloc = m.rm.allocate(4)  # pool empty
    got = []

    def asker():
        node = yield m.rm.request_replacement()
        got.append(sim.now)

    sim.spawn(asker())

    def releaser():
        yield sim.timeout(10.0)
        alloc.release()

    sim.spawn(releaser())
    sim.run()
    assert got and got[0] == pytest.approx(10.0 + m.spec.spare_grant_latency)


def test_release_returns_nodes_and_is_idempotent():
    sim = Simulator()
    m = Machine(sim, SIERRA.with_nodes(6), RngRegistry(0))
    alloc = m.rm.allocate(4, num_spares=1)
    assert m.rm.idle_count == 1
    alloc.release()
    alloc.release()
    assert m.rm.idle_count == 6


def test_dead_nodes_not_returned_to_pool():
    sim = Simulator()
    m = Machine(sim, SIERRA.with_nodes(4), RngRegistry(0))
    alloc = m.rm.allocate(4)
    alloc.nodes[0].crash()
    alloc.release()
    assert m.rm.idle_count == 3
