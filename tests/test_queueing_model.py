"""Unit tests for the analytic capacity model (``repro.models.queueing``).

Closed-form anchors: Erlang-C limits, the M/M/1 special case, the
Allen-Cunneen SCV correction, the Vaidya effective-service inflation,
and the monotonicity the capacity planner leans on.
"""

import math

import pytest

from repro.models.queueing import (
    effective_service_time,
    erlang_c,
    estimate_capacity,
    mgc_mean_wait,
    mmc_mean_wait,
)


# ----------------------------------------------------------------- erlang_c
def test_erlang_c_zero_load():
    assert erlang_c(4, 0.0) == 0.0


def test_erlang_c_saturation_is_certain_wait():
    assert erlang_c(4, 4.0) == 1.0
    assert erlang_c(2, 7.5) == 1.0


def test_erlang_c_single_server_is_rho():
    # For M/M/1 the probability of waiting is exactly the utilization.
    for rho in (0.1, 0.5, 0.9):
        assert erlang_c(1, rho) == pytest.approx(rho)


def test_erlang_c_monotone_in_load():
    pws = [erlang_c(4, a) for a in (0.5, 1.0, 2.0, 3.0, 3.9)]
    assert pws == sorted(pws)
    assert all(0.0 <= pw <= 1.0 for pw in pws)


# ------------------------------------------------------------ mean waits
def test_mmc_matches_mm1_closed_form():
    # M/M/1: W_q = rho * s / (1 - rho)
    lam, s = 0.4, 1.5
    rho = lam * s
    assert mmc_mean_wait(lam, s, 1) == pytest.approx(rho * s / (1 - rho))


def test_mmc_saturation_is_infinite():
    assert math.isinf(mmc_mean_wait(2.0, 1.0, 2))
    assert math.isinf(mmc_mean_wait(3.0, 1.0, 2))


def test_mgc_scv_one_is_mmc():
    assert mgc_mean_wait(0.7, 1.2, 2, service_scv=1.0) == pytest.approx(
        mmc_mean_wait(0.7, 1.2, 2)
    )


def test_mgc_deterministic_service_halves_wait():
    # Allen-Cunneen: scv=0 scales the exponential wait by (1+0)/2.
    assert mgc_mean_wait(0.7, 1.2, 2, service_scv=0.0) == pytest.approx(
        mmc_mean_wait(0.7, 1.2, 2) / 2
    )


# --------------------------------------------------- effective service time
def test_effective_service_checkpoint_overhead_only():
    # No failures: runtime stretches by exactly the checkpoint tax.
    assert effective_service_time(
        10.0, mtbf=None, interval=2.0, ckpt_cost=0.5
    ) == pytest.approx(10.0 * 1.25)
    assert effective_service_time(
        10.0, mtbf=None, interval=0.0, ckpt_cost=0.5
    ) == 10.0


def test_effective_service_inflates_as_mtbf_shrinks():
    times = [
        effective_service_time(10.0, mtbf=m, interval=2.0, ckpt_cost=0.1,
                               restart_cost=1.0)
        for m in (1000.0, 100.0, 30.0)
    ]
    assert times == sorted(times)
    assert times[0] >= 10.0  # never faster than the ideal run


# --------------------------------------------------------- estimate_capacity
def test_capacity_wait_monotone_in_arrival_rate():
    waits = [
        estimate_capacity(num_nodes=16, nodes_per_job=2, arrival_rate=lam,
                          ideal_runtime=2.0).mean_wait
        for lam in (0.5, 1.0, 2.0, 3.0, 3.9)
    ]
    assert waits == sorted(waits)


def test_capacity_goodput_degrades_with_failures():
    goodputs = [
        estimate_capacity(num_nodes=16, nodes_per_job=2, arrival_rate=0.5,
                          ideal_runtime=2.0, mtbf=m, interval=1.0,
                          ckpt_cost=0.1, restart_cost=1.0).goodput
        for m in (None, 500.0, 50.0, 10.0)
    ]
    assert goodputs == sorted(goodputs, reverse=True)


def test_capacity_servers_and_utilization():
    est = estimate_capacity(num_nodes=17, nodes_per_job=3, arrival_rate=1.0,
                            ideal_runtime=2.0)
    assert est.servers == 5  # floor(17 / 3)
    assert est.utilization == pytest.approx(1.0 * est.service_time / 5)
    assert est.mean_latency == pytest.approx(est.mean_wait + est.service_time)


def test_capacity_p99_exceeds_mean_under_load():
    est = estimate_capacity(num_nodes=8, nodes_per_job=2, arrival_rate=1.7,
                            ideal_runtime=2.0)
    assert est.prob_wait > 0.01
    assert est.p99_wait > est.mean_wait > 0.0
