"""Detector teardown idempotence: the paths that race each other.

Connection teardown has four entry points -- ``_unlink`` via a
disconnect event, ``leave`` on rank finish, ``process_died`` from
fmirun.task, and ``_on_node_death`` -- and real schedules interleave
them: a node death purges table entries ~0.2 s *before* the survivors'
ibverbs events fire for the same connections, and a process can exit
cleanly just before fmirun notices it dying.  Each path must therefore
tolerate running after any other already did the work.
"""

import pytest

from repro.chaos import CAMPAIGNS
from repro.chaos.runner import _build_job
from repro.obs import Tracer


def steady_job(t=1.0, seed=0):
    """A launched job run to ``t``: every rank joined, overlay complete."""
    sim, machine, job = _build_job(CAMPAIGNS["mid-checkpoint-kill"], seed)
    Tracer(sim)
    done = job.launch()
    sim.run(until=sim.timeout(t))
    det = job.detector
    assert det._conns and det._joined_epoch, "overlay should be up"
    return sim, machine, job, done


def no_stale_entries(det):
    """No closed connection lingers in a live rank's table, and every
    listed rank has a join epoch."""
    for rank, conns in det._conns.items():
        rproc = det.job.rank_procs.get(rank)
        if rproc is None or not rproc.alive:
            continue
        assert rank in det._joined_epoch
        for conn in conns:
            assert conn.open, (rank, conn.ends)


def test_unlink_is_idempotent():
    sim, machine, job, _done = steady_job()
    det = job.detector
    rank = next(iter(det._conns))
    conn = det._conns[rank][0]
    before = {r: len(c) for r, c in det._conns.items()}
    det._unlink(conn)
    after_once = {r: len(c) for r, c in det._conns.items()}
    det._unlink(conn)  # second call: must be a no-op, not a ValueError
    assert {r: len(c) for r, c in det._conns.items()} == after_once
    for end_rank in (key[0] for key in conn.ends):
        assert before[end_rank] - 1 == after_once.get(end_rank, 0)
        assert conn not in det._conns.get(end_rank, [])


def test_process_died_after_leave_is_noop():
    sim, machine, job, _done = steady_job()
    det = job.detector
    rank = sorted(det._conns)[0]
    det.leave(rank)
    assert rank not in det._conns and rank not in det._joined_epoch
    det.process_died(rank, "late-exit")  # fmirun noticed after the fact
    assert rank not in det._conns and rank not in det._joined_epoch
    no_stale_entries(det)


def test_leave_twice_is_noop():
    sim, machine, job, _done = steady_job()
    det = job.detector
    rank = sorted(det._conns)[0]
    det.leave(rank)
    det.leave(rank)
    assert rank not in det._conns and rank not in det._joined_epoch


def test_leave_clears_pending_suspicions_of_that_rank():
    sim, machine, job, _done = steady_job()
    det = job.detector
    ranks = sorted(det._conns)[:3]
    det._suspected[(ranks[0], ranks[1])] = sim.now
    det._suspected[(ranks[2], ranks[0])] = sim.now
    det._suspected[(ranks[1], ranks[2])] = sim.now
    det.leave(ranks[0])
    assert set(det._suspected) == {(ranks[1], ranks[2])}


def test_node_death_racing_survivor_disconnects():
    """Crash a node, then let the survivors' ibverbs events (fired
    ~0.2 s later, for connections ``_on_node_death`` already purged)
    land: ``_unlink`` must no-op and nothing stale may linger."""
    sim, machine, job, done = steady_job()
    det = job.detector
    victim = job.fmirun.node_slots[1]
    dead_ranks = {
        r for r, rp in job.rank_procs.items() if rp.node is victim
    }
    assert dead_ranks
    victim.crash("teardown race test")
    # _on_node_death ran synchronously: the dead ranks are forgotten.
    for rank in dead_ranks:
        assert rank not in det._joined_epoch
    # Now the survivors' disconnect events fire (close_delay ~0.2 s)
    # and cascade; run through them.
    sim.run(until=sim.timeout(0.5))
    no_stale_entries(det)
    # The job must still recover and finish with an empty table.
    sim.run(until=done)
    assert job.finished and job.epoch >= 1
    assert det._conns == {} and det._joined_epoch == {}
    assert det._suspected == {}


def test_process_death_then_node_death_same_instant():
    sim, machine, job, done = steady_job()
    det = job.detector
    victim = job.fmirun.node_slots[0]
    dead_ranks = sorted(
        r for r, rp in job.rank_procs.items() if rp.node is victim
    )
    det.process_died(dead_ranks[0], "killed")  # fmirun's sibling-kill path
    victim.crash("node follows its process")  # then the whole node goes
    sim.run(until=sim.timeout(0.5))
    no_stale_entries(det)
    sim.run(until=done)
    assert job.finished
    assert det._conns == {} and det._joined_epoch == {}


def test_full_run_leaves_empty_tables():
    sim, machine, job, done = steady_job()
    sim.run(until=done)
    assert job.finished
    assert job.detector._conns == {}
    assert job.detector._joined_epoch == {}
    assert job.detector._suspected == {}
