"""Matching-engine semantics: wildcards, FIFO, unexpected queue, reset."""

import pytest

from repro.net.matching import ANY_SOURCE, ANY_TAG, MatchingEngine, RecvCancelled
from repro.net.message import Envelope
from repro.simt import Simulator


def env(src=0, dst=1, tag=0, comm=0, epoch=0, nbytes=8, data=None):
    return Envelope(src, dst, tag, comm, epoch, nbytes, data)


def drain(sim):
    sim.run()


def test_posted_then_delivered():
    sim = Simulator()
    eng = MatchingEngine(sim)
    recv = eng.post(source=0, tag=5, comm_id=0)
    eng.deliver(env(src=0, tag=5, data="hi"))
    drain(sim)
    assert recv.value.data == "hi"


def test_unexpected_then_posted():
    sim = Simulator()
    eng = MatchingEngine(sim)
    eng.deliver(env(src=3, tag=1, data="early"))
    assert eng.unexpected_count == 1
    recv = eng.post(source=3, tag=1, comm_id=0)
    drain(sim)
    assert recv.value.data == "early"
    assert eng.unexpected_count == 0
    assert eng.matched_unexpected == 1


def test_fifo_per_source_tag():
    sim = Simulator()
    eng = MatchingEngine(sim)
    for i in range(3):
        eng.deliver(env(src=0, tag=0, data=i))
    values = []
    for _ in range(3):
        r = eng.post(source=0, tag=0, comm_id=0)
        drain(sim)
        values.append(r.value.data)
    assert values == [0, 1, 2]


def test_wildcard_source():
    sim = Simulator()
    eng = MatchingEngine(sim)
    recv = eng.post(source=ANY_SOURCE, tag=7, comm_id=0)
    eng.deliver(env(src=9, tag=7, data="any"))
    drain(sim)
    assert recv.value.src == 9


def test_wildcard_tag():
    sim = Simulator()
    eng = MatchingEngine(sim)
    recv = eng.post(source=2, tag=ANY_TAG, comm_id=0)
    eng.deliver(env(src=2, tag=99, data="tagged"))
    drain(sim)
    assert recv.value.tag == 99


def test_no_match_across_comms():
    sim = Simulator()
    eng = MatchingEngine(sim)
    recv = eng.post(source=0, tag=0, comm_id=1)
    eng.deliver(env(src=0, tag=0, comm=2))
    drain(sim)
    assert not recv.triggered
    assert eng.unexpected_count == 1


def test_no_match_wrong_tag_waits():
    sim = Simulator()
    eng = MatchingEngine(sim)
    recv = eng.post(source=0, tag=1, comm_id=0)
    eng.deliver(env(src=0, tag=2))
    assert eng.unexpected_count == 1
    eng.deliver(env(src=0, tag=1, data="yes"))
    drain(sim)
    assert recv.value.data == "yes"


def test_multiple_posted_matched_in_post_order():
    sim = Simulator()
    eng = MatchingEngine(sim)
    r1 = eng.post(source=ANY_SOURCE, tag=ANY_TAG, comm_id=0)
    r2 = eng.post(source=ANY_SOURCE, tag=ANY_TAG, comm_id=0)
    eng.deliver(env(data="first"))
    eng.deliver(env(data="second"))
    drain(sim)
    assert r1.value.data == "first"
    assert r2.value.data == "second"


def test_probe_nondestructive():
    sim = Simulator()
    eng = MatchingEngine(sim)
    assert eng.probe(0, 0, 0) is None
    eng.deliver(env(src=0, tag=0, data="peek"))
    assert eng.probe(0, 0, 0).data == "peek"
    assert eng.unexpected_count == 1


def test_reset_cancels_and_purges():
    sim = Simulator()
    eng = MatchingEngine(sim)
    recv = eng.post(source=0, tag=0, comm_id=0)
    eng.deliver(env(src=1, tag=1, data="stale"))
    cancelled, purged = eng.reset()
    assert (cancelled, purged) == (1, 1)
    drain(sim)
    assert not recv.ok
    assert isinstance(recv.value, RecvCancelled)
    assert eng.unexpected_count == 0


def test_reset_empty_is_noop():
    eng = MatchingEngine(Simulator())
    assert eng.reset() == (0, 0)


def test_delivery_counter():
    sim = Simulator()
    eng = MatchingEngine(sim)
    eng.deliver(env())
    eng.deliver(env())
    assert eng.delivered == 2


def test_dead_waiter_does_not_shadow_live_receive():
    # Regression: a posted receive whose waiter died (killed process /
    # externally-failed event) used to stop the delivery scan, starving
    # a matching live receive further down the deque.
    sim = Simulator()
    eng = MatchingEngine(sim)
    dead = eng.post(source=0, tag=4, comm_id=0)
    live = eng.post(source=0, tag=4, comm_id=0)
    dead.fail(RecvCancelled())  # the waiter is gone
    drain(sim)
    eng.deliver(env(src=0, tag=4, data="for-the-living"))
    drain(sim)
    assert live.value.data == "for-the-living"
    assert eng.unexpected_count == 0
    assert eng.pruned_dead == 1
    assert eng.posted_count == 0


def test_dead_waiter_pruned_even_without_live_match():
    sim = Simulator()
    eng = MatchingEngine(sim)
    dead = eng.post(source=0, tag=4, comm_id=0)
    dead.fail(RecvCancelled())
    drain(sim)
    eng.deliver(env(src=0, tag=4, data="orphan"))
    # No live receive: the data lands in the unexpected queue (not
    # lost), and the corpse is gone.
    assert eng.unexpected_count == 1
    assert eng.pruned_dead == 1
    assert eng.posted_count == 0
    late = eng.post(source=0, tag=4, comm_id=0)
    drain(sim)
    assert late.value.data == "orphan"
