"""Property-based tests (hypothesis) on core data structures/invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fmi.payload import Payload
from repro.fmi.xor_codec import encode_group, reconstruct_rank
from repro.net.matching import MatchingEngine
from repro.net.message import Envelope
from repro.net.overlay import (
    logring_neighbors,
    max_notification_hops_bound,
    notification_hops,
)
from repro.models.vaidya import expected_runtime_factor, optimal_interval
from repro.simt import BandwidthResource, Simulator
from repro.simt.rng import RngRegistry


# ------------------------------------------------------------------ XOR codec
@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(2, 10),
    size=st.integers(1, 400),
    f=st.integers(0, 9),
    seed=st.integers(0, 2**31),
)
def test_xor_roundtrip_any_single_failure(n, size, f, seed):
    f = f % n
    rng = np.random.default_rng(seed)
    payloads = [
        Payload.wrap(rng.integers(0, 256, size, dtype=np.uint8)) for _ in range(n)
    ]
    parity = encode_group(payloads)
    survivors = {r: payloads[r] for r in range(n) if r != f}
    slots = {j: parity[j] for j in range(n) if j != f}
    rebuilt = reconstruct_rank(
        f, survivors, slots, n, data_len=size, nbytes=float(size)
    )
    assert rebuilt == payloads[f]


@settings(max_examples=40, deadline=None)
@given(n=st.integers(2, 12), size=st.integers(1, 256), seed=st.integers(0, 2**31))
def test_parity_sizes_equal_chunk(n, size, seed):
    rng = np.random.default_rng(seed)
    payloads = [
        Payload.wrap(rng.integers(0, 256, size, dtype=np.uint8)) for _ in range(n)
    ]
    parity = encode_group(payloads)
    chunk_len = -(-size // (n - 1))
    assert all(p.data.nbytes == chunk_len for p in parity)


# ------------------------------------------------------------------- payload
@settings(max_examples=60, deadline=None)
@given(size=st.integers(1, 1000), k=st.integers(1, 40), seed=st.integers(0, 2**31))
def test_payload_split_join_roundtrip(size, k, seed):
    rng = np.random.default_rng(seed)
    p = Payload.wrap(rng.integers(0, 256, size, dtype=np.uint8))
    chunks = p.split(k)
    assert len({c.data.nbytes for c in chunks}) == 1
    back = Payload.join(chunks, data_len=size, nbytes=p.nbytes)
    assert back == p


@settings(max_examples=40, deadline=None)
@given(
    a=st.binary(min_size=1, max_size=200), b=st.binary(min_size=1, max_size=200)
)
def test_xor_involution(a, b):
    size = max(len(a), len(b))
    pa = Payload.wrap(a).padded(size, float(size))
    pb = Payload.wrap(b).padded(size, float(size))
    orig = pa.copy()
    pa.xor_inplace(pb).xor_inplace(pb)
    assert pa == orig


# ------------------------------------------------------------------ log-ring
@settings(max_examples=80, deadline=None)
@given(n=st.integers(2, 3000), failed=st.integers(0, 2999))
def test_logring_hop_bound_holds(n, failed):
    failed = failed % n
    hops = notification_hops(n, failed)
    assert set(hops) == set(range(n)) - {failed}
    assert max(hops.values()) <= max_notification_hops_bound(n)


@settings(max_examples=60, deadline=None)
@given(n=st.integers(2, 3000), rank=st.integers(0, 2999))
def test_logring_connection_count(n, rank):
    rank = rank % n
    conns = logring_neighbors(rank, n)
    assert len(conns) <= math.ceil(math.log2(n))
    assert rank not in conns
    assert len(set(conns)) == len(conns)


# -------------------------------------------------------------- matching FIFO
@settings(max_examples=50, deadline=None)
@given(
    msgs=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2)), min_size=1, max_size=30
    ),
    seed=st.integers(0, 2**31),
)
def test_matching_fifo_per_source_tag(msgs, seed):
    """Deliver a random message sequence, then drain with exact-match
    receives: per (src, tag) stream, order must be delivery order."""
    sim = Simulator()
    eng = MatchingEngine(sim)
    for i, (src, tag) in enumerate(msgs):
        eng.deliver(Envelope(src, 0, tag, 0, 0, 8, data=(src, tag, i)))
    streams = {}
    for src, tag in msgs:
        streams.setdefault((src, tag), 0)
    for (src, tag) in sorted(streams):
        expected = [i for i, (s, t) in enumerate(msgs) if (s, t) == (src, tag)]
        for want in expected:
            evt = eng.post(src, tag, 0)
            sim.run()
            assert evt.value.data == (src, tag, want)
    assert eng.unexpected_count == 0


# ------------------------------------------------------------------- Vaidya
@settings(max_examples=40, deadline=None)
@given(
    c=st.floats(0.01, 100.0),
    mtbf=st.floats(10.0, 1e6),
    r=st.floats(0.0, 100.0),
)
def test_vaidya_local_optimality(c, mtbf, r):
    t = optimal_interval(c, mtbf, r)
    f = expected_runtime_factor(t, c, mtbf, r)
    assert f >= 1.0
    for factor in (0.5, 0.9, 1.1, 2.0):
        assert expected_runtime_factor(t * factor, c, mtbf, r) >= f - 1e-9


# -------------------------------------------------------- bandwidth resource
@settings(max_examples=40, deadline=None)
@given(
    flows=st.lists(st.floats(1.0, 1e6), min_size=1, max_size=12),
    capacity=st.floats(10.0, 1e6),
)
def test_bandwidth_conservation(flows, capacity):
    """All flows finish; total time is at least total-bytes/capacity and
    at most what strict serialisation would take."""
    sim = Simulator()
    bw = BandwidthResource(sim, capacity)
    events = [bw.transfer(n) for n in flows]
    sim.run()
    assert all(e.processed and e.ok for e in events)
    total = sum(flows)
    assert sim.now >= total / capacity * (1 - 1e-9)
    assert sim.now <= total / capacity * (1 + 1e-6) + 1e-9


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_rng_streams_deterministic_and_independent(seed):
    a = RngRegistry(seed)
    b = RngRegistry(seed)
    assert a.stream("x").random() == b.stream("x").random()
    c = RngRegistry(seed)
    # Creating another stream first must not perturb "x".
    c.stream("other").random()
    assert c.stream("x").random() == RngRegistry(seed).stream("x").random()


# ------------------------------------------------------------ DES determinism
@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_simulation_deterministic(seed):
    def run_once():
        sim = Simulator()
        rng = RngRegistry(seed).stream("load")
        bw = BandwidthResource(sim, 1000.0)
        trace = []

        def worker(i):
            for _ in range(3):
                yield sim.timeout(float(rng.random()))
                yield bw.transfer(float(rng.integers(1, 500)))
                trace.append((i, sim.now))

        for i in range(4):
            sim.spawn(worker(i))
        sim.run()
        return trace

    assert run_once() == run_once()
