"""Non-blocking Request API (isend/irecv/waitall) on both runtimes."""

import pytest

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.mpi.api import Request
from repro.mpi.runtime import MpiJob
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


def run_mpi(app, nprocs, num_nodes=8, seed=0):
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(num_nodes), RngRegistry(seed))
    job = MpiJob(machine, app, nprocs, charge_init=False)
    return sim.run(until=job.launch())


def test_irecv_before_isend():
    def app(mpi):
        if mpi.rank == 0:
            req = mpi.irecv(1)
            assert not req.done()
            data = yield from req.wait()
            return data
        yield mpi.elapse(0.5)
        yield from Request.waitall([mpi.isend(0, "late")])
        return None

    assert run_mpi(app, 2)[0] == "late"


def test_overlapping_requests_complete_out_of_order():
    def app(mpi):
        if mpi.rank == 0:
            fast = mpi.irecv(1, tag=1)
            slow = mpi.irecv(1, tag=2)
            first = yield from fast.wait()
            second = yield from slow.wait()
            return (first, second)
        yield mpi.isend(0, "one", tag=1).event
        yield mpi.elapse(0.2)
        yield mpi.isend(0, "two", tag=2).event
        return None

    assert run_mpi(app, 2)[0] == ("one", "two")


def test_waitall_many_messages():
    def app(mpi):
        if mpi.rank == 0:
            reqs = [mpi.irecv(src) for src in range(1, mpi.size)]
            got = yield from Request.waitall(reqs)
            return sorted(got)
        yield mpi.isend(0, mpi.rank * 10).event
        return None

    assert run_mpi(app, 4)[0] == [10, 20, 30]


def test_isend_wait_returns_none():
    def app(mpi):
        if mpi.rank == 0:
            result = yield from mpi.isend(1, "x").wait()
            return result
        data = yield from mpi.recv(0)
        return data

    assert run_mpi(app, 2) == [None, "x"]


def test_requests_on_fmi():
    def app(fmi):
        yield from fmi.init()
        if fmi.rank == 0:
            req = fmi.irecv(1)
            data = yield from req.wait()
            yield from fmi.finalize()
            return data
        yield fmi.isend(0, {"v": 7}).event
        yield from fmi.finalize()
        return None

    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(3), RngRegistry(0))
    job = FmiJob(machine, app, num_ranks=2,
                 config=FmiConfig(xor_group_size=2, spare_nodes=0,
                                  checkpoint_enabled=False))
    results = sim.run(until=job.launch())
    assert results[0] == {"v": 7}


def test_done_polling():
    def app(mpi):
        if mpi.rank == 0:
            req = mpi.irecv(1)
            polls = 0
            while not req.done():
                polls += 1
                yield mpi.elapse(0.05)
            data = yield from req.wait()
            return (polls, data)
        yield mpi.elapse(0.3)
        yield mpi.send(0, "polled")
        return None

    polls, data = run_mpi(app, 2)[0]
    assert data == "polled"
    assert polls >= 5
