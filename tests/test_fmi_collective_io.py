"""Resumable collective I/O (§VIII MPI-IO sketch)."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.fmi.collective_io import CollectiveFile
from repro.fmi.payload import Payload
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


def make(num_nodes=10, seed=0):
    sim = Simulator()
    return sim, Machine(sim, SIERRA.with_nodes(num_nodes), RngRegistry(seed))


def test_write_all_and_read_back():
    sim, machine = make()
    stats = {}

    def app(fmi):
        data = Payload.wrap(
            np.random.default_rng(fmi.rank).integers(0, 256, 5000, dtype=np.uint8)
        )
        yield from fmi.init()
        n = yield from fmi.loop([data])
        cio = CollectiveFile(fmi, "outfile", segment_bytes=1000)
        fresh = yield from cio.write_all(data)
        back = yield from cio.read_back()
        stats[fmi.rank] = (fresh, cio.complete)
        yield from fmi.finalize()
        return back.data[:5000].tobytes() == data.tobytes()

    job = FmiJob(machine, app, num_ranks=4, procs_per_node=1,
                 config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=0))
    results = sim.run(until=job.launch())
    assert all(results)
    for fresh, complete in stats.values():
        assert fresh == 5  # 5000 bytes / 1000-byte segments
        assert complete


def test_write_resumes_after_failure():
    """Crash a node mid-write: after recovery the re-executed write
    skips the committed segments and only writes the remainder."""
    sim, machine = make(seed=1)
    attempts = {}

    def app(fmi):
        # Big declared size so each segment takes real simulated time.
        data = Payload.synthetic(2e9, seed=fmi.rank, rep_bytes=4096)
        yield from fmi.init()
        n = yield from fmi.loop([data])
        cio = CollectiveFile(fmi, "bigfile", segment_bytes=100e6)  # 20 segments
        fresh = yield from cio.write_all(data)
        attempts.setdefault(fmi.rank, []).append(fresh)
        yield from fmi.finalize()
        return cio.complete

    job = FmiJob(machine, app, num_ranks=8, procs_per_node=2,
                 config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=1))
    done = job.launch()

    def killer():
        # Strike when the collective write is demonstrably in flight:
        # some segments committed, but nowhere near all 160.
        while True:
            yield sim.timeout(0.02)
            segs = sum(1 for p in machine.pfs.listdir() if "/seg" in p)
            if segs >= 30:
                break
        job.fmirun.node_slots[1].crash("mid-write")

    sim.spawn(killer())
    results = sim.run(until=done)
    assert all(results)
    assert job.recovery_count == 1
    # The interrupted first attempt never records (the exception
    # unwinds before the append), so every recorded entry is the
    # post-recovery attempt: fewer than 20 fresh segments everywhere
    # means committed pre-failure segments were reused -- the write
    # "continued in the middle without starting over" (§VIII).
    assert set(attempts) == set(range(8))
    for rank, a in attempts.items():
        assert a[-1] < 20, f"rank {rank} restarted its write from scratch"
    # Even the replaced node's ranks resumed their predecessors' files.
    replaced = [a[-1] for r, a in attempts.items() if r in (2, 3)]
    assert all(v < 20 for v in replaced)


def test_second_write_all_is_noop():
    sim, machine = make()

    def app(fmi):
        data = Payload.wrap(b"hello world " * 10)
        yield from fmi.init()
        yield from fmi.loop([data])
        cio = CollectiveFile(fmi, "f", segment_bytes=40)
        first = yield from cio.write_all(data)
        second = yield from cio.write_all(data)
        yield from fmi.finalize()
        return (first, second)

    job = FmiJob(machine, app, num_ranks=2, procs_per_node=1,
                 config=FmiConfig(interval=1, xor_group_size=2, spare_nodes=0))
    results = sim.run(until=job.launch())
    for first, second in results:
        assert first == 3  # 120 bytes / 40
        assert second == 0  # already complete


def test_segment_validation():
    sim, machine = make()

    def app(fmi):
        yield from fmi.init()
        with pytest.raises(ValueError):
            CollectiveFile(fmi, "x", segment_bytes=0)
        yield from fmi.finalize()

    job = FmiJob(machine, app, num_ranks=2, procs_per_node=1,
                 config=FmiConfig(xor_group_size=2, spare_nodes=0,
                                  checkpoint_enabled=False))
    sim.run(until=job.launch())


def test_read_back_missing_returns_none():
    sim, machine = make()

    def app(fmi):
        yield from fmi.init()
        cio = CollectiveFile(fmi, "never-written")
        result = yield from cio.read_back()
        yield from fmi.finalize()
        return result

    job = FmiJob(machine, app, num_ranks=2, procs_per_node=1,
                 config=FmiConfig(xor_group_size=2, spare_nodes=0,
                                  checkpoint_enabled=False))
    assert sim.run(until=job.launch()) == [None, None]
