"""Failure-timing sweep: crash a node at many points in the job's
lifetime -- during spawn, H1, H2, the first checkpoint, mid-iteration,
mid-recovery -- and require that every run either completes with the
correct answer or fails with the documented abort.

This is the adversarial schedule test for the recovery state machine:
most historical bugs (interrupts outside the H1 try-block, partial
checkpoints, stale parity) were timing-dependent, so we scan time
densely instead of hand-picking scenarios.
"""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.fmi.errors import FmiAbort
from repro.simt import Simulator
from repro.simt.rng import RngRegistry

NUM_LOOPS = 5
WORK = 0.4


def app(fmi):
    u = np.zeros(4, dtype=np.float64)
    yield from fmi.init()
    while True:
        n = yield from fmi.loop([u])
        if n >= NUM_LOOPS:
            break
        yield fmi.elapse(WORK)
        u[0] = n + 1.0
        u[1] = yield from fmi.allreduce(float(n))
    yield from fmi.finalize()
    return u.copy()


def run_once(kill_times, seed=0, level2=False, victims=(0,)):
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(14), RngRegistry(seed))
    job = FmiJob(
        machine, app, num_ranks=16, procs_per_node=2,
        config=FmiConfig(
            interval=1, xor_group_size=4, spare_nodes=4,
            level2_every=1 if level2 else None,
        ),
    )
    done = job.launch()

    def killer():
        last = 0.0
        for t, victim_slot in kill_times:
            yield sim.timeout(t - last)
            last = t
            node = job.fmirun.node_slots[victim_slot]
            node.crash(f"sweep@{t}")

    if kill_times:
        sim.spawn(killer())
    results = sim.run(until=done, max_events=20_000_000)
    return job, results


# Failure-free wall time is ~3.3 s; sweep the whole window densely.
SWEEP_TIMES = [0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.45, 0.5, 0.6, 0.8,
               1.0, 1.3, 1.7, 2.0, 2.4, 2.8, 3.1]


@pytest.mark.parametrize("t", SWEEP_TIMES)
def test_single_crash_at_any_time_completes(t):
    job, results = run_once([(t, 0)], seed=int(t * 100))
    # Early/mid crashes must trigger a recovery; very late ones may
    # land after completion (the killer then never fires).
    if t <= 2.0:
        assert job.recovery_count >= 1
    for u in results:
        assert u[0] == NUM_LOOPS


@pytest.mark.parametrize("gap", [0.05, 0.3, 0.8, 1.5])
def test_second_crash_during_or_after_recovery(gap):
    """Second failure lands while recovery from the first may still be
    in flight (different XOR blocks: slots 0 and 4)."""
    job, results = run_once([(1.0, 0), (1.0 + gap, 4)], seed=int(gap * 1000))
    assert job.recovery_count >= 1
    for u in results:
        assert u[0] == NUM_LOOPS


@pytest.mark.parametrize("t", [1.1, 1.6, 2.2])
def test_same_block_double_crash_aborts_without_level2(t):
    # After the first checkpoint exists, losing two members of one XOR
    # block exceeds level-1 protection.
    with pytest.raises(FmiAbort):
        run_once([(t, 0), (t + 0.01, 1)], seed=int(t * 10))


def test_same_block_double_crash_before_first_ckpt_cold_starts():
    # Before any checkpoint exists there is nothing to lose: the job
    # cold-starts and still finishes correctly, even without level 2.
    job, results = run_once([(0.3, 0), (0.31, 1)], seed=3)
    for u in results:
        assert u[0] == NUM_LOOPS


@pytest.mark.parametrize("t", [1.1, 1.6, 2.2])
def test_same_block_double_crash_recovers_with_level2(t):
    job, results = run_once([(t, 0), (t + 0.01, 1)], seed=int(t * 10),
                            level2=True)
    assert job.level2_restores >= 1
    for u in results:
        assert u[0] == NUM_LOOPS


def test_crash_storm_three_rounds():
    """Three failures spread across the run, all different blocks."""
    job, results = run_once([(0.8, 0), (2.0, 4), (3.5, 2)], seed=9)
    assert job.recovery_count == 3
    for u in results:
        assert u[0] == NUM_LOOPS


@pytest.mark.parametrize("t", [0.4, 0.7, 1.0, 1.4, 1.9, 2.5, 3.0])
def test_single_crash_with_level2_enabled(t):
    """With level-2 flushing every checkpoint, crashes can land inside
    the PFS-flush barrier window; recovery must still work and the
    answer must be exact."""
    job, results = run_once([(t, 0)], seed=100 + int(t * 10), level2=True)
    for u in results:
        assert u[0] == NUM_LOOPS
    if t <= 2.0:
        assert job.recovery_count >= 1
