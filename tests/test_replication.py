"""The replication recovery plane: unit + end-to-end coverage.

Unit tests drive :class:`~repro.fmi.replication.ReplicationPlane`
against a stub job (lseq stamping, payload-snapshotting mirrors, the
exact-once receive filter).  The end-to-end tests run a killed BSP job
under ``recovery="replicated"`` and require it to land bit-identical on
the failure-free answer *without any rank ever opening a checkpoint
restore* -- failover, not rollback -- plus the graceful fall-back when
both copies of one virtual rank die, and regressions for the recovery
scan's swallowed-failure race.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import bsp_app, expected_bsp_state
from repro.chaos.invariants import check_zero_rollback
from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.fmi.replication import ReplicationPlane
from repro.models.efficiency import (
    replication_efficiency,
    replication_vs_cr_crossover,
    single_level_efficiency,
)
from repro.net.message import Envelope
from repro.obs import Tracer
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


# ------------------------------------------------------------ unit fixtures
class _StubNode:
    alive = True


class _StubCtx:
    """The context surface the plane's data path touches."""

    def __init__(self, addr):
        self.addr = addr
        self.closed = False
        self.node = _StubNode()


class _StubJob:
    def __init__(self, degree=2):
        self.sim = Simulator()
        self.config = FmiConfig(recovery="replicated",
                                replication_degree=degree,
                                spare_nodes=degree - 1)
        self.num_ranks = 4
        self.rank_procs = {}


def _env(src=0, dst=1, tag=0, nbytes=8.0, data=1.0):
    return Envelope(src=src, dst=dst, tag=tag, comm_id=0, epoch=0,
                    nbytes=nbytes, data=data)


def make_plane(degree=2):
    job = _StubJob(degree)
    return job, ReplicationPlane(job)


# ------------------------------------------------------------- lseq stamping
def test_on_send_stamps_per_context_sequences():
    _job, plane = make_plane()
    lead, follower = _StubCtx((0, 0)), _StubCtx((1, 0))
    # Copies of one rank run the same channel schedule, so the two
    # contexts must produce *identical* lseq streams independently.
    for ctx in (lead, follower):
        envs = [_env(src=0, dst=1) for _ in range(3)] + [_env(src=0, dst=2)]
        for e in envs[:3]:
            plane.on_send(0, 1, e, ctx=ctx)
        plane.on_send(0, 2, envs[3], ctx=ctx)
        assert [e.lseq for e in envs] == [(0, 1, 0), (0, 1, 1), (0, 1, 2),
                                          (0, 2, 0)]


# ------------------------------------------------------------------ mirrors
def test_mirror_copies_snapshots_payloads():
    _job, plane = make_plane()
    replica = _StubCtx((1, 0))
    plane.mirrors[(0, 0)] = [replica]
    payload = np.arange(4, dtype=np.float64)
    env = _env(data=payload)
    env.lseq = (0, 1, 7)
    out = plane.mirror_copies((0, 0), env)
    assert len(out) == 1
    addr, menv = out[0]
    assert addr == replica.addr
    assert menv.lseq == env.lseq  # dedup identity is shared...
    assert np.array_equal(menv.data, payload)
    assert menv.data is not payload  # ...but the buffer is not
    assert plane.mirrored == 1


def test_mirror_copies_skips_dead_and_closed_replicas():
    _job, plane = make_plane()
    closed, dead = _StubCtx((1, 0)), _StubCtx((2, 0))
    closed.closed = True
    dead.node = _StubNode()
    dead.node.alive = False
    plane.mirrors[(0, 0)] = [closed, dead]
    assert plane.mirror_copies((0, 0), _env()) == []
    assert plane.mirror_copies((9, 9), _env()) == ()  # no mirror entry


# ------------------------------------------------------------ receive filter
def test_recv_filter_is_exact_once_per_lseq():
    _job, plane = make_plane()
    ctx = _StubCtx((0, 0))
    accept = plane._make_recv_filter(ctx)
    env = _env()
    env.lseq = (0, 1, 0)
    assert accept(env) is True
    assert accept(env) is False  # the mirrored duplicate
    assert plane.dup_suppressed == 1
    nxt = _env()
    nxt.lseq = (0, 1, 1)
    assert accept(nxt) is True


def test_recv_filter_passes_unstamped_and_parks_on_standbys():
    _job, plane = make_plane()
    ctx = _StubCtx((0, 0))
    accept = plane._make_recv_filter(ctx)
    assert accept(_env()) is True  # no lseq: intra-slot / control traffic
    plane.pending[ctx] = []  # now an unsynced standby
    env = _env()
    env.lseq = (0, 1, 0)
    assert accept(env) is False
    assert plane.pending[ctx] == [env]
    assert plane.standby_buffered == 1


# ------------------------------------------------------ config and guards
def test_replicated_config_validation():
    FmiConfig(recovery="replicated", spare_nodes=1)  # valid
    with pytest.raises(ValueError, match="replication_degree must be >= 1"):
        FmiConfig(recovery="replicated", replication_degree=0, spare_nodes=2)
    with pytest.raises(ValueError, match="multilevel"):
        FmiConfig(recovery="replicated", level2_every=2, spare_nodes=1)
    with pytest.raises(ValueError, match="spare_nodes"):
        FmiConfig(recovery="replicated", replication_degree=3, spare_nodes=1)


# ------------------------------------------------------------ model layer
def test_replication_efficiency_degenerates_to_plain_cr_at_degree_one():
    e1 = replication_efficiency(1, mtbf=1e5, n_nodes=100)
    assert e1 == single_level_efficiency(10.0, 1e5 / 100, 10.0)


def test_replication_wins_on_failure_dense_machines_only():
    # Reliable machine: C/R approaches 1, replication can never beat 1/2.
    assert (replication_efficiency(2, mtbf=1e8, n_nodes=100)
            < single_level_efficiency(10.0, 1e8 / 100, 10.0))
    # Failure-dense machine: C/R's renewal term collapses first.
    assert (replication_efficiency(2, mtbf=2e4, n_nodes=10_000)
            > single_level_efficiency(10.0, 2e4 / 10_000, 10.0))


def test_replication_model_validation():
    with pytest.raises(ValueError, match="degree"):
        replication_efficiency(0, mtbf=1e5, n_nodes=10)
    with pytest.raises(ValueError, match="mtbf"):
        replication_efficiency(2, mtbf=0.0, n_nodes=10)
    with pytest.raises(ValueError, match="rearm_window"):
        replication_efficiency(2, mtbf=1e5, n_nodes=10, rearm_window=0.0)
    with pytest.raises(ValueError, match="finite"):
        replication_efficiency(2, mtbf=math.nan, n_nodes=10)
    with pytest.raises(ValueError, match="finite"):
        replication_efficiency(2, mtbf=math.inf, n_nodes=10)


@settings(max_examples=40, deadline=None)
@given(
    degree=st.integers(min_value=1, max_value=4),
    mtbf=st.floats(min_value=1e-3, max_value=1e12),
    n_nodes=st.integers(min_value=1, max_value=10**6),
)
def test_replication_efficiency_is_a_proper_fraction(degree, mtbf, n_nodes):
    e = replication_efficiency(degree, mtbf, n_nodes)
    assert 0.0 <= e <= 1.0
    assert math.isfinite(e)


def test_crossover_mtbf_grows_with_job_size():
    xs = [replication_vs_cr_crossover(n) for n in (50, 1000, 100_000)]
    assert xs == sorted(xs)
    assert all(x > 0 for x in xs)


def test_crossover_rejects_jobs_too_small_to_cross():
    with pytest.raises(ValueError, match="no replication-vs-C/R crossover"):
        replication_vs_cr_crossover(10)


# --------------------------------------------------------------- end to end
ITERS = 6


def run_bsp(recovery, kills=(), seed=0, trace=False):
    """``kills`` is a list of (node_id, time) crashes.  The replicated
    geometry doubles the rank tier: 4 virtual slots live on nodes 0-3
    (copy 0) and 4-7 (copy 1), with spares behind them."""
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(12), RngRegistry(seed))
    tracer = Tracer(sim) if trace else None
    job = FmiJob(
        machine, bsp_app(ITERS, work_s=0.25), num_ranks=8, procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, recovery=recovery,
                         spare_nodes=2),
    )
    done = job.launch()
    for node, t in kills:
        def killer(node=node, t=t):
            yield sim.timeout(t)
            machine.node(node).crash("injected")
        sim.spawn(killer())
    results = sim.run(until=done)
    return job, tracer, results


def _assert_failure_free_answer(results):
    assert len(results) == 8
    for rank, u in enumerate(results):
        assert np.array_equal(u, expected_bsp_state(rank, 8, ITERS))


def test_replicated_matches_global_and_failure_free_bitwise():
    _j0, _t, clean = run_bsp("replicated")
    _j1, _t, failover = run_bsp("replicated", kills=[(1, 1.6)])
    _j2, _t, global_ = run_bsp("global", kills=[(1, 1.6)])
    for results in (clean, failover, global_):
        _assert_failure_free_answer(results)


def test_failover_never_touches_checkpoint_restore():
    job, tracer, results = run_bsp("replicated", kills=[(1, 1.6)], trace=True)
    _assert_failure_free_answer(results)
    names = [ev.name for ev in tracer.events]
    # Node 1 hosted the copy-0 leads of ranks 2 and 3: both promote in
    # place, nobody restores, and fresh replicas register to re-arm
    # from the lead's channel snapshot -- not from stable storage.
    assert names.count("ckpt.restore.begin") == 0
    assert names.count("repl.promote") == 2
    assert names.count("repl.standby.register") == 2
    assert job.restores_done == 0
    plane = job.recovery_plane
    assert plane.promotions == 2
    assert plane.fallbacks == 0
    assert plane.mirrored > 0
    assert check_zero_rollback(tracer) == []
    # The paper's headline: failover beats the logged plane's measured
    # 0.455 s recovery by construction.
    latency = job.recovery_latency(1)
    assert latency is not None and latency < 0.455


def test_early_kill_rearms_replicas_from_the_lead_snapshot():
    # An early kill leaves time for the full re-arm cycle: the fresh
    # copies sync from the promoted lead's in-memory channel snapshot.
    # ``restores_done`` counts those state *transfers* -- the stable
    # storage restore path (``ckpt.restore.begin``) still never runs.
    job, tracer, results = run_bsp("replicated", kills=[(0, 1.0)], trace=True)
    _assert_failure_free_answer(results)
    names = [ev.name for ev in tracer.events]
    assert names.count("ckpt.restore.begin") == 0
    assert names.count("repl.standby.sync") == 2
    plane = job.recovery_plane
    assert plane.promotions == 2
    assert plane.standby_syncs == 2
    assert plane.fallbacks == 0
    assert check_zero_rollback(tracer) == []


def test_replica_tier_kill_rearms_without_promotion():
    # Node 5 hosts copy-1 *replicas*: survivors never see an unwind and
    # no promotion happens -- just a background re-arm.
    job, tracer, results = run_bsp("replicated", kills=[(5, 1.6)], trace=True)
    _assert_failure_free_answer(results)
    plane = job.recovery_plane
    assert plane.promotions == 0
    assert plane.fallbacks == 0
    assert plane.replica_losses >= 1
    assert job.restores_done == 0
    names = [ev.name for ev in tracer.events]
    assert names.count("ckpt.restore.begin") == 0
    assert names.count("repl.standby.register") == 2
    assert check_zero_rollback(tracer) == []


def test_kill_both_copies_falls_back_to_coordinated_restore():
    # Nodes 1 and 5 are the two copies of virtual slot 1.  With a gap
    # larger than the re-arm window's start but before the sync
    # completes, no synced copy of ranks 2/3 remains: the plane must
    # fall back to the global restore -- gracefully, not wrongly.
    job, tracer, results = run_bsp(
        "replicated", kills=[(1, 1.6), (5, 1.65)], trace=True)
    _assert_failure_free_answer(results)
    names = [ev.name for ev in tracer.events]
    plane = job.recovery_plane
    assert plane.fallbacks == 1
    assert names.count("repl.fallback") == 1
    assert names.count("ckpt.restore.begin") > 0
    # Every restore happened *after* the fallback opened.
    assert check_zero_rollback(tracer) == []


def test_recovery_scan_reports_discovered_failures():
    # Regression: the second kill lands exactly one proc_spawn_latency
    # (0.02 s) after the first, so the recovery scan wakes from its
    # spawn timeout in the same instant the second guard exit is queued
    # behind it.  The scan used to shut the broken task down first,
    # which suppressed the queued failure report forever -- the job
    # deadlocked with a half-promoted, never-recovered slot.
    job, _tracer, results = run_bsp(
        "replicated", kills=[(1, 1.6), (5, 1.62)])
    _assert_failure_free_answer(results)
    assert job.epoch == 2  # both deaths opened their own epoch


@settings(max_examples=6, deadline=None)
@given(
    kill_time=st.floats(min_value=0.9, max_value=2.4),
    kill_node=st.integers(min_value=0, max_value=7),
)
def test_replicated_answer_is_failure_free_for_any_single_kill(
        kill_time, kill_node):
    # Any single physical-node kill -- lead tier or replica tier, at
    # any point of the run -- must land on the failure-free answer with
    # zero checkpoint restores from stable storage.
    job, tracer, results = run_bsp(
        "replicated", kills=[(kill_node, kill_time)], trace=True)
    _assert_failure_free_answer(results)
    names = [ev.name for ev in tracer.events]
    assert names.count("ckpt.restore.begin") == 0
    assert job.recovery_plane.fallbacks == 0
    assert check_zero_rollback(tracer) == []
