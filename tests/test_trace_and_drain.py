"""Failure-trace replay and graceful node drain (dynamic leave)."""

import numpy as np
import pytest

from repro.apps.synthetic import bsp_app, expected_bsp_state
from repro.cluster import Machine, TraceInjector
from repro.cluster.failures import FailureInjector, TSUBAME2_FAILURE_TYPES
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


def make(num_nodes, seed=0):
    sim = Simulator()
    return sim, Machine(sim, SIERRA.with_nodes(num_nodes), RngRegistry(seed))


# ------------------------------------------------------------- trace replay
def test_trace_injector_fires_at_exact_times():
    sim, machine = make(8)
    killed = []
    inj = TraceInjector(
        sim, [(2.0, [3]), (5.5, [1, 2])],
        kill=lambda nodes: killed.append((sim.now, nodes)),
    )
    inj.start()
    sim.run()
    assert killed == [(2.0, [3]), (5.5, [1, 2])]
    assert inj.replayed == killed


def test_trace_injector_unsorted_input_sorted():
    sim, machine = make(4)
    killed = []
    inj = TraceInjector(
        sim, [(3.0, [0]), (1.0, [1])], kill=lambda n: killed.append(sim.now)
    )
    inj.start()
    sim.run()
    assert killed == [1.0, 3.0]


def test_trace_injector_stop_halts_replay():
    sim, machine = make(4)
    killed = []
    inj = TraceInjector(
        sim, [(1.0, [0]), (10.0, [1])], kill=lambda n: killed.append(sim.now)
    )
    inj.start()

    def stopper():
        yield sim.timeout(2.0)
        inj.stop()

    sim.spawn(stopper())
    sim.run()
    assert killed == [1.0]


def test_trace_from_poisson_records_replays_identically():
    # Record a Poisson trace, then replay it: the kill schedule must
    # reproduce the recorded one exactly.
    sim1 = Simulator()
    rec = FailureInjector(
        sim1, RngRegistry(5).stream("r"), TSUBAME2_FAILURE_TYPES[:1], num_nodes=64
    )
    rec.start()
    sim1.run(until=3e6)
    rec.stop()
    assert rec.records

    sim2 = Simulator()
    hits = []
    replay = TraceInjector.from_records(
        sim2, rec.records, kill=lambda nodes: hits.append((sim2.now, tuple(nodes)))
    )
    replay.start()
    sim2.run()
    assert hits == [(r.time, tuple(r.nodes)) for r in rec.records]


def test_same_trace_two_configurations():
    """The point of replay: one failure schedule, two runtime configs,
    comparable outcomes."""
    schedule = [(2.0, 1), (4.5, 5)]

    def run(group_size, seed):
        sim, machine = make(16, seed=seed)
        iters = 12
        job = FmiJob(
            machine, bsp_app(iters, work_s=0.4), num_ranks=16, procs_per_node=2,
            config=FmiConfig(interval=1, xor_group_size=group_size,
                             spare_nodes=3),
        )
        done = job.launch()
        inj = TraceInjector(
            sim, [(t, [slot]) for t, slot in schedule],
            kill=lambda slots: job.fmirun.node_slots[slots[0]].crash("trace"),
        )
        inj.start()
        done.callbacks.append(lambda _e: inj.stop())
        results = sim.run(until=done)
        return job, results, sim.now

    job_a, res_a, wall_a = run(group_size=4, seed=1)
    job_b, res_b, wall_b = run(group_size=8, seed=2)
    assert job_a.recovery_count == job_b.recovery_count == 2
    for rank in range(16):
        assert np.allclose(res_a[rank], expected_bsp_state(rank, 16, 12))
        assert np.allclose(res_b[rank], res_a[rank])


# ---------------------------------------------------------------- drain
def drain_setup(seed=0):
    sim, machine = make(12, seed=seed)
    job = FmiJob(
        machine, bsp_app(8, work_s=0.4), num_ranks=16, procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=1),
    )
    done = job.launch()
    return sim, machine, job, done


def test_drain_migrates_ranks_and_completes():
    sim, machine, job, done = drain_setup()
    drained_node = {}

    def drainer():
        yield sim.timeout(1.5)
        drained_node["node"] = job.fmirun.node_slots[2]
        job.fmirun.drain_slot(2)

    sim.spawn(drainer())
    results = sim.run(until=done)
    for rank in range(16):
        assert np.allclose(results[rank], expected_bsp_state(rank, 16, 8))
    # The slot's ranks now live elsewhere; the drained node is healthy.
    node = drained_node["node"]
    assert node.alive
    assert job.rank_procs[4].node is not node
    assert job.rank_procs[4].incarnation == 1
    assert job.recovery_count == 1


def test_drained_node_returns_to_pool():
    sim, machine, job, done = drain_setup(seed=1)
    before = machine.rm.idle_count
    sampled = {}

    def drainer():
        yield sim.timeout(1.5)
        job.fmirun.drain_slot(0)
        yield sim.timeout(1.5)  # after the swap, before the job ends
        sampled["mid"] = machine.rm.idle_count

    sim.spawn(drainer())
    sim.run(until=done)
    # Mid-run: the job's pre-reserved spare covered the slot, and the
    # healthy drained node came back to the pool: net +1 idle.
    assert sampled["mid"] == before + 1


def test_drain_validations():
    sim, machine, job, done = drain_setup(seed=2)

    def driver():
        yield sim.timeout(1.0)
        job.fmirun.node_slots[3].crash("dead first")
        yield sim.timeout(0.05)
        with pytest.raises(RuntimeError):
            job.fmirun.drain_slot(3)  # already failed

    sim.spawn(driver())
    sim.run(until=done)
    with pytest.raises(RuntimeError):
        job.fmirun.drain_slot(0)  # job finished
