"""Log-ring detector behaviour and the interval policy."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.fmi.config import FmiConfig as Cfg
from repro.fmi.interval import IntervalPolicy
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


# --------------------------------------------------------------- detector
def launch_idle(nranks=24, ppn=2, num_nodes=None, seed=0, iters=100, step=0.5):
    sim = Simulator()
    machine = Machine(
        sim, SIERRA.with_nodes(num_nodes or nranks // ppn + 1), RngRegistry(seed)
    )

    def app(fmi):
        u = np.zeros(1)
        yield from fmi.init()
        while True:
            n = yield from fmi.loop([u])
            if n >= iters:
                break
            yield fmi.elapse(step)
        yield from fmi.finalize()

    job = FmiJob(machine, app, num_ranks=nranks, procs_per_node=ppn,
                 config=FmiConfig(interval=10**9, xor_group_size=4,
                                  spare_nodes=1))
    job.launch()
    return sim, machine, job


def test_detector_overlay_connection_count():
    sim, machine, job = launch_idle()
    sim.run(until=2.0)
    # Every rank joined epoch 0; the undirected log-ring for n=24 has
    # sum(log2-ish connections)/1 edges, each counted once.
    total_edges = job.detector.cm.open_connections
    from repro.net.overlay import establishment_connections

    assert total_edges == establishment_connections(24, k=2)


def test_detector_notification_reaches_all_survivors_once():
    sim, machine, job = launch_idle()
    sim.run(until=2.0)
    job.fmirun.node_slots[3].crash("det-test")
    sim.run(until=4.0)
    notes = [(r, t) for r, t, g in job.detector.notifications if g == 1]
    survivor_ranks = {r for r, _ in notes}
    dead = set(job.ranks_of_slot(3))
    assert survivor_ranks == set(range(24)) - dead
    # Exactly once each.
    assert len(notes) == len(survivor_ranks)
    # All within the ibverbs constant + the hop bound window.
    net = machine.spec.network
    for _r, t in notes:
        assert 2.0 + net.ibverbs_close_delay <= t <= 2.0 + 0.45


def test_detector_rebuilds_overlay_per_epoch():
    sim, machine, job = launch_idle()
    sim.run(until=2.0)
    before = job.detector.cm.open_connections
    job.fmirun.node_slots[0].crash("epoch-test")
    sim.run(until=10.0)
    # After recovery the epoch-1 overlay is complete again.
    assert job.epoch == 1
    assert job.detector.cm.open_connections == before


def test_detector_leave_on_finish():
    sim, machine, job = launch_idle(iters=2, step=0.1)
    sim.run()
    assert job.finished
    # All ranks left the overlay at finalize.
    assert job.detector.cm.open_connections == 0


def test_process_death_without_node_death_detected():
    sim, machine, job = launch_idle()
    sim.run(until=2.0)
    victim = job.rank_procs[5]
    victim.proc.kill(cause="lone process death")
    sim.run(until=6.0)
    # fmirun.task killed the sibling, the spare node took over, and the
    # job kept going.
    assert job.epoch == 1
    assert job.rank_procs[5].incarnation == 1
    assert job.rank_procs[4].incarnation == 1  # sibling on the same node


def _closed_conns(detector):
    return [
        (rank, conn)
        for rank, conns in detector._conns.items()
        for conn in conns
        if not conn.open
    ]


def test_detector_join_unlinks_old_edges_from_peers():
    # Regression: teardown paths (join/leave/process_died) popped the
    # acting rank's *own* list but left the closed Connection objects
    # in every peer's list until the peer happened to rejoin, so the
    # table carried corpses for the whole detection/recovery window.
    sim, machine, job = launch_idle()
    sim.run(until=2.0)
    det = job.detector
    old = list(det._conns[0])
    assert old  # rank 0 is wired into the epoch-0 overlay
    det.join(job.rank_procs[0], epoch=1)  # rejoins ahead of everyone
    for conn in old:
        assert not conn.open
        for conns in det._conns.values():
            assert conn not in conns


def test_detector_prunes_closed_conns_after_node_death():
    # Edges between two ranks on the same dead node never raise a
    # disconnect event on either side; the node-death purge must drop
    # them without waiting for the replacement to rejoin.
    sim, machine, job = launch_idle()
    sim.run(until=2.0)
    job.fmirun.node_slots[2].crash("prune-test")
    sim.run(until=2.3)  # past the ibverbs close delay, recovery underway
    dead_ranks = set(job.ranks_of_slot(2))
    stale = [(r, c) for r, c in _closed_conns(job.detector)
             if r in dead_ranks]
    assert stale == []
    sim.run(until=6.0)
    assert job.epoch == 1
    assert _closed_conns(job.detector) == []


# ------------------------------------------------------------ interval policy
def test_policy_first_call_always_checkpoints():
    p = IntervalPolicy(Cfg(interval=5, xor_group_size=2))
    assert p.should_checkpoint(now=0.0)


def test_policy_interval_counts_calls():
    p = IntervalPolicy(Cfg(interval=3, xor_group_size=2))
    assert p.should_checkpoint(0.0)
    p.record_checkpoint(0.0, cost=0.1)
    assert not p.should_checkpoint(1.0)
    assert not p.should_checkpoint(2.0)
    assert p.should_checkpoint(3.0)  # third call since the checkpoint


def test_policy_mtbf_mode_uses_vaidya():
    p = IntervalPolicy(Cfg(mtbf_seconds=60.0, xor_group_size=2))
    assert p.should_checkpoint(0.0)
    p.record_checkpoint(0.0, cost=0.5)
    from repro.models.vaidya import optimal_interval

    expected = optimal_interval(0.5, 60.0)
    assert p.time_interval == pytest.approx(expected)
    assert not p.should_checkpoint(expected * 0.5)
    assert p.should_checkpoint(expected * 1.01)


def test_policy_mtbf_retunes_on_new_cost():
    p = IntervalPolicy(Cfg(mtbf_seconds=60.0, xor_group_size=2))
    p.record_checkpoint(0.0, cost=0.1)
    t1 = p.time_interval
    p.record_checkpoint(10.0, cost=1.0)
    assert p.time_interval > t1  # costlier checkpoints -> longer interval


def test_policy_reset_after_recovery():
    p = IntervalPolicy(Cfg(interval=2, xor_group_size=2))
    p.record_checkpoint(0.0, cost=0.1)
    assert not p.should_checkpoint(1.0)
    p.reset_after_recovery(5.0)
    assert not p.should_checkpoint(6.0)  # counter restarted
    assert p.should_checkpoint(7.0)


def test_policy_disabled():
    p = IntervalPolicy(Cfg(interval=1, xor_group_size=2, checkpoint_enabled=False))
    assert not p.should_checkpoint(0.0)
    assert not p.should_checkpoint(100.0)


def test_policy_neither_knob_means_first_only():
    p = IntervalPolicy(Cfg(xor_group_size=2))
    assert p.should_checkpoint(0.0)
    p.record_checkpoint(0.0, cost=0.5)
    for t in (1.0, 100.0, 1e6):
        assert not p.should_checkpoint(t)
