"""The message-logging recovery plane: unit + end-to-end coverage.

Unit tests drive :class:`~repro.fmi.msglog.RecoveryPlane` against a
stub job (channel sequencing, exact-once filter, GC, rewind).  The
end-to-end tests run the same killed BSP job under ``recovery="logged"``
and ``recovery="global"`` and require both to land bit-identical on the
failure-free answer -- with the logged run's survivors never touching
checkpoint restore.
"""

import numpy as np
import pytest

from repro.apps.synthetic import bsp_app, expected_bsp_state
from repro.chaos.invariants import check_no_orphans
from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.fmi.config import check_recovery_mode
from repro.fmi.msglog import RecoveryPlane
from repro.mpi.scr import Scr
from repro.net.matching import ANY_SOURCE, ANY_TAG, MatchingEngine
from repro.net.message import Envelope
from repro.obs import Tracer
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


# ------------------------------------------------------------ unit fixtures
class _StubJob:
    """The minimal job surface RecoveryPlane reads: slot geometry,
    liveness, and a simulator."""

    def __init__(self, num_ranks=4, ppn=1):
        self.sim = Simulator()
        self.num_ranks = num_ranks
        self.ppn = ppn
        self.finished_ranks = set()
        self.epoch = 0

    def slot_of_rank(self, rank):
        return rank // self.ppn


def _env(src=0, dst=1, tag=0, nbytes=8.0, data=1.0, comm_id=0):
    return Envelope(src=src, dst=dst, tag=tag, comm_id=comm_id, epoch=0,
                    nbytes=nbytes, data=data)


def make_plane(num_ranks=4, ppn=1):
    job = _StubJob(num_ranks, ppn)
    return job, RecoveryPlane(job)


# ------------------------------------------------------------- send logging
def test_on_send_stamps_per_channel_sequence():
    _job, plane = make_plane()
    envs = [_env(src=0, dst=1) for _ in range(3)] + [_env(src=0, dst=2)]
    for e in envs[:3]:
        plane.on_send(0, 1, e)
    plane.on_send(0, 2, envs[3])
    assert [e.lseq for e in envs] == [(0, 1, 0), (0, 1, 1), (0, 1, 2),
                                      (0, 2, 0)]


def test_same_slot_sends_are_stamped_but_not_logged():
    _job, plane = make_plane(num_ranks=4, ppn=2)  # slots {0,1} {2,3}
    intra, cross = _env(src=0, dst=1), _env(src=0, dst=2)
    plane.on_send(0, 1, intra)
    plane.on_send(0, 2, cross)
    assert intra.lseq == (0, 1, 0) and cross.lseq == (0, 2, 0)
    assert plane.log_entries == 1
    assert [e.dst for e in plane.logs[0]] == [2]


def test_accept_is_exact_once_per_lseq():
    _job, plane = make_plane()
    env = _env(src=0, dst=1)
    plane.on_send(0, 1, env)
    assert plane.accept(env) is True
    assert plane.accept(env) is False  # the duplicate re-send
    assert plane.dup_suppressed == 1
    # A later message on the same channel still gets through.
    nxt = _env(src=0, dst=1)
    plane.on_send(0, 1, nxt)
    assert plane.accept(nxt) is True


# ------------------------------------------------------- GC and checkpoints
def test_gc_waits_for_every_live_rank():
    _job, plane = make_plane()
    plane.on_send(0, 1, _env(src=0, dst=1))
    # Only rank 0 has checkpointed: the stable floor is undefined.
    plane.note_rank_checkpoint(0, 0)
    assert plane.live_entries == 1 and plane.gc_entries == 0


def test_gc_drops_entries_behind_the_stable_floor():
    _job, plane = make_plane()
    for r in range(4):
        plane.note_rank_checkpoint(r, 0)
    plane.on_send(0, 1, _env(src=0, dst=1))  # stamped ckpt_tag=0
    for r in range(4):
        plane.note_rank_checkpoint(r, 1)
    # KEEP=2 retains {0,1}: the floor is still 0, nothing dropped.
    assert plane.live_entries == 1
    for r in range(4):
        plane.note_rank_checkpoint(r, 2)
    # Retained window is now {1,2}: the entry (ckpt_tag=0) is dead.
    assert plane.live_entries == 0
    assert plane.gc_entries == 1
    assert plane.logs[0] == []


def test_snapshot_window_matches_checkpoint_retention():
    _job, plane = make_plane()
    for ds in range(4):
        plane.note_rank_checkpoint(0, ds)
    assert (0, 0) not in plane.snapshots and (0, 1) not in plane.snapshots
    assert (0, 2) in plane.snapshots and (0, 3) in plane.snapshots


# ------------------------------------------------------------------ rewind
def test_rewind_restores_counters_consumed_and_log_tail():
    _job, plane = make_plane()
    sink = plane.make_sink(1)
    first = _env(src=0, dst=1)
    plane.on_send(0, 1, first)          # (0,1,0)
    plane.on_send(1, 2, _env(src=1, dst=2))  # rank 1's own send, n=0
    sink(0, 0, first)                   # rank 1 consumed (0, 0)
    plane.note_rank_checkpoint(1, 0)    # snapshot: counters {2:1}
    plane.on_send(1, 2, _env(src=1, dst=2))  # post-snapshot send, n=1
    later = _env(src=0, dst=1)
    plane.on_send(0, 1, later)
    sink(0, 0, later)                   # post-snapshot consumption
    plane._rewind(1, 0)
    assert plane.send_seq[(1, 2)] == 1          # counter rolled back
    assert plane.consumed[1] == {(0, 0)}        # snapshot consumption
    assert plane.seen[1] == {(0, 0)}            # delivery filter rebased
    assert [e.n for e in plane.logs[1]] == [0]  # n=1 entry truncated
    # The re-execution regenerates the truncated send with the same lseq.
    redo = _env(src=1, dst=2)
    plane.on_send(1, 2, redo)
    assert redo.lseq == (1, 2, 1)


def test_rewind_purges_the_live_matching_queue():
    job, plane = make_plane()
    matching = MatchingEngine(job.sim)
    env = _env(src=0, dst=1)
    plane.on_send(0, 1, env)
    assert plane.accept(env)
    matching.deliver(env)  # sits unexpected in the new incarnation
    plane._rewind(1, None, matching)
    # The queued copy is gone and its lseq erased from ``seen``: the
    # replay is now the unique source of that logical message.
    assert matching._unexpected_live == 0
    assert plane.seen[1] == set()
    assert plane.accept(env) is True


# ------------------------------------------------------------- determinants
def test_sink_records_only_wildcard_matches():
    _job, plane = make_plane()
    sink = plane.make_sink(1)
    exact, wild = _env(src=0, dst=1), _env(src=2, dst=1, tag=7)
    plane.on_send(0, 1, exact)
    plane.on_send(2, 1, wild)
    sink(0, 0, exact)              # exact post: consumption only
    sink(ANY_SOURCE, 7, wild)      # wildcard post: determinant too
    assert plane.consumed[1] == {(0, 0), (2, 0)}
    assert plane.det_recorded == 1
    det = plane.determinants[1][0]
    assert (det.env_src, det.env_tag, det.lseq) == (2, 7, (2, 1, 0))


def test_next_determinant_replays_in_order_then_stops():
    _job, plane = make_plane()
    sink = plane.make_sink(1)
    for src in (3, 2):
        env = _env(src=src, dst=1, tag=7)
        plane.on_send(src, 1, env)
        sink(ANY_SOURCE, 7, env)
    plane.det_limit[1] = 2  # as _rewind sets: replay up to the death point
    plane.det_cursor[1] = 0
    assert plane.next_determinant(1, ANY_SOURCE, 7, 0).env_src == 3
    assert plane.next_determinant(1, ANY_SOURCE, 7, 0).env_src == 2
    assert plane.next_determinant(1, ANY_SOURCE, 7, 0) is None


def test_next_determinant_mismatch_degrades_to_free_order():
    _job, plane = make_plane()
    sink = plane.make_sink(1)
    env = _env(src=3, dst=1, tag=7)
    plane.on_send(3, 1, env)
    sink(ANY_SOURCE, 7, env)
    plane.det_limit[1] = 1
    plane.det_cursor[1] = 0
    # Re-execution posts a different pattern than recorded: no rewrite,
    # and the cursor jumps to the stop line so replay stays free-order.
    assert plane.next_determinant(1, ANY_SOURCE, ANY_TAG, 0) is None
    assert plane.det_mismatches == 1
    assert plane.next_determinant(1, ANY_SOURCE, 7, 0) is None


# ------------------------------------------------------ config and guards
def test_recovery_mode_validation():
    with pytest.raises(ValueError, match="unknown recovery mode"):
        check_recovery_mode("bogus")
    with pytest.raises(ValueError, match="unknown recovery mode"):
        FmiConfig(recovery="bogus")
    with pytest.raises(ValueError, match="multilevel"):
        FmiConfig(recovery="logged", level2_every=2)
    FmiConfig(recovery="logged")  # valid


def test_scr_rejects_logged_recovery():
    with pytest.raises(ValueError, match="fail-stop"):
        Scr(None, procs_per_node=1, recovery="logged")


# --------------------------------------------------------- orphan invariant
class _FakeEvent:
    def __init__(self, name, rank=0, ts=0.0, args=()):
        self.name = name
        self.rank = rank
        self.ts = ts
        self.args = dict(args)


class _FakeTracer:
    def __init__(self, events):
        self.events = events


def test_orphan_checker_flags_unrelogged_delivery():
    ev = [
        _FakeEvent("mlog.log", rank=1, ts=1.0, args={"dst": 0, "n": 5}),
        _FakeEvent("net.recv", ts=1.1, args={"lseq": [1, 0, 5]}),
        _FakeEvent("mlog.rewind", rank=1, ts=2.0,
                   args={"counters": {"0": 5}}),
    ]
    violations = check_no_orphans(_FakeTracer(ev))
    assert len(violations) == 1
    assert "never re-logged" in violations[0].detail
    # Re-executing the send after the rewind discharges the obligation.
    ev.append(_FakeEvent("mlog.log", rank=1, ts=2.5,
                         args={"dst": 0, "n": 5}))
    assert check_no_orphans(_FakeTracer(ev)) == []


def test_orphan_checker_ignores_messages_that_survive_the_rewind():
    ev = [
        _FakeEvent("mlog.log", rank=1, ts=1.0, args={"dst": 0, "n": 5}),
        _FakeEvent("net.recv", ts=1.1, args={"lseq": [1, 0, 5]}),
        # Counter 6 > n=5: the rewind kept the entry, no re-log needed.
        _FakeEvent("mlog.rewind", rank=1, ts=2.0,
                   args={"counters": {"0": 6}}),
    ]
    assert check_no_orphans(_FakeTracer(ev)) == []
    assert check_no_orphans(_FakeTracer([])) == []


# --------------------------------------------------------------- end to end
ITERS = 6


def run_bsp(recovery, kill_node=None, kill_time=1.6, seed=0, trace=False):
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(6), RngRegistry(seed))
    tracer = Tracer(sim) if trace else None
    job = FmiJob(
        machine, bsp_app(ITERS, work_s=0.25), num_ranks=8, procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, recovery=recovery),
    )
    done = job.launch()
    if kill_node is not None:
        def killer():
            yield sim.timeout(kill_time)
            machine.node(kill_node).crash("injected")
        sim.spawn(killer())
    results = sim.run(until=done)
    return job, tracer, results


def test_logged_recovery_matches_global_and_failure_free_bitwise():
    _j0, _t, clean = run_bsp("global")
    _j1, _t, logged = run_bsp("logged", kill_node=1)
    _j2, _t, global_ = run_bsp("global", kill_node=1)
    assert len(clean) == len(logged) == len(global_) == 8
    for rank, (c, l, g) in enumerate(zip(clean, logged, global_)):
        expect = expected_bsp_state(rank, 8, ITERS)
        assert np.array_equal(c, expect)
        assert np.array_equal(l, expect)
        assert np.array_equal(g, expect)


def test_logged_survivors_never_restore():
    job, tracer, results = run_bsp("logged", kill_node=1, trace=True)
    names = [ev.name for ev in tracer.events]
    # Only the killed slot's two ranks restore, through the plane --
    # the global checkpoint-restore path never runs.
    assert names.count("mlog.restore.begin") == 2
    assert names.count("ckpt.restore.begin") == 0
    assert job.restores_done == 2
    plane = job.recovery_plane
    assert plane.partial_restores == 2
    assert plane.replayed_msgs > 0
    # Survivors kept their original incarnation throughout.
    for rank in (0, 1, 4, 5, 6, 7):
        assert job.rank_procs[rank].incarnation == 0
    for rank in (2, 3):
        assert job.rank_procs[rank].incarnation == 1
    assert check_no_orphans(tracer) == []


def test_global_mode_attaches_no_plane():
    job, _tracer, _results = run_bsp("global")
    assert job.recovery_plane is None
    assert job.transport.recovery_filter is None


# ------------------------------------------------- wildcard replay ordering
def wildcard_app(rounds):
    """Rank 0 drains its peers through ANY_SOURCE receives, spaced in
    time so a kill can land *between* two matches of one drain.  The
    accumulated sum is order-insensitive (exact in float64), so it must
    come out bit-identical to the failure-free run iff every logical
    message is consumed exactly once across the rollback; match *order*
    correctness is asserted through the determinant machinery."""

    def app(api):
        u = np.zeros(2, dtype=np.float64)
        yield from api.init()
        while True:
            n = yield from api.loop([u])
            if n >= rounds:
                break
            yield api.elapse(0.2)
            if api.rank == 0:
                for _ in range(api.size - 1):
                    yield api.elapse(0.01)
                    val = yield from api.recv(source=ANY_SOURCE, tag=7)
                    u[1] += val
            else:
                yield api.send(0, float(api.rank * 10 + n), tag=7)
            yield from api.barrier()
            u[0] = n + 1.0
        yield from api.finalize()
        return u.copy()

    return app


def run_wildcard(recovery, kill_after_dets=None, rounds=5):
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(6), RngRegistry(0))
    job = FmiJob(
        machine, wildcard_app(rounds), num_ranks=8, procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, recovery=recovery),
    )
    done = job.launch()
    if kill_after_dets is not None:
        plane = job.recovery_plane

        def killer():
            # Land the crash mid-drain: right after the kill_after_dets-th
            # wildcard match is recorded, with the drain still unfinished.
            while plane.det_recorded < kill_after_dets:
                yield sim.timeout(0.005)
            machine.node(0).crash("injected")

        sim.spawn(killer())
    results = sim.run(until=done)
    return job, results


def test_determinants_reproduce_wildcard_match_order():
    _j, clean = run_wildcard("logged")
    # Kill rank 0's own slot three matches into an ANY_SOURCE drain:
    # its re-execution re-posts those wildcards and the plane rewrites
    # them to the recorded sources, in the recorded order.
    job, killed = run_wildcard("logged", kill_after_dets=7 * 2 + 3)
    plane = job.recovery_plane
    assert plane.det_recorded > 0
    # The death point sat mid-drain, so the rewind left a non-empty
    # recorded window (cursor at the checkpoint's drain boundary, limit
    # mid-drain) and every rewritten post matched its recorded message.
    assert plane.det_limit[0] % 7 != 0
    assert plane.det_cursor[0] == plane.det_limit[0]
    assert plane.det_mismatches == 0
    assert len(clean) == len(killed) == 8
    for c, k in zip(clean, killed):
        assert np.array_equal(c, k)


# ----------------------------------------------------------- property test
from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=6, deadline=None)
@given(
    kill_time=st.floats(min_value=0.9, max_value=2.4),
    kill_node=st.integers(min_value=0, max_value=3),
)
def test_logged_answer_is_failure_free_for_any_single_kill(
        kill_time, kill_node):
    _job, _tracer, results = run_bsp(
        "logged", kill_node=kill_node, kill_time=kill_time,
    )
    assert len(results) == 8
    for rank, u in enumerate(results):
        assert np.array_equal(u, expected_bsp_state(rank, 8, ITERS))
