"""Edge cases and validation paths across the stack."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.fmi.config import FmiConfig as Cfg
from repro.fmi.payload import Payload
from repro.mpi.communicator import Communicator
from repro.mpi.runtime import MpiJob
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


def make(num_nodes=4, seed=0):
    sim = Simulator()
    return sim, Machine(sim, SIERRA.with_nodes(num_nodes), RngRegistry(seed))


# ------------------------------------------------------------------ configs
def test_fmi_config_validation():
    with pytest.raises(ValueError):
        Cfg(interval=0)
    with pytest.raises(ValueError):
        Cfg(mtbf_seconds=0.0)
    with pytest.raises(ValueError):
        Cfg(xor_group_size=1)
    with pytest.raises(ValueError):
        Cfg(logring_k=1)
    with pytest.raises(ValueError):
        Cfg(spare_nodes=-1)
    with pytest.raises(ValueError):
        Cfg(level2_every=0)


def test_fmi_job_validation():
    sim, machine = make()
    with pytest.raises(ValueError):
        FmiJob(machine, lambda f: iter(()), num_ranks=5, procs_per_node=2)
    with pytest.raises(ValueError):
        FmiJob(machine, lambda f: iter(()), num_ranks=0)


def test_fmi_job_double_launch_rejected():
    sim, machine = make(6)

    def app(fmi):
        yield from fmi.init()
        yield from fmi.finalize()

    job = FmiJob(machine, app, num_ranks=2,
                 config=FmiConfig(xor_group_size=2, spare_nodes=0,
                                  checkpoint_enabled=False))
    job.launch()
    with pytest.raises(RuntimeError):
        job.launch()
    sim.run(until=job.done)


# ------------------------------------------------------------- communicator
def test_communicator_must_contain_self():
    sim, machine = make()

    def app(mpi):
        with pytest.raises(ValueError):
            Communicator(mpi, 99, [r for r in range(mpi.size) if r != mpi.rank])
        return True
        yield  # pragma: no cover

    job = MpiJob(machine, app, nprocs=2, charge_init=False)
    assert all(sim.run(until=job.launch()))


def test_send_to_out_of_range_rank():
    sim, machine = make()

    def app(mpi):
        with pytest.raises(ValueError):
            mpi.send(mpi.size + 3, "x")
        with pytest.raises(ValueError):
            mpi.send(-1, "x")
        return True
        yield  # pragma: no cover

    job = MpiJob(machine, app, nprocs=2, charge_init=False)
    assert all(sim.run(until=job.launch()))


def test_scatter_requires_values_at_root():
    sim, machine = make()

    def app(mpi):
        if mpi.rank == 0:
            try:
                yield from mpi.scatter([1])  # wrong length
            except ValueError:
                # unblock rank 1 after the failed attempt
                yield mpi.send(1, "abort", tag=77)
                return "caught"
        else:
            env = yield from mpi.recv(0, tag=77)
            return env

    job = MpiJob(machine, app, nprocs=2, charge_init=False)
    results = sim.run(until=job.launch())
    assert results[0] == "caught"


# ----------------------------------------------------------------- payloads
def test_payload_type_checks():
    with pytest.raises(TypeError):
        Payload("not-an-array")
    with pytest.raises(TypeError):
        Payload.wrap(123)


def test_loop_rejects_non_buffer_ckpts():
    sim, machine = make(6)

    def app(fmi):
        yield from fmi.init()
        with pytest.raises(TypeError):
            yield from fmi.loop(["not a buffer"])
        yield from fmi.finalize()
        return True

    job = FmiJob(machine, app, num_ranks=2,
                 config=FmiConfig(interval=1, xor_group_size=2, spare_nodes=0))
    assert all(sim.run(until=job.launch()))


# ----------------------------------------------------------- api counters
def test_bytes_sent_accounting():
    sim, machine = make()

    def app(mpi):
        if mpi.rank == 0:
            yield mpi.send(1, np.zeros(125, dtype=np.float64))  # 1000 B
            yield mpi.send(1, "x", nbytes=24.0)
            return (mpi.msgs_sent, mpi.bytes_sent)
        yield from mpi.recv(0)
        yield from mpi.recv(0)
        return None

    results = sim.run(until=MpiJob(machine, app, nprocs=2,
                                   charge_init=False).launch())
    msgs, nbytes = results[0]
    assert msgs == 2
    assert nbytes == pytest.approx(1024.0)


def test_stale_epoch_counter_after_recovery():
    """A survivor's post-recovery context must report dropped stale
    traffic if any pre-failure message straggles in."""
    sim, machine = make(10, seed=3)

    def app(fmi):
        u = np.zeros(2)
        yield from fmi.init()
        while True:
            n = yield from fmi.loop([u])
            if n >= 6:
                break
            # Cross-traffic every iteration, so some messages are in
            # flight when the crash lands.
            peer = (fmi.rank + 1) % fmi.size
            left = (fmi.rank - 1) % fmi.size
            yield from fmi.sendrecv(peer, float(n), source=left, nbytes=2e6)
            yield fmi.elapse(0.3)
        yield from fmi.finalize()
        return fmi.fmi_job.transport.dropped_stale

    job = FmiJob(machine, app, num_ranks=16, procs_per_node=2,
                 config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=1))
    done = job.launch()

    def killer():
        yield sim.timeout(1.2)
        machine.node(0).crash("stale-test")

    sim.spawn(killer())
    results = sim.run(until=done)
    # The run completed correctly whether or not stragglers existed;
    # the counter is non-negative and consistent across ranks' views.
    assert all(r >= 0 for r in results)
