"""Synthetic workloads + the failure-soak test: many random failures
over a long run, driven by the MTBF injector, with a verifiable state
recurrence -- the strongest end-to-end evidence that rollback never
corrupts application state."""

import numpy as np
import pytest

from repro.apps.synthetic import (
    bsp_app,
    comm_storm_app,
    expected_bsp_state,
    imbalanced_app,
)
from repro.cluster import Machine
from repro.cluster.failures import MtbfInjector
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.mpi.runtime import MpiJob
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


def make(num_nodes, seed=0):
    sim = Simulator()
    return sim, Machine(sim, SIERRA.with_nodes(num_nodes), RngRegistry(seed))


# --------------------------------------------------------------- workloads
def test_bsp_state_recurrence_mpi():
    sim, machine = make(4)
    job = MpiJob(machine, bsp_app(6, work_s=0.01), nprocs=4, charge_init=False)
    results = sim.run(until=job.launch())
    for rank, u in enumerate(results):
        assert np.allclose(u, expected_bsp_state(rank, 4, 6)), rank


def test_bsp_state_recurrence_fmi():
    sim, machine = make(6)
    job = FmiJob(machine, bsp_app(6, work_s=0.01), num_ranks=4,
                 config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=0))
    results = sim.run(until=job.launch())
    for rank, u in enumerate(results):
        assert np.allclose(u, expected_bsp_state(rank, 4, 6)), rank


def test_imbalance_costs_stragglers():
    sim, machine = make(4)
    job = MpiJob(machine, imbalanced_app(10, base_work_s=0.05, skew=2.0),
                 nprocs=4, charge_init=False)
    results = sim.run(until=job.launch())
    # Everyone pays the slowest rank's 3x time per iteration.
    assert min(results) >= 10 * 0.05 * 3.0 * 0.99


def test_comm_storm_runs_and_times():
    sim, machine = make(4)
    job = MpiJob(machine, comm_storm_app(3, nbytes_per_peer=1e6),
                 nprocs=4, charge_init=False)
    results = sim.run(until=job.launch())
    # 3 peers x 1 MB through a 3.24 GB/s NIC: ~1 ms/round minimum.
    assert all(r > 0.9e-3 for r in results)


# --------------------------------------------------------------------- soak
@pytest.mark.parametrize("seed", [11, 23])
def test_fmi_soak_many_random_failures(seed):
    """~40 s simulated run at MTBF 6 s: several node crashes at random
    times (including, sometimes, during checkpoints and recoveries).
    The run must finish with the exact recurrence state."""
    iterations = 30
    sim, machine = make(30, seed=seed)  # deep node pool: crashed nodes
    # never reboot in the closed simulation, so the soak needs spares
    job = FmiJob(
        machine, bsp_app(iterations, work_s=0.4), num_ranks=16,
        procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=4,
                         level2_every=2),
    )
    done = job.launch()
    injector = MtbfInjector(
        sim, machine.rng.stream("soak"), mtbf_seconds=4.0,
        kill=lambda slot: job.fmirun.node_slots[slot].crash("soak"),
        num_nodes=job.num_nodes,
    )
    injector.start()
    done.callbacks.append(lambda _e: injector.stop())
    results = sim.run(until=done)
    assert job.recovery_count >= 2, "soak too gentle; raise the rate"
    for rank, u in enumerate(results):
        assert np.allclose(u, expected_bsp_state(rank, 16, iterations)), (
            f"rank {rank} state corrupted after "
            f"{job.recovery_count} recoveries"
        )
    # The run made progress despite the storm.
    assert sim.now < 10 * iterations * 0.4


def test_fmi_soak_statistics_sane():
    iterations = 20
    sim, machine = make(30, seed=99)
    job = FmiJob(
        machine, bsp_app(iterations, work_s=0.4), num_ranks=16,
        procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=4,
                         level2_every=2),
    )
    done = job.launch()
    injector = MtbfInjector(
        sim, machine.rng.stream("soak2"), mtbf_seconds=8.0,
        kill=lambda slot: job.fmirun.node_slots[slot].crash("soak"),
        num_nodes=job.num_nodes,
    )
    injector.start()
    done.callbacks.append(lambda _e: injector.stop())
    sim.run(until=done)
    # Every recovery that completed has a latency record.
    for epoch in range(1, job.recovery_count + 1):
        if epoch in job.recovered_at:
            lat = job.recovery_latency(epoch)
            assert lat is None or 0.0 < lat < 60.0
    assert job.checkpoints_done >= iterations  # >= one round per loop
