"""The chaos campaign subsystem: DSL, event triggers, invariants, soak.

The heavyweight end-to-end coverage lives in the campaign runs (one
seed per canned campaign, each a full traced FMI job under injected
failures); the rest are unit tests of the trigger/action machinery and
of the invariant checkers against synthetic violations.
"""

import numpy as np
import pytest

from repro.chaos import (
    CAMPAIGNS,
    AtTime,
    ChaosEngine,
    DrainSlot,
    KillRank,
    KillSlot,
    OnEvent,
    RandomTimes,
    Rule,
    Scenario,
    check_answer,
    check_epoch_monotone,
    check_no_stale_delivery,
    run_campaign,
)
from repro.cluster.failures import EventInjector
from repro.obs import Tracer
from repro.simt import Simulator


# ------------------------------------------------------------ EventInjector
def test_event_injector_requires_enabled_tracer():
    sim = Simulator()  # NULL_TRACER: nothing to trigger on
    injector = EventInjector(sim, lambda ev: True, lambda: None)
    with pytest.raises(RuntimeError, match="Tracer"):
        injector.start()


def test_event_injector_validates_args():
    sim = Simulator()
    with pytest.raises(ValueError):
        EventInjector(sim, lambda ev: True, lambda: None, count=0)
    with pytest.raises(ValueError):
        EventInjector(sim, lambda ev: True, lambda: None, delay=-1.0)


def test_event_injector_fires_on_nth_match_after_delay():
    sim = Simulator()
    tracer = Tracer(sim)
    fired = []
    injector = EventInjector(
        sim, lambda ev: ev.name == "tick", lambda: fired.append(sim.now),
        count=3, delay=0.5,
    )
    injector.start()

    def emitter():
        for i in range(5):
            yield sim.timeout(1.0)
            tracer.instant("tick", "test", args={"i": i})
            tracer.instant("noise", "test")

    sim.spawn(emitter())
    sim.run()
    # 3rd tick at t=3.0, +0.5 delay.
    assert fired == [pytest.approx(3.5)]
    assert injector.seen == 3
    assert injector.fired_at == pytest.approx(3.5)


def test_event_injector_stop_disarms():
    sim = Simulator()
    tracer = Tracer(sim)
    fired = []
    injector = EventInjector(sim, lambda ev: True, lambda: fired.append(1))
    injector.start()
    injector.stop()
    tracer.instant("anything", "test")
    sim.run()
    assert fired == []


# ----------------------------------------------------------------- the DSL
def _tiny_job(seed=0):
    from repro.chaos.runner import _build_job

    return _build_job(CAMPAIGNS["mid-checkpoint-kill"], seed)


def test_attime_kills_the_slots_current_node():
    sim, machine, job = _tiny_job()
    Tracer(sim)
    engine = ChaosEngine(job)
    done = job.launch()
    engine.arm(Scenario("t", [Rule(AtTime(2.0), KillSlot(1))]))
    sim.run(until=done)
    assert len(engine.injected) == 1
    t, desc = engine.injected[0]
    assert t == pytest.approx(2.0)
    assert desc.startswith("kill slot 1")
    assert job.epoch >= 1 and job.finished


def test_onevent_trigger_lands_at_marker():
    sim, machine, job = _tiny_job()
    tracer = Tracer(sim)
    engine = ChaosEngine(job)
    done = job.launch()
    engine.arm(Scenario("t", [
        Rule(OnEvent("ckpt.encode.begin", count=1), KillSlot(0)),
    ]))
    sim.run(until=done)
    engine.disarm()
    first_encode = next(
        ev.ts for ev in tracer.events if ev.name == "ckpt.encode.begin"
    )
    assert len(engine.injected) == 1
    assert engine.injected[0][0] == pytest.approx(first_encode)
    assert job.finished


def test_randomtimes_schedule_is_seed_deterministic():
    def schedule(seed):
        sim, machine, job = _tiny_job(seed)
        Tracer(sim)
        rng = machine.rng.stream("chaos")
        engine = ChaosEngine(job, rng)
        done = job.launch()
        engine.arm(Scenario("t", [
            Rule(RandomTimes(k=2, mean_spacing=1.0, start=1.0), KillRank(5)),
        ]))
        sim.run(until=done)
        return engine.injected

    assert schedule(7) == schedule(7)
    assert schedule(7) != schedule(8)


def test_dead_slot_kill_is_recorded_as_noop():
    sim, machine, job = _tiny_job()
    Tracer(sim)
    engine = ChaosEngine(job)
    done = job.launch()
    engine.arm(Scenario("t", [
        Rule(AtTime(2.0), KillSlot(0)),
        Rule(AtTime(2.0), KillSlot(0)),  # same instant: second is a no-op
    ]))
    sim.run(until=done)
    descs = [d for _t, d in engine.injected]
    assert descs[0].startswith("kill slot 0 (node")
    assert descs[1] == "kill slot 0: already dead"
    assert job.finished


def test_drain_refusal_is_recorded():
    sim, machine, job = _tiny_job()
    Tracer(sim)
    engine = ChaosEngine(job)
    done = job.launch()
    engine.arm(Scenario("t", [
        Rule(AtTime(1.0), KillSlot(2)),
        Rule(AtTime(1.0), DrainSlot(2)),  # draining a dead slot: refused
    ]))
    sim.run(until=done)
    descs = [d for _t, d in engine.injected]
    assert any(d.startswith("drain slot 2: refused") for d in descs)
    assert job.finished


# ------------------------------------------------------- invariant checkers
class _FakeEvent:
    def __init__(self, name, rank=0, epoch=0, incarnation=0, ts=0.0, args=()):
        self.name = name
        self.rank = rank
        self.epoch = epoch
        self.incarnation = incarnation
        self.ts = ts
        self.args = dict(args)


class _FakeTracer:
    def __init__(self, events):
        self.events = events


def test_epoch_monotone_catches_backwards_epoch():
    tracer = _FakeTracer([
        _FakeEvent("fmi.state", rank=1, epoch=2, ts=1.0),
        _FakeEvent("fmi.state", rank=1, epoch=1, ts=2.0),
    ])
    violations = check_epoch_monotone(tracer)
    assert len(violations) == 1
    assert "went 2 -> 1" in violations[0].detail


def test_epoch_monotone_accepts_increasing():
    tracer = _FakeTracer([
        _FakeEvent("fmi.state", rank=1, epoch=0),
        _FakeEvent("fmi.state", rank=1, epoch=0),
        _FakeEvent("fmi.state", rank=1, epoch=2),
    ])
    assert check_epoch_monotone(tracer) == []


def test_stale_delivery_checker():
    ok = _FakeEvent("net.recv", epoch=3, args={"ctx_epoch": 3})
    bad = _FakeEvent("net.recv", epoch=1, args={"ctx_epoch": 3})
    assert check_no_stale_delivery(_FakeTracer([ok])) == []
    violations = check_no_stale_delivery(_FakeTracer([ok, bad]))
    assert len(violations) == 1
    assert "epoch-1" in violations[0].detail


def test_answer_checker_is_bit_exact():
    ref = [np.arange(4.0), np.ones(4)]
    assert check_answer([ref[0].copy(), ref[1].copy()], ref) == []
    off = [ref[0].copy(), ref[1] + 1e-12]
    assert len(check_answer(off, ref)) == 1
    assert len(check_answer([ref[0]], ref)) == 1  # length mismatch


# -------------------------------------------------------------- end to end
@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_campaign_survives_and_is_green(name):
    result = run_campaign(name, seed=1)
    assert result.violations == []
    assert result.trace_events > 0


def test_campaign_replay_is_deterministic():
    a = run_campaign("kill-during-recovery", seed=3, keep_trace=True)
    b = run_campaign("kill-during-recovery", seed=3, keep_trace=True)
    assert a.injected == b.injected
    assert a.sim_time == b.sim_time
    assert a.trace_events == b.trace_events
    assert [ev.name for ev in a.tracer.events] == [
        ev.name for ev in b.tracer.events
    ]
    assert [ev.ts for ev in a.tracer.events] == [
        ev.ts for ev in b.tracer.events
    ]


def test_unknown_campaign_rejected():
    with pytest.raises(KeyError, match="unknown campaign"):
        run_campaign("no-such-campaign", seed=0)
