"""The chaos campaign subsystem: DSL, event triggers, invariants, soak.

The heavyweight end-to-end coverage lives in the campaign runs (one
seed per canned campaign, each a full traced FMI job under injected
failures); the rest are unit tests of the trigger/action machinery and
of the invariant checkers against synthetic violations.
"""

import numpy as np
import pytest

from repro.chaos import (
    CAMPAIGNS,
    GRAY_CAMPAIGNS,
    AtTime,
    ChaosEngine,
    DrainSlot,
    HealPartition,
    KillRank,
    KillSlot,
    LimpSlot,
    Omission,
    OmissionOff,
    OnEvent,
    Partition,
    RandomTimes,
    Rule,
    Scenario,
    check_answer,
    check_epoch_monotone,
    check_no_split_brain,
    check_no_stale_delivery,
    check_suspicion_resolved,
    run_campaign,
)
from repro.cluster.failures import EventInjector
from repro.obs import Tracer, write_jsonl
from repro.simt import Simulator


# ------------------------------------------------------------ EventInjector
def test_event_injector_requires_enabled_tracer():
    sim = Simulator()  # NULL_TRACER: nothing to trigger on
    injector = EventInjector(sim, lambda ev: True, lambda: None)
    with pytest.raises(RuntimeError, match="Tracer"):
        injector.start()


def test_event_injector_validates_args():
    sim = Simulator()
    with pytest.raises(ValueError):
        EventInjector(sim, lambda ev: True, lambda: None, count=0)
    with pytest.raises(ValueError):
        EventInjector(sim, lambda ev: True, lambda: None, delay=-1.0)


def test_event_injector_fires_on_nth_match_after_delay():
    sim = Simulator()
    tracer = Tracer(sim)
    fired = []
    injector = EventInjector(
        sim, lambda ev: ev.name == "tick", lambda: fired.append(sim.now),
        count=3, delay=0.5,
    )
    injector.start()

    def emitter():
        for i in range(5):
            yield sim.timeout(1.0)
            tracer.instant("tick", "test", args={"i": i})
            tracer.instant("noise", "test")

    sim.spawn(emitter())
    sim.run()
    # 3rd tick at t=3.0, +0.5 delay.
    assert fired == [pytest.approx(3.5)]
    assert injector.seen == 3
    assert injector.fired_at == pytest.approx(3.5)


def test_event_injector_stop_disarms():
    sim = Simulator()
    tracer = Tracer(sim)
    fired = []
    injector = EventInjector(sim, lambda ev: True, lambda: fired.append(1))
    injector.start()
    injector.stop()
    tracer.instant("anything", "test")
    sim.run()
    assert fired == []


# ----------------------------------------------------------------- the DSL
def _tiny_job(seed=0):
    from repro.chaos.runner import _build_job

    return _build_job(CAMPAIGNS["mid-checkpoint-kill"], seed)


def test_attime_kills_the_slots_current_node():
    sim, machine, job = _tiny_job()
    Tracer(sim)
    engine = ChaosEngine(job)
    done = job.launch()
    engine.arm(Scenario("t", [Rule(AtTime(2.0), KillSlot(1))]))
    sim.run(until=done)
    assert len(engine.injected) == 1
    t, desc = engine.injected[0]
    assert t == pytest.approx(2.0)
    assert desc.startswith("kill slot 1")
    assert job.epoch >= 1 and job.finished


def test_onevent_trigger_lands_at_marker():
    sim, machine, job = _tiny_job()
    tracer = Tracer(sim)
    engine = ChaosEngine(job)
    done = job.launch()
    engine.arm(Scenario("t", [
        Rule(OnEvent("ckpt.encode.begin", count=1), KillSlot(0)),
    ]))
    sim.run(until=done)
    engine.disarm()
    first_encode = next(
        ev.ts for ev in tracer.events if ev.name == "ckpt.encode.begin"
    )
    assert len(engine.injected) == 1
    assert engine.injected[0][0] == pytest.approx(first_encode)
    assert job.finished


def test_randomtimes_schedule_is_seed_deterministic():
    def schedule(seed):
        sim, machine, job = _tiny_job(seed)
        Tracer(sim)
        rng = machine.rng.stream("chaos")
        engine = ChaosEngine(job, rng)
        done = job.launch()
        engine.arm(Scenario("t", [
            Rule(RandomTimes(k=2, mean_spacing=1.0, start=1.0), KillRank(5)),
        ]))
        sim.run(until=done)
        return engine.injected

    assert schedule(7) == schedule(7)
    assert schedule(7) != schedule(8)


def test_dead_slot_kill_is_recorded_as_noop():
    sim, machine, job = _tiny_job()
    Tracer(sim)
    engine = ChaosEngine(job)
    done = job.launch()
    engine.arm(Scenario("t", [
        Rule(AtTime(2.0), KillSlot(0)),
        Rule(AtTime(2.0), KillSlot(0)),  # same instant: second is a no-op
    ]))
    sim.run(until=done)
    descs = [d for _t, d in engine.injected]
    assert descs[0].startswith("kill slot 0 (node")
    assert descs[1] == "kill slot 0: already dead"
    assert job.finished


def test_drain_refusal_is_recorded():
    sim, machine, job = _tiny_job()
    Tracer(sim)
    engine = ChaosEngine(job)
    done = job.launch()
    engine.arm(Scenario("t", [
        Rule(AtTime(1.0), KillSlot(2)),
        Rule(AtTime(1.0), DrainSlot(2)),  # draining a dead slot: refused
    ]))
    sim.run(until=done)
    descs = [d for _t, d in engine.injected]
    assert any(d.startswith("drain slot 2: refused") for d in descs)
    assert job.finished


# ------------------------------------------------------ gray-failure actions
def test_partition_action_cuts_and_heals_on_schedule():
    sim, machine, job = _tiny_job()
    Tracer(sim)
    engine = ChaosEngine(job)
    done = job.launch()
    engine.arm(Scenario("t", [
        Rule(AtTime(1.0), Partition(groups=((0, 1), (2, 3)), heal_after=0.5)),
    ]))
    observed = []

    def probe():
        yield sim.timeout(1.1)
        observed.append(machine.fabric.partitioned)
        yield sim.timeout(0.5)  # t=1.6 > heal at 1.5
        observed.append(machine.fabric.partitioned)

    sim.spawn(probe())
    sim.run(until=done)
    assert observed == [True, False]
    descs = [d for _t, d in engine.injected]
    assert any(d.startswith("partition ") for d in descs)
    assert any(d.startswith("heal partition") for d in descs)
    assert job.finished and job.epoch == 0


def test_second_partition_is_refused():
    sim, machine, job = _tiny_job()
    Tracer(sim)
    engine = ChaosEngine(job)
    done = job.launch()
    engine.arm(Scenario("t", [
        Rule(AtTime(1.0), Partition(groups=((0, 1), (2, 3)), heal_after=2.0)),
        Rule(AtTime(1.2), Partition(groups=((0,), (1, 2, 3)))),
    ]))
    sim.run(until=done)
    descs = [d for _t, d in engine.injected]
    assert "partition: refused (already partitioned)" in descs


def test_heal_without_partition_is_recorded_as_noop():
    sim, machine, job = _tiny_job()
    Tracer(sim)
    engine = ChaosEngine(job)
    done = job.launch()
    engine.arm(Scenario("t", [Rule(AtTime(1.0), HealPartition())]))
    sim.run(until=done)
    assert ("heal: no active partition") in [d for _t, d in engine.injected]


def test_omission_attach_detach_records():
    sim, machine, job = _tiny_job()
    Tracer(sim)
    engine = ChaosEngine(job, machine.rng.stream("chaos"))
    done = job.launch()
    engine.arm(Scenario("t", [
        Rule(AtTime(1.0), Omission(drop_p=0.05, duration=1.0)),
        Rule(AtTime(0.5), OmissionOff()),  # before attach: no-op record
    ]))
    sim.run(until=done)
    descs = [d for _t, d in engine.injected]
    assert "omission off: no model attached" in descs
    assert any(d.startswith("omission on") for d in descs)
    assert any(d == "omission off (scheduled)" for d in descs)
    assert job.finished and job.transport.faults is None


def test_omission_without_rng_raises():
    sim, machine, job = _tiny_job()
    Tracer(sim)
    engine = ChaosEngine(job)  # no rng
    job.launch()
    with pytest.raises(ValueError, match="rng"):
        engine._fire(Omission(drop_p=0.1))


def test_limp_on_dead_node_is_refused():
    sim, machine, job = _tiny_job()
    Tracer(sim)
    engine = ChaosEngine(job)
    done = job.launch()
    engine.arm(Scenario("t", [
        # Same instant: the slot's node is dead but not yet replaced
        # by a spare, so the limp must be refused, not applied to a
        # corpse.  (A later limp lands on the replacement node -- slot
        # actions always resolve the *current* holder.)
        Rule(AtTime(1.0), KillSlot(2)),
        Rule(AtTime(1.0), LimpSlot(2, bw_factor=8.0)),
    ]))
    sim.run(until=done)
    descs = [d for _t, d in engine.injected]
    assert any(d.startswith("limp slot 2: refused") for d in descs)


def test_limp_auto_reverts_after_duration():
    sim, machine, job = _tiny_job()
    Tracer(sim)
    engine = ChaosEngine(job)
    done = job.launch()
    node = job.fmirun.node_slots[1]
    engine.arm(Scenario("t", [
        Rule(AtTime(1.0), LimpSlot(1, bw_factor=8.0, duration=0.5)),
    ]))
    observed = []

    def probe():
        yield sim.timeout(1.2)
        observed.append(node.limping)
        yield sim.timeout(0.5)
        observed.append(node.limping)

    sim.spawn(probe())
    sim.run(until=done)
    assert observed == [True, False]
    assert any(
        d.startswith("unlimp node") for _t, d in engine.injected
    )


# ------------------------------------------------------- invariant checkers
class _FakeEvent:
    def __init__(self, name, rank=0, epoch=0, incarnation=0, ts=0.0, args=()):
        self.name = name
        self.rank = rank
        self.epoch = epoch
        self.incarnation = incarnation
        self.ts = ts
        self.args = dict(args)


class _FakeTracer:
    def __init__(self, events):
        self.events = events


def test_epoch_monotone_catches_backwards_epoch():
    tracer = _FakeTracer([
        _FakeEvent("fmi.state", rank=1, epoch=2, ts=1.0),
        _FakeEvent("fmi.state", rank=1, epoch=1, ts=2.0),
    ])
    violations = check_epoch_monotone(tracer)
    assert len(violations) == 1
    assert "went 2 -> 1" in violations[0].detail


def test_epoch_monotone_accepts_increasing():
    tracer = _FakeTracer([
        _FakeEvent("fmi.state", rank=1, epoch=0),
        _FakeEvent("fmi.state", rank=1, epoch=0),
        _FakeEvent("fmi.state", rank=1, epoch=2),
    ])
    assert check_epoch_monotone(tracer) == []


def test_stale_delivery_checker():
    ok = _FakeEvent("net.recv", epoch=3, args={"ctx_epoch": 3})
    bad = _FakeEvent("net.recv", epoch=1, args={"ctx_epoch": 3})
    assert check_no_stale_delivery(_FakeTracer([ok])) == []
    violations = check_no_stale_delivery(_FakeTracer([ok, bad]))
    assert len(violations) == 1
    assert "epoch-1" in violations[0].detail


def test_split_brain_checker_flags_unconfirmed_partition_notify():
    bad = _FakeTracer([
        _FakeEvent("fmi.notify", rank=2,
                   args={"reason": "cascade:partition:p1"}),
    ])
    violations = check_no_split_brain(bad)
    assert any("unconfirmed partition" in v.detail for v in violations)
    ok = _FakeTracer([
        _FakeEvent("node.crash"),
        _FakeEvent("recovery.begin"),
        _FakeEvent("fmi.notify", rank=2,
                   args={"reason": "confirmed:partition:p1"}),
    ])
    assert check_no_split_brain(ok) == []


def test_split_brain_checker_counts_recoveries_vs_deaths():
    double = _FakeTracer([
        _FakeEvent("node.crash"),
        _FakeEvent("recovery.begin"),
        _FakeEvent("recovery.begin"),  # both sides of a cut recovered
    ])
    violations = check_no_split_brain(double)
    assert len(violations) == 1
    assert "2 recovery epoch(s)" in violations[0].detail


def test_suspicion_checker_requires_resolution():
    leaked = _FakeTracer([
        _FakeEvent("overlay.suspect", rank=1, args={"peer": 5}),
        _FakeEvent("overlay.suspect", rank=5, args={"peer": 1}),
        _FakeEvent("overlay.suspect.cleared", rank=1,
                   args={"peer": 5, "resolution": "peer-alive"}),
    ])
    violations = check_suspicion_resolved(leaked)
    assert len(violations) == 1
    assert "rank 5's suspicion of rank 1" in violations[0].detail


def test_answer_checker_is_bit_exact():
    ref = [np.arange(4.0), np.ones(4)]
    assert check_answer([ref[0].copy(), ref[1].copy()], ref) == []
    off = [ref[0].copy(), ref[1] + 1e-12]
    assert len(check_answer(off, ref)) == 1
    assert len(check_answer([ref[0]], ref)) == 1  # length mismatch


# -------------------------------------------------------------- end to end
@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_campaign_survives_and_is_green(name):
    result = run_campaign(name, seed=1)
    assert result.violations == []
    assert result.trace_events > 0


def test_campaign_replay_is_deterministic():
    a = run_campaign("kill-during-recovery", seed=3, keep_trace=True)
    b = run_campaign("kill-during-recovery", seed=3, keep_trace=True)
    assert a.injected == b.injected
    assert a.sim_time == b.sim_time
    assert a.trace_events == b.trace_events
    assert [ev.name for ev in a.tracer.events] == [
        ev.name for ev in b.tracer.events
    ]
    assert [ev.ts for ev in a.tracer.events] == [
        ev.ts for ev in b.tracer.events
    ]


@pytest.mark.parametrize("name", sorted(GRAY_CAMPAIGNS))
def test_gray_campaign_trace_replays_byte_identical(name, tmp_path):
    """Same (campaign, seed) -> byte-identical trace JSONL, for every
    new gray chaos action (partition/heal, omission, limp)."""
    a = run_campaign(name, seed=2, keep_trace=True)
    b = run_campaign(name, seed=2, keep_trace=True)
    path_a = tmp_path / "a.jsonl"
    path_b = tmp_path / "b.jsonl"
    write_jsonl(a.tracer.events, path_a)
    write_jsonl(b.tracer.events, path_b)
    assert path_a.read_bytes() == path_b.read_bytes()
    assert path_a.stat().st_size > 0
    assert a.injected == b.injected


def test_unknown_campaign_rejected():
    with pytest.raises(KeyError, match="unknown campaign"):
        run_campaign("no-such-campaign", seed=0)
