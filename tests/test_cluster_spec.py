"""Spec sanity: Table II constants and derived quantities."""

import pytest

from repro.cluster.spec import (
    COASTAL,
    COASTAL_L1_MTBF_HOURS,
    COASTAL_L1_RATE,
    COASTAL_L2_MTBF_HOURS,
    COASTAL_L2_RATE,
    GiB,
    SIERRA,
    TSUBAME2,
)


def test_sierra_matches_table2():
    # Table II: 1,944 nodes total, 12 cores, 24 GB, 32 GB/s memory bw.
    assert SIERRA.num_nodes == 1944
    assert SIERRA.node.cores == 12
    assert SIERRA.node.memory_bytes == 24 * GiB
    assert SIERRA.node.memory_bw == 32e9


def test_sierra_network_calibration_brackets_table3():
    # One-byte latency = 2 * sw_overhead + wire latency, must land near
    # the measured 3.555 us (MPI) / 3.573 us (FMI).
    net = SIERRA.network
    lat_mpi = 2 * net.sw_overhead_mpi + net.wire_latency
    lat_fmi = 2 * net.sw_overhead_fmi + net.wire_latency
    assert lat_mpi == pytest.approx(3.555e-6, rel=0.01)
    assert lat_fmi == pytest.approx(3.573e-6, rel=0.01)
    assert lat_fmi > lat_mpi  # FMI's fault-tolerance bookkeeping costs a bit
    # Large-message bandwidth ~= link_bw ~= 3.22-3.24 GB/s.
    assert 3.15e9 < net.link_bw < 3.30e9


def test_pfs_is_lustre_50gbps():
    assert SIERRA.filesystem.pfs_bw == 50e9


def test_with_nodes_copies():
    small = SIERRA.with_nodes(16)
    assert small.num_nodes == 16
    assert SIERRA.num_nodes == 1944
    assert small.node == SIERRA.node


def test_coastal_rates_match_section6c():
    # L1 MTBF 130 h, L2 MTBF 650 h.
    assert 1.0 / COASTAL_L1_RATE / 3600 == pytest.approx(COASTAL_L1_MTBF_HOURS, rel=0.02)
    assert 1.0 / COASTAL_L2_RATE / 3600 == pytest.approx(COASTAL_L2_MTBF_HOURS, rel=0.02)


def test_presets_distinct():
    assert {SIERRA.name, TSUBAME2.name, COASTAL.name} == {
        "sierra",
        "tsubame2",
        "coastal",
    }
