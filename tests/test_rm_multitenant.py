"""Resource-manager semantics the multi-tenant scheduler leans on.

Regression suite for the grant/cancel/release races that were invisible
while the repo ran exactly one job per cluster: a cancelled waiter must
never strand the node that was in flight to it, a node handed back twice
must never appear in the idle pool twice (double-grant), and every node
a job picked up mid-flight (pre-reserved spare, on-demand grant, shared
pool) must come back to the pool when the job's allocation is released.
"""

import pytest

from repro.cluster import Machine
from repro.cluster.resource_manager import (
    Allocation,
    AllocationError,
    ResourceManager,
    SparePool,
)
from repro.cluster.spec import SIERRA
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


def make_machine(num_nodes=8, seed=0):
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(num_nodes), RngRegistry(seed))
    return sim, machine


def no_duplicates(rm):
    return len(rm._idle) == len(set(id(n) for n in rm._idle))


# ------------------------------------------------------ strand regressions
def test_cancelled_request_during_grant_does_not_strand_node():
    # A replacement request cancelled while its grant is in flight (job
    # aborted during the grant latency): the node must go back to the
    # pool, not vanish.
    sim, machine = make_machine(1)
    rm = machine.rm
    req = rm.request_replacement()  # pops the node, grant in flight
    assert rm.idle_count == 0
    req.cancel()
    sim.run()
    assert rm.idle_count == 1


def test_queued_request_cancelled_during_handoff_does_not_strand_node():
    # The node is released while a queued waiter exists; the waiter is
    # cancelled during the handoff latency.  Pre-fix the handoff lambda
    # called succeed() on a cancelled event (a silent no-op) and dropped
    # the node on the floor.
    sim, machine = make_machine(1)
    rm = machine.rm
    alloc = rm.allocate(1)
    req = rm.request_replacement()  # queues: no idle node
    alloc.release()  # handoff to req begins (grant latency)
    req.cancel()
    sim.run()
    assert rm.idle_count == 1


def test_queued_request_cancelled_before_release_is_skipped():
    sim, machine = make_machine(1)
    rm = machine.rm
    alloc = rm.allocate(1)
    req = rm.request_replacement()
    req.cancel()
    alloc.release()
    sim.run()
    assert rm.idle_count == 1
    assert not req.triggered


# ------------------------------------------------- double-grant regressions
def test_double_release_is_idempotent():
    sim, machine = make_machine(2)
    rm = machine.rm
    alloc = rm.allocate(2)
    alloc.release()
    alloc.release()
    sim.run()
    assert rm.idle_count == 2
    assert no_duplicates(rm)


def test_drained_node_not_double_pooled_at_release():
    # A node handed back mid-job (the drain path) must not be reclaimed
    # a second time when the allocation is released -- pre-fix it entered
    # the idle list twice and could be granted to two jobs at once.
    sim, machine = make_machine(3)
    rm = machine.rm
    alloc = rm.allocate(2)
    drained = alloc.nodes[0]
    alloc.return_node(drained)
    assert rm.idle_count == 2
    alloc.release()
    sim.run()
    assert rm.idle_count == 3
    assert no_duplicates(rm)


def test_same_instant_release_races_grant_fifo():
    # Two waiters queued; a two-node allocation released in one instant
    # must serve them FIFO, deterministically, with no node counted twice.
    sim, machine = make_machine(2)
    rm = machine.rm
    alloc = rm.allocate(2)
    first = rm.request_replacement()
    second = rm.request_replacement()
    alloc.release()
    sim.run()
    assert first.triggered and second.triggered
    assert first.value is not second.value
    assert rm.idle_count == 0
    rm.return_node(first.value)
    rm.return_node(second.value)
    sim.run()
    assert rm.idle_count == 2
    assert no_duplicates(rm)


# ------------------------------------------------------- ownership tracking
def test_taken_spare_returns_to_pool_at_release():
    # A pre-reserved spare promoted into service stays owned by the
    # allocation: release must return it (pre-fix it was popped off the
    # spare list and stranded forever).
    sim, machine = make_machine(3)
    rm = machine.rm
    alloc = rm.allocate(2, num_spares=1)
    spare = alloc.take_spare()
    assert spare is not None
    alloc.release()
    sim.run()
    assert rm.idle_count == 3
    assert no_duplicates(rm)


def test_grow_grant_owned_and_released():
    sim, machine = make_machine(3)
    rm = machine.rm
    alloc = rm.allocate(2)
    req = alloc.grow()
    sim.run()
    assert req.triggered
    node = req.value
    assert node in alloc.all_nodes
    assert rm.idle_count == 0
    alloc.release()
    sim.run()
    assert rm.idle_count == 3
    assert no_duplicates(rm)


def test_grow_cancelled_mid_grant_returns_node():
    sim, machine = make_machine(3)
    rm = machine.rm
    alloc = rm.allocate(2)
    req = alloc.grow()
    req.cancel()
    sim.run()
    assert rm.idle_count == 1
    alloc.release()
    sim.run()
    assert rm.idle_count == 3


def test_release_withdraws_pending_grow():
    # Job ends while an on-demand grow is still queued behind an empty
    # pool: release must withdraw the request so a later node release
    # does not grant to a dead job.
    sim, machine = make_machine(2)
    rm = machine.rm
    a = rm.allocate(1)
    b = rm.allocate(1)
    req = b.grow()  # queues: no idle node
    b.release()
    a.release()
    sim.run()
    assert not req.triggered
    assert rm.idle_count == 2
    assert no_duplicates(rm)


def test_grow_on_released_allocation_rejected():
    sim, machine = make_machine(2)
    alloc = machine.rm.allocate(1)
    alloc.release()
    with pytest.raises(RuntimeError):
        alloc.grow()


# ----------------------------------------------------------- try_allocate
def test_try_allocate_returns_none_when_short():
    sim, machine = make_machine(2)
    rm = machine.rm
    assert rm.try_allocate(3) is None
    alloc = rm.try_allocate(2)
    assert isinstance(alloc, Allocation)
    assert rm.try_allocate(1) is None
    alloc.release()
    sim.run()
    assert rm.try_allocate(1) is not None


def test_allocate_still_raises():
    sim, machine = make_machine(2)
    with pytest.raises(AllocationError):
        machine.rm.allocate(3)


# ------------------------------------------------------------- spare pool
def test_spare_pool_feeds_grow_without_rm_round_trip():
    sim, machine = make_machine(4)
    rm = machine.rm
    pool = SparePool(rm, size=2)
    assert len(pool) == 2
    assert rm.idle_count == 2
    alloc = rm.allocate(2)
    alloc.spare_pool = pool
    req = alloc.grow()
    sim.run()
    assert req.triggered
    assert len(pool) == 1
    # the pool handoff is immediate: no grant latency was charged
    assert sim.now == 0.0
    alloc.release()
    sim.run()
    # the grown node came back to the RM, not the pool
    assert rm.idle_count == 3
    assert len(pool) == 1


def test_spare_pool_skips_dead_nodes_and_refills():
    sim, machine = make_machine(4)
    rm = machine.rm
    pool = SparePool(rm, size=2)
    pool._nodes[0].crash("injected")
    assert len(pool) == 1
    grew = pool.refill(2)
    assert grew == 1
    assert len(pool) == 2
    alloc = rm.allocate(1)
    alloc.spare_pool = pool
    req = alloc.grow()
    sim.run()
    assert req.triggered and req.value.alive
    pool.drain()
    assert len(pool) == 0
    alloc.release()
    sim.run()
    assert rm.idle_count == 3  # 4 nodes - 1 dead
