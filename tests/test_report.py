"""Job reports and phase accounting."""

import numpy as np
import pytest

from repro.analysis.report import job_report, phase_durations, render_report
from repro.apps.synthetic import bsp_app
from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


def run_job(kill_at=None, iters=6, seed=0):
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(12), RngRegistry(seed))
    job = FmiJob(
        machine, bsp_app(iters, work_s=0.4), num_ranks=16, procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=1),
    )
    done = job.launch()
    if kill_at is not None:
        def killer():
            yield sim.timeout(kill_at)
            job.fmirun.node_slots[0].crash("report-test")

        sim.spawn(killer())
    sim.run(until=done)
    return job


def test_report_failure_free():
    job = run_job()
    r = job_report(job)
    assert r["finished"]
    assert r["recoveries"] == 0
    assert r["restores"] == 0
    assert r["checkpoint_rounds"] == 7  # loops 0..6
    assert r["h3_fraction"] > 0.7  # most time is useful work
    assert r["recovery_latencies"] == []


def test_report_with_failure():
    job = run_job(kill_at=1.5)
    r = job_report(job)
    assert r["finished"]
    assert r["recoveries"] == 1
    assert len(r["recovery_latencies"]) == 1
    assert 0.2 < r["recovery_latencies"][0] < 30.0
    assert r["failure_causes"] and "node-crash" in r["failure_causes"][0]
    # Recovery stole some useful-time fraction.
    assert r["h3_fraction"] < job_report(run_job())["h3_fraction"] + 1e-9


def test_phase_durations_sum_to_live_time():
    job = run_job(kill_at=1.5)
    phases = phase_durations(job)
    for rank, acc in phases.items():
        live = acc["H1"] + acc["H2"] + acc["H3"] + acc["done"]
        # Within the job's wall time (replacements start later).
        assert 0 < live <= job.sim.now + 1e-9, rank
        # H2 (log-ring build) is short compared to H3.
        assert acc["H2"] < acc["H3"]


def test_render_report_readable():
    job = run_job(kill_at=1.5)
    text = render_report(job, title="unit-test run")
    assert "unit-test run" in text
    assert "recoveries" in text
    assert "failure 1" in text
    assert "H3" in text
