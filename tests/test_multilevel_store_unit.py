"""Level2Store unit behaviour (paths, markers, pruning, read-back)."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi.multilevel import Level2Store
from repro.fmi.payload import Payload
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


@pytest.fixture()
def env():
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(2), RngRegistry(0))
    return sim, machine


def drive(sim, gen):
    proc = sim.spawn(gen)
    sim.run(until=proc)
    return proc.value


def test_flush_read_roundtrip(env):
    sim, machine = env
    store = Level2Store(machine.pfs, "jobA", rank=3)
    blob = Payload.wrap(np.arange(500, dtype=np.uint8))
    sections = [(500, 500.0)]

    def run():
        yield from store.flush(7, blob, sections)
        back, secs = yield from store.read(7)
        return back, secs

    back, secs = drive(sim, run())
    assert back.tobytes() == blob.tobytes()
    assert secs == sections


def test_markers_gate_completeness(env):
    sim, machine = env
    store = Level2Store(machine.pfs, "jobB", rank=0)
    blob = Payload.wrap(b"x" * 64)

    def run():
        yield from store.flush(1, blob, [(64, 64.0)])
        assert store.complete_datasets() == []  # no marker yet
        assert store.latest_for_me() == -1
        yield from store.mark_complete(1, num_ranks=4)
        assert store.complete_datasets() == [1]
        assert store.latest_for_me() == 1

    drive(sim, run())


def test_latest_skips_datasets_missing_my_blob(env):
    sim, machine = env
    writer = Level2Store(machine.pfs, "jobC", rank=0)
    other = Level2Store(machine.pfs, "jobC", rank=1)
    blob = Payload.wrap(b"d" * 32)

    def run():
        yield from writer.flush(5, blob, [(32, 32.0)])
        yield from writer.mark_complete(5, 2)
        # Rank 1 never flushed dataset 5: its latest is -1 even though
        # the dataset is globally marked complete.
        assert other.complete_datasets() == [5]
        assert other.latest_for_me() == -1
        assert writer.latest_for_me() == 5

    drive(sim, run())


def test_prune_keeps_requested(env):
    sim, machine = env
    store = Level2Store(machine.pfs, "jobD", rank=0)
    blob = Payload.wrap(b"p" * 16)

    def run():
        for ds in (1, 2, 3):
            yield from store.flush(ds, blob, [(16, 16.0)])
            yield from store.mark_complete(ds, 1)
        store.prune(keep=[2, 3])
        assert store.complete_datasets() == [2, 3]
        assert store.latest_for_me() == 3
        back, _ = yield from store.read(2)
        assert back.tobytes() == blob.tobytes()

    drive(sim, run())


def test_declared_size_carried(env):
    sim, machine = env
    store = Level2Store(machine.pfs, "jobE", rank=2)
    blob = Payload.synthetic(1e9, seed=1, rep_bytes=48)

    def run():
        t0 = sim.now
        yield from store.flush(0, blob, [(48, 1e9)])
        elapsed = sim.now - t0
        # 1 GB through a 50 GB/s PFS: at least 20 ms charged.
        assert elapsed >= 1e9 / 50e9 * 0.99
        back, secs = yield from store.read(0)
        assert back.nbytes >= 1e9
        assert secs == [(48, 1e9)]

    drive(sim, run())
