"""Property-based tests (hypothesis) of the log-ring overlay math.

Three properties the failure detector's correctness rests on, checked
for arbitrary ``(n, k)``:

* **edge mirror symmetry** -- the closed-form incoming-edge computation
  in ``LogRingDetector.join`` (``rank - offset`` for each outgoing
  offset) must agree with the ground truth O(n) scan "who lists me as
  an outgoing neighbour"; an asymmetry would leave half-registered
  edges whose disconnect events only one side hears.
* **connectivity** -- the undirected overlay is a single component, so
  a cascade started anywhere reaches everyone.
* **hop bound** -- BFS notification hops never exceed
  ``max_notification_hops_bound``: the paper's ceil(ceil(log2 n)/2)
  for k=2, ceil(log_k n) for higher bases.
"""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.overlay import (
    logring_neighbors,
    max_notification_hops_bound,
    notification_hops,
    undirected_neighbors,
)

nk = {"n": st.integers(1, 300), "k": st.integers(2, 8)}


def incoming_by_scan(rank, n, k):
    """Ground truth: every rank whose outgoing list contains ``rank``."""
    return {p for p in range(n) if p != rank and rank in logring_neighbors(p, n, k)}


def incoming_closed_form(rank, n, k):
    """The detector's O(log n) mirror computation, verbatim."""
    out = logring_neighbors(rank, n, k)
    offsets = [(peer - rank) % n for peer in out]
    return {(rank - off) % n for off in offsets} - {rank}


# ------------------------------------------------------- mirror symmetry
@settings(max_examples=150, deadline=None)
@given(**nk, rank=st.integers(0, 10**6))
def test_incoming_edges_mirror_outgoing(n, k, rank):
    rank %= n
    assert incoming_closed_form(rank, n, k) == incoming_by_scan(rank, n, k)


@settings(max_examples=100, deadline=None)
@given(**nk)
def test_every_edge_is_known_to_both_ends(n, k):
    """a lists b (in or out) iff b lists a -- the join-time registration
    of disconnect callbacks on both endpoints depends on it."""
    full = {
        r: set(logring_neighbors(r, n, k)) | incoming_closed_form(r, n, k)
        for r in range(n)
    }
    for r, peers in full.items():
        for p in peers:
            assert r in full[p]


@settings(max_examples=100, deadline=None)
@given(**nk)
def test_out_degree_is_logarithmic(n, k):
    """Out-degree never exceeds (k-1) * ceil(log_k n) -- the detector's
    2x table bound builds on this."""
    import math

    cap = (k - 1) * max(1, math.ceil(math.log(n, k))) if n > 1 else 0
    for r in range(n):
        assert len(logring_neighbors(r, n, k)) <= cap


# ----------------------------------------------------------- connectivity
@settings(max_examples=100, deadline=None)
@given(**nk)
def test_overlay_is_connected(n, k):
    adj = undirected_neighbors(n, k)
    seen = {0}
    frontier = deque([0])
    while frontier:
        for peer in adj[frontier.popleft()]:
            if peer not in seen:
                seen.add(peer)
                frontier.append(peer)
    assert seen == set(range(n))


@settings(max_examples=100, deadline=None)
@given(**nk, failed=st.integers(0, 10**6))
def test_every_survivor_is_notified(n, k, failed):
    failed %= n
    hops = notification_hops(n, failed, k)
    assert set(hops) == set(range(n)) - {failed}


# -------------------------------------------------------------- hop bound
@settings(max_examples=150, deadline=None)
@given(**nk, failed=st.integers(0, 10**6))
def test_cascade_hops_within_bound(n, k, failed):
    if n < 2:
        return
    failed %= n
    hops = notification_hops(n, failed, k)
    assert max(hops.values()) <= max_notification_hops_bound(n, k)


@settings(max_examples=60, deadline=None)
@given(n=st.integers(3, 4096))
def test_k2_bound_matches_paper_formula(n):
    import math

    assert max_notification_hops_bound(n, 2) == math.ceil(
        math.ceil(math.log2(n)) / 2
    )


def test_k2_bound_is_tight_at_figure7_scale():
    # n=16: every rank hears within 2 hops, and 2 hops are needed.
    hops = notification_hops(16, 0, 2)
    assert max(hops.values()) == 2 == max_notification_hops_bound(16, 2)
