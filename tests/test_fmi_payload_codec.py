"""Payload semantics and the XOR erasure codec."""

import numpy as np
import pytest

from repro.fmi.payload import Payload
from repro.fmi.xor_codec import (
    chunk_of_slot,
    encode_group,
    reconstruct_rank,
    slot_of_chunk,
    split_into_chunks,
)
from repro.fmi.xor_group import XorGroupLayout


# ----------------------------------------------------------------- Payload
def test_wrap_roundtrip():
    arr = np.arange(100, dtype=np.float64)
    p = Payload.wrap(arr)
    assert p.exact
    assert p.nbytes == arr.nbytes
    assert np.array_equal(np.frombuffer(p.tobytes(), dtype=np.float64), arr)


def test_wrap_copies():
    arr = np.zeros(10, dtype=np.uint8)
    p = Payload.wrap(arr)
    arr[0] = 99
    assert p.data[0] == 0


def test_wrap_bytes():
    p = Payload.wrap(b"hello")
    assert p.tobytes() == b"hello"


def test_synthetic_declared_vs_real():
    p = Payload.synthetic(6e9, seed=1, rep_bytes=128)
    assert p.nbytes == 6e9
    assert p.data.nbytes == 128
    assert not p.exact
    # deterministic
    q = Payload.synthetic(6e9, seed=1, rep_bytes=128)
    assert p == q


def test_declared_smaller_than_real_rejected():
    with pytest.raises(ValueError):
        Payload(np.zeros(100, dtype=np.uint8), nbytes=10)


def test_xor_inplace_self_inverse():
    a = Payload.wrap(np.random.default_rng(0).integers(0, 256, 64, dtype=np.uint8))
    b = Payload.wrap(np.random.default_rng(1).integers(0, 256, 64, dtype=np.uint8))
    orig = a.copy()
    a.xor_inplace(b).xor_inplace(b)
    assert a == orig


def test_xor_mismatched_lengths_rejected():
    a = Payload.wrap(np.zeros(8, dtype=np.uint8))
    b = Payload.wrap(np.zeros(9, dtype=np.uint8))
    with pytest.raises(ValueError):
        a.xor_inplace(b)


def test_split_join_roundtrip():
    data = np.arange(103, dtype=np.uint8)  # deliberately not divisible
    p = Payload.wrap(data)
    for k in (1, 2, 3, 7, 103, 200):
        chunks = p.split(k)
        assert len(chunks) == k
        assert len({c.data.nbytes for c in chunks}) == 1  # equal chunks
        back = Payload.join(chunks, data_len=p.data.nbytes, nbytes=p.nbytes)
        assert back == p


def test_padded():
    p = Payload.wrap(b"abc")
    q = p.padded(10, nbytes=10)
    assert q.data.nbytes == 10
    assert q.tobytes() == b"abc" + b"\x00" * 7
    with pytest.raises(ValueError):
        p.padded(1, nbytes=1)


def test_split_validates():
    with pytest.raises(ValueError):
        Payload.wrap(b"abc").split(0)


# ------------------------------------------------------------------- codec
def test_slot_assignment_bijection():
    n = 8
    for r in range(n):
        slots = [slot_of_chunk(r, m, n) for m in range(n - 1)]
        assert r not in slots  # never its own slot
        assert sorted(slots) == sorted(set(range(n)) - {r})
        for m in range(n - 1):
            assert chunk_of_slot(r, slot_of_chunk(r, m, n), n) == m


def test_chunk_of_own_slot_rejected():
    with pytest.raises(ValueError):
        chunk_of_slot(3, 3, 8)


def test_slot_of_chunk_range_check():
    with pytest.raises(ValueError):
        slot_of_chunk(0, 7, 8)  # only n-1 = 7 chunks: m in 0..6


def _random_group(n, size, seed=0):
    rng = np.random.default_rng(seed)
    return [
        Payload.wrap(rng.integers(0, 256, size, dtype=np.uint8)) for _ in range(n)
    ]


@pytest.mark.parametrize("n", [2, 3, 4, 8, 16])
def test_encode_then_reconstruct_any_single_failure(n):
    payloads = _random_group(n, size=240, seed=n)
    parity = encode_group(payloads)
    for f in range(n):
        survivors = {r: payloads[r] for r in range(n) if r != f}
        slots = {j: parity[j] for j in range(n) if j != f}
        rebuilt = reconstruct_rank(
            f, survivors, slots, n,
            data_len=payloads[f].data.nbytes, nbytes=payloads[f].nbytes,
        )
        assert rebuilt == payloads[f]


def test_parity_overhead_fraction():
    # Group size 16: parity is 1/15 = 6.67 % of the checkpoint (paper's 6.6 %).
    n = 16
    payloads = _random_group(n, size=15 * 64, seed=3)
    parity = encode_group(payloads)
    frac = parity[0].data.nbytes / payloads[0].data.nbytes
    assert frac == pytest.approx(1 / 15, rel=1e-6)


def test_encode_requires_equal_lengths():
    a = Payload.wrap(np.zeros(16, dtype=np.uint8))
    b = Payload.wrap(np.zeros(17, dtype=np.uint8))
    with pytest.raises(ValueError):
        encode_group([a, b])


def test_encode_group_too_small():
    with pytest.raises(ValueError):
        encode_group([Payload.wrap(b"x")])
    with pytest.raises(ValueError):
        split_into_chunks(Payload.wrap(b"x"), 1)


def test_reconstruct_validates_survivors():
    payloads = _random_group(4, 30)
    parity = encode_group(payloads)
    with pytest.raises(ValueError):
        reconstruct_rank(0, {0: payloads[0], 1: payloads[1]}, dict(enumerate(parity)), 4, 30, 30.0)
    with pytest.raises(ValueError):
        reconstruct_rank(0, {1: payloads[1]}, dict(enumerate(parity)), 4, 30, 30.0)


# -------------------------------------------------------------- group layout
def test_layout_same_node_different_groups():
    lay = XorGroupLayout(num_ranks=96, procs_per_node=12, group_size=4)
    for node in range(8):
        node_ranks = [r for r in range(96) if lay.node_of(r) == node]
        groups = [lay.group_of(r) for r in node_ranks]
        assert len(set(groups)) == len(groups)


def test_layout_groups_span_distinct_nodes():
    lay = XorGroupLayout(num_ranks=96, procs_per_node=12, group_size=4)
    for g in range(lay.num_groups):
        members = lay.members(g)
        assert len(members) == 4
        nodes = [lay.node_of(r) for r in members]
        assert len(set(nodes)) == 4


def test_layout_membership_consistency():
    lay = XorGroupLayout(num_ranks=48, procs_per_node=4, group_size=3)
    for r in range(48):
        g = lay.group_of(r)
        members = lay.members(g)
        assert r in members
        assert members[lay.position_in_group(r)] == r
    assert lay.num_groups == (48 // 4 // 3) * 4


def test_layout_validation():
    with pytest.raises(ValueError):
        XorGroupLayout(10, 3, 2)  # not divisible
    with pytest.raises(ValueError):
        XorGroupLayout(12, 4, 2)  # 3 nodes not multiple of group 2
    with pytest.raises(ValueError):
        XorGroupLayout(12, 4, 1)  # group too small
    lay = XorGroupLayout(12, 4, 3)
    with pytest.raises(ValueError):
        lay.group_of(12)
    with pytest.raises(ValueError):
        lay.members(99)
