"""Property test: traced notifications respect the Figure-8 hop bound.

For random cluster sizes n in [2, 256] (one rank per node) and a
random victim, crash one node mid-run and check -- from the tracer's
``overlay.notified`` events, i.e. the *live* detector, not the graph
math -- that every survivor hears about the failure, and that no
notification travels more than ``ceil(ceil(log2 n)/2)`` overlay hops.
This closes the previously untested end-to-end bound behind Fig 8/13.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.net.overlay import max_notification_hops_bound
from repro.obs import Tracer
from repro.obs.summary import notification_summary
from repro.simt import Simulator
from repro.simt.rng import RngRegistry

CRASH_AT = 5.0


def idle_app(fmi):
    u = np.zeros(2)
    yield from fmi.init()
    while True:
        n = yield from fmi.loop([u])
        if n >= 1000:
            break
        yield fmi.elapse(0.5)
    yield from fmi.finalize()


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 256),
    victim_pick=st.integers(0, 2**31),
    seed=st.integers(0, 2**31),
)
def test_traced_notifications_within_logring_bound(n, victim_pick, seed):
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(n + 1), RngRegistry(seed))
    tracer = Tracer(sim)
    job = FmiJob(
        machine, idle_app, num_ranks=n, procs_per_node=1,
        # Checkpointing is off (this test is purely about the overlay),
        # which skips the mandatory first checkpoint -- an O(n^2)-message
        # ring at group size n.  One whole-job XOR group because the
        # layout is still built and must divide the node count.
        config=FmiConfig(xor_group_size=n, spare_nodes=1,
                         checkpoint_enabled=False),
    )
    job.launch()
    victim_slot = victim_pick % n
    victim = job.fmirun.node_slots[victim_slot]

    def killer():
        yield sim.timeout(CRASH_AT)
        victim.crash("property-test")

    sim.spawn(killer())
    # The cascade finishes within ibverbs_close_delay + hops*hop_delay
    # (< 0.3 s); no need to simulate the subsequent recovery.
    sim.run(until=CRASH_AT + 0.5)

    summary = notification_summary(tracer)
    if n == 1:  # pragma: no cover - excluded by the strategy
        return
    gen1 = summary[1]
    survivors = n - 1
    bound = max_notification_hops_bound(n)
    assert gen1["count"] == survivors, (
        f"n={n}: log-ring reached {gen1['count']}/{survivors} survivors"
    )
    assert gen1["max_hop"] <= bound, (
        f"n={n}: notification took {gen1['max_hop']} hops, bound {bound}"
    )
    # Every notified rank is a distinct survivor (no double counting).
    notified_ranks = {
        ev.rank for ev in tracer.select(cat="overlay", name="overlay.notified")
        if ev.epoch == 1
    }
    assert len(notified_ranks) == survivors
    assert victim_slot not in notified_ranks
    # Timing is consistent with the hop counts: ibverbs constant plus
    # per-hop cascade delays.
    net = SIERRA.network
    worst = net.ibverbs_close_delay + (gen1["max_hop"] - 1) * net.notify_hop_delay
    assert gen1["latency"] <= worst + 1e-9
