"""Unit tests for Store, Resource, and fair-share BandwidthResource."""

import pytest

from repro.simt import BandwidthResource, Resource, Simulator, Store
from repro.simt.primitives import AllOf, AnyOf


# ----------------------------------------------------------------- Store
def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.spawn(consumer())

    def producer():
        yield sim.timeout(1.0)
        store.put("a")
        store.put("b")
        store.put("c")

    sim.spawn(producer())
    sim.run()
    assert got == ["a", "b", "c"]


def test_store_get_before_put_blocks():
    sim = Simulator()
    store = Store(sim)
    times = []

    def consumer():
        yield store.get()
        times.append(sim.now)

    sim.spawn(consumer())

    def producer():
        yield sim.timeout(3.0)
        store.put(1)

    sim.spawn(producer())
    sim.run()
    assert times == [3.0]


def test_store_put_before_get_immediate():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    assert len(store) == 1
    out = []

    def consumer():
        out.append((yield store.get()))

    sim.spawn(consumer())
    sim.run()
    assert out == ["x"] and len(store) == 0


def test_store_skips_dead_getters():
    sim = Simulator()
    store = Store(sim)
    got = []

    def doomed():
        yield store.get()
        got.append("doomed")  # pragma: no cover

    def survivor():
        got.append((yield store.get()))

    d = sim.spawn(doomed())
    sim.spawn(survivor())

    def driver():
        yield sim.timeout(1.0)
        d.kill()
        yield sim.timeout(1.0)
        store.put("item")

    sim.spawn(driver())
    sim.run()
    assert got == ["item"]


# --------------------------------------------------------------- Resource
def test_resource_capacity_blocks():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def user(name, hold):
        yield res.acquire()
        log.append((name, "in", sim.now))
        yield sim.timeout(hold)
        res.release()
        log.append((name, "out", sim.now))

    sim.spawn(user("a", 2.0))
    sim.spawn(user("b", 1.0))
    sim.run()
    assert log == [
        ("a", "in", 0.0),
        ("a", "out", 2.0),
        ("b", "in", 2.0),
        ("b", "out", 3.0),
    ]


def test_resource_multi_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    starts = []

    def user(name):
        yield res.acquire()
        starts.append((name, sim.now))
        yield sim.timeout(1.0)
        res.release()

    for n in ("a", "b", "c"):
        sim.spawn(user(n))
    sim.run()
    assert starts == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_resource_release_without_acquire_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_bad_capacity():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


# ------------------------------------------------------ BandwidthResource
def test_bandwidth_single_flow_time():
    sim = Simulator()
    bw = BandwidthResource(sim, capacity=100.0)  # 100 B/s
    done = bw.transfer(200.0)
    sim.run(until=done)
    assert sim.now == pytest.approx(2.0)


def test_bandwidth_two_equal_flows_share_fairly():
    sim = Simulator()
    bw = BandwidthResource(sim, capacity=100.0)
    d1 = bw.transfer(100.0)
    d2 = bw.transfer(100.0)
    ends = []
    d1.callbacks.append(lambda e: ends.append(("d1", sim.now)))
    d2.callbacks.append(lambda e: ends.append(("d2", sim.now)))
    sim.run()
    # Both at 50 B/s -> both finish at t=2 (not 1 and 2).
    assert ends[0][1] == pytest.approx(2.0)
    assert ends[1][1] == pytest.approx(2.0)


def test_bandwidth_staggered_flows():
    sim = Simulator()
    bw = BandwidthResource(sim, capacity=100.0)
    ends = {}

    def flow(name, start, nbytes):
        yield sim.timeout(start)
        yield bw.transfer(nbytes)
        ends[name] = sim.now

    # f1 alone [0,1): moves 100B. Then shares: 50 B/s each.
    # f1 has 100B left -> 2 more seconds -> ends t=3.
    # f2 (100B) also ends t=3... wait f2 has 100B at 50B/s = 2s -> t=3. Then none left.
    sim.spawn(flow("f1", 0.0, 200.0))
    sim.spawn(flow("f2", 1.0, 100.0))
    sim.run()
    assert ends["f1"] == pytest.approx(3.0)
    assert ends["f2"] == pytest.approx(3.0)


def test_bandwidth_short_flow_releases_capacity():
    sim = Simulator()
    bw = BandwidthResource(sim, capacity=100.0)
    ends = {}

    def flow(name, nbytes):
        yield bw.transfer(nbytes)
        ends[name] = sim.now

    # Together at 50 B/s: f_small (50B) done at t=1.
    # f_big then has 150B left alone at 100B/s -> done at t=2.5.
    sim.spawn(flow("big", 200.0))
    sim.spawn(flow("small", 50.0))
    sim.run()
    assert ends["small"] == pytest.approx(1.0)
    assert ends["big"] == pytest.approx(2.5)


def test_bandwidth_overhead_added_before_bytes():
    sim = Simulator()
    bw = BandwidthResource(sim, capacity=100.0)
    done = bw.transfer(100.0, overhead=0.5)
    sim.run(until=done)
    assert sim.now == pytest.approx(1.5)


def test_bandwidth_zero_bytes_is_instant_after_overhead():
    sim = Simulator()
    bw = BandwidthResource(sim, capacity=10.0)
    done = bw.transfer(0.0, overhead=0.25)
    sim.run(until=done)
    assert sim.now == pytest.approx(0.25)


def test_bandwidth_rejects_negative():
    sim = Simulator()
    bw = BandwidthResource(sim, capacity=10.0)
    with pytest.raises(ValueError):
        bw.transfer(-1.0)
    with pytest.raises(ValueError):
        BandwidthResource(sim, capacity=0.0)


def test_bandwidth_bytes_done_accounting():
    sim = Simulator()
    bw = BandwidthResource(sim, capacity=100.0)
    bw.transfer(30.0)
    bw.transfer(70.0)
    sim.run()
    assert bw.bytes_done == pytest.approx(100.0)


def test_bandwidth_many_flows_aggregate_time():
    sim = Simulator()
    bw = BandwidthResource(sim, capacity=100.0)
    events = [bw.transfer(10.0) for _ in range(10)]
    sim.run()
    # 100 bytes total through a 100 B/s pipe: all end at t=1.
    assert sim.now == pytest.approx(1.0)
    assert all(e.processed for e in events)


# ---------------------------------------------------------------- AllOf/AnyOf
def test_allof_collects_values_in_order():
    sim = Simulator()
    e1, e2 = sim.timeout(2.0, "two"), sim.timeout(1.0, "one")
    both = AllOf(sim, [e1, e2])
    sim.run(until=both)
    assert both.value == ["two", "one"]
    assert sim.now == pytest.approx(2.0)


def test_allof_empty_succeeds_immediately():
    sim = Simulator()
    all_evt = AllOf(sim, [])
    sim.run()
    assert all_evt.value == []


def test_allof_fails_fast():
    sim = Simulator()
    bad = sim.event()
    slow = sim.timeout(10.0)
    trig = sim.timeout(1.0)
    trig.callbacks.append(lambda e: bad.fail(ValueError("nope")))
    both = AllOf(sim, [slow, bad])
    with pytest.raises(ValueError):
        sim.run(until=both)
    assert sim.now == pytest.approx(1.0)


def test_anyof_first_wins():
    sim = Simulator()
    e1, e2 = sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")
    race = AnyOf(sim, [e1, e2])
    sim.run(until=race)
    assert race.value == (1, "fast")
    assert sim.now == pytest.approx(1.0)


def test_anyof_requires_events():
    with pytest.raises(ValueError):
        AnyOf(Simulator(), [])


def test_anyof_with_processed_event():
    sim = Simulator()
    evt = sim.event()
    evt.succeed("pre")
    sim.run()
    race = AnyOf(sim, [evt, sim.timeout(9.0)])
    sim.run(until=race)
    assert race.value == (0, "pre")
