"""Conformance: the indexed matching engine vs the linear oracle.

The indexed :class:`MatchingEngine` reorganised both queues into
hash-bucket indexes; this file is the proof it kept the observable
semantics.  Hypothesis drives the indexed engine and the pre-refactor
:class:`ReferenceMatchingEngine` with the *same* random sequence of
post / deliver / probe / cancel / reset operations and asserts:

* identical match outcomes -- every posted receive ends in the same
  state (pending / matched-with-the-same-envelope / cancelled /
  failed) in both engines, which pins the match *order*;
* identical inline observations (probe results, cancel return values,
  reset ``(cancelled, purged)`` tuples);
* FIFO non-overtaking -- concrete-pattern receives match envelopes of
  their pattern in delivery order;
* identical counters.  ``pruned_dead``/``swept_dead``/``posted_count``
  are deliberately *excluded*: the indexed engine's background
  compaction retires dead entries the linear engine only prunes when a
  delivery walks over them, so the split between "pruned" and "swept"
  differs even though the set of dead entries removed is the same.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.matching import ANY_SOURCE, ANY_TAG, MatchingEngine
from repro.net.matching_reference import ReferenceMatchingEngine
from repro.net.message import Envelope
from repro.simt import Simulator

_SOURCES = st.integers(0, 3)
_TAGS = st.integers(0, 2)
_COMMS = st.integers(0, 1)
_PATTERN_SOURCES = st.one_of(_SOURCES, st.just(ANY_SOURCE))
_PATTERN_TAGS = st.one_of(_TAGS, st.just(ANY_TAG))

_OP = st.one_of(
    st.tuples(st.just("post"), _PATTERN_SOURCES, _PATTERN_TAGS, _COMMS),
    st.tuples(st.just("deliver"), _SOURCES, _TAGS, _COMMS),
    st.tuples(st.just("probe"), _PATTERN_SOURCES, _PATTERN_TAGS, _COMMS),
    st.tuples(st.just("cancel"), st.integers(0, 2**30)),
    st.tuples(st.just("reset")),
)
_OPS = st.lists(_OP, min_size=1, max_size=120)

#: counters that must agree exactly between the two engines
_COMPARED_COUNTERS = (
    "delivered",
    "matched_posted",
    "matched_unexpected",
    "cancelled_total",
    "purged_total",
)


def _run_engine(engine_cls, ops):
    """Apply ``ops``; return (inline trace, per-post outcomes, counters).

    Envelope payload/seq is the delivery index, so "which envelope did
    this receive get" is comparable across engines.
    """
    sim = Simulator()
    eng = engine_cls(sim)
    posts = []       # (event, source, tag, comm_id) in post order
    trace = []       # inline observations, in op order
    deliveries = 0
    for op in ops:
        kind = op[0]
        if kind == "post":
            _, src, tag, comm = op
            posts.append((eng.post(src, tag, comm), src, tag, comm))
        elif kind == "deliver":
            _, src, tag, comm = op
            eng.deliver(
                Envelope(src, 99, tag, comm, 0, 8.0,
                         data=deliveries, seq=deliveries)
            )
            deliveries += 1
        elif kind == "probe":
            _, src, tag, comm = op
            got = eng.probe(src, tag, comm)
            trace.append(("probe", None if got is None else got.data))
        elif kind == "cancel":
            if posts:
                idx = op[1] % len(posts)
                trace.append(("cancel", idx, posts[idx][0].cancel()))
        else:  # reset
            trace.append(("reset", eng.reset()))
        sim.run()  # drain match callbacks so `triggered` settles per op
    outcomes = []
    for evt, src, tag, comm in posts:
        if evt.cancelled:
            state = "cancelled"
        elif not evt.triggered:
            state = "pending"
        elif evt.ok:
            state = ("matched", evt.value.data)
        else:
            state = ("failed", type(evt.value).__name__)
        outcomes.append((state, src, tag, comm))
    counters = {name: getattr(eng, name) for name in _COMPARED_COUNTERS}
    counters["unexpected_count"] = eng.unexpected_count
    counters["pending_posted"] = eng.pending_posted
    return trace, outcomes, counters


@settings(max_examples=200, deadline=None)
@given(ops=_OPS)
def test_indexed_engine_matches_linear_oracle(ops):
    indexed = _run_engine(MatchingEngine, ops)
    reference = _run_engine(ReferenceMatchingEngine, ops)
    assert indexed[0] == reference[0], "inline probe/cancel/reset traces differ"
    assert indexed[1] == reference[1], "per-post match outcomes differ"
    assert indexed[2] == reference[2], "counters differ"


@settings(max_examples=200, deadline=None)
@given(ops=_OPS)
def test_indexed_engine_fifo_non_overtaking(ops):
    _, outcomes, _ = _run_engine(MatchingEngine, ops)
    # Among concrete-pattern receives of the same (comm, src, tag),
    # matched envelopes must appear in delivery order -- the MPI
    # non-overtaking rule the apps rely on.
    last_seen = {}
    for state, src, tag, comm in outcomes:
        if src == ANY_SOURCE or tag == ANY_TAG:
            continue
        if not (isinstance(state, tuple) and state[0] == "matched"):
            continue
        key = (comm, src, tag)
        assert state[1] > last_seen.get(key, -1), (
            f"receive on {key} overtook an earlier one: got envelope "
            f"{state[1]} after {last_seen[key]}"
        )
        last_seen[key] = state[1]
