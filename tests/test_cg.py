"""Conjugate gradient on both runtimes, with and without failures."""

import numpy as np
import pytest

from repro.apps.cg import cg_fmi_app, cg_mpi_app, make_spd_problem
from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.mpi.runtime import MpiJob
from repro.simt import Simulator
from repro.simt.rng import RngRegistry

N = 32
ITERS = 24  # CG on a well-conditioned 32x32 SPD system converges well


def make(num_nodes, seed=0):
    sim = Simulator()
    return sim, Machine(sim, SIERRA.with_nodes(num_nodes), RngRegistry(seed))


def test_cg_mpi_converges_to_true_solution():
    sim, machine = make(4)
    job = MpiJob(machine, cg_mpi_app(N, ITERS), nprocs=4, charge_init=False)
    results = sim.run(until=job.launch())
    _a, _b, x_true = make_spd_problem(N)
    for x in results:
        assert np.allclose(x, x_true, atol=1e-6)


def test_cg_fmi_matches_mpi_bitwise():
    sim1, m1 = make(4)
    ref = sim1.run(until=MpiJob(m1, cg_mpi_app(N, ITERS), nprocs=4,
                                charge_init=False).launch())
    sim2, m2 = make(6)
    job = FmiJob(m2, cg_fmi_app(N, ITERS), num_ranks=4,
                 config=FmiConfig(interval=2, xor_group_size=4, spare_nodes=0))
    out = sim2.run(until=job.launch())
    for a, b in zip(ref, out):
        assert np.array_equal(a, b)


def test_cg_fmi_survives_crash_same_answer():
    """CG amplifies any state corruption: surviving a crash with a
    bit-identical solution is a strong rollback-correctness check."""
    sim1, m1 = make(6, seed=1)
    clean_job = FmiJob(m1, cg_fmi_app(N, ITERS, extra_work_s=0.3),
                       num_ranks=4,
                       config=FmiConfig(interval=1, xor_group_size=4,
                                        spare_nodes=0))
    clean = sim1.run(until=clean_job.launch())

    sim2, m2 = make(6, seed=2)
    job = FmiJob(m2, cg_fmi_app(N, ITERS, extra_work_s=0.3), num_ranks=4,
                 config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=1))
    done = job.launch()

    def killer():
        yield sim2.timeout(3.0)
        job.fmirun.node_slots[1].crash("cg-test")

    sim2.spawn(killer())
    faulty = sim2.run(until=done)
    assert job.recovery_count == 1
    for a, b in zip(clean, faulty):
        assert np.array_equal(a, b)
    _a, _b, x_true = make_spd_problem(N)
    assert np.allclose(faulty[0], x_true, atol=1e-6)


def test_cg_validates_divisibility():
    sim, machine = make(4)
    job = MpiJob(machine, cg_mpi_app(30, 4), nprocs=4, charge_init=False)
    with pytest.raises(Exception, match="divide evenly"):
        sim.run(until=job.launch())
