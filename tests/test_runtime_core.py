"""The shared runtime core: both launch stacks on one chassis.

MpiJob and FmiJob are the same :class:`~repro.runtime.core.JobBase`
machinery behind different :class:`~repro.runtime.policy.FaultPolicy`
strategies -- these tests pin that contract, plus the error paths of
the survivable policy's graceful drain and the restart driver's
``max_restarts`` exhaustion.
"""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.fmi.runtime import Fmirun
from repro.mpi.runtime import JobAborted, MpiJob, MpiRestartDriver
from repro.runtime import FailStop, JobBase, RankProcess, Survivable
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


def make(num_nodes=12, seed=0):
    sim = Simulator()
    return sim, Machine(sim, SIERRA.with_nodes(num_nodes), RngRegistry(seed))


def fmi_app(num_loops, work=0.4):
    def app(fmi):
        u = np.zeros(4, dtype=np.float64)
        yield from fmi.init()
        while True:
            n = yield from fmi.loop([u])
            if n >= num_loops:
                break
            yield fmi.elapse(work)
            u[0] = n + 1.0
        yield from fmi.finalize()
        return u.copy()

    return app


def launch_fmi(sim, machine, num_loops=6, work=0.4, spares=1):
    job = FmiJob(
        machine, fmi_app(num_loops, work), num_ranks=16, procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=spares),
    )
    return job, job.launch()


# --------------------------------------------------------- shared machinery
def test_both_stacks_share_the_runtime_core():
    sim, machine = make()

    def mpi_app(mpi):
        yield mpi.elapse(0.1)
        return mpi.rank

    mpi_job = MpiJob(machine, mpi_app, nprocs=8, procs_per_node=2,
                     charge_init=False)
    fmi_job = FmiJob(machine, fmi_app(1, work=0.1), num_ranks=8,
                     procs_per_node=2,
                     config=FmiConfig(interval=1, xor_group_size=2))

    # One chassis, two fault policies.
    assert isinstance(mpi_job, JobBase) and isinstance(fmi_job, JobBase)
    assert isinstance(mpi_job.policy, FailStop)
    assert isinstance(fmi_job.policy, Survivable)
    assert fmi_job.fmirun is fmi_job.policy
    assert isinstance(fmi_job.fmirun, Fmirun)

    done_mpi = mpi_job.launch()
    done_fmi = fmi_job.launch()
    sim.run(until=done_mpi)
    sim.run(until=done_fmi)

    # Both stacks fill the same blackboard: rank processes and the
    # virtual-rank endpoint table.
    for job in (mpi_job, fmi_job):
        assert sorted(job.rank_procs) == list(range(8))
        assert all(isinstance(rp, RankProcess) for rp in job.rank_procs.values())
        assert sorted(job.addr_table) == list(range(8))
        assert job.finished


def test_double_launch_rejected():
    sim, machine = make()

    def app(mpi):
        yield mpi.elapse(0.1)

    job = MpiJob(machine, app, nprocs=4, charge_init=False)
    done = job.launch()
    with pytest.raises(RuntimeError, match="already launched"):
        job.launch()
    sim.run(until=done)


def test_geometry_validation_shared():
    sim, machine = make()
    with pytest.raises(ValueError):
        FmiJob(machine, fmi_app(1), num_ranks=5, procs_per_node=2)
    with pytest.raises(ValueError):
        MpiJob(machine, lambda api: iter(()), nprocs=5, procs_per_node=2)


def test_failstop_failed_bind_releases_allocation():
    # Regression: when bind raised "not enough nodes" while an
    # srun-style allocation was held, the nodes were never returned to
    # the resource manager.
    sim, machine = make(num_nodes=6)
    idle0 = machine.rm.idle_count

    def app(mpi):
        yield mpi.elapse(0.1)

    policy = FailStop(charge_init=False)
    JobBase(machine, app, num_ranks=4, procs_per_node=2, policy=policy,
            name="a")
    assert machine.rm.idle_count == idle0 - 2
    # Re-binding the (single-use) policy to a bigger job fails while the
    # first bind's allocation is still held; the error path must give
    # those nodes back instead of leaking them.
    with pytest.raises(ValueError, match="not enough nodes"):
        JobBase(machine, app, num_ranks=8, procs_per_node=1,
                policy=policy, name="b")
    assert machine.rm.idle_count == idle0


# -------------------------------------------------------- drain error paths
def test_drain_finished_job_rejected():
    sim, machine = make()
    job, done = launch_fmi(sim, machine, num_loops=2)
    sim.run(until=done)
    with pytest.raises(RuntimeError, match="finished"):
        job.fmirun.drain_slot(0)


def test_drain_dead_node_rejected():
    sim, machine = make(seed=1)
    job, done = launch_fmi(sim, machine)
    checked = {}

    def driver():
        yield sim.timeout(1.0)
        # Crash the node and drain in the same instant: the task has
        # not observed the failure yet, but the node is already dead.
        job.fmirun.node_slots[5].crash("dead-node")
        try:
            job.fmirun.drain_slot(5)
        except RuntimeError as exc:
            checked["error"] = str(exc)

    sim.spawn(driver())
    sim.run(until=done)
    assert "not drainable" in checked["error"]


def test_drain_already_failed_task_rejected():
    sim, machine = make(seed=2)
    job, done = launch_fmi(sim, machine)
    checked = {}

    def driver():
        yield sim.timeout(1.0)
        job.fmirun.node_slots[3].crash("fail-first")
        # 10 ms later the replacement node is picked but the failed
        # task has not been re-spawned yet (spawn latency is 20 ms):
        # the slot holds a live node and a dead task.
        yield sim.timeout(0.01)
        assert job.fmirun.tasks[3].failed
        assert job.fmirun.node_slots[3].alive
        try:
            job.fmirun.drain_slot(3)
        except RuntimeError as exc:
            checked["error"] = str(exc)

    sim.spawn(driver())
    sim.run(until=done)
    assert "not drainable" in checked["error"]


# ------------------------------------------------- restart driver exhaustion
def test_restart_driver_zero_restarts_reraises_first_abort():
    sim, machine = make(8)

    def doomed(mpi):
        yield mpi.elapse(50.0)

    driver = MpiRestartDriver(
        machine, doomed, nprocs=8, procs_per_node=2, max_restarts=0
    )
    proc = sim.spawn(driver.run())

    def killer():
        yield sim.timeout(machine.spec.mpi_init_time(8) + 1.0)
        driver.jobs[0].nodes[0].crash("once")

    sim.spawn(killer())
    with pytest.raises(JobAborted):
        sim.run(until=proc)
    # max_restarts=0: the very first abort is final -- no relaunch.
    assert driver.restarts == 1
    assert len(driver.jobs) == 1
