"""Unit tests for generator processes: resume, interrupt, kill, join."""

import pytest

from repro.simt import Interrupt, Process, ProcessKilled, Simulator
from repro.simt.kernel import SimulationError


def test_process_runs_and_returns():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        return "result"

    proc = sim.spawn(worker())
    sim.run()
    assert sim.now == 3.0
    assert proc.ok and proc.value == "result"


def test_process_receives_event_value():
    sim = Simulator()
    seen = []

    def worker():
        v = yield sim.timeout(1.0, value="hello")
        seen.append(v)

    sim.spawn(worker())
    sim.run()
    assert seen == ["hello"]


def test_process_join():
    sim = Simulator()

    def child():
        yield sim.timeout(5.0)
        return 99

    def parent():
        v = yield sim.spawn(child())
        return v + 1

    p = sim.spawn(parent())
    sim.run()
    assert p.value == 100
    assert sim.now == 5.0


def test_failed_event_raises_in_generator():
    sim = Simulator()
    caught = []

    def worker():
        evt = sim.event()
        trig = sim.timeout(1.0)
        trig.callbacks.append(lambda e: evt.fail(ValueError("x")))
        try:
            yield evt
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(worker())
    sim.run()
    assert caught == ["x"]


def test_uncaught_exception_fails_process():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        raise RuntimeError("died")

    proc = sim.spawn(worker())
    sim.run()
    assert not proc.ok
    assert isinstance(proc.value, RuntimeError)


def test_interrupt_catchable():
    sim = Simulator()
    log = []

    def worker():
        try:
            yield sim.timeout(100.0)
        except Interrupt as i:
            log.append(("interrupted", sim.now, i.cause))
        yield sim.timeout(1.0)
        log.append(("done", sim.now))

    proc = sim.spawn(worker())

    def do_interrupt():
        yield sim.timeout(2.0)
        proc.interrupt("failure-notice")

    sim.spawn(do_interrupt())
    sim.run()
    assert log == [("interrupted", 2.0, "failure-notice"), ("done", 3.0)]


def test_interrupt_uncaught_fails_process():
    sim = Simulator()

    def worker():
        yield sim.timeout(100.0)

    proc = sim.spawn(worker())

    def do_interrupt():
        yield sim.timeout(1.0)
        proc.interrupt()

    sim.spawn(do_interrupt())
    sim.run()
    assert not proc.ok and isinstance(proc.value, Interrupt)


def test_kill_never_resumes_generator():
    sim = Simulator()
    trace = []

    def worker():
        trace.append("start")
        try:
            yield sim.timeout(100.0)
            trace.append("resumed")  # must never happen
        finally:
            trace.append("finally")

    proc = sim.spawn(worker())

    def killer():
        yield sim.timeout(1.0)
        proc.kill("node-crash")

    sim.spawn(killer())
    sim.run()
    assert trace == ["start", "finally"]
    assert not proc.ok
    assert isinstance(proc.value, ProcessKilled)
    assert proc.value.cause == "node-crash"


def test_kill_is_idempotent_and_safe_after_finish():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        return 7

    proc = sim.spawn(worker())
    sim.run()
    assert proc.value == 7
    proc.kill()  # no-op
    proc.interrupt()  # no-op
    assert proc.value == 7


def test_joining_killed_process_raises():
    sim = Simulator()

    def child():
        yield sim.timeout(100.0)

    def parent(c):
        try:
            yield c
        except ProcessKilled:
            return "saw-kill"

    c = sim.spawn(child())
    p = sim.spawn(parent(c))

    def killer():
        yield sim.timeout(1.0)
        c.kill()

    sim.spawn(killer())
    sim.run()
    assert p.value == "saw-kill"


def test_yield_non_event_is_error():
    sim = Simulator()

    def worker():
        yield 42

    proc = sim.spawn(worker())
    sim.run()
    assert not proc.ok
    assert isinstance(proc.value, SimulationError)


def test_yield_already_processed_event():
    sim = Simulator()

    def worker():
        evt = sim.event()
        evt.succeed("early")
        yield sim.timeout(1.0)
        v = yield evt  # processed long ago
        return v

    proc = sim.spawn(worker())
    sim.run()
    assert proc.value == "early"


def test_alive_property():
    sim = Simulator()

    def worker():
        yield sim.timeout(2.0)

    proc = sim.spawn(worker())
    assert proc.alive
    sim.run()
    assert not proc.alive


def test_active_process_visible_during_resume():
    sim = Simulator()
    seen = []

    def worker():
        seen.append(sim.active_process)
        yield sim.timeout(1.0)

    proc = sim.spawn(worker())
    sim.run()
    assert seen == [proc]
    assert sim.active_process is None


def test_process_immediate_return():
    sim = Simulator()

    def worker():
        return "quick"
        yield  # pragma: no cover - makes this a generator

    proc = sim.spawn(worker())
    sim.run()
    assert proc.value == "quick"
