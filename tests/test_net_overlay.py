"""Overlay topology math: the paper's Figure 7 example and the hop bound."""

import math

import pytest

from repro.net.overlay import (
    complete_neighbors,
    establishment_connections,
    logring_neighbors,
    max_notification_hops_bound,
    notification_hops,
    notification_schedule,
    ring_neighbors,
    undirected_neighbors,
)


def test_figure7_example_outgoing():
    # n=16: process 0 connects to 1, 2, 4, and 8.
    assert logring_neighbors(0, 16) == [1, 2, 4, 8]


def test_figure7_example_incoming():
    # ...and receives connections from 8, 12, 14, 15.
    incoming = sorted(
        r for r in range(16) if 0 in logring_neighbors(r, 16)
    )
    assert incoming == [8, 12, 14, 15]


def test_figure7_direct_notification_set():
    # If process 0 fails, 1, 2, 4, 8, 12, 14, 15 get ibverbs events.
    hops = notification_hops(16, failed=0)
    direct = sorted(r for r, h in hops.items() if h == 1)
    assert direct == [1, 2, 4, 8, 12, 14, 15]


def test_figure7_all_notified_in_two_hops():
    hops = notification_hops(16, failed=0)
    assert set(hops) == set(range(1, 16))
    assert max(hops.values()) == 2  # ceil(ceil(log2 16)/2) = 2


@pytest.mark.parametrize("n", [2, 3, 4, 7, 16, 48, 100, 512, 1536])
@pytest.mark.parametrize("failed", [0, 1])
def test_hop_bound_holds(n, failed):
    if failed >= n:
        pytest.skip("failed rank out of range")
    hops = notification_hops(n, failed=failed)
    assert set(hops) == set(range(n)) - {failed}
    assert max(hops.values()) <= max_notification_hops_bound(n)


@pytest.mark.parametrize("k", [3, 4])
def test_other_bases_cover_everyone_within_logk(k):
    # The paper only proves the /2 bound for k=2 ("we leave the
    # optimization of k for future work"); for larger bases we check
    # full coverage within ceil(log_k n) hops and the establishment
    # tradeoff: fewer levels, more hops.
    n = 81
    hops = notification_hops(n, failed=5, k=k)
    assert set(hops) == set(range(n)) - {5}
    assert max(hops.values()) <= math.ceil(math.log(n, k))


def test_logring_connection_count_logarithmic():
    for n in (16, 64, 1024):
        assert len(logring_neighbors(0, n)) == int(math.log2(n))


def test_ring_and_complete_shapes():
    assert ring_neighbors(5, 8) == [6]
    assert ring_neighbors(7, 8) == [0]
    assert ring_neighbors(0, 1) == []
    assert complete_neighbors(0, 4) == [1, 2, 3]
    assert complete_neighbors(3, 4) == []


def test_establishment_cost_ordering():
    # complete >> logring > ring, the paper's establishment-cost tradeoff.
    n = 64
    ring = establishment_connections(n, topology="ring")
    logr = establishment_connections(n, topology="logring")
    comp = establishment_connections(n, topology="complete")
    assert ring == n
    assert comp == n * (n - 1) // 2
    assert ring < logr < comp


def test_ring_notification_is_linear():
    hops = notification_hops(32, failed=0, topology="ring")
    assert max(hops.values()) == 16  # farthest rank, both directions


def test_complete_notification_is_one_hop():
    hops = notification_hops(32, failed=3, topology="complete")
    assert set(hops.values()) == {1}


def test_notification_schedule_times():
    sched = notification_schedule(16, failed=0, close_delay=0.2, hop_delay=0.025)
    assert sched[1] == pytest.approx(0.2)  # direct neighbour
    two_hop = [r for r, t in sched.items() if t == pytest.approx(0.225)]
    assert two_hop  # somebody needs the cascade


def test_small_n_edge_cases():
    assert logring_neighbors(0, 1) == []
    assert logring_neighbors(0, 2) == [1]
    assert notification_hops(2, failed=0) == {1: 1}
    assert max_notification_hops_bound(2) == 1


def test_validation():
    with pytest.raises(ValueError):
        logring_neighbors(0, 0)
    with pytest.raises(ValueError):
        logring_neighbors(5, 4)
    with pytest.raises(ValueError):
        logring_neighbors(0, 8, k=1)
    with pytest.raises(ValueError):
        undirected_neighbors(8, topology="torus")
