"""Unit tests for the DES kernel: events, clock, ordering, run modes."""

import pytest

from repro.simt import Event, Simulator, Timeout
from repro.simt.kernel import SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_timeouts_fire_in_time_order():
    sim = Simulator()
    fired = []
    for d in (3.0, 1.0, 2.0):
        t = sim.timeout(d)
        t.callbacks.append(lambda e, d=d: fired.append((sim.now, d)))
    sim.run()
    assert fired == [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for i in range(5):
        t = sim.timeout(1.0)
        t.callbacks.append(lambda e, i=i: fired.append(i))
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_event_succeed_value():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(42)
    sim.run()
    assert evt.processed and evt.ok and evt.value == 42


def test_event_fail_carries_exception():
    sim = Simulator()
    evt = sim.event()
    exc = ValueError("boom")
    evt.fail(exc)
    sim.run()
    assert evt.processed and not evt.ok and evt.value is exc


def test_double_trigger_rejected():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)
    with pytest.raises(SimulationError):
        evt.fail(ValueError())


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_value_before_trigger_raises():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(SimulationError):
        _ = evt.value
    with pytest.raises(SimulationError):
        _ = evt.ok


def test_run_until_time_stops_clock_there():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run()
    assert sim.now == 10.0


def test_run_until_event_returns_its_value():
    sim = Simulator()
    evt = sim.event()
    trigger = sim.timeout(5.0)
    trigger.callbacks.append(lambda e: evt.succeed("done"))
    assert sim.run(until=evt) == "done"
    assert sim.now == 5.0


def test_run_until_event_raises_on_failure():
    sim = Simulator()
    evt = sim.event()
    trigger = sim.timeout(1.0)
    trigger.callbacks.append(lambda e: evt.fail(RuntimeError("bad")))
    with pytest.raises(RuntimeError, match="bad"):
        sim.run(until=evt)


def test_run_until_event_never_fired_raises():
    sim = Simulator()
    evt = sim.event()
    sim.timeout(1.0)
    with pytest.raises(SimulationError):
        sim.run(until=evt)


def test_max_events_guard():
    sim = Simulator()

    def ping(_e):
        t = sim.timeout(1.0)
        t.callbacks.append(ping)

    ping(None)
    with pytest.raises(SimulationError, match="livelock"):
        sim.run(max_events=100)


def test_peek_empty_is_inf():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(3.0)
    assert sim.peek() == 3.0


def test_timeout_is_event_subclass():
    sim = Simulator()
    assert isinstance(sim.timeout(0.0), Event)
    assert isinstance(sim.timeout(0.0), Timeout)


# ------------------------------------------------------- cancellation
def test_cancel_untriggered_event():
    sim = Simulator()
    evt = Event(sim)
    assert evt.cancel() is True
    assert evt.cancelled
    assert not evt.triggered


def test_cancel_is_idempotent():
    sim = Simulator()
    evt = Event(sim)
    assert evt.cancel() is True
    assert evt.cancel() is False


def test_cancel_after_trigger_refused():
    sim = Simulator()
    evt = Event(sim).succeed("v")
    assert evt.cancel() is False
    assert not evt.cancelled


def test_succeed_and_fail_after_cancel_are_noops():
    # The in-flight completion of an operation whose waiter died must
    # not crash -- and must not resurrect the event.
    sim = Simulator()
    evt = Event(sim)
    evt.cancel()
    evt.succeed("late")
    evt.fail(RuntimeError("later"))
    sim.run()
    assert not evt.triggered and not evt.processed


def test_cancelled_event_on_heap_never_fires():
    sim = Simulator()
    fired = []
    first = sim.timeout(1.0)
    first.callbacks.append(lambda e: fired.append("first"))
    second = sim.timeout(2.0)
    second.callbacks.append(lambda e: fired.append("second"))
    assert second.cancel() is False  # Timeout is triggered at birth
    # An explicitly triggered-then-scheduled Event can still be
    # withdrawn before its callbacks run only via the callbacks list;
    # cancel() targets *untriggered* events, so drive one through a
    # waiter that cancels it before it is succeeded.
    evt = Event(sim)
    evt.callbacks.append(lambda e: fired.append("evt"))
    evt.cancel()
    evt.succeed(None)  # no-op: never reaches the heap
    sim.run()
    assert fired == ["first", "second"]


def test_cancel_hook_runs_synchronously():
    sim = Simulator()
    seen = []
    evt = Event(sim)
    evt._cancel_cb = seen.append
    evt.cancel()
    assert seen == [evt]
    # hook cleared: a second (refused) cancel never re-fires it
    evt.cancel()
    assert seen == [evt]


# ---------------------------------------------------------- run stats
def test_stats_count_events_and_peak_heap():
    sim = Simulator()
    for d in (1.0, 2.0, 3.0):
        sim.timeout(d)
    assert sim.stats.peak_heap == 3
    sim.run()
    assert sim.stats.events_processed == 3
    sim.timeout(1.0)
    sim.run()
    assert sim.stats.events_processed == 4  # cumulative


def test_stats_counted_even_when_run_raises():
    sim = Simulator()

    def ping(_e):
        t = sim.timeout(1.0)
        t.callbacks.append(ping)

    ping(None)
    with pytest.raises(SimulationError, match="livelock"):
        sim.run(max_events=10)
    assert sim.stats.events_processed == 10


def test_until_event_at_exactly_max_events_succeeds():
    # Regression: the awaited event completing on precisely the Nth
    # step used to raise the livelock error anyway.
    sim = Simulator()
    for d in (1.0, 2.0, 3.0):
        last = sim.timeout(d)
    assert sim.run(until=last, max_events=3) is None
    assert last.processed


def test_max_events_still_guards_past_the_awaited_event():
    sim = Simulator()
    sim.timeout(1.0)
    never = Event(sim)  # never triggered
    with pytest.raises(SimulationError, match="livelock"):
        sim.run(until=never, max_events=1)


# ------------------------------------------------------ callback pool
def test_callback_lists_are_recycled():
    sim = Simulator()
    t = sim.timeout(1.0)
    lst = t.callbacks
    t.callbacks.append(lambda e: None)
    sim.run()
    assert t.callbacks is None  # detached after processing
    reused = Event(sim)
    assert reused.callbacks is lst  # pooled list handed to the next event
    assert reused.callbacks == []


# ------------------------------------------------------- bulk completion
def test_bulk_completion_fires_batch_in_order():
    from repro.simt import BulkCompletion

    sim = Simulator()
    events = [Event(sim) for _ in range(4)]
    fired = []
    for i, evt in enumerate(events):
        evt.callbacks.append(lambda e, i=i: fired.append((sim.now, i, e.value)))
    BulkCompletion(sim, 2.0, [(evt, i * 10) for i, evt in enumerate(events)])
    sim.run()
    assert sim.now == 2.0
    assert fired == [(2.0, 0, 0), (2.0, 1, 10), (2.0, 2, 20), (2.0, 3, 30)]
    assert all(e.processed and e.ok for e in events)


def test_bulk_completion_skips_cancelled_and_triggered_entries():
    from repro.simt import BulkCompletion

    sim = Simulator()
    a, b, c = Event(sim), Event(sim), Event(sim)
    b.cancel()
    c.succeed("early")
    fired = []
    a.callbacks.append(lambda e: fired.append(e.value))
    BulkCompletion(sim, 1.0, [(a, "A"), (b, "B"), (c, "C")])
    sim.run()
    assert fired == ["A"]
    assert b.cancelled and not b.processed
    assert c.value == "early"


def test_bulk_completion_cancel_drops_whole_batch():
    from repro.simt import BulkCompletion

    sim = Simulator()
    events = [Event(sim) for _ in range(3)]
    bulk = BulkCompletion(sim, 1.0, [(e, None) for e in events])
    assert bulk.cancel()
    sim.run()
    assert all(not e.processed and not e.triggered for e in events)


def test_bulk_completion_resumes_waiting_processes():
    from repro.simt import BulkCompletion

    sim = Simulator()
    events = [Event(sim) for _ in range(3)]
    got = []

    def waiter(evt):
        value = yield evt
        got.append((sim.now, value))

    for i, evt in enumerate(events):
        sim.spawn(waiter(evt))
    BulkCompletion(sim, 0.5, [(e, i) for i, e in enumerate(events)])
    sim.run()
    assert got == [(0.5, 0), (0.5, 1), (0.5, 2)]
