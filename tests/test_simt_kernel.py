"""Unit tests for the DES kernel: events, clock, ordering, run modes."""

import pytest

from repro.simt import Event, Simulator, Timeout
from repro.simt.kernel import SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_timeouts_fire_in_time_order():
    sim = Simulator()
    fired = []
    for d in (3.0, 1.0, 2.0):
        t = sim.timeout(d)
        t.callbacks.append(lambda e, d=d: fired.append((sim.now, d)))
    sim.run()
    assert fired == [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for i in range(5):
        t = sim.timeout(1.0)
        t.callbacks.append(lambda e, i=i: fired.append(i))
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_event_succeed_value():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(42)
    sim.run()
    assert evt.processed and evt.ok and evt.value == 42


def test_event_fail_carries_exception():
    sim = Simulator()
    evt = sim.event()
    exc = ValueError("boom")
    evt.fail(exc)
    sim.run()
    assert evt.processed and not evt.ok and evt.value is exc


def test_double_trigger_rejected():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)
    with pytest.raises(SimulationError):
        evt.fail(ValueError())


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_value_before_trigger_raises():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(SimulationError):
        _ = evt.value
    with pytest.raises(SimulationError):
        _ = evt.ok


def test_run_until_time_stops_clock_there():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run()
    assert sim.now == 10.0


def test_run_until_event_returns_its_value():
    sim = Simulator()
    evt = sim.event()
    trigger = sim.timeout(5.0)
    trigger.callbacks.append(lambda e: evt.succeed("done"))
    assert sim.run(until=evt) == "done"
    assert sim.now == 5.0


def test_run_until_event_raises_on_failure():
    sim = Simulator()
    evt = sim.event()
    trigger = sim.timeout(1.0)
    trigger.callbacks.append(lambda e: evt.fail(RuntimeError("bad")))
    with pytest.raises(RuntimeError, match="bad"):
        sim.run(until=evt)


def test_run_until_event_never_fired_raises():
    sim = Simulator()
    evt = sim.event()
    sim.timeout(1.0)
    with pytest.raises(SimulationError):
        sim.run(until=evt)


def test_max_events_guard():
    sim = Simulator()

    def ping(_e):
        t = sim.timeout(1.0)
        t.callbacks.append(ping)

    ping(None)
    with pytest.raises(SimulationError, match="livelock"):
        sim.run(max_events=100)


def test_peek_empty_is_inf():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(3.0)
    assert sim.peek() == 3.0


def test_timeout_is_event_subclass():
    sim = Simulator()
    assert isinstance(sim.timeout(0.0), Event)
    assert isinstance(sim.timeout(0.0), Timeout)
