"""Multilevel C/R (level-2 PFS checkpoints) -- the paper's §VIII
future work, implemented: failures beyond XOR protection recover from
the PFS instead of aborting."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.fmi.errors import FmiAbort
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


def make(num_nodes=12, seed=0):
    sim = Simulator()
    return sim, Machine(sim, SIERRA.with_nodes(num_nodes), RngRegistry(seed))


def app_factory(num_loops, work=0.5):
    def app(fmi):
        u = np.zeros(6, dtype=np.float64)
        yield from fmi.init()
        while True:
            n = yield from fmi.loop([u])
            if n >= num_loops:
                break
            yield fmi.elapse(work)
            u[0] = n + 1.0
            u[1] = yield from fmi.allreduce(float(n))
        yield from fmi.finalize()
        return u.copy()

    return app


def launch(sim, machine, num_loops=6, level2_every=2, spares=2, work=0.5):
    job = FmiJob(
        machine, app_factory(num_loops, work), num_ranks=16, procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=spares,
                         level2_every=level2_every),
    )
    return job, job.launch()


def test_level2_flushes_at_cadence():
    sim, machine = make()
    job, done = launch(sim, machine, num_loops=6, level2_every=2, work=0.05)
    sim.run(until=done)
    # Checkpoints at loops 0..6; L2 flushes at 0, 2, 4, 6.
    assert job.level2_flushes == 4
    assert job.level2_restores == 0
    # Only the two newest L2 datasets survive pruning.
    l2sets = {p.split("/")[2] for p in machine.pfs.listdir() if "/ds" in p}
    assert len(l2sets) == 2


def test_same_group_double_failure_recovers_via_level2():
    # Without level 2 this exact scenario aborts
    # (test_two_failures_in_one_xor_group_aborts); with it, the job
    # rolls back to the PFS dataset and completes correctly.
    sim, machine = make(seed=3)
    job, done = launch(sim, machine, num_loops=6, level2_every=1)

    def killer():
        yield sim.timeout(2.5)
        machine.fail_nodes([0, 1], cause="same-group-double")

    sim.spawn(killer())
    results = sim.run(until=done)
    assert job.level2_restores > 0
    for u in results:
        assert u[0] == 6.0


def test_level2_restore_reseeds_level1():
    """After a level-2 restore, a later single-node failure must again
    be recoverable by plain XOR (the cheap tier is re-armed)."""
    sim, machine = make(14, seed=4)
    job, done = launch(sim, machine, num_loops=14, level2_every=1, spares=4)

    def killer():
        yield sim.timeout(2.5)
        machine.fail_nodes([0, 1], cause="beyond-xor")  # level-2 recovery
        yield sim.timeout(3.5)
        job.fmirun.node_slots[4].crash("single")  # plain XOR recovery

    sim.spawn(killer())
    results = sim.run(until=done)
    assert job.recovery_count == 2
    assert job.level2_restores >= 1
    # The second recovery was level-1 only.
    assert job.level2_restores == 1
    for u in results:
        assert u[0] == 14.0


def test_whole_group_wipe_recovers_via_level2():
    # Group 0's nodes are 0..3 (group size 4): wipe all of them.
    sim, machine = make(14, seed=5)
    job, done = launch(sim, machine, num_loops=6, level2_every=1, spares=4)

    def killer():
        yield sim.timeout(2.5)
        machine.fail_nodes([0, 1, 2, 3], cause="group-wipe")

    sim.spawn(killer())
    results = sim.run(until=done)
    assert job.level2_restores > 0
    for u in results:
        assert u[0] == 6.0


def test_beyond_xor_without_level2_still_aborts():
    sim, machine = make(seed=6)
    job = FmiJob(
        machine, app_factory(6), num_ranks=16, procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=2),
    )
    done = job.launch()

    def killer():
        yield sim.timeout(2.5)
        machine.fail_nodes([0, 1], cause="no-l2")

    sim.spawn(killer())
    with pytest.raises(FmiAbort):
        sim.run(until=done)


def test_beyond_xor_before_any_level2_cold_starts():
    """Two same-group nodes die before the first checkpoint completes:
    no level-1 and no level-2 data -> cold start, still correct."""
    sim, machine = make(seed=7)
    job, done = launch(sim, machine, num_loops=4, level2_every=1)

    def killer():
        yield sim.timeout(0.05)  # during spawn/H1, pre-checkpoint
        machine.fail_nodes([0, 1], cause="early-double")

    sim.spawn(killer())
    results = sim.run(until=done)
    assert job.level2_restores == 0
    for u in results:
        assert u[0] == 4.0


def test_level2_rollback_depth_respects_cadence():
    """With level2_every=3 and a beyond-XOR failure late in the run,
    the job rolls back to the last *flushed* dataset, losing the
    iterations since -- the classic multilevel trade-off."""
    sim, machine = make(seed=8)
    job, done = launch(sim, machine, num_loops=9, level2_every=3, work=0.5)
    restored_ids = []

    # Observe restore by wrapping rank completion values instead:
    def killer():
        yield sim.timeout(4.6)  # after ~ loop 7-8, L2 flushed at 0,3,6
        machine.fail_nodes([0, 1], cause="late-double")

    sim.spawn(killer())
    results = sim.run(until=done)
    assert job.level2_restores > 0
    for u in results:
        assert u[0] == 9.0
