"""Transport (PSM-like) and connection (ibverbs-like) behaviour."""

import pytest

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.net.endpoint import ConnectionManager
from repro.net.message import Envelope
from repro.net.pmgr import PmgrRendezvous
from repro.net.transport import Transport
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


def setup(n=4):
    sim = Simulator()
    m = Machine(sim, SIERRA.with_nodes(n), RngRegistry(0))
    return sim, m, Transport(m)


def env(src, dst, data=None, nbytes=8, epoch=0, tag=0):
    return Envelope(src, dst, tag, 0, epoch, nbytes, data)


# ----------------------------------------------------------------- transport
def test_send_delivers_to_matching_engine():
    sim, m, tp = setup()
    a = tp.create_context(m.node(0), "a")
    b = tp.create_context(m.node(1), "b")
    recv = b.matching.post(source=0, tag=0, comm_id=0)
    tp.send(a, b.addr, env(0, 1, data="payload"))
    sim.run()
    assert recv.value.data == "payload"


def test_send_to_dead_node_drops_silently():
    sim, m, tp = setup()
    a = tp.create_context(m.node(0), "a")
    b = tp.create_context(m.node(1), "b")
    m.node(1).crash()
    done = tp.send(a, b.addr, env(0, 1, data="x"))
    sim.run()
    # PSM semantics: the send completes; the bytes vanish.
    assert done.ok
    assert tp.dropped_dead == 1
    assert b.matching.delivered == 0


def test_send_to_closed_context_drops():
    sim, m, tp = setup()
    a = tp.create_context(m.node(0))
    b = tp.create_context(m.node(1))
    b.close()
    tp.send(a, b.addr, env(0, 1))
    sim.run()
    assert tp.dropped_dead == 1


def test_stale_epoch_dropped():
    sim, m, tp = setup()
    a = tp.create_context(m.node(0))
    b = tp.create_context(m.node(1))
    b.epoch = 3  # b has recovered past epoch 0
    recv = b.matching.post(source=0, tag=0, comm_id=0)
    tp.send(a, b.addr, env(0, 1, epoch=2, data="stale"))
    sim.run()
    assert not recv.triggered
    assert tp.dropped_stale == 1 and b.stale_dropped == 1


def test_current_epoch_delivered():
    sim, m, tp = setup()
    a = tp.create_context(m.node(0))
    b = tp.create_context(m.node(1))
    b.epoch = 3
    a.epoch = 3
    recv = b.matching.post(source=0, tag=0, comm_id=0)
    tp.send(a, b.addr, env(0, 1, epoch=3, data="fresh"))
    sim.run()
    assert recv.value.data == "fresh"


def test_send_from_dead_node_fails():
    sim, m, tp = setup()
    a = tp.create_context(m.node(0))
    b = tp.create_context(m.node(1))
    m.node(0).crash()
    done = tp.send(a, b.addr, env(0, 1))
    sim.run()
    assert not done.ok


def test_pingpong_roundtrip_latency():
    sim, m, tp = setup()
    a = tp.create_context(m.node(0))
    b = tp.create_context(m.node(1))

    def ponger():
        e = yield b.matching.post(source=0, tag=0, comm_id=0)
        yield tp.send(b, a.addr, env(1, 0, data=e.data, nbytes=1))

    def pinger():
        yield tp.send(a, b.addr, env(0, 1, data="ball", nbytes=1))
        e = yield a.matching.post(source=1, tag=0, comm_id=0)
        return sim.now

    m.node(1).spawn(ponger())
    p = m.node(0).spawn(pinger())
    sim.run()
    one_way = p.value / 2
    # Table III: ~3.57 us one-way for FMI transport.
    assert one_way == pytest.approx(3.573e-6, rel=0.02)


def test_context_serials_are_per_transport():
    # Regression: serials lived on the NetContext *class*, so a second
    # simulation in the same interpreter saw different addresses and
    # labels for the same build sequence -- breaking the byte-identical
    # replay guarantee.
    def build():
        sim, m, tp = setup()
        return [tp.create_context(m.node(i % 2)) for i in range(3)]

    first = build()
    second = build()
    assert [c.addr for c in first] == [c.addr for c in second]
    assert [c.label for c in first] == [c.label for c in second]


# ----------------------------------------------------------------- connections
def test_node_death_raises_disconnect_after_ibverbs_delay():
    sim, m, tp = setup()
    cm = ConnectionManager(m)
    events = []
    conn = cm.connect("a", m.node(0), "b", m.node(1))
    conn.on_disconnect("a", lambda c, k, r: events.append(("a", sim.now, r)))
    conn.on_disconnect("b", lambda c, k, r: events.append(("b", sim.now, r)))

    def killer():
        yield sim.timeout(1.0)
        m.node(1).crash("hw")

    sim.spawn(killer())
    sim.run()
    # Only the surviving side ("a") hears, 0.2 s later.
    assert events == [("a", pytest.approx(1.2), "peer-death:hw")]
    assert cm.open_connections == 0


def test_explicit_close_notifies_peer_fast():
    sim, m, tp = setup()
    cm = ConnectionManager(m)
    events = []
    conn = cm.connect("a", m.node(0), "b", m.node(1))
    conn.on_disconnect("b", lambda c, k, r: events.append((sim.now, r)))
    conn.close_from("a", reason="cascade")
    sim.run()
    assert len(events) == 1
    assert events[0][0] == pytest.approx(m.spec.network.notify_hop_delay)
    assert events[0][1] == "cascade"


def test_close_is_idempotent():
    sim, m, tp = setup()
    cm = ConnectionManager(m)
    hits = []
    conn = cm.connect("a", m.node(0), "b", m.node(1))
    conn.on_disconnect("b", lambda c, k, r: hits.append(r))
    conn.close_from("a")
    conn.close_from("a")
    m.node(0).crash()
    sim.run()
    assert len(hits) == 1


def test_connect_to_dead_node_rejected():
    sim, m, tp = setup()
    cm = ConnectionManager(m)
    m.node(1).crash()
    with pytest.raises(ConnectionError):
        cm.connect("a", m.node(0), "b", m.node(1))


def test_multi_connection_death_fanout():
    # One node death must break every connection it participates in.
    sim, m, tp = setup(4)
    cm = ConnectionManager(m)
    heard = []
    for i in (1, 2, 3):
        conn = cm.connect(f"k{i}", m.node(i), "dead", m.node(0))
        conn.on_disconnect(f"k{i}", lambda c, k, r: heard.append(k))
    m.node(0).crash()
    sim.run()
    assert sorted(heard) == ["k1", "k2", "k3"]


# ----------------------------------------------------------------- rendezvous
def test_rendezvous_releases_all_after_cost():
    sim = Simulator()
    rdv = PmgrRendezvous(sim, size=3, cost=0.5)
    times = []

    def participant(delay):
        yield sim.timeout(delay)
        yield rdv.arrive()
        times.append(sim.now)

    for d in (0.0, 1.0, 2.0):
        sim.spawn(participant(d))
    sim.run()
    assert times == [pytest.approx(2.5)] * 3
    assert rdv.complete_at == pytest.approx(2.0)
    assert rdv.released_at == pytest.approx(2.5)


def test_rendezvous_overfull_raises():
    sim = Simulator()
    rdv = PmgrRendezvous(sim, size=1, cost=0.0)
    rdv.arrive()
    sim.run()
    with pytest.raises(RuntimeError):
        rdv.arrive()


def test_rendezvous_validates_size():
    with pytest.raises(ValueError):
        PmgrRendezvous(Simulator(), size=0, cost=0.0)
