"""Regression: traced checkpoint phases match the Section V-B model.

The XOR engine's ``ckpt.*`` spans are the ground truth the benchmarks
(Fig 10/12) now report, so this pins them to the analytic cost model
in :mod:`repro.models.cr_model`:

* ``ckpt.checkpoint`` (whole operation) ~= ``checkpoint_time(s, n)``;
* ``ckpt.encode`` (ring-pipelined parity transfer) ~= the model's
  ``(s + s/(n-1))/net_bw`` term;
* ``ckpt.snapshot`` (local memcpy) ~= ``s/mem_bw``.

If someone retunes the transport or the engine and the traced phases
drift away from the model, this fails before the benchmarks start
telling a story that contradicts DESIGN.md.
"""

import pytest

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi.checkpoint import MemoryStorage, XorCheckpointEngine
from repro.fmi.payload import Payload
from repro.models.cr_model import checkpoint_time, restart_time
from repro.mpi.runtime import MpiJob
from repro.obs import Tracer
from repro.obs.summary import checkpoint_summary
from repro.simt import Simulator
from repro.simt.rng import RngRegistry

CKPT_BYTES = 6e9  # the paper's 6 GB/node working set
MEM_BW = SIERRA.node.memory_bw
NET_BW = SIERRA.network.link_bw


def traced_phases(group_size: int, procs_per_node: int = 1):
    sim = Simulator()
    nodes = group_size // procs_per_node
    machine = Machine(sim, SIERRA.with_nodes(nodes), RngRegistry(group_size))
    tracer = Tracer(sim)

    def app(api):
        storage = MemoryStorage(api.node)
        engine = XorCheckpointEngine(api.world, storage, api.memcpy)
        payload = Payload.synthetic(CKPT_BYTES, seed=api.rank, rep_bytes=64)
        yield from engine.checkpoint([payload], dataset_id=0)

    job = MpiJob(machine, app, nprocs=group_size,
                 procs_per_node=procs_per_node, charge_init=False)
    sim.run(until=job.launch())
    phases = checkpoint_summary(tracer)
    assert phases["ckpt.checkpoint"]["count"] == group_size
    return phases


@pytest.mark.parametrize("group_size", [4, 8, 16])
def test_traced_phases_match_cr_model(group_size):
    phases = traced_phases(group_size)
    model_total = checkpoint_time(CKPT_BYTES, group_size, MEM_BW, NET_BW)
    model_encode = (CKPT_BYTES + CKPT_BYTES / (group_size - 1)) / NET_BW
    model_snapshot = CKPT_BYTES / MEM_BW

    measured = phases["ckpt.checkpoint"]["max"]
    assert measured == pytest.approx(model_total, rel=0.20)
    assert phases["ckpt.encode"]["max"] == pytest.approx(model_encode, rel=0.25)
    assert phases["ckpt.snapshot"]["max"] == pytest.approx(model_snapshot, rel=0.10)
    # Phase decomposition is consistent: the whole span dominates the
    # parts, and encode dominates the whole (the paper's observation
    # that the ring transfer is the bottleneck).
    assert phases["ckpt.encode"]["max"] < measured
    assert phases["ckpt.encode"]["max"] > 0.5 * measured


def test_traced_restore_matches_restart_model():
    """The ``ckpt.restore`` span (one rank lost its local checkpoint,
    the group rebuilds it through the ring) tracks ``restart_time``."""
    group_size = 8
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(group_size),
                      RngRegistry(100 + group_size))
    tracer = Tracer(sim)

    def app(api):
        storage = MemoryStorage(api.node)
        engine = XorCheckpointEngine(api.world, storage, api.memcpy)
        payload = Payload.synthetic(CKPT_BYTES, seed=api.rank, rep_bytes=64)
        yield from engine.checkpoint([payload], dataset_id=0)
        if api.rank == 0:
            storage.clear()
        yield from api.barrier()
        _meta, restored = yield from engine.restore()
        assert restored[0] == payload

    job = MpiJob(machine, app, nprocs=group_size, procs_per_node=1,
                 charge_init=False)
    sim.run(until=job.launch())
    phases = checkpoint_summary(tracer)
    model = restart_time(CKPT_BYTES, group_size, MEM_BW, NET_BW)
    assert phases["ckpt.restore"]["count"] == group_size
    assert phases["ckpt.restore"]["max"] == pytest.approx(model, rel=0.35)
    # The rebuild spans (one replacement, n-1 survivors) sit inside the
    # restore span.
    assert phases["ckpt.rebuild"]["count"] == group_size
    assert phases["ckpt.rebuild"]["max"] <= phases["ckpt.restore"]["max"]
