"""Conformance suite for the pluggable redundancy schemes.

Every scheme must satisfy the same contract: checkpoint -> lose a
member -> restore yields *bit-identical* state (for every loss pattern
the scheme claims to repair), losses beyond the scheme's protection
raise :class:`UnrecoverableFailure`, and the measured phase costs
match the scheme's analytic model in :mod:`repro.models.cr_model`.
"""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.fmi.checkpoint import CheckpointEngine, MemoryStorage
from repro.fmi.errors import UnrecoverableFailure
from repro.fmi.payload import Payload
from repro.fmi.redundancy import make_scheme
from repro.models.cr_model import checkpoint_time, restart_time, storage_overhead
from repro.mpi.runtime import MpiJob
from repro.simt import Simulator
from repro.simt.rng import RngRegistry

SCHEMES = ["xor", "partner", "single"]


def run_group(app, n, scheme, seed=0):
    """Drive one redundancy group (one member per node) through the
    simulated fabric."""
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(n), RngRegistry(seed))
    storages = {}

    def wrapped(api):
        storage = MemoryStorage(api.node)
        storages[api.rank] = storage
        engine = CheckpointEngine(api.world, storage, api.memcpy,
                                  scheme=make_scheme(scheme))
        result = yield from app(api, engine, storage)
        return result

    job = MpiJob(machine, wrapped, n, procs_per_node=1, charge_init=False)
    results = sim.run(until=job.launch())
    return sim, results, storages


def make_payloads(rank, nbufs=2, size=300):
    rng = np.random.default_rng(1000 + rank)
    return [
        Payload.wrap(rng.integers(0, 256, size + 7 * k, dtype=np.uint8))
        for k in range(nbufs)
    ]


# --------------------------------------------------------------- round trips
@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("n", [2, 4])
def test_clean_roundtrip(scheme, n):
    def app(api, engine, storage):
        payloads = make_payloads(api.rank)
        meta = yield from engine.checkpoint(payloads, dataset_id=7)
        assert meta.dataset_id == 7
        meta2, restored = yield from engine.restore()
        assert meta2.dataset_id == 7
        return restored == payloads

    _sim, results, _ = run_group(app, n, scheme)
    assert results == [True] * n


@pytest.mark.parametrize("scheme", ["xor", "partner"])
@pytest.mark.parametrize("n,f", [(2, 0), (2, 1), (4, 0), (4, 2), (8, 5)])
def test_rebuild_single_lost_member(scheme, n, f):
    saved = {}

    def app(api, engine, storage):
        payloads = make_payloads(api.rank, nbufs=3)
        saved[api.rank] = [p.copy() for p in payloads]
        yield from engine.checkpoint(payloads, dataset_id=3)
        if api.rank == f:
            storage.clear()  # simulate the replacement's empty memory
        meta, restored = yield from engine.restore()
        return (meta.dataset_id, restored)

    _sim, results, _ = run_group(app, n, scheme)
    for rank, (ds, restored) in enumerate(results):
        assert ds == 3
        assert restored == saved[rank], f"rank {rank} data mismatch"


def test_partner_rebuilds_two_nonadjacent_losses():
    # XOR's hard limit is one loss per group; partner only requires the
    # copy-holders to survive, so {0, 2} of a 4-group is repairable.
    lost = {0, 2}
    saved = {}

    def app(api, engine, storage):
        payloads = make_payloads(api.rank)
        saved[api.rank] = [p.copy() for p in payloads]
        yield from engine.checkpoint(payloads, dataset_id=1)
        if api.rank in lost:
            storage.clear()
        _meta, restored = yield from engine.restore()
        return restored

    _sim, results, _ = run_group(app, 4, "partner")
    for rank, restored in enumerate(results):
        assert restored == saved[rank], f"rank {rank} data mismatch"


@pytest.mark.parametrize(
    "scheme,lost",
    [
        ("xor", {0, 1}),      # two losses exceed XOR parity
        ("partner", {1, 2}),  # adjacent losses take the copy down too
        ("single", {2}),      # any loss: nothing replicated anywhere
    ],
)
def test_beyond_repair_raises(scheme, lost):
    def app(api, engine, storage):
        yield from engine.checkpoint(make_payloads(api.rank), dataset_id=1)
        if api.rank in lost:
            storage.clear()
        try:
            yield from engine.restore()
        except UnrecoverableFailure:
            return "unrecoverable"
        return "recovered"

    _sim, results, _ = run_group(app, 4, scheme)
    assert results == ["unrecoverable"] * 4


# ----------------------------------------------------------- storage overhead
@pytest.mark.parametrize("scheme", SCHEMES)
def test_storage_overhead_matches_model(scheme):
    n = 4

    def app(api, engine, storage):
        payloads = [Payload.wrap(np.zeros(15 * n, dtype=np.uint8))]
        yield from engine.checkpoint(payloads, dataset_id=1)
        return None
        yield  # pragma: no cover

    _sim, _results, storages = run_group(app, n, scheme)
    st = storages[0]
    blob = st._blobs["ckpt@1"]
    redundancy = [k for k in st._blobs if not k.startswith("ckpt@")]
    expected = storage_overhead(scheme, n)
    if expected == 0.0:
        assert redundancy == []
    else:
        measured = st._blobs[redundancy[0]].data.nbytes / blob.data.nbytes
        assert measured == pytest.approx(expected, rel=1e-6)


# ----------------------------------------------------------------- cost models
def _bandwidths():
    spec = SIERRA
    return spec.node.memory_bw, spec.network.link_bw


@pytest.mark.parametrize("scheme", SCHEMES)
def test_checkpoint_cost_matches_model(scheme):
    s = 64e6
    n = 4
    durations = {}

    def app(api, engine, storage):
        payloads = [Payload.synthetic(s, seed=api.rank, rep_bytes=120)]
        t0 = api.now
        yield from engine.checkpoint(payloads, dataset_id=1)
        durations[api.rank] = api.now - t0
        return True

    _sim, results, _ = run_group(app, n, scheme)
    assert results == [True] * n
    mem_bw, net_bw = _bandwidths()
    model = checkpoint_time(s, n, mem_bw, net_bw, scheme=scheme)
    assert max(durations.values()) == pytest.approx(model, rel=0.20)


@pytest.mark.parametrize("scheme", ["xor", "partner"])
def test_restore_cost_matches_model(scheme):
    s = 64e6
    n = 4
    f = 1
    durations = {}

    def app(api, engine, storage):
        payloads = [Payload.synthetic(s, seed=api.rank, rep_bytes=120)]
        yield from engine.checkpoint(payloads, dataset_id=1)
        if api.rank == f:
            storage.clear()
        t0 = api.now
        _meta, restored = yield from engine.restore()
        durations[api.rank] = api.now - t0
        return restored == payloads

    _sim, results, _ = run_group(app, n, scheme)
    assert results == [True] * n
    mem_bw, net_bw = _bandwidths()
    model = restart_time(s, n, mem_bw, net_bw, scheme=scheme)
    assert durations[f] == pytest.approx(model, rel=0.35)


def test_partner_checkpoint_cheaper_than_xor_and_single_cheapest():
    s = 64e6
    n = 4
    measured = {}
    for scheme in SCHEMES:
        durations = {}

        def app(api, engine, storage):
            payloads = [Payload.synthetic(s, seed=api.rank, rep_bytes=120)]
            t0 = api.now
            yield from engine.checkpoint(payloads, dataset_id=1)
            durations[api.rank] = api.now - t0
            return True

        run_group(app, n, scheme)
        measured[scheme] = max(durations.values())
    assert measured["single"] < measured["partner"] < measured["xor"]


# --------------------------------------------------------------- end to end
def _fmi_app(num_loops, work=0.5):
    def app(fmi):
        u = np.zeros(6, dtype=np.float64)
        yield from fmi.init()
        while True:
            n = yield from fmi.loop([u])
            if n >= num_loops:
                break
            yield fmi.elapse(work)
            u[0] = n + 1.0
            u[1] = yield from fmi.allreduce(float(n))
        yield from fmi.finalize()
        return u.copy()

    return app


def test_fmi_job_with_partner_survives_node_crash():
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(12), RngRegistry(5))
    job = FmiJob(
        machine, _fmi_app(6), num_ranks=16, procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=2,
                         redundancy="partner"),
    )
    done = job.launch()

    def killer():
        yield sim.timeout(2.5)
        machine.fail_nodes([3], cause="partner-crash")

    sim.spawn(killer())
    results = sim.run(until=done)
    assert job.recovery_count >= 1
    assert job.restores_done > 0
    for u in results:
        assert u[0] == 6.0


def test_fmi_job_single_plus_level2_recovers_from_pfs():
    # SINGLE cannot repair any lost member at level 1, so a node crash
    # must fall back to the level-2 (PFS) tier -- SCR's LOCAL+PFS.
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(12), RngRegistry(7))
    job = FmiJob(
        machine, _fmi_app(6), num_ranks=16, procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=2,
                         redundancy="single", level2_every=1),
    )
    done = job.launch()

    def killer():
        yield sim.timeout(2.5)
        machine.fail_nodes([2], cause="single-crash")

    sim.spawn(killer())
    results = sim.run(until=done)
    assert job.recovery_count >= 1
    assert job.level2_restores > 0
    for u in results:
        assert u[0] == 6.0


# ----------------------------------------------------------------- validation
def test_make_scheme_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown redundancy scheme"):
        make_scheme("raid6")


def test_config_rejects_unknown_scheme():
    with pytest.raises(ValueError, match="unknown redundancy scheme"):
        FmiConfig(redundancy="raid6")
