"""Node lifecycle, fabric timing, and filesystem behaviour."""

import pytest

from repro.cluster import Machine
from repro.cluster.filesystem import FileLostError
from repro.cluster.spec import SIERRA, ClusterSpec
from repro.simt import Simulator
from repro.simt.process import ProcessKilled
from repro.simt.rng import RngRegistry


def make_machine(n=4):
    sim = Simulator()
    return sim, Machine(sim, SIERRA.with_nodes(n), RngRegistry(7))


# ------------------------------------------------------------------- Node
def test_node_crash_kills_registered_processes():
    sim, m = make_machine()
    node = m.node(0)
    outcomes = []

    def worker():
        yield sim.timeout(100.0)
        outcomes.append("finished")  # pragma: no cover

    proc = node.spawn(worker())

    def killer():
        yield sim.timeout(1.0)
        node.crash("test")

    sim.spawn(killer())
    sim.run()
    assert outcomes == []
    assert isinstance(proc.value, ProcessKilled)
    assert not node.alive


def test_node_crash_idempotent_and_notifies_once():
    sim, m = make_machine()
    node = m.node(1)
    hits = []
    m.on_node_death(lambda n, cause: hits.append((n.id, cause)))
    node.crash("a")
    node.crash("b")
    assert hits == [(1, "a")]


def test_spawn_on_dead_node_rejected():
    sim, m = make_machine()
    node = m.node(0)
    node.crash()
    with pytest.raises(Exception):
        node.spawn(iter(()))


def test_node_memcpy_time():
    sim, m = make_machine()
    node = m.node(0)
    done = node.memcpy(32e9)  # 32 GB through a 32 GB/s bus
    sim.run(until=done)
    assert sim.now == pytest.approx(1.0)


def test_node_compute_time():
    sim, m = make_machine()
    node = m.node(0)
    done = node.compute(m.spec.node.core_flops * 2.0)  # 2 core-seconds
    sim.run(until=done)
    assert sim.now == pytest.approx(2.0)


def test_live_nodes_tracking():
    sim, m = make_machine(4)
    assert len(m.live_nodes) == 4
    m.fail_nodes([0, 2])
    assert sorted(n.id for n in m.live_nodes) == [1, 3]


# ----------------------------------------------------------------- Fabric
def test_fabric_one_byte_latency_matches_calibration():
    sim, m = make_machine()
    net = m.spec.network
    done = m.fabric.send(m.node(0), m.node(1), 1.0, sw_overhead=net.sw_overhead_mpi)
    sim.run(until=done)
    # 1 byte: 2*sw + wire + 1/link_bw ~= 3.555 us
    assert sim.now == pytest.approx(3.555e-6, rel=0.01)


def test_fabric_8mb_bandwidth_matches_table3():
    sim, m = make_machine()
    nbytes = 8 * 1024 * 1024
    done = m.fabric.send(m.node(0), m.node(1), nbytes)
    sim.run(until=done)
    bw = nbytes / sim.now
    assert bw == pytest.approx(3.22e9, rel=0.02)


def test_fabric_intranode_uses_memory_bus():
    sim, m = make_machine()
    before = m.node(0).mem_bw.bytes_done
    done = m.fabric.send(m.node(0), m.node(0), 1e6)
    sim.run(until=done)
    assert m.node(0).mem_bw.bytes_done - before == pytest.approx(1e6)
    # Much faster than the NIC path.
    assert sim.now < 1e6 / 3.24e9


def test_fabric_incast_bottlenecks_on_receiver():
    # 3 senders to one receiver: rx NIC shared 3 ways.
    sim, m = make_machine(4)
    nbytes = 3.24e9  # one second uncontended
    events = [m.fabric.send(m.node(i), m.node(3), nbytes) for i in (0, 1, 2)]
    sim.run()
    assert all(e.processed for e in events)
    assert sim.now == pytest.approx(3.0, rel=0.01)


def test_fabric_disjoint_pairs_run_in_parallel():
    sim, m = make_machine(4)
    nbytes = 3.24e9
    e1 = m.fabric.send(m.node(0), m.node(1), nbytes)
    e2 = m.fabric.send(m.node(2), m.node(3), nbytes)
    sim.run()
    assert e1.processed and e2.processed
    assert sim.now == pytest.approx(1.0, rel=0.01)


def test_fabric_send_from_dead_node_fails():
    sim, m = make_machine()
    m.node(0).crash()
    done = m.fabric.send(m.node(0), m.node(1), 10.0)
    sim.run()
    assert not done.ok
    assert isinstance(done.value, ConnectionError)


def test_fabric_counters():
    sim, m = make_machine()
    m.fabric.send(m.node(0), m.node(1), 100.0)
    m.fabric.send(m.node(1), m.node(2), 50.0)
    sim.run()
    assert m.fabric.messages_sent == 2
    assert m.fabric.bytes_sent == pytest.approx(150.0)


# -------------------------------------------------------------- Filesystems
def test_tmpfs_roundtrip():
    sim, m = make_machine()
    fs = m.node(0).tmpfs
    payload = b"checkpoint-bytes" * 100

    def writer():
        yield fs.write("ckpt/rank0.dat", payload)
        data = yield fs.read("ckpt/rank0.dat")
        return data

    proc = sim.spawn(writer())
    sim.run()
    assert proc.value == payload


def test_tmpfs_write_charges_declared_size():
    sim, m = make_machine()
    fs = m.node(0).tmpfs
    done = fs.write("big", b"x", nbytes=8.0e9)  # declare 8 GB
    sim.run(until=done)
    assert sim.now == pytest.approx(8.0e9 / m.spec.filesystem.tmpfs_bw, rel=0.01)


def test_tmpfs_destroyed_on_crash():
    sim, m = make_machine()
    node = m.node(0)
    fs = node.tmpfs

    def writer():
        yield fs.write("f", b"data")
        node.crash()
        assert not fs.exists("f")
        try:
            yield fs.read("f")
        except FileLostError:
            return "lost"

    proc = sim.spawn(writer())
    sim.run()
    assert proc.value == "lost"


def test_tmpfs_read_missing_fails():
    sim, m = make_machine()
    fs = m.node(0).tmpfs

    def reader():
        try:
            yield fs.read("nope")
        except FileLostError:
            return "missing"

    proc = sim.spawn(reader())
    sim.run()
    assert proc.value == "missing"


def test_pfs_shared_bandwidth():
    sim, m = make_machine()
    # Two concurrent 50 GB writes through the 50 GB/s PFS: ~2 s total.
    e1 = m.pfs.write("a", b"1", nbytes=50e9)
    e2 = m.pfs.write("b", b"2", nbytes=50e9)
    sim.run()
    assert e1.processed and e2.processed
    assert sim.now == pytest.approx(2.0, rel=0.01)


def test_pfs_survives_node_crash():
    sim, m = make_machine()

    def run():
        yield m.pfs.write("x", b"persistent")
        m.node(0).crash()
        data = yield m.pfs.read("x")
        return data

    proc = sim.spawn(run())
    sim.run()
    assert proc.value == b"persistent"


def test_filesystem_unlink_and_listdir():
    sim, m = make_machine()
    fs = m.node(0).tmpfs

    def run():
        yield fs.write("b", b"2")
        yield fs.write("a", b"1")
        assert fs.listdir() == ["a", "b"]
        fs.unlink("a")
        assert fs.listdir() == ["b"]

    sim.spawn(run())
    sim.run()
