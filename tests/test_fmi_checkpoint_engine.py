"""XOR checkpoint engine: encode/restore through real simulated ranks.

Runs the engine inside an MpiJob harness (one communicator = one XOR
group) so every parity byte moves through the simulated fabric.
"""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi.checkpoint import (
    MemoryStorage,
    TmpfsStorage,
    XorCheckpointEngine,
)
from repro.fmi.errors import UnrecoverableFailure
from repro.fmi.payload import Payload
from repro.mpi.runtime import MpiJob
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


def run_group(app, n, storage_kind="memory", num_nodes=None, seed=0):
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(num_nodes or n), RngRegistry(seed))
    storages = {}

    def wrapped(api):
        if storage_kind == "memory":
            storage = MemoryStorage(api.node)
        else:
            storage = TmpfsStorage(api.node, prefix=f"scr/r{api.rank}")
        storages[api.rank] = storage
        engine = XorCheckpointEngine(api.world, storage, api.memcpy)
        result = yield from app(api, engine, storage)
        return result

    job = MpiJob(machine, wrapped, n, procs_per_node=1, charge_init=False)
    results = sim.run(until=job.launch())
    return sim, results, storages


def make_payloads(rank, nbufs=2, size=300):
    rng = np.random.default_rng(1000 + rank)
    return [
        Payload.wrap(rng.integers(0, 256, size + 7 * k, dtype=np.uint8))
        for k in range(nbufs)
    ]


@pytest.mark.parametrize("storage_kind", ["memory", "tmpfs"])
@pytest.mark.parametrize("n", [2, 4, 8])
def test_checkpoint_then_clean_restore(n, storage_kind):
    def app(api, engine, storage):
        payloads = make_payloads(api.rank)
        meta = yield from engine.checkpoint(payloads, dataset_id=7)
        assert meta.dataset_id == 7
        meta2, restored = yield from engine.restore()
        assert meta2.dataset_id == 7
        return restored == payloads

    _sim, results, _ = run_group(app, n, storage_kind)
    assert results == [True] * n


@pytest.mark.parametrize("storage_kind", ["memory", "tmpfs"])
@pytest.mark.parametrize("n,f", [(2, 0), (2, 1), (4, 0), (4, 2), (8, 5)])
def test_rebuild_single_lost_member(n, f, storage_kind):
    saved = {}

    def app(api, engine, storage):
        payloads = make_payloads(api.rank, nbufs=3)
        saved[api.rank] = [p.copy() for p in payloads]
        yield from engine.checkpoint(payloads, dataset_id=3)
        if api.rank == f:
            storage.clear()  # simulate the replacement's empty memory
        meta, restored = yield from engine.restore()
        return (meta.dataset_id, restored)

    _sim, results, _ = run_group(app, n, storage_kind)
    for rank, (ds, restored) in enumerate(results):
        assert ds == 3
        assert restored == saved[rank], f"rank {rank} data mismatch"


def test_two_lost_members_unrecoverable():
    def app(api, engine, storage):
        yield from engine.checkpoint(make_payloads(api.rank), dataset_id=1)
        if api.rank in (0, 1):
            storage.clear()
        try:
            yield from engine.restore()
        except UnrecoverableFailure:
            return "unrecoverable"
        return "recovered"

    _sim, results, _ = run_group(app, 4)
    assert results == ["unrecoverable"] * 4


def test_no_checkpoint_anywhere_is_cold_start():
    def app(api, engine, storage):
        result = yield from engine.restore()
        return result

    _sim, results, _ = run_group(app, 3)
    assert results == [None] * 3


def test_second_checkpoint_overwrites_first():
    def app(api, engine, storage):
        first = make_payloads(api.rank, nbufs=1)
        yield from engine.checkpoint(first, dataset_id=1)
        second = [Payload.wrap(np.full(64, api.rank, dtype=np.uint8))]
        yield from engine.checkpoint(second, dataset_id=2)
        if api.rank == 1:
            storage.clear()
        meta, restored = yield from engine.restore()
        return (meta.dataset_id, restored == second)

    _sim, results, _ = run_group(app, 4)
    assert results == [(2, True)] * 4


def test_unequal_payload_sizes_across_group():
    # Members checkpoint very different sizes; padding must reconcile.
    def app(api, engine, storage):
        size = 50 + api.rank * 37
        payloads = [Payload.wrap(np.arange(size, dtype=np.uint8))]
        yield from engine.checkpoint(payloads, dataset_id=1)
        if api.rank == 2:
            storage.clear()
        _meta, restored = yield from engine.restore()
        expected = Payload.wrap(np.arange(size, dtype=np.uint8))
        return restored[0] == expected

    _sim, results, _ = run_group(app, 4)
    assert results == [True] * 4


def test_synthetic_payload_timing_exceeds_representative():
    # Declared 600 MB with a 240-byte witness: checkpoint time must be
    # dominated by the declared size, and witness data still verifies.
    times = {}

    def app(api, engine, storage):
        payloads = [Payload.synthetic(600e6, seed=api.rank, rep_bytes=240)]
        t0 = api.now
        yield from engine.checkpoint(payloads, dataset_id=1)
        times[api.rank] = api.now - t0
        if api.rank == 0:
            storage.clear()
        _meta, restored = yield from engine.restore()
        return restored[0] == payloads[0]

    sim, results, _ = run_group(app, 4)
    assert results == [True] * 4
    # 600 MB through ~3.24 GB/s NIC: encode transfers alone need >0.2 s.
    assert min(times.values()) > 0.15


def test_checkpoint_time_matches_model_shape():
    # Single rank per node, group of 4, 64 MB each: compare measured
    # time against the Section V-B model within loose tolerance.
    s = 64e6
    durations = {}

    def app(api, engine, storage):
        payloads = [Payload.synthetic(s, seed=api.rank, rep_bytes=120)]
        t0 = api.now
        yield from engine.checkpoint(payloads, dataset_id=1)
        durations[api.rank] = api.now - t0
        return True

    sim, results, _ = run_group(app, 4)
    spec = SIERRA
    n = 4
    model = (
        s / spec.node.memory_bw
        + (s + s / (n - 1)) / spec.network.link_bw
        + s / spec.node.memory_bw
    )
    measured = max(durations.values())
    assert measured == pytest.approx(model, rel=0.35)


def test_parity_memory_overhead():
    def app(api, engine, storage):
        payloads = [Payload.wrap(np.zeros(15 * 16, dtype=np.uint8))]
        yield from engine.checkpoint(payloads, dataset_id=1)
        return None
        yield  # pragma: no cover

    _sim, _results, storages = run_group(app, 16)
    st = storages[0]
    blob = st._blobs["ckpt@1"]
    parity = st._blobs["parity@1"]
    assert parity.data.nbytes / blob.data.nbytes == pytest.approx(1 / 15, rel=1e-6)


from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(2, 6),
    sizes=st.lists(st.integers(1, 300), min_size=6, max_size=6),
    f=st.integers(0, 5),
    seed=st.integers(0, 2**31),
)
def test_property_engine_roundtrip_through_simulation(n, sizes, f, seed):
    """End-to-end property: arbitrary group size, per-member payload
    sizes, and failed member -- the rebuilt checkpoint is bit-exact,
    with every byte of parity moved through the simulated fabric."""
    f = f % n

    def app(api, engine, storage):
        rng = np.random.default_rng(seed + api.rank)
        payloads = [
            Payload.wrap(rng.integers(0, 256, sizes[api.rank], dtype=np.uint8))
        ]
        yield from engine.checkpoint(payloads, dataset_id=1)
        if api.rank == f:
            storage.clear()
        _meta, restored = yield from engine.restore()
        return restored == payloads

    _sim, results, _ = run_group(app, n, seed=seed % 1000)
    assert results == [True] * n
