"""Hierarchical allreduce + hypothesis property tests on collectives."""

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.mpi.collectives import allreduce_hier, set_collective_mode
from repro.mpi.ops import MAX, MIN, SUM
from repro.mpi.runtime import MpiJob
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


@pytest.fixture(autouse=True)
def _hop_engine():
    """These tests assert hop-level properties (fabric message counts,
    per-message algebra), so they pin the oracle engine."""
    prev = set_collective_mode("hops")
    yield
    set_collective_mode(prev)


def run_app(app, nprocs, ppn=1, num_nodes=None, seed=0):
    sim = Simulator()
    machine = Machine(
        sim, SIERRA.with_nodes(num_nodes or max(2, nprocs // ppn)), RngRegistry(seed)
    )
    job = MpiJob(machine, app, nprocs, procs_per_node=ppn, charge_init=False)
    results = sim.run(until=job.launch())
    return sim, machine, results


# -------------------------------------------------------- hierarchical ar
@pytest.mark.parametrize("nprocs,ppn", [(8, 2), (12, 4), (24, 12), (6, 3)])
def test_hier_allreduce_matches_flat(nprocs, ppn):
    def app(mpi):
        flat = yield from mpi.allreduce(float(mpi.rank + 1), SUM)
        hier = yield from allreduce_hier(
            mpi.world, float(mpi.rank + 1), SUM, procs_per_node=ppn
        )
        return (flat, hier)

    _sim, _m, results = run_app(app, nprocs, ppn=ppn)
    expected = nprocs * (nprocs + 1) / 2
    for flat, hier in results:
        assert flat == expected
        assert hier == expected


@pytest.mark.parametrize("op,expected_fn", [
    (MAX, max), (MIN, min),
])
def test_hier_allreduce_other_ops(op, expected_fn):
    nprocs, ppn = 12, 4

    def app(mpi):
        v = float((mpi.rank * 7) % 5)
        out = yield from allreduce_hier(mpi.world, v, op, procs_per_node=ppn)
        return out

    _sim, _m, results = run_app(app, nprocs, ppn=ppn)
    expected = expected_fn(float((r * 7) % 5) for r in range(nprocs))
    assert results == [expected] * nprocs


def test_hier_allreduce_fewer_fabric_messages():
    """The point of the hierarchy: per-node leaders exchange over the
    fabric, everyone else stays on the memory bus."""
    nprocs, ppn = 24, 12

    def flat_app(mpi):
        out = yield from mpi.allreduce(1.0, SUM)
        return out

    def hier_app(mpi):
        out = yield from allreduce_hier(mpi.world, 1.0, SUM, procs_per_node=ppn)
        return out

    _s1, m1, _ = run_app(flat_app, nprocs, ppn=ppn)
    _s2, m2, _ = run_app(hier_app, nprocs, ppn=ppn)
    # Count inter-node traffic only: each fabric.send with src != dst.
    # (messages_sent counts all; intra-node ones ride the memory bus but
    # are still logged, so compare totals as a proxy: hierarchical must
    # use strictly fewer messages overall too.)
    assert m2.fabric.messages_sent < m1.fabric.messages_sent


def test_hier_validates_divisibility():
    def app(mpi):
        with pytest.raises(ValueError):
            yield from allreduce_hier(mpi.world, 1.0, SUM, procs_per_node=5)
        return True

    _s, _m, results = run_app(app, 12, ppn=4)
    assert all(results)


# ----------------------------------------------------- property: semantics
@settings(max_examples=15, deadline=None)
@given(
    nprocs=st.integers(2, 9),
    values=st.lists(st.integers(-100, 100), min_size=9, max_size=9),
    root=st.integers(0, 8),
)
def test_property_reduce_equals_functools(nprocs, values, root):
    root = root % nprocs
    vals = values[:nprocs]

    def app(mpi):
        out = yield from mpi.reduce(vals[mpi.rank], SUM, root=root)
        return out

    _s, _m, results = run_app(app, nprocs)
    assert results[root] == functools.reduce(lambda a, b: a + b, vals)
    assert all(r is None for i, r in enumerate(results) if i != root)


@settings(max_examples=15, deadline=None)
@given(
    nprocs=st.integers(1, 9),
    values=st.lists(st.integers(-1000, 1000), min_size=9, max_size=9),
)
def test_property_allgather_orders_by_rank(nprocs, values):
    vals = values[:nprocs]

    def app(mpi):
        out = yield from mpi.allgather(vals[mpi.rank])
        return out

    _s, _m, results = run_app(app, nprocs)
    assert all(r == vals for r in results)


@settings(max_examples=10, deadline=None)
@given(
    nprocs=st.integers(2, 8),
    perm_seed=st.integers(0, 2**31),
)
def test_property_alltoall_is_transpose(nprocs, perm_seed):
    rng = np.random.default_rng(perm_seed)
    matrix = rng.integers(-100, 100, size=(nprocs, nprocs))

    def app(mpi):
        out = yield from mpi.alltoall(list(matrix[mpi.rank]))
        return out

    _s, _m, results = run_app(app, nprocs)
    for dst, row in enumerate(results):
        assert list(row) == list(matrix[:, dst])


@settings(max_examples=10, deadline=None)
@given(nprocs=st.integers(2, 9), root=st.integers(0, 8),
       payload=st.text(max_size=30))
def test_property_bcast_delivers_root_value(nprocs, root, payload):
    root = root % nprocs

    def app(mpi):
        v = payload if mpi.rank == root else None
        out = yield from mpi.bcast(v, root=root)
        return out

    _s, _m, results = run_app(app, nprocs)
    assert results == [payload] * nprocs
