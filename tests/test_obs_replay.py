"""Deterministic replay: tracing must observe, never perturb.

The same seeded failure scenario is run three ways -- traced, traced
again, and untraced -- and must produce (a) byte-identical JSONL
traces across the two traced runs and (b) identical final application
state and virtual-clock time whether or not the tracer was attached.
That is the contract that lets benchmarks flip tracing on without
invalidating their measurements.
"""

import numpy as np

from repro.cluster import Machine
from repro.cluster.failures import TraceInjector
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.obs import MetricsRegistry, Tracer, dumps_jsonl, read_jsonl, write_jsonl
from repro.simt import Simulator
from repro.simt.rng import RngRegistry

NUM_RANKS = 8
PROCS_PER_NODE = 2
NUM_LOOPS = 6
CRASH_AT = 2.5
SEED = 1234


def application(fmi):
    state = np.zeros(4, dtype=np.float64)
    yield from fmi.init()
    while True:
        n = yield from fmi.loop([state])
        if n >= NUM_LOOPS:
            break
        yield fmi.elapse(0.4)
        state[0] = n + 1
        state[1] = yield from fmi.allreduce(float(fmi.rank + n))
    yield from fmi.finalize()
    return state


def run_scenario(traced: bool):
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(6), RngRegistry(SEED))
    tracer = Tracer(sim) if traced else None
    metrics = MetricsRegistry(sim) if traced else None
    job = FmiJob(
        machine, application, num_ranks=NUM_RANKS,
        procs_per_node=PROCS_PER_NODE,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=1),
    )
    done = job.launch()
    victim = job.fmirun.node_slots[1].id
    injector = TraceInjector(sim, [(CRASH_AT, [victim])], kill=machine.fail_nodes)
    injector.start()
    results = sim.run(until=done)
    return sim, job, tracer, metrics, results


def test_replay_produces_byte_identical_traces():
    _sim1, job1, tracer1, metrics1, res1 = run_scenario(traced=True)
    _sim2, job2, tracer2, metrics2, res2 = run_scenario(traced=True)
    assert job1.epoch == job2.epoch == 1  # the scenario really failed over

    text1 = dumps_jsonl(tracer1)
    text2 = dumps_jsonl(tracer2)
    assert len(tracer1.events) > 0
    assert text1.encode() == text2.encode()

    # Metrics snapshots are equally deterministic.
    assert metrics1.snapshot() == metrics2.snapshot()

    # And the application's answers match, of course.
    for a, b in zip(res1, res2):
        np.testing.assert_array_equal(a, b)


def test_tracing_does_not_perturb_the_simulation():
    sim_on, job_on, tracer, _metrics, res_on = run_scenario(traced=True)
    sim_off, job_off, none_tracer, _none, res_off = run_scenario(traced=False)
    assert none_tracer is None
    assert len(tracer.events) > 0

    # Same virtual end time: the tracer scheduled nothing.
    assert sim_on.now == sim_off.now
    # Same recovery history and final state machine trajectory.
    assert job_on.epoch == job_off.epoch
    assert job_on.recovery_causes == job_off.recovery_causes
    assert job_on.transitions.entries == job_off.transitions.entries
    # Bit-identical application results.
    for a, b in zip(res_on, res_off):
        np.testing.assert_array_equal(a, b)


def test_jsonl_roundtrip(tmp_path):
    _sim, _job, tracer, _metrics, _res = run_scenario(traced=True)
    path = str(tmp_path / "trace.jsonl")
    count = write_jsonl(tracer, path)
    assert count == len(tracer.events)
    back = read_jsonl(path)
    assert len(back) == len(tracer.events)
    for orig, loaded in zip(tracer.events, back):
        assert (orig.name, orig.cat, orig.ph, orig.ts) == (
            loaded.name, loaded.cat, loaded.ph, loaded.ts
        )
        assert orig.dur == loaded.dur
        assert (orig.rank, orig.node, orig.incarnation, orig.epoch) == (
            loaded.rank, loaded.node, loaded.incarnation, loaded.epoch
        )
        assert orig.args == loaded.args
    # Re-serialising the loaded events reproduces the file bytes.
    assert dumps_jsonl(back) == dumps_jsonl(tracer)
