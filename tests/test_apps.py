"""Ping-pong and Himeno applications on both runtimes."""

import numpy as np
import pytest

from repro.apps.himeno import HimenoParams, himeno_fmi_app, himeno_mpi_app, jacobi_step
from repro.apps.pingpong import pingpong_app
from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.mpi.runtime import MpiJob
from repro.mpi.scr import Scr
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


def make(num_nodes=8, seed=0):
    sim = Simulator()
    return sim, Machine(sim, SIERRA.with_nodes(num_nodes), RngRegistry(seed))


# ------------------------------------------------------------------ ping-pong
def test_pingpong_mpi_latency_matches_table3():
    sim, machine = make(2)
    job = MpiJob(machine, pingpong_app(1.0), nprocs=2, charge_init=False)
    results = sim.run(until=job.launch())
    latency, _bw = results[0]
    assert latency == pytest.approx(3.555e-6, rel=0.02)


def test_pingpong_fmi_latency_matches_table3():
    sim, machine = make(3)
    job = FmiJob(
        machine, pingpong_app(1.0), num_ranks=2,
        config=FmiConfig(xor_group_size=2, spare_nodes=0),
    )
    results = sim.run(until=job.launch())
    latency, _bw = results[0]
    assert latency == pytest.approx(3.573e-6, rel=0.02)


def test_pingpong_bandwidth_8mb_matches_table3():
    sim, machine = make(2)
    nbytes = 8 * 1024 * 1024
    job = MpiJob(machine, pingpong_app(nbytes, iterations=20), nprocs=2,
                 charge_init=False)
    results = sim.run(until=job.launch())
    _lat, bw = results[0]
    assert bw == pytest.approx(3.227e9, rel=0.02)


def test_pingpong_fmi_slightly_slower_than_mpi():
    # Table III: FMI 1-byte latency 3.573 us vs MPI 3.555 us.
    sim1, m1 = make(2)
    job1 = MpiJob(m1, pingpong_app(1.0), nprocs=2, charge_init=False)
    lat_mpi = sim1.run(until=job1.launch())[0][0]
    sim2, m2 = make(3)
    job2 = FmiJob(m2, pingpong_app(1.0), num_ranks=2,
                  config=FmiConfig(xor_group_size=2, spare_nodes=0))
    lat_fmi = sim2.run(until=job2.launch())[0][0]
    assert lat_mpi < lat_fmi < lat_mpi * 1.02


def test_pingpong_validation():
    with pytest.raises(ValueError):
        pingpong_app(0.0)


# -------------------------------------------------------------------- kernel
def test_jacobi_step_reduces_residual():
    rng = np.random.default_rng(0)
    shape = (10, 8, 8)
    rhs = rng.normal(scale=1e-3, size=shape)
    u = np.zeros(shape)
    prev = None
    for _ in range(30):
        new = jacobi_step(u, rhs)
        res = float(np.sum((new[1:-1] - u[1:-1]) ** 2))
        u = new
        if prev is not None:
            assert res < prev * 1.01
        prev = res
    assert prev < 1e-4


# ---------------------------------------------------------------- Himeno real
def himeno_params(iters=5):
    return HimenoParams(iterations=iters, nx=8, ny=8, nz=16)


def test_himeno_mpi_converges():
    sim, machine = make(4)
    job = MpiJob(machine, himeno_mpi_app(himeno_params()), nprocs=4,
                 charge_init=False)
    results = sim.run(until=job.launch())
    res = results[0]["residuals"]
    assert len(res) == 5
    assert res[-1] < res[0]
    # Residual is a global allreduce: identical on every rank.
    assert all(r["residuals"] == res for r in results)


def test_himeno_fmi_matches_mpi_bit_exact():
    sim1, m1 = make(4)
    job1 = MpiJob(m1, himeno_mpi_app(himeno_params()), nprocs=4,
                  charge_init=False)
    mpi_out = sim1.run(until=job1.launch())

    sim2, m2 = make(6)
    job2 = FmiJob(m2, himeno_fmi_app(himeno_params()), num_ranks=4,
                  config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=0))
    fmi_out = sim2.run(until=job2.launch())

    for a, b in zip(mpi_out, fmi_out):
        assert a["field_sum"] == pytest.approx(b["field_sum"], rel=1e-12)
        assert a["residuals"] == pytest.approx(b["residuals"], rel=1e-12)


def test_himeno_fmi_survives_failure_same_answer():
    """The headline property: the answer with a mid-run node crash is
    bit-identical to the failure-free answer."""
    params = HimenoParams(iterations=6, nx=8, ny=8, nz=16, extra_work_s=0.4)

    sim1, m1 = make(6, seed=1)
    job1 = FmiJob(m1, himeno_fmi_app(params), num_ranks=4,
                  config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=0))
    clean = sim1.run(until=job1.launch())

    sim2, m2 = make(6, seed=2)
    job2 = FmiJob(m2, himeno_fmi_app(params), num_ranks=4,
                  config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=1))
    done = job2.launch()

    def killer():
        yield sim2.timeout(0.7)
        m2.node(2).crash("injected")

    sim2.spawn(killer())
    faulty = sim2.run(until=done)
    assert job2.recovery_count == 1
    for a, b in zip(clean, faulty):
        assert a["field_sum"] == b["field_sum"]
        assert a["residuals"][-1] == b["residuals"][-1]


def test_himeno_mpi_scr_restart_resumes():
    from repro.mpi.runtime import MpiRestartDriver

    params = HimenoParams(iterations=6, nx=8, ny=8, nz=16, ckpt_interval=1,
                          extra_work_s=0.4)
    sim, machine = make(6, seed=3)

    def scr_factory(api):
        return Scr(api, procs_per_node=1, group_size=4, interval=1)

    driver = MpiRestartDriver(
        machine, himeno_mpi_app(params, scr_factory), nprocs=4, procs_per_node=1
    )
    proc = sim.spawn(driver.run())

    def killer():
        yield sim.timeout(machine.spec.mpi_init_time(4) + 0.8)
        driver.jobs[0].nodes[1].crash("x")

    sim.spawn(killer())
    sim.run()
    results = proc.value
    assert driver.restarts == 1
    # Converged result matches a failure-free FMI run of the same problem.
    sim2, m2 = make(6)
    ref_job = MpiJob(m2, himeno_mpi_app(params), nprocs=4, charge_init=False)
    ref = sim2.run(until=ref_job.launch())
    assert results[0]["field_sum"] == pytest.approx(ref[0]["field_sum"], rel=1e-12)


# ------------------------------------------------------------ Himeno synthetic
def test_himeno_synthetic_mode_scales_time_with_flops():
    params = HimenoParams(iterations=3, synthetic=True,
                          points_per_rank=1e6, halo_bytes=1e4, ckpt_bytes=1e6)
    sim, machine = make(4)
    job = MpiJob(machine, himeno_mpi_app(params), nprocs=4, charge_init=False)
    results = sim.run(until=job.launch())
    # 3 iterations x 1e6 points x 34 flops / 1.37 GF/s ~= 0.0745 s
    expected = 3 * 1e6 * 34.0 / machine.spec.node.core_flops
    assert sim.now >= expected
    assert results[0]["points"] == pytest.approx(3e6)


def test_himeno_synthetic_fmi_with_failure():
    params = HimenoParams(iterations=5, synthetic=True,
                          points_per_rank=5e7, halo_bytes=1e5, ckpt_bytes=5e7)
    sim, machine = make(10, seed=4)
    job = FmiJob(machine, himeno_fmi_app(params), num_ranks=8, procs_per_node=2,
                 config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=1))
    done = job.launch()

    def killer():
        yield sim.timeout(2.5)
        machine.node(1).crash("boom")

    sim.spawn(killer())
    results = sim.run(until=done)
    assert job.recovery_count == 1
    # Replacement ranks restart counting from the restored iteration,
    # so points vary; everyone must have made real progress though.
    assert all(r["points"] > 0 for r in results)
