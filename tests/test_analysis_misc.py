"""Table rendering, size estimation, reduction ops, transition log."""

import numpy as np
import pytest

from repro.analysis.tables import Table, fmt_bytes, fmt_seconds
from repro.fmi.payload import Payload
from repro.fmi.state import ProcState, TransitionLog
from repro.mpi.datatypes import sizeof
from repro.mpi.ops import LAND, LOR, MAX, MIN, PROD, SUM


# -------------------------------------------------------------------- tables
def test_table_renders_header_and_rows():
    t = Table("demo", ["a", "bb"])
    t.add(1, "x")
    t.add(22.5, "yy")
    out = t.render()
    lines = out.splitlines()
    assert lines[0] == "== demo =="
    assert "a" in lines[1] and "bb" in lines[1]
    assert "-+-" in lines[2]
    assert "22.5" in out and "yy" in out


def test_table_wrong_arity_rejected():
    t = Table("demo", ["a", "b"])
    with pytest.raises(ValueError):
        t.add(1)


def test_table_float_formatting():
    t = Table("f", ["v"])
    t.add(0.0001234)
    t.add(1234567.0)
    t.add(3.14159)
    out = t.render()
    assert "1.234e-04" in out
    assert "1.235e+06" in out
    assert "3.142" in out


def test_table_empty_renders():
    assert "== empty ==" in Table("empty", ["x"]).render()


def test_fmt_seconds_scales():
    assert fmt_seconds(3.5e-6) == "3.500 us"
    assert fmt_seconds(0.0123) == "12.30 ms"
    assert fmt_seconds(2.5) == "2.500 s"


def test_fmt_bytes_scales():
    assert fmt_bytes(3.24e9) == "3.24 GB"
    assert fmt_bytes(8.21e8) == "821.00 MB"
    assert fmt_bytes(1024.0) == "1.02 KB"
    assert fmt_bytes(12.0) == "12 B"


# ------------------------------------------------------------------- sizeof
def test_sizeof_ndarray():
    assert sizeof(np.zeros(100, dtype=np.float64)) == 800.0


def test_sizeof_payload_uses_declared():
    assert sizeof(Payload.synthetic(6e9, rep_bytes=16)) == 6e9


def test_sizeof_scalars_and_strings():
    assert sizeof(42) == 8.0
    assert sizeof(3.14) == 8.0
    assert sizeof(True) == 1.0
    assert sizeof(None) == 1.0
    assert sizeof("abcd") == 4.0
    assert sizeof(b"abc") == 3.0


def test_sizeof_containers_recursive():
    assert sizeof([1, 2, 3]) == 24.0
    assert sizeof({"k": 1.0}) == 8.0 + 1.0
    assert sizeof(()) == 8.0  # empty container floor
    assert sizeof(object()) == 64.0  # opaque default


# ----------------------------------------------------------------------- ops
def test_ops_scalars():
    assert SUM(2, 3) == 5
    assert PROD(2, 3) == 6
    assert MAX(2, 3) == 3
    assert MIN(2, 3) == 2
    assert LOR(0, 1) is True
    assert LAND(1, 0) is False


def test_ops_arrays_elementwise():
    a, b = np.array([1, 5]), np.array([4, 2])
    assert np.array_equal(SUM(a, b), [5, 7])
    assert np.array_equal(MAX(a, b), [4, 5])
    assert np.array_equal(MIN(a, b), [1, 2])
    assert np.array_equal(PROD(a, b), [4, 10])


# ------------------------------------------------------------ transition log
def test_transition_log_per_rank():
    log = TransitionLog()
    log.record(0.0, 0, 0, ProcState.H1_BOOTSTRAPPING, 0)
    log.record(0.1, 1, 0, ProcState.H1_BOOTSTRAPPING, 0)
    log.record(0.2, 0, 0, ProcState.H2_CONNECTING, 0)
    assert log.states_of_rank(0) == [
        ProcState.H1_BOOTSTRAPPING, ProcState.H2_CONNECTING
    ]
    assert len(log.of_rank(1)) == 1
    assert log.of_rank(1)[0].time == 0.1
