"""Analytic models: C/R time, Vaidya, availability, multilevel efficiency."""

import math

import pytest

from repro.cluster.spec import COASTAL_L1_RATE, COASTAL_L2_RATE
from repro.models.availability import prob_continuous_run, run_probability_curve
from repro.models.cr_model import checkpoint_time, per_node_throughput, restart_time
from repro.models.efficiency import multilevel_efficiency, single_level_efficiency
from repro.models.vaidya import (
    expected_runtime_factor,
    optimal_interval,
    young_interval,
)

MEM, NET = 32e9, 3.24e9


# ------------------------------------------------------------------ cr_model
def test_checkpoint_time_formula():
    s, n = 6e9, 16
    expected = s / MEM + (s + s / (n - 1)) / NET + s / MEM
    assert checkpoint_time(s, n, MEM, NET) == pytest.approx(expected)


def test_restart_adds_gather():
    s, n = 6e9, 16
    assert restart_time(s, n, MEM, NET) == pytest.approx(
        checkpoint_time(s, n, MEM, NET) + s / NET
    )


def test_cr_time_independent_of_total_processes():
    # The model has no process-count parameter at all: constant scaling.
    t = checkpoint_time(1e9, 8, MEM, NET)
    assert t == checkpoint_time(1e9, 8, MEM, NET)


def test_procs_per_node_shares_bandwidth():
    t1 = checkpoint_time(0.5e9, 16, MEM, NET, procs_per_node=1)
    t12 = checkpoint_time(0.5e9, 16, MEM, NET, procs_per_node=12)
    assert t12 == pytest.approx(12 * t1)


def test_per_node_throughput_matches_paper_ballpark():
    # 6 GB/node, group 16: ~2.4 GB/s checkpoint, ~1.3 GB/s restart.
    ckpt = per_node_throughput(6e9, 16, MEM, NET)
    rst = per_node_throughput(6e9, 16, MEM, NET, restart=True)
    assert ckpt == pytest.approx(2.4e9, rel=0.15)
    assert rst == pytest.approx(1.3e9, rel=0.25)
    assert rst < ckpt


def test_group_size_saturation():
    times = {n: checkpoint_time(6e9, n, MEM, NET) for n in (2, 4, 8, 16, 32, 64)}
    assert times[2] > times[16]
    assert times[16] - times[64] < 0.10 * times[16]


def test_cr_model_validation():
    with pytest.raises(ValueError):
        checkpoint_time(1e9, 1, MEM, NET)
    with pytest.raises(ValueError):
        checkpoint_time(-1, 4, MEM, NET)


# -------------------------------------------------------------------- vaidya
def test_factor_penalises_extremes():
    c, m = 10.0, 3600.0
    best = optimal_interval(c, m)
    f_best = expected_runtime_factor(best, c, m)
    assert expected_runtime_factor(best / 20, c, m) > f_best
    assert expected_runtime_factor(best * 20, c, m) > f_best


def test_optimal_close_to_young_when_cheap():
    c, m = 1.0, 36000.0  # C << MTBF
    assert optimal_interval(c, m) == pytest.approx(young_interval(c, m), rel=0.10)


def test_optimal_interval_monotone_in_cost():
    m = 3600.0
    assert optimal_interval(1.0, m) < optimal_interval(10.0, m) < optimal_interval(100.0, m)


def test_optimal_interval_monotone_in_mtbf():
    c = 5.0
    assert optimal_interval(c, 600.0) < optimal_interval(c, 6000.0)


def test_restart_cost_scales_factor_only():
    # Restart cost multiplies the factor but does not move the optimum.
    c, m = 10.0, 3600.0
    t0 = optimal_interval(c, m, restart_cost=0.0)
    t1 = optimal_interval(c, m, restart_cost=50.0)
    assert t0 == pytest.approx(t1, rel=1e-3)
    assert expected_runtime_factor(t0, c, m, 50.0) > expected_runtime_factor(t0, c, m, 0.0)


def test_zero_cost_interval_is_zero():
    assert optimal_interval(0.0, 100.0) == 0.0


def test_vaidya_validation():
    with pytest.raises(ValueError):
        expected_runtime_factor(0.0, 1.0, 100.0)
    with pytest.raises(ValueError):
        expected_runtime_factor(1.0, 1.0, 0.0)
    with pytest.raises(ValueError):
        young_interval(1.0, 0.0)


# --------------------------------------------------------------- availability
def test_exponential_survival():
    lam = 1e-5
    assert prob_continuous_run(lam, 86400.0) == pytest.approx(math.exp(-lam * 86400))


def test_paper_quoted_points():
    # Section VI-C: 80 % at 6x with FMI; 70 % vs 10 % at 10x.
    rows = dict(
        (f, (w, wo)) for f, w, wo in run_probability_curve([6, 10])
    )
    assert rows[6][0] == pytest.approx(0.80, abs=0.02)
    assert rows[10][0] == pytest.approx(0.70, abs=0.02)
    assert rows[10][1] == pytest.approx(0.10, abs=0.02)


def test_fmi_always_at_least_as_good():
    for f, w, wo in run_probability_curve(range(0, 51, 5)):
        assert w >= wo


def test_availability_validation():
    with pytest.raises(ValueError):
        prob_continuous_run(-1.0)
    with pytest.raises(ValueError):
        run_probability_curve([-1])


# ----------------------------------------------------------------- efficiency
def test_single_level_efficiency_bounds():
    e = single_level_efficiency(10.0, 3600.0, 30.0)
    assert 0.8 < e < 1.0
    assert single_level_efficiency(0.0, 3600.0) == 1.0


def test_multilevel_reduces_to_l1_without_l2_failures():
    e1 = single_level_efficiency(0.4, 1 / COASTAL_L1_RATE, 0.7)
    e = multilevel_efficiency(0.4, 0.7, COASTAL_L1_RATE, 100.0, 100.0, 0.0)
    assert e == pytest.approx(e1)


def test_multilevel_monotone_in_scale():
    base = dict(c1=0.4, r1=0.7)
    effs = []
    for f in (1, 10, 50):
        effs.append(
            multilevel_efficiency(
                base["c1"], base["r1"], f * COASTAL_L1_RATE,
                f * 230.0, f * 230.0, f * COASTAL_L2_RATE,
            )
        )
    assert effs[0] > effs[1] > effs[2]


def test_multilevel_collapse_when_write_exceeds_mtbf():
    # c2 far beyond the MTBF: the vulnerable write never completes.
    eff = multilevel_efficiency(0.4, 0.7, 1e-3, 1e7, 1e7, 1e-4)
    assert eff < 0.01


def test_multilevel_validation():
    with pytest.raises(ValueError):
        multilevel_efficiency(-1, 0, 0, 0, 0, 0)
    with pytest.raises(ValueError):
        multilevel_efficiency(0, 0, -1, 0, 0, 0)


# -------------------------------------------------------------- msglog model
def test_log_volume_scales_linearly():
    from repro.models.msglog_model import log_volume

    base = log_volume(100.0, 1e4, 0.5, 2.0, keep=2)
    assert base == pytest.approx(100.0 * 1e4 * 0.5 * 2.0 * 2)
    assert log_volume(200.0, 1e4, 0.5, 2.0) == pytest.approx(2 * base)
    assert log_volume(100.0, 1e4, 0.0, 2.0) == 0.0
    with pytest.raises(ValueError):
        log_volume(100.0, 1e4, 1.5, 2.0)
    with pytest.raises(ValueError):
        log_volume(100.0, 1e4, 0.5, 2.0, keep=0)


def test_partial_beats_global_below_crossover():
    from repro.models.msglog_model import (
        global_recovery_latency,
        partial_beats_global,
        partial_recovery_latency,
        replay_crossover_bytes,
    )

    kw = dict(s=1e8, group_size=16, mem_bw=1e10, net_bw=1e9)
    cross = replay_crossover_bytes(
        world_bootstrap_s=2.0, unit_bootstrap_s=0.1, net_bw=kw["net_bw"],
    )
    assert cross == pytest.approx(1.9 * 1e9)
    for backlog, wins in ((0.5 * cross, True), (2.0 * cross, False)):
        assert partial_beats_global(
            world_bootstrap_s=2.0, unit_bootstrap_s=0.1,
            replay_bytes=backlog, **kw,
        ) is wins
    # At zero backlog the gap is exactly the bootstrap saving.
    gap = global_recovery_latency(
        world_bootstrap_s=2.0, **kw
    ) - partial_recovery_latency(
        unit_bootstrap_s=0.1, replay_bytes=0.0, **kw
    )
    assert gap == pytest.approx(1.9)
