"""End-to-end FMI jobs: failure-free runs, recovery, data integrity."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.fmi.errors import FmiAbort
from repro.fmi.state import ProcState
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


def make(num_nodes=8, seed=0):
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(num_nodes), RngRegistry(seed))
    return sim, machine


def counting_app(num_loops, work=0.01):
    """Each rank iterates, checkpointing a counter array; returns the
    final counter and the number of body executions (to observe
    rollback retries)."""

    def app(fmi):
        u = np.zeros(4, dtype=np.float64)
        executions = []
        yield from fmi.init()
        while True:
            n = yield from fmi.loop([u])
            if n >= num_loops:
                break
            # body of iteration n
            executions.append(n)
            yield fmi.elapse(work)
            u[0] = n + 1.0  # state after completing iteration n
            u[1] = fmi.rank
            total = yield from fmi.allreduce(float(n))
            u[2] = total
        yield from fmi.finalize()
        return (u.copy(), executions)

    return app


# ------------------------------------------------------------- failure-free
def test_failure_free_run_completes():
    sim, machine = make()
    job = FmiJob(
        machine, counting_app(5), num_ranks=8, procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=0),
    )
    results = sim.run(until=job.launch())
    assert len(results) == 8
    for u, executions in results:
        assert u[0] == 5.0
        assert executions == [0, 1, 2, 3, 4]
    assert job.recovery_count == 0
    assert job.checkpoints_done > 0
    assert job.restores_done == 0


def test_first_loop_always_checkpoints():
    sim, machine = make()
    job = FmiJob(
        machine, counting_app(3), num_ranks=4, procs_per_node=1,
        config=FmiConfig(xor_group_size=4, spare_nodes=0),  # no interval/mtbf
    )
    sim.run(until=job.launch())
    # Only the initial mandatory checkpoint: one per rank.
    assert job.checkpoints_done == 4


def test_interval_counts_loops():
    sim, machine = make()
    job = FmiJob(
        machine, counting_app(6), num_ranks=4, procs_per_node=1,
        config=FmiConfig(interval=2, xor_group_size=4, spare_nodes=0),
    )
    sim.run(until=job.launch())
    # Checkpoints at loop 0 (mandatory), 2, 4, 6: 4 per rank.
    assert job.checkpoints_done == 4 * 4


def test_init_time_recorded():
    sim, machine = make()
    job = FmiJob(
        machine, counting_app(1), num_ranks=8, procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=0),
    )
    sim.run(until=job.launch())
    expected = machine.spec.fmi_bootstrap_time(8)
    assert job.init_done_at is not None
    assert job.init_done_at >= expected


# ----------------------------------------------------------------- recovery
def run_with_kill(kill_time, num_loops=6, work=0.5, num_nodes=10, ranks=16,
                  ppn=2, group=4, spares=1, seed=0, kill_node=0):
    sim, machine = make(num_nodes, seed)
    job = FmiJob(
        machine, counting_app(num_loops, work), num_ranks=ranks,
        procs_per_node=ppn,
        config=FmiConfig(interval=1, xor_group_size=group, spare_nodes=spares),
    )
    done = job.launch()

    def killer():
        yield sim.timeout(kill_time)
        machine.node(kill_node).crash("injected")

    sim.spawn(killer())
    results = sim.run(until=done)
    return sim, machine, job, results


def test_single_node_failure_recovers_and_completes():
    sim, machine, job, results = run_with_kill(kill_time=1.5)
    assert job.recovery_count == 1
    assert job.restores_done > 0
    assert len(results) == 16
    for u, _ex in results:
        assert u[0] == 6.0  # final state correct despite the crash


def test_rollback_reexecutes_iterations():
    sim, machine, job, results = run_with_kill(kill_time=1.5)
    assert job.restores_done > 0
    # After recovery the application generator restarts from the top
    # and FMI_Loop returns the restored loop id: every rank's (fresh)
    # execution list is a contiguous run ending at the last iteration,
    # starting from the restored id (< 6 if the rank rolled back).
    rolled_back = 0
    for _u, ex in results:
        assert ex[-1] == 5
        assert ex == list(range(ex[0], 6))
        if ex[0] > 0:
            rolled_back += 1
    assert rolled_back > 0, "nobody rolled back despite a mid-run failure"


def test_failed_ranks_replaced_on_spare_node():
    sim, machine, job, results = run_with_kill(kill_time=1.5, kill_node=2)
    # Ranks 4,5 lived on node 2; their processes must be incarnation 1 now.
    for rank in (4, 5):
        fp = job.rank_procs[rank]
        assert fp.incarnation == 1
        assert fp.node.id != 2
        assert fp.node.alive
    # Survivor ranks kept their original processes.
    assert job.rank_procs[0].incarnation == 0


def test_survivors_transition_h3_h1_h2_h3():
    sim, machine, job, _ = run_with_kill(kill_time=1.5)
    states = job.transitions.states_of_rank(15)  # a survivor
    assert states[:3] == [
        ProcState.H1_BOOTSTRAPPING, ProcState.H2_CONNECTING, ProcState.H3_RUNNING
    ]
    # After the failure: back through H1, H2 into H3, then DONE.
    assert states[3:7] == [
        ProcState.H1_BOOTSTRAPPING,
        ProcState.H2_CONNECTING,
        ProcState.H3_RUNNING,
        ProcState.DONE,
    ]


def test_two_sequential_failures():
    sim, machine = make(12, seed=1)
    job = FmiJob(
        machine, counting_app(8, work=0.5), num_ranks=16, procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=2),
    )
    done = job.launch()

    def killer():
        yield sim.timeout(1.0)
        machine.node(1).crash("first")
        yield sim.timeout(2.5)
        machine.node(3).crash("second")

    sim.spawn(killer())
    results = sim.run(until=done)
    assert job.recovery_count == 2
    for u, _ex in results:
        assert u[0] == 8.0


def test_multi_node_simultaneous_failure_different_groups():
    # Nodes 0 and 4 host ranks of different XOR groups (group size 4:
    # block 0 = nodes 0-3, block 1 = nodes 4-7), so a simultaneous
    # failure of both is still level-1 recoverable.
    sim, machine = make(10, seed=2)
    job = FmiJob(
        machine, counting_app(6, work=0.5), num_ranks=16, procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=2),
    )
    done = job.launch()

    def killer():
        yield sim.timeout(1.5)
        machine.fail_nodes([0, 4], cause="double")

    sim.spawn(killer())
    results = sim.run(until=done)
    assert job.recovery_count == 1  # coalesced into one recovery round
    for u, _ex in results:
        assert u[0] == 6.0


def test_two_failures_in_one_xor_group_aborts():
    # Nodes 0 and 1 are in the same XOR block: two lost members in one
    # group exceeds level-1 protection and must abort.
    sim, machine = make(10, seed=3)
    job = FmiJob(
        machine, counting_app(6, work=0.5), num_ranks=16, procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=2),
    )
    done = job.launch()

    def killer():
        yield sim.timeout(1.5)
        machine.fail_nodes([0, 1], cause="same-group")

    sim.spawn(killer())
    with pytest.raises(FmiAbort):
        sim.run(until=done)


def test_failure_before_first_checkpoint_cold_starts():
    # Kill during bootstrap-ish time: before any checkpoint exists.
    sim, machine = make(10, seed=4)
    job = FmiJob(
        machine, counting_app(3, work=0.2), num_ranks=16, procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=1),
    )
    done = job.launch()

    def killer():
        yield sim.timeout(0.05)  # during process spawn / H1
        machine.node(0).crash("early")

    sim.spawn(killer())
    results = sim.run(until=done)
    assert job.recovery_count >= 1
    for u, _ex in results:
        assert u[0] == 3.0


def test_max_recoveries_guard():
    sim, machine = make(12, seed=5)
    job = FmiJob(
        machine, counting_app(50, work=0.5), num_ranks=16, procs_per_node=2,
        config=FmiConfig(
            interval=1, xor_group_size=4, spare_nodes=2, max_recoveries=1
        ),
    )
    done = job.launch()

    def killer():
        yield sim.timeout(1.5)
        machine.node(0).crash("one")
        yield sim.timeout(10.0)
        machine.node(1).crash("two")

    sim.spawn(killer())
    with pytest.raises(FmiAbort, match="max_recoveries"):
        sim.run(until=done)


def test_app_exception_aborts_job():
    def buggy(fmi):
        yield from fmi.init()
        if fmi.rank == 1:
            raise ZeroDivisionError("bug")
        yield from fmi.finalize()

    sim, machine = make(8)
    job = FmiJob(
        machine, buggy, num_ranks=4, procs_per_node=1,
        config=FmiConfig(xor_group_size=4, spare_nodes=0),
    )
    with pytest.raises(FmiAbort):
        sim.run(until=job.launch())


def test_recovery_latency_recorded():
    sim, machine, job, _ = run_with_kill(kill_time=1.5)
    latency = job.recovery_latency(1)
    assert latency is not None
    # At minimum the ibverbs 0.2 s detection delay plus respawn must pass.
    assert 0.2 < latency < 30.0


def test_restored_data_bitexact_on_replacement():
    """The replacement rank's restored array equals what was saved."""
    observed = {}

    def app(fmi):
        u = np.zeros(64, dtype=np.float64)
        yield from fmi.init()
        while True:
            n = yield from fmi.loop([u])
            if n >= 4:
                break
            if fmi.fproc.incarnation > 0 and fmi.rank not in observed:
                observed[fmi.rank] = (n, u.copy())
            u[:] = (n + 1) * 1000 + fmi.rank
            yield fmi.elapse(0.5)
        yield from fmi.finalize()
        return u.copy()

    sim, machine = make(10, seed=6)
    job = FmiJob(
        machine, app, num_ranks=16, procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=1),
    )
    done = job.launch()

    def killer():
        yield sim.timeout(1.2)
        machine.node(0).crash("x")

    sim.spawn(killer())
    results = sim.run(until=done)
    # Replacement ranks (0 and 1 lived on node 0) saw the restored value.
    assert observed, "no replacement rank observed a restore"
    for rank, (n, u) in observed.items():
        assert np.all(u == n * 1000 + rank), (rank, n, u[:3])
    for rank, u in enumerate(results):
        assert np.all(u == 4 * 1000 + rank)


def test_replacement_timeout_aborts_when_machine_exhausted():
    # A 8-node machine running an 8-node job: no spare exists anywhere,
    # so a crash can never be repaired.  With replacement_timeout the
    # job aborts instead of waiting forever.
    sim, machine = make(8, seed=42)
    job = FmiJob(
        machine, counting_app(50, work=0.5), num_ranks=16, procs_per_node=2,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=0,
                         replacement_timeout=5.0),
    )
    done = job.launch()

    def killer():
        yield sim.timeout(2.0)
        machine.node(0).crash("no-spares-anywhere")

    sim.spawn(killer())
    with pytest.raises(FmiAbort, match="replacement"):
        sim.run(until=done)
    assert sim.now < 60.0  # aborted promptly, no infinite wait
