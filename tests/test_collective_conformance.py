"""Macro-event fast path vs the hop-level conformance oracle.

The contract of :mod:`repro.mpi.macro`:

* **results are byte-identical** to the hop engine's, for every
  collective, payload shape and (non-)power-of-two size -- the macro
  path replays the exact fold/copy order, so even float rounding
  matches bit-for-bit;
* **completion times agree with the oracle** within a small tolerance
  (the model ignores intra-collective NIC/memory-bus contention; the
  hop engine prices it);
* under ``auto``, anything that makes per-hop fidelity load-bearing
  falls back to the hop engine transparently.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.mpi.collectives import allreduce_hier, set_collective_mode
from repro.mpi.ops import MAX, SUM
from repro.mpi.runtime import MpiJob
from repro.obs.tracer import Tracer
from repro.simt import Simulator
from repro.simt.rng import RngRegistry

#: relative tolerance on collective completion time (max over ranks);
#: covers the contention the closed-form model deliberately ignores
REL_TOL = 0.15
#: absolute floor for near-zero durations (a couple of sw overheads)
ABS_TOL = 5e-6


@pytest.fixture(autouse=True)
def _restore_mode():
    yield
    set_collective_mode(None)


def run_timed(app, nprocs, mode, ppn=1, nodes=None, seed=0, prep=None):
    """Run ``app`` (rank generator returning (result, t0, t1)) under a
    collective engine mode; returns (results, duration, job)."""
    set_collective_mode(mode)
    try:
        sim = Simulator()
        machine = Machine(
            sim,
            SIERRA.with_nodes(nodes or max(2, -(-nprocs // ppn))),
            RngRegistry(seed),
        )
        job = MpiJob(machine, app, nprocs, procs_per_node=ppn,
                     charge_init=False)
        if prep is not None:
            prep(sim, machine, job)
        out = sim.run(until=job.launch())
    finally:
        set_collective_mode(None)
    results = [r for r, _t0, _t1 in out]
    start = min(t0 for _r, t0, _t1 in out)
    end = max(t1 for _r, _t0, t1 in out)
    return results, end - start, job


def same(a, b) -> bool:
    """Deep equality that treats ndarrays bit-for-bit."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and np.array_equal(a, b)
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(same(x, y) for x, y in zip(a, b))
    return type(a) is type(b) and a == b


def check_conformance(app, nprocs, ppn=1, nodes=None):
    hop_res, hop_t, _ = run_timed(app, nprocs, "hops", ppn=ppn, nodes=nodes)
    mac_res, mac_t, job = run_timed(app, nprocs, "macro", ppn=ppn, nodes=nodes)
    macro = job.transport.macro
    assert macro is not None and macro.instances_macro > 0
    assert macro.instances_hop == 0
    for r_hop, r_mac in zip(hop_res, mac_res):
        assert same(r_hop, r_mac), (r_hop, r_mac)
    assert mac_t == pytest.approx(hop_t, rel=REL_TOL, abs=ABS_TOL), (
        f"macro {mac_t:.3e}s vs oracle {hop_t:.3e}s"
    )
    return hop_t, mac_t


def timed(coll):
    """Wrap a collective-driving generator into the timed app shape."""
    def app(mpi):
        t0 = mpi.now
        result = yield from coll(mpi)
        return result, t0, mpi.now
    return app


# ------------------------------------------------------------------ kinds

SIZES = [3, 5, 8, 13]


@pytest.mark.parametrize("nprocs", SIZES)
@pytest.mark.parametrize("nbytes", [None, 8.0, 65536.0])
def test_bcast_conformance(nprocs, nbytes):
    def coll(mpi):
        value = np.arange(16, dtype=np.float64) * 3.5 if mpi.rank == 1 else None
        out = yield from mpi.bcast(value, root=1, nbytes=nbytes)
        return out
    check_conformance(timed(coll), nprocs)


@pytest.mark.parametrize("nprocs", SIZES)
def test_reduce_conformance(nprocs):
    def coll(mpi):
        out = yield from mpi.reduce(
            np.full(8, 0.1 * (mpi.rank + 1)), SUM, root=min(2, mpi.size - 1)
        )
        return out
    check_conformance(timed(coll), nprocs)


@pytest.mark.parametrize("nprocs", SIZES)
@pytest.mark.parametrize("nbytes", [None, 4096.0])
def test_allreduce_conformance(nprocs, nbytes):
    def coll(mpi):
        out = yield from mpi.allreduce(
            np.full(4, 1.0 / (mpi.rank + 3)), SUM, nbytes=nbytes
        )
        return out
    check_conformance(timed(coll), nprocs)


@pytest.mark.parametrize("nprocs", SIZES)
def test_barrier_conformance(nprocs):
    def coll(mpi):
        yield from mpi.barrier()
        return True
    check_conformance(timed(coll), nprocs)


@pytest.mark.parametrize("nprocs", SIZES)
def test_gather_conformance(nprocs):
    def coll(mpi):
        out = yield from mpi.gather({"r": mpi.rank, "v": mpi.rank * 2.0}, root=0)
        return out
    check_conformance(timed(coll), nprocs)


@pytest.mark.parametrize("nprocs", SIZES)
def test_allgather_conformance(nprocs):
    def coll(mpi):
        out = yield from mpi.allgather(np.arange(mpi.rank + 1, dtype=np.int64))
        return out
    check_conformance(timed(coll), nprocs)


@pytest.mark.parametrize("nprocs", SIZES)
def test_scatter_conformance(nprocs):
    def coll(mpi):
        values = None
        if mpi.rank == 0:
            # heterogeneous payloads: rank i gets an (i+1)-element array
            values = [np.full(i + 1, float(i)) for i in range(mpi.size)]
        out = yield from mpi.scatter(values, root=0)
        return out
    check_conformance(timed(coll), nprocs)


@pytest.mark.parametrize("nprocs", SIZES)
def test_alltoall_conformance(nprocs):
    def coll(mpi):
        values = [
            np.full(dst + 1, float(mpi.rank * 100 + dst))
            for dst in range(mpi.size)
        ]
        out = yield from mpi.alltoall(values)
        return out
    check_conformance(timed(coll), nprocs)


@pytest.mark.parametrize("nprocs,ppn", [(8, 2), (12, 4), (24, 12)])
def test_allreduce_hier_conformance(nprocs, ppn):
    def coll(mpi):
        out = yield from allreduce_hier(
            mpi.world, float(mpi.rank + 1), SUM, procs_per_node=ppn
        )
        return out
    check_conformance(timed(coll), nprocs, ppn=ppn)


def test_multi_rank_per_node_conformance():
    """Mixed intra-/inter-node edges (12 ranks per node)."""
    def coll(mpi):
        out = yield from mpi.allreduce(float(mpi.rank), MAX)
        return out
    check_conformance(timed(coll), 24, ppn=12)


@settings(max_examples=12, deadline=None)
@given(
    nprocs=st.integers(2, 11),
    payload=st.integers(1, 2048),
    root=st.integers(0, 10),
)
def test_property_bcast_reduce_agree(nprocs, payload, root):
    root %= nprocs

    def coll(mpi):
        value = np.arange(payload, dtype=np.float64) if mpi.rank == root else None
        got = yield from mpi.bcast(value, root=root)
        total = yield from mpi.reduce(got.sum() * (mpi.rank + 1), SUM, root=root)
        return got.sum(), total
    check_conformance(timed(coll), nprocs)


def test_back_to_back_sequences_stay_aligned():
    """Several different collectives in sequence reuse the per-rank
    sequence counters; results must stay matched call-for-call."""
    def coll(mpi):
        a = yield from mpi.allreduce(mpi.rank + 1, SUM)
        yield from mpi.barrier()
        b = yield from mpi.bcast(a * 2 if mpi.rank == 0 else None, root=0)
        c = yield from mpi.gather(b + mpi.rank, root=1)
        return a, b, c
    check_conformance(timed(coll), 6)


# ------------------------------------------------------- pricing (satellite)


def test_scatter_alltoall_price_per_destination():
    """Regression for the `_nbytes(values[0])` bug: heterogeneous
    payloads must be priced per destination by BOTH engines (they
    share ``wire_bytes``).  Pre-fix, the hop path priced every scatter
    send at ``sizeof(values[0])`` -- 8 bytes here instead of 8 KiB."""
    def coll(mpi):
        values = None
        if mpi.rank == 0:
            values = [np.zeros(1 if i == 0 else 1024) for i in range(mpi.size)]
        out = yield from mpi.scatter(values, root=0)
        return out
    hop_t = run_timed(timed(coll), 4, "hops")[1]
    mac_t = run_timed(timed(coll), 4, "macro")[1]
    assert mac_t == pytest.approx(hop_t, rel=REL_TOL, abs=ABS_TOL)
    per_msg = 1024 * 8 / SIERRA.network.link_bw
    assert hop_t > 3 * per_msg  # three full-size transfers, serialized

    def a2a(mpi):
        values = [np.zeros(1 if d == 0 else 512) for d in range(mpi.size)]
        out = yield from mpi.alltoall(values)
        return out
    hop_t = run_timed(timed(a2a), 4, "hops")[1]
    mac_t = run_timed(timed(a2a), 4, "macro")[1]
    assert mac_t == pytest.approx(hop_t, rel=REL_TOL, abs=ABS_TOL)
    assert hop_t > 512 * 8 / SIERRA.network.link_bw


# ------------------------------------------------------------- fallbacks


def _fallback_app(mpi):
    out = yield from mpi.allreduce(mpi.rank + 1, SUM)
    return out, 0.0, mpi.now


def _run_auto(prep=None, app=_fallback_app, nprocs=4):
    return run_timed(app, nprocs, "auto", prep=prep)


def expect_fallback(job, reason):
    macro = job.transport.macro
    assert macro is not None, "coordinator should have been consulted"
    assert macro.instances_macro == 0
    assert macro.fallbacks.get(reason, 0) > 0


def test_auto_uses_macro_when_nominal():
    results, _t, job = _run_auto()
    assert results == [10] * 4
    assert job.transport.macro.instances_macro > 0


def test_auto_falls_back_under_tracing():
    def prep(sim, machine, job):
        Tracer(sim)
    results, _t, job = _run_auto(prep)
    assert results == [10] * 4
    expect_fallback(job, "observability")


def test_forced_macro_overrides_tracing():
    set_collective_mode("macro")
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(4), RngRegistry(0))
    Tracer(sim)
    job = MpiJob(machine, _fallback_app, 4, procs_per_node=1,
                 charge_init=False)
    out = sim.run(until=job.launch())
    assert [r for r, _, _ in out] == [10] * 4
    assert job.transport.macro.instances_macro > 0


def test_hop_fidelity_reason_priority_and_coverage():
    """Unit test of the transport gate: every degraded/observed state
    maps to its reason, in documented priority order."""
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(4), RngRegistry(0))
    job = MpiJob(machine, _fallback_app, 4, procs_per_node=1,
                 charge_init=False)
    tr = job.transport
    assert tr.hop_fidelity_reason() is None

    tr.block_macro()
    assert tr.hop_fidelity_reason() == "blocked"
    sim.fault_injectors += 1
    assert tr.hop_fidelity_reason() == "blocked"  # priority order
    tr.unblock_macro()
    assert tr.hop_fidelity_reason() == "injector"
    sim.fault_injectors -= 1

    machine.fabric.partition([[0, 1], [2, 3]])
    assert tr.hop_fidelity_reason() == "partition"
    machine.fabric.heal()

    machine.node(1).set_limp(bw_factor=4.0, latency_factor=2.0)
    assert tr.hop_fidelity_reason() == "limp"
    machine.node(1).set_limp()  # heal
    assert tr.hop_fidelity_reason() is None

    tr.recovery_filter = lambda env: True
    assert tr.hop_fidelity_reason() == "msglog"
    tr.recovery_filter = None

    Tracer(sim)
    assert tr.hop_fidelity_reason() == "observability"


def test_auto_falls_back_under_limp():
    def prep(sim, machine, job):
        machine.node(1).set_limp(bw_factor=4.0, latency_factor=4.0)
    results, _t, job = _run_auto(prep)
    assert results == [10] * 4
    expect_fallback(job, "limp")


def test_auto_falls_back_when_blocked():
    def prep(sim, machine, job):
        job.transport.block_macro()
    results, _t, job = _run_auto(prep)
    assert results == [10] * 4
    expect_fallback(job, "blocked")
    job.transport.unblock_macro()
    assert job.transport.hop_fidelity_reason() is None


def test_auto_falls_back_under_msglog_filter():
    def prep(sim, machine, job):
        job.transport.recovery_filter = lambda env: True
    results, _t, job = _run_auto(prep)
    assert results == [10] * 4
    expect_fallback(job, "msglog")


def test_auto_falls_back_in_hop_fidelity_scope():
    def app(mpi):
        with mpi.hop_fidelity():
            out = yield from mpi.allreduce(mpi.rank + 1, SUM)
        out2 = yield from mpi.allreduce(out, SUM)
        return (out, out2), 0.0, mpi.now

    results, _t, job = run_timed(app, 4, "auto")
    assert [r for r in results] == [(10, 40)] * 4
    macro = job.transport.macro
    assert macro.fallbacks.get("checkpoint", 0) > 0
    assert macro.instances_macro > 0  # the unscoped call went macro


def test_verdict_is_latched_per_instance():
    """The first arrival's verdict binds the whole instance -- mixed
    engines inside one collective would deadlock, so a state flip
    while ranks trickle in must not split them."""
    def app(mpi):
        if mpi.rank == 0:
            mpi.transport.block_macro()
        out = yield from mpi.allreduce(1, SUM)
        return out, 0.0, mpi.now

    results, _t, job = run_timed(app, 4, "auto")
    assert results == [4] * 4  # no deadlock, correct answer either way
