"""Service mode end-to-end: many tenants, one cluster, shared fate nowhere.

The acceptance scenario runs eight concurrent jobs -- two per recovery
family (global, logged, replicated, failstop) -- on one shared cluster
through seeded mid-run failures, and demands:

* every job's answer is bitwise identical to its solo failure-free run;
* per-tenant metrics are correctly segregated by ``job_id`` (killed
  tenants show recoveries/restarts, bystanders show none);
* the whole run replays byte-identically from its trace (same seeds ->
  same JSONL, to the byte);
* several tenants genuinely overlap (``max_concurrent``), i.e. this is
  service mode and not accidental serialization.

Plus focused unit tests for the scheduler policies (FCFS, EASY
backfill, preempt-low-priority, rejection) on hand-built streams.
"""

import numpy as np
import pytest

from repro.apps.synthetic import expected_bsp_state
from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.obs import MetricsRegistry, Tracer
from repro.obs.export import dumps_jsonl
from repro.sched import JobSpec, StreamScheduler, trace_arrivals
from repro.simt import Simulator
from repro.simt.rng import RngRegistry

MAX_EVENTS = 3_000_000

# ----------------------------------------------------------- the e2e stream
#: eight tenants, two per recovery family, staggered arrivals
E2E_SPECS = [
    (0.0, JobSpec(name="glb-a", ranks=4, ppn=2, recovery="global",
                  spares=1, interval=2, iterations=8, work_s=0.2)),
    (0.2, JobSpec(name="log-a", ranks=4, ppn=2, recovery="logged",
                  spares=1, interval=2, iterations=8, work_s=0.2)),
    (0.4, JobSpec(name="rep-a", ranks=4, ppn=2, recovery="replicated",
                  spares=1, replication_degree=2, interval=2,
                  iterations=8, work_s=0.2)),
    (0.6, JobSpec(name="fs-a", ranks=4, ppn=2, recovery="failstop",
                  iterations=8, work_s=0.2)),
    (0.8, JobSpec(name="glb-b", ranks=4, ppn=2, recovery="global",
                  spares=1, interval=2, iterations=8, work_s=0.2)),
    (1.0, JobSpec(name="log-b", ranks=4, ppn=2, recovery="logged",
                  spares=1, interval=2, iterations=8, work_s=0.2)),
    (1.2, JobSpec(name="rep-b", ranks=4, ppn=2, recovery="replicated",
                  spares=1, replication_degree=2, interval=2,
                  iterations=8, work_s=0.2)),
    (1.4, JobSpec(name="fs-b", ranks=4, ppn=2, recovery="failstop",
                  iterations=8, work_s=0.2)),
]

#: tenants that take a seeded kill (spec name -> seconds after start);
#: one per family -- the FMI families recover in place, the failstop
#: tenant aborts and relaunches through the queue
KILLS = {"glb-a": 0.8, "log-a": 0.9, "rep-a": 0.7, "fs-a": 0.5}

E2E_NODES = 24


def _run_e2e():
    """One deterministic run of the acceptance stream; returns
    (summary, tracer-jsonl, metrics registry, scheduler)."""
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(E2E_NODES), RngRegistry(0))
    tracer = Tracer(sim)
    metrics = MetricsRegistry(sim)
    sched = StreamScheduler(machine, backfill=True, spare_pool=2)

    killed = set()

    def aim(rec):
        delay = KILLS.get(rec.spec.name)
        if delay is None or rec.spec.name in killed:
            return
        killed.add(rec.spec.name)

        def fire(_e, rec=rec):
            job = rec.job
            if job is None or job.finished:
                return
            # FMI tenants expose slot -> node; failstop jobs their nodes.
            node = (job.fmirun.node_slots[0]
                    if hasattr(job, "fmirun") else job.nodes[0])
            if node.alive:
                node.crash(f"e2e kill {rec.job_id}")

        timer = sim.timeout(delay)
        timer.callbacks.append(fire)

    sched.on_start(aim)
    sched.submit_many(trace_arrivals(E2E_SPECS))
    drained = sched.drain()
    sim.run(until=drained, max_events=MAX_EVENTS)
    assert drained.triggered, "e2e stream did not drain"
    return drained.value, dumps_jsonl(tracer), metrics, sched, machine


@pytest.fixture(scope="module")
def e2e():
    return _run_e2e()


def test_e2e_all_jobs_complete_bitwise(e2e):
    summary, _, _, _, _ = e2e
    assert summary.jobs == 8
    assert summary.completed == 8, [
        (r.job_id, r.state, r.failure) for r in summary.records
    ]
    for rec in summary.records:
        want = [
            expected_bsp_state(r, rec.spec.ranks, rec.spec.iterations)
            for r in range(rec.spec.ranks)
        ]
        for rank, (got, ref) in enumerate(zip(rec.result, want)):
            assert isinstance(got, np.ndarray)
            assert np.array_equal(got, ref), (
                f"{rec.job_id} rank {rank}: answer diverged from solo run"
            )


def test_e2e_jobs_actually_overlap(e2e):
    _, _, _, sched, _ = e2e
    assert sched.max_concurrent >= 3, (
        f"only {sched.max_concurrent} tenants ever ran concurrently"
    )


def test_e2e_metrics_segregated_per_tenant(e2e):
    summary, _, metrics, _, _ = e2e
    recs = {r.spec.name: r for r in summary.records}
    for name, rec in recs.items():
        recoveries = metrics.counter("fmi.recoveries", job=rec.job_id).value
        if name in KILLS and rec.spec.recovery != "failstop":
            assert recoveries >= 1, f"{rec.job_id} took a kill, 0 recoveries"
        else:
            # Bystanders and failstop tenants never open an FMI epoch.
            assert recoveries == 0, (
                f"{rec.job_id} shows {recoveries} recoveries "
                f"it never performed"
            )
        restarts = metrics.counter("sched.restarts", job=rec.job_id).value
        if name == "fs-a":
            assert restarts >= 1, "killed failstop tenant never requeued"
        elif name not in KILLS:
            assert restarts == 0
        # Every tenant's queue wait was recorded exactly once.
        assert metrics.histogram("sched.wait_s", job=rec.job_id).count == 1


def test_e2e_no_node_double_booked(e2e):
    summary, _, _, _, _ = e2e
    busy = {}
    for rec in summary.records:
        for start, end, nodes in rec.attempts:
            for nid in nodes:
                busy.setdefault(nid, []).append((start, end, rec.job_id))
    for nid, spans in busy.items():
        spans.sort()
        for (s0, e0, j0), (s1, e1, j1) in zip(spans, spans[1:]):
            assert j0 == j1 or s1 >= e0, (
                f"node {nid}: {j0} [{s0},{e0}) overlaps {j1} [{s1},{e1})"
            )


def test_e2e_conservation_after_drain(e2e):
    _, _, _, sched, machine = e2e
    sched.shutdown()
    assert machine.rm.idle_count == len(machine.live_nodes)


def test_e2e_replays_byte_identical():
    _, jsonl_a, _, _, _ = _run_e2e()
    _, jsonl_b, _, _, _ = _run_e2e()
    assert jsonl_a == jsonl_b, "same seed replayed to a different trace"


# ------------------------------------------------------- policy unit tests
def _mini(num_nodes, **sched_kw):
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(num_nodes), RngRegistry(0))
    sched = StreamScheduler(machine, **sched_kw)
    return sim, machine, sched


LONG = JobSpec(name="long", ranks=4, ppn=1, recovery="failstop",
               iterations=10, work_s=0.2)
WIDE = JobSpec(name="wide", ranks=4, ppn=1, recovery="failstop",
               iterations=2, work_s=0.1)
SHORT = JobSpec(name="short", ranks=2, ppn=1, recovery="failstop",
                iterations=1, work_s=0.05)


def test_backfill_short_job_jumps_blocked_head():
    sim, _machine, sched = _mini(6, backfill=True)
    sched.submit(LONG, at=0.0)     # takes 4 of 6 nodes
    sched.submit(WIDE, at=0.1)     # blocked head: needs 4, only 2 idle
    short = sched.submit(SHORT, at=0.2)  # fits now, ends before the shadow
    drained = sched.drain()
    sim.run(until=drained, max_events=MAX_EVENTS)
    summary = drained.value
    assert summary.completed == 3
    assert short.backfilled
    assert short.started_at < [
        r for r in summary.records if r.spec.name == "wide"
    ][0].started_at


def test_no_backfill_is_strict_fcfs():
    sim, _machine, sched = _mini(6, backfill=False)
    sched.submit(LONG, at=0.0)
    wide = sched.submit(WIDE, at=0.1)
    short = sched.submit(SHORT, at=0.2)
    drained = sched.drain()
    sim.run(until=drained, max_events=MAX_EVENTS)
    assert drained.value.completed == 3
    assert not short.backfilled
    assert short.started_at >= wide.started_at


def test_preempt_evicts_lower_priority():
    sim, _machine, sched = _mini(4, backfill=True, preempt=True)
    low = sched.submit(LONG.with_(priority=0), at=0.0)
    high = sched.submit(WIDE.with_(priority=5), at=0.3)
    drained = sched.drain()
    sim.run(until=drained, max_events=MAX_EVENTS)
    summary = drained.value
    assert summary.completed == 2
    assert low.preemptions == 1
    assert high.wait_s < 1.0  # did not wait for the long job to finish
    assert low.state == "done"  # victim requeued and finished


def test_unsatisfiable_job_rejected_not_starving():
    sim, _machine, sched = _mini(2, backfill=True)
    huge = sched.submit(JobSpec(name="huge", ranks=8, ppn=1,
                                recovery="failstop", iterations=1,
                                work_s=0.05), at=0.0)
    small = sched.submit(SHORT, at=0.1)
    drained = sched.drain()
    sim.run(until=drained, max_events=MAX_EVENTS)
    assert huge.state == "rejected"
    assert small.state == "done"
