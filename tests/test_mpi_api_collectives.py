"""MPI API: point-to-point, collectives, communicators."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.mpi.ops import MAX, MIN, PROD, SUM
from repro.mpi.runtime import MpiJob
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


def run_app(app, nprocs, ppn=1, num_nodes=8, seed=0):
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(num_nodes), RngRegistry(seed))
    job = MpiJob(machine, app, nprocs, procs_per_node=ppn, charge_init=False)
    done = job.launch()
    return sim.run(until=done)


# ------------------------------------------------------------ point-to-point
def test_send_recv_pair():
    def app(mpi):
        if mpi.rank == 0:
            yield mpi.send(1, {"x": 42})
            return "sent"
        if mpi.rank == 1:
            data = yield from mpi.recv(0)
            return data["x"]
        return None
        yield  # pragma: no cover

    assert run_app(app, 2) == ["sent", 42, None][:2] or True
    results = run_app(app, 2)
    assert results == ["sent", 42]


def test_numpy_payload_copied_at_send():
    def app(mpi):
        if mpi.rank == 0:
            arr = np.arange(4)
            yield mpi.send(1, arr)
            arr[:] = -1  # must not corrupt the in-flight message
            return None
        got = yield from mpi.recv(0)
        return got.tolist()

    assert run_app(app, 2)[1] == [0, 1, 2, 3]


def test_sendrecv_ring_shift():
    def app(mpi):
        right = (mpi.rank + 1) % mpi.size
        left = (mpi.rank - 1) % mpi.size
        got = yield from mpi.sendrecv(right, mpi.rank, source=left)
        return got

    results = run_app(app, 4)
    assert results == [3, 0, 1, 2]


def test_tags_disambiguate():
    def app(mpi):
        if mpi.rank == 0:
            yield mpi.send(1, "a", tag=1)
            yield mpi.send(1, "b", tag=2)
            return None
        second = yield from mpi.recv(0, tag=2)
        first = yield from mpi.recv(0, tag=1)
        return (first, second)

    assert run_app(app, 2)[1] == ("a", "b")


def test_any_source():
    def app(mpi):
        if mpi.rank == 0:
            got = []
            for _ in range(mpi.size - 1):
                data = yield from mpi.recv(mpi.ANY_SOURCE)
                got.append(data)
            return sorted(got)
        yield mpi.send(0, mpi.rank)
        return None

    assert run_app(app, 4)[0] == [1, 2, 3]


# ---------------------------------------------------------------- collectives
@pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 6, 8])
def test_allreduce_sum_all_sizes(nprocs):
    def app(mpi):
        total = yield from mpi.allreduce(mpi.rank + 1, SUM)
        return total

    expected = nprocs * (nprocs + 1) // 2
    assert run_app(app, nprocs) == [expected] * nprocs


@pytest.mark.parametrize("op,expected", [(MAX, 7), (MIN, 0), (SUM, 28)])
def test_allreduce_ops(op, expected):
    def app(mpi):
        r = yield from mpi.allreduce(mpi.rank, op)
        return r

    assert run_app(app, 8) == [expected] * 8


def test_allreduce_numpy_arrays():
    def app(mpi):
        v = np.full(3, float(mpi.rank + 1))
        out = yield from mpi.allreduce(v, SUM)
        return out.tolist()

    results = run_app(app, 4)
    assert all(r == [10.0, 10.0, 10.0] for r in results)


@pytest.mark.parametrize("root", [0, 2])
@pytest.mark.parametrize("nprocs", [2, 5, 8])
def test_bcast(root, nprocs):
    if root >= nprocs:
        pytest.skip("root out of range")

    def app(mpi):
        value = f"payload-{root}" if mpi.rank == root else None
        out = yield from mpi.bcast(value, root=root)
        return out

    assert run_app(app, nprocs) == [f"payload-{root}"] * nprocs


@pytest.mark.parametrize("nprocs", [2, 3, 8])
def test_reduce_to_root(nprocs):
    def app(mpi):
        out = yield from mpi.reduce(2 ** mpi.rank, SUM, root=0)
        return out

    results = run_app(app, nprocs)
    assert results[0] == 2**nprocs - 1
    assert all(r is None for r in results[1:])


def test_reduce_prod_nonzero_root():
    def app(mpi):
        out = yield from mpi.reduce(mpi.rank + 1, PROD, root=1)
        return out

    assert run_app(app, 4)[1] == 24


def test_barrier_synchronises():
    def app(mpi):
        # Stagger arrivals; everyone must leave at/after the last arrival.
        yield mpi.elapse(float(mpi.rank))
        yield from mpi.barrier()
        return mpi.now

    times = run_app(app, 4)
    assert all(t >= 3.0 for t in times)


@pytest.mark.parametrize("nprocs", [2, 5, 8])
def test_gather(nprocs):
    def app(mpi):
        out = yield from mpi.gather(mpi.rank * 10, root=0)
        return out

    results = run_app(app, nprocs)
    assert results[0] == [r * 10 for r in range(nprocs)]
    assert all(r is None for r in results[1:])


@pytest.mark.parametrize("nprocs", [2, 3, 7, 8])
def test_allgather(nprocs):
    def app(mpi):
        out = yield from mpi.allgather(chr(ord("a") + mpi.rank))
        return "".join(out)

    expected = "".join(chr(ord("a") + r) for r in range(nprocs))
    assert run_app(app, nprocs) == [expected] * nprocs


def test_scatter():
    def app(mpi):
        values = [r * r for r in range(mpi.size)] if mpi.rank == 0 else None
        out = yield from mpi.scatter(values, root=0)
        return out

    assert run_app(app, 4) == [0, 1, 4, 9]


def test_alltoall():
    def app(mpi):
        values = [f"{mpi.rank}->{dst}" for dst in range(mpi.size)]
        out = yield from mpi.alltoall(values)
        return out

    results = run_app(app, 3)
    for dst, row in enumerate(results):
        assert row == [f"{src}->{dst}" for src in range(3)]


# -------------------------------------------------------------- communicators
def test_dup_isolates_traffic():
    def app(mpi):
        dup = yield from mpi.world.dup()
        if mpi.rank == 0:
            yield dup.send_async(1, "on-dup", None, 0)
            yield mpi.send(1, "on-world")
            return None
        world_msg = yield from mpi.world.recv(0)
        dup_msg = yield from dup.recv(0)
        return (world_msg, dup_msg)

    assert run_app(app, 2)[1] == ("on-world", "on-dup")


def test_split_even_odd():
    def app(mpi):
        sub = yield from mpi.world.split(color=mpi.rank % 2)
        total = yield from sub.allreduce(mpi.rank, SUM)
        return (sub.rank, sub.size, total)

    results = run_app(app, 6)
    evens = sum(r for r in range(6) if r % 2 == 0)
    odds = sum(r for r in range(6) if r % 2 == 1)
    for r, (sub_rank, sub_size, total) in enumerate(results):
        assert sub_size == 3
        assert sub_rank == r // 2
        assert total == (evens if r % 2 == 0 else odds)


def test_split_with_none_color():
    def app(mpi):
        color = 0 if mpi.rank < 2 else None
        sub = yield from mpi.world.split(color)
        if sub is None:
            return "out"
        return ("in", sub.size)

    results = run_app(app, 4)
    assert results == [("in", 2), ("in", 2), "out", "out"]


def test_split_key_reorders():
    def app(mpi):
        # Reverse the ordering via key.
        sub = yield from mpi.world.split(color=0, key=-mpi.rank)
        return sub.rank

    assert run_app(app, 4) == [3, 2, 1, 0]


def test_figure8_dup_and_split():
    # The paper's Figure 8: dup FMI_COMM_WORLD, then split into pairs.
    def app(mpi):
        dup = yield from mpi.world.dup()
        pair = yield from dup.split(color=mpi.rank // 2)
        return (pair.size, pair.rank)

    results = run_app(app, 8)
    assert all(size == 2 for size, _ in results)
    assert [rank for _, rank in results] == [0, 1] * 4
