"""Ablation -- overlay topology and log-ring base k (Section IV-C).

The paper's argument: a complete graph notifies in O(1) hops but costs
O(n) connections per process to establish; a plain ring costs O(1) to
establish but O(n) hops to notify; the log-ring balances both at
O(log n).  This bench quantifies the trade-off with the calibrated
connection-setup and per-hop costs, plus the effect of the tunable
base ``k`` ("we leave the optimization of k for future work").
"""

import math

import pytest

from repro.analysis.tables import Table
from repro.cluster.spec import SIERRA
from repro.net.overlay import (
    establishment_connections,
    notification_hops,
    undirected_neighbors,
)

N = 1536
NET = SIERRA.network


def evaluate(topology: str, k: int = 2):
    adj = undirected_neighbors(N, k, topology)
    conns_per_rank = max(len(peers) for peers in adj.values())
    establish_time = conns_per_rank * NET.overlay_connect_cost
    hops = notification_hops(N, failed=0, k=k, topology=topology)
    notify_time = NET.ibverbs_close_delay + (max(hops.values()) - 1) * NET.notify_hop_delay
    total_conns = establishment_connections(N, k, topology)
    return dict(
        conns_per_rank=conns_per_rank,
        establish_time=establish_time,
        max_hops=max(hops.values()),
        notify_time=notify_time,
        total_conns=total_conns,
    )


def run_all():
    out = {
        "ring": evaluate("ring"),
        "log-ring k=2": evaluate("logring", 2),
        "log-ring k=3": evaluate("logring", 3),
        "log-ring k=4": evaluate("logring", 4),
        "complete": evaluate("complete"),
    }
    return out


def test_ablation_overlay_topologies(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        f"Ablation: overlay topology at n={N} (establish vs notify)",
        ["Topology", "conns/rank", "establish (s)", "max hops", "notify (s)",
         "total conns"],
    )
    for name, r in out.items():
        table.add(name, r["conns_per_rank"], round(r["establish_time"], 3),
                  r["max_hops"], round(r["notify_time"], 3), r["total_conns"])
    table.show()

    ring, logring, complete = out["ring"], out["log-ring k=2"], out["complete"]
    # Ring: cheapest to establish, worst to notify.
    assert ring["establish_time"] < logring["establish_time"]
    assert ring["notify_time"] > 5 * logring["notify_time"] - NET.ibverbs_close_delay * 5
    assert ring["max_hops"] == N // 2
    # Complete graph: fastest notification, prohibitive establishment.
    assert complete["max_hops"] == 1
    assert complete["establish_time"] > 20 * logring["establish_time"]
    # Log-ring: both logarithmic.
    assert logring["conns_per_rank"] <= 2 * math.ceil(math.log2(N))
    assert logring["max_hops"] <= math.ceil(math.ceil(math.log2(N)) / 2)
    # Larger base k: (k-1)*log_k(n) fingers, i.e. *more* connections
    # per rank, buying equal-or-fewer notification hops -- k really is
    # a establishment-vs-detection dial, with k=2 the cheapest build.
    k2, k4 = out["log-ring k=2"], out["log-ring k=4"]
    assert k4["conns_per_rank"] > k2["conns_per_rank"]
    assert k4["max_hops"] <= k2["max_hops"]
    assert k2["establish_time"] < k4["establish_time"]
