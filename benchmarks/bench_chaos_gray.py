"""Gray-failure chaos: survival matrix + severity sweeps.

Three tables:

1. **Survival matrix** -- every gray campaign (partitions, omission,
   limping; see ``repro.chaos.campaigns``) over a seed set.  All runs
   must come back green: no split-brain recovery, every suspicion
   resolved, answers bit-equal to the failure-free reference.
2. **Omission-rate sweep** -- per-link drop probability ramped up with
   no process ever dying; the job must absorb the loss with
   retransmissions only (zero recoveries) at a measurable slowdown.
3. **Limp-severity sweep** -- one node's NIC degraded by increasing
   factors; again zero recoveries, and the run slows as the limper
   drags every halo exchange.

Seed count scales with ``REPRO_BENCH_SCALE`` (smoke/quick/full).
"""

from _harness import SCALE
from repro.analysis.tables import Table
from repro.chaos import GRAY_CAMPAIGNS, Campaign, run_campaign
from repro.chaos.scenario import AtTime, LimpSlot, Omission, Rule

NUM_SEEDS = {"smoke": 3, "quick": 10, "full": 25}[SCALE]
SWEEP_SEEDS = {"smoke": 2, "quick": 3, "full": 5}[SCALE]

DROP_RATES = [0.01, 0.05, 0.10]
LIMP_FACTORS = [2.0, 8.0, 32.0]


def _sweep_campaign(name, rules_fn, **geometry):
    """An ad-hoc campaign (unique name: the failure-free reference is
    cached per campaign name)."""
    return Campaign(name, name, rules_fn, **geometry)


#: the limp sweep moves real bytes -- a compute-bound job would hide a
#: degraded NIC entirely (that near-invisibility is itself the gray
#: failure's point, but a slowdown curve needs communication to slow)
_LIMP_GEOMETRY = dict(work_s=0.02, halo_bytes=4e6)


def _baseline():
    return _sweep_campaign("gray-baseline", lambda rng, c: [])


def _limp_baseline():
    return _sweep_campaign(
        "gray-baseline-halo", lambda rng, c: [], **_LIMP_GEOMETRY
    )


def _omission_campaign(p):
    def rules(rng, c, p=p):
        return [Rule(AtTime(0.0), Omission(drop_p=p, dup_p=p / 2, delay_p=p))]

    return _sweep_campaign(f"omission-sweep-{p:g}", rules)


def _limp_campaign(bw):
    def rules(rng, c, bw=bw):
        return [Rule(AtTime(0.5), LimpSlot(0, bw_factor=bw, latency_factor=bw / 2))]

    return _sweep_campaign(f"limp-sweep-{bw:g}", rules, **_LIMP_GEOMETRY)


def run_all():
    out = {
        "matrix": {
            name: [run_campaign(name, seed) for seed in range(NUM_SEEDS)]
            for name in GRAY_CAMPAIGNS
        },
        "baseline": [
            run_campaign(_baseline(), seed) for seed in range(SWEEP_SEEDS)
        ],
        "limp_baseline": [
            run_campaign(_limp_baseline(), seed) for seed in range(SWEEP_SEEDS)
        ],
        "omission": {
            p: [run_campaign(_omission_campaign(p), seed)
                for seed in range(SWEEP_SEEDS)]
            for p in DROP_RATES
        },
        "limp": {
            bw: [run_campaign(_limp_campaign(bw), seed)
                 for seed in range(SWEEP_SEEDS)]
            for bw in LIMP_FACTORS
        },
    }
    return out


def test_chaos_gray(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)

    matrix = Table(
        f"Gray-failure survival over {NUM_SEEDS} seeds "
        f"(8 ranks, ppn=2, XOR group 4)",
        ["Campaign", "green", "recoveries", "suspicions cleared (false)",
         "repaired", "stall/retry", "odrop/odup"],
    )
    for name, results in out["matrix"].items():
        recov = [r.recoveries for r in results]
        matrix.add(
            name,
            f"{sum(1 for r in results if r.ok)}/{len(results)}",
            f"{min(recov)}/{max(recov)}",
            sum(r.false_suspicions for r in results),
            sum(r.repaired_edges for r in results),
            f"{sum(r.partition_stalls for r in results)}"
            f"/{sum(r.partition_retries for r in results)}",
            f"{sum(r.omission_drops for r in results)}"
            f"/{sum(r.omission_dups for r in results)}",
        )
    matrix.show()

    base_t = sum(r.sim_time for r in out["baseline"]) / len(out["baseline"])

    omission = Table(
        f"Omission-rate sweep, {SWEEP_SEEDS} seeds "
        f"(failure-free baseline {base_t:.2f} s)",
        ["drop_p", "green", "recoveries", "drops", "dups suppressed",
         "sim time", "slowdown"],
    )
    for p, results in out["omission"].items():
        t = sum(r.sim_time for r in results) / len(results)
        omission.add(
            f"{p:g}",
            f"{sum(1 for r in results if r.ok)}/{len(results)}",
            max(r.recoveries for r in results),
            sum(r.omission_drops for r in results),
            sum(r.dup_dropped for r in results),
            f"{t:.2f} s",
            f"{t / base_t:.3f}x",
        )
    omission.show()

    limp_base_t = sum(r.sim_time for r in out["limp_baseline"]) / len(
        out["limp_baseline"]
    )
    limp = Table(
        f"Limp-severity sweep, {SWEEP_SEEDS} seeds, halo-heavy job "
        f"(bandwidth / factor, latency * factor/2; "
        f"baseline {limp_base_t:.2f} s)",
        ["bw_factor", "green", "recoveries", "false suspicions",
         "sim time", "slowdown"],
    )
    for bw, results in out["limp"].items():
        t = sum(r.sim_time for r in results) / len(results)
        limp.add(
            f"{bw:g}",
            f"{sum(1 for r in results if r.ok)}/{len(results)}",
            max(r.recoveries for r in results),
            sum(r.false_suspicions for r in results),
            f"{t:.2f} s",
            f"{t / limp_base_t:.3f}x",
        )
    limp.show()

    # -- assertions: everything green, and the physics points the right way
    failing = [
        (r.campaign, r.seed, str(v))
        for results in (
            list(out["matrix"].values())
            + [out["baseline"], out["limp_baseline"]]
            + list(out["omission"].values())
            + list(out["limp"].values())
        )
        for r in results if not r.ok
        for v in r.violations[:1]
    ]
    assert failing == [], f"invariant violations: {failing}"

    # Gray failures alone never drive recovery...
    for sweep in (out["omission"], out["limp"]):
        for results in sweep.values():
            assert all(r.recoveries == 0 for r in results)
    # ...but they are not free: the heaviest omission rate and the
    # heaviest limp must measurably stretch the run.
    worst_omission = out["omission"][DROP_RATES[-1]]
    assert sum(r.sim_time for r in worst_omission) / len(worst_omission) > base_t
    assert all(r.omission_drops > 0 for r in worst_omission)
    # A severe limp on a communication-heavy job must cost > 20%.
    worst_limp = out["limp"][LIMP_FACTORS[-1]]
    assert (
        sum(r.sim_time for r in worst_limp) / len(worst_limp)
        > 1.2 * limp_base_t
    )
    # The campaigns exercised what they claim to exercise.
    for name, results in out["matrix"].items():
        assert any(
            r.partition_stalls or r.partition_retries or r.omission_drops
            or r.false_suspicions or r.recoveries
            for r in results
        ), name
