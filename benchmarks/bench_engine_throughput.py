"""Engine throughput microbench: the simulator's own speed.

Unlike the ``bench_fig*`` benches (which reproduce paper results),
this bench measures the *reproduction engine itself*: how many kernel
events, simulated messages and matcher operations per wall-clock
second the hot path sustains at each process count.  It emits the
machine-readable ``BENCH_<id>.json`` record (see ``_results.py``) that
the perf-smoke CI job compares against the committed baseline.

Three scenarios:

* ``engine_throughput`` -- an end-to-end :class:`MpiJob` running a
  collective- and halo-heavy synthetic app at 48..1,536 processes
  (scale-dependent), measuring events/sec and messages/sec through the
  full kernel + matching + transport + collectives stack.  The hop
  collective engine does the per-message work, so this is the oracle
  tier.
* ``engine_throughput_macro`` -- the same app at the macro tier
  (1,536..16,384 processes): collectives complete through the
  closed-form cost model + one :class:`BulkCompletion` event each,
  while the halo exchange still exercises the per-message hot path.
  This is the scale tier the 16k-rank figure runs ride on.
* ``matcher_ops`` -- the matching engine driven directly with an
  incast-shaped post/deliver stream whose queue depth grows with the
  process count.  Runs both the indexed engine and the pre-refactor
  linear :class:`ReferenceMatchingEngine` and asserts the indexed
  engine moves messages at >=2x the reference rate at the 384-proc
  point (the refactor's headline claim).
"""

from __future__ import annotations

import gc
import os
import time
from typing import Dict, List

import pytest

from _harness import (
    MACRO_PROC_COUNTS,
    MACRO_PROCS_PER_NODE,
    PROC_COUNTS,
    PROCS_PER_NODE,
    SCALE,
    make_machine,
)
from _results import emit
from repro.analysis.tables import Table
from repro.mpi.collectives import set_collective_mode
from repro.mpi.runtime import MpiJob
from repro.net.matching import ANY_SOURCE, MatchingEngine
from repro.net.matching_reference import ReferenceMatchingEngine
from repro.net.message import Envelope
from repro.simt import Simulator

#: BSP rounds for the end-to-end scenario (kept small: the sweep covers
#: every scale point and the paper benches do the long runs)
ROUNDS = 6
HALO_BYTES = 1024.0

#: the perf-smoke CI job runs at smoke scale but still gates the
#: 384-proc hop figure, so the hop sweep extends to 384 there (the
#: extra point costs ~2 s of wall clock)
HOP_PROC_COUNTS = (
    sorted(set(PROC_COUNTS) | {384}) if SCALE == "smoke" else PROC_COUNTS
)

#: target messages per matcher measurement; rounds shrink as the incast
#: widens so every point does comparable total work
_MATCHER_TARGET_MSGS = 49_152
_REFERENCE_TARGET_MSGS = 12_288

#: wall clock on shared runners swings +-10%; each engine point is
#: measured this many times and the fastest run recorded (the min-of-N
#: convention pytest-benchmark itself uses) so the baseline gates track
#: the code, not a noisy neighbour
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "2"))


# ---------------------------------------------------------------- engine
def _engine_app(rounds: int, msg_totals: Dict[int, int]):
    def app(api):
        right = (api.rank + 1) % api.size
        left = (api.rank - 1) % api.size
        total = 0
        for _ in range(rounds):
            total += yield from api.allreduce(1, nbytes=8.0)
            total += yield from api.sendrecv(
                right, api.rank, source=left, nbytes=HALO_BYTES, tag=7
            )
        msg_totals[api.rank] = api.msgs_sent
        return total

    return app


def measure_engine(nprocs: int, ppn: int = PROCS_PER_NODE,
                   mode: str = "hops") -> Dict[str, float]:
    """One throughput point: best of ``REPEATS`` runs (fresh simulation
    each -- a drained simulator cannot be rerun), collective engine
    pinned to ``mode`` ("hops" keeps the scenario comparable across the
    perf trajectory regardless of the session's ``REPRO_COLLECTIVES``)."""
    best: Dict[str, float] = {}
    for _ in range(max(1, REPEATS)):
        entry = _measure_engine_once(nprocs, ppn, mode)
        if not best or entry["events_per_sec"] > best["events_per_sec"]:
            best = entry
    return best


def _measure_engine_once(nprocs: int, ppn: int,
                         mode: str) -> Dict[str, float]:
    prev = set_collective_mode(mode)
    try:
        sim, machine = make_machine(nprocs // ppn, seed=nprocs)
        msg_totals: Dict[int, int] = {}
        job = MpiJob(machine, _engine_app(ROUNDS, msg_totals), nprocs,
                     procs_per_node=ppn, charge_init=False)
        # Freeze the (large, long-lived) simulation object graph out of
        # the collector's view for the timed region: at 16k ranks, gen2
        # collections otherwise rescan millions of live objects and the
        # measurement reads as event-loop cost.
        gc.collect()
        gc.freeze()
        gc.disable()
        try:
            t0 = time.perf_counter()
            sim.run(until=job.launch())
            wall = time.perf_counter() - t0
        finally:
            gc.enable()
            gc.unfreeze()
    finally:
        set_collective_mode(prev)
    events = sim.stats.events_processed
    msgs = sum(msg_totals.values())
    entry = {
        "procs": nprocs,
        "wall_clock_s": wall,
        "simulated_s": sim.now,
        "events": events,
        "peak_heap": sim.stats.peak_heap,
        "events_per_sec": events / wall,
        "msgs": msgs,
        "msgs_per_sec": msgs / wall,
    }
    macro = job.transport.macro
    if macro is not None:
        entry["macro_instances"] = macro.instances_macro
        entry["macro_hop_fallbacks"] = macro.instances_hop
    return entry


def measure_engine_macro(nprocs: int) -> Dict[str, float]:
    """One macro-tier point: same app, collective engine pinned macro.

    ``msgs``/``msgs_per_sec`` count only the halo exchange here -- the
    macro engine completes collectives without per-hop messages (that
    is the point), so the hop tier's msg figures are not comparable.
    """
    entry = measure_engine(nprocs, ppn=MACRO_PROCS_PER_NODE, mode="macro")
    assert entry.get("macro_instances", 0) == ROUNDS, entry
    assert entry.get("macro_hop_fallbacks", 1) == 0, entry
    return entry


# --------------------------------------------------------------- matcher
def drive_matcher(engine_cls, nsrc: int, target_msgs: int) -> Dict[str, float]:
    """Incast stream: ``nsrc`` senders into one matching engine.

    Even rounds post first (posted queue fills to ``nsrc``, deliveries
    arrive in reverse source order -- the linear engine's worst case);
    odd rounds deliver first and drain through wildcard receives (the
    unexpected queue's worst case).  Queue depth scales with the
    process count, which is exactly what the linear scans are
    quadratic in.
    """
    rounds = max(2, target_msgs // nsrc)
    sim = Simulator()
    eng = engine_cls(sim)
    delivered = 0
    t0 = time.perf_counter()
    for r in range(rounds):
        tag = r % 3
        if r % 2 == 0:
            recvs = [eng.post(src, tag, 0) for src in range(nsrc)]
            for src in range(nsrc - 1, -1, -1):
                eng.deliver(Envelope(src, 0, tag, 0, 0, 8.0))
        else:
            for src in range(nsrc):
                eng.deliver(Envelope(src, 0, tag, 0, 0, 8.0))
            recvs = [eng.post(ANY_SOURCE, tag, 0) for _ in range(nsrc)]
        delivered += nsrc
        sim.run()
        assert all(evt.processed for evt in recvs)
    wall = time.perf_counter() - t0
    assert eng.matched_posted + eng.matched_unexpected == delivered
    assert eng.unexpected_count == 0 and eng.pending_posted == 0
    ops = delivered * 2  # one post + one deliver per message
    return {
        "wall_clock_s": wall,
        "msgs": delivered,
        "msgs_per_sec": delivered / wall,
        "match_ops_per_sec": ops / wall,
        "events_per_sec": sim.stats.events_processed / wall,
    }


def measure_matcher(nprocs: int) -> Dict[str, float]:
    indexed = drive_matcher(MatchingEngine, nprocs, _MATCHER_TARGET_MSGS)
    reference = drive_matcher(ReferenceMatchingEngine, nprocs,
                              _REFERENCE_TARGET_MSGS)
    entry = {"procs": nprocs}
    entry.update(indexed)
    entry["reference_msgs_per_sec"] = reference["msgs_per_sec"]
    entry["speedup_vs_reference"] = (
        indexed["msgs_per_sec"] / reference["msgs_per_sec"]
    )
    return entry


# ----------------------------------------------------------------- tests
def test_engine_throughput(benchmark):
    measure_engine(HOP_PROC_COUNTS[0])  # warm the stack: the first point's
    # 40 ms measurement must not pay import/alloc warm-up costs
    out: List[Dict[str, float]] = benchmark.pedantic(
        lambda: [measure_engine(n) for n in HOP_PROC_COUNTS],
        rounds=1, iterations=1,
    )
    table = Table(
        f"Engine throughput ({SCALE}): {ROUNDS} rounds of allreduce + halo",
        ["Procs", "wall s", "sim s", "events", "events/s", "msgs/s",
         "peak heap"],
    )
    for e in out:
        table.add(e["procs"], round(e["wall_clock_s"], 2),
                  round(e["simulated_s"], 4), int(e["events"]),
                  int(e["events_per_sec"]), int(e["msgs_per_sec"]),
                  int(e["peak_heap"]))
    table.show()
    path = emit("engine_throughput", SCALE, out)
    print(f"wrote {path}")
    # The engine must not collapse superlinearly: events/sec at the
    # largest point stays within 8x of the smallest point's rate (a
    # pure O(n) matcher would blow far past that at 384+).
    rates = {e["procs"]: e["events_per_sec"] for e in out}
    assert rates[HOP_PROC_COUNTS[-1]] > rates[HOP_PROC_COUNTS[0]] / 8.0


def test_engine_throughput_macro(benchmark):
    out: List[Dict[str, float]] = benchmark.pedantic(
        lambda: [measure_engine_macro(n) for n in MACRO_PROC_COUNTS],
        rounds=1, iterations=1,
    )
    table = Table(
        f"Engine throughput, macro tier ({SCALE}): {ROUNDS} rounds of "
        f"allreduce + halo",
        ["Procs", "wall s", "sim s", "events", "events/s",
         "macro insts", "peak heap"],
    )
    for e in out:
        table.add(e["procs"], round(e["wall_clock_s"], 2),
                  round(e["simulated_s"], 4), int(e["events"]),
                  int(e["events_per_sec"]), int(e["macro_instances"]),
                  int(e["peak_heap"]))
    table.show()
    path = emit("engine_throughput_macro", SCALE, out)
    print(f"wrote {path}")
    # The scale-tier acceptance: every point must finish in
    # CI-tolerable wall time (the 16,384-proc entry under a minute),
    # and throughput must not collapse as the tier widens.
    for e in out:
        assert e["wall_clock_s"] < 60.0, (
            f"macro tier took {e['wall_clock_s']:.1f}s at {e['procs']} procs"
        )
    rates = {e["procs"]: e["events_per_sec"] for e in out}
    assert rates[MACRO_PROC_COUNTS[-1]] > rates[MACRO_PROC_COUNTS[0]] / 8.0


def test_matcher_ops(benchmark):
    out: List[Dict[str, float]] = benchmark.pedantic(
        lambda: [measure_matcher(n) for n in PROC_COUNTS],
        rounds=1, iterations=1,
    )
    table = Table(
        f"Matcher ops ({SCALE}): incast depth = procs, indexed vs linear",
        ["Procs", "msgs/s (indexed)", "msgs/s (linear)", "speedup",
         "match ops/s"],
    )
    for e in out:
        table.add(e["procs"], int(e["msgs_per_sec"]),
                  int(e["reference_msgs_per_sec"]),
                  round(e["speedup_vs_reference"], 1),
                  int(e["match_ops_per_sec"]))
    table.show()
    path = emit("matcher_ops", SCALE, out)
    print(f"wrote {path}")
    # Headline acceptance: >=2x messages/sec over the pre-refactor
    # engine at the 384-proc point (and beyond, where the gap widens).
    for e in out:
        if e["procs"] >= 384:
            assert e["speedup_vs_reference"] >= 2.0, (
                f"indexed matcher only {e['speedup_vs_reference']:.2f}x "
                f"the linear engine at {e['procs']} procs"
            )
    # The indexed engine's rate must stay roughly flat as the incast
    # deepens (that is the point of the index).
    rates = {e["procs"]: e["msgs_per_sec"] for e in out}
    assert rates[PROC_COUNTS[-1]] > rates[PROC_COUNTS[0]] / 4.0
