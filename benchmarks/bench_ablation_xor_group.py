"""Ablation -- XOR group size: C/R time vs memory vs survivability.

Section V-C: "If an XOR group size is small, memory consumption and
C/R time become large.  For large XOR group sizes, resiliency
decreases because the XOR C/R encoding is tolerant to only a single
rank failure in a XOR group."

We quantify all three axes: the model C/R times, the parity memory
overhead s/(n-1), and -- via Monte Carlo over the TSUBAME2.0 single-
node failure rate -- the probability that a second member of some
group fails during the recovery window of a first failure
(the unrecoverable-overlap risk).
"""

import numpy as np
import pytest

from repro.analysis.tables import Table
from repro.cluster.spec import SIERRA
from repro.models.cr_model import checkpoint_time, restart_time

CKPT = 6e9
NODES = 128
GROUPS = [2, 4, 8, 16, 32, 64]
NODE_MTBF = 0.658 * 86400.0  # TSUBAME2.0 compute-node class


def overlap_risk(group: int, recovery_window: float, trials: int = 40000,
                 seed: int = 0) -> float:
    """P(a second failure lands in the same group within the window)."""
    rng = np.random.default_rng(seed)
    rate = NODES / NODE_MTBF  # whole-machine single-node failure rate
    hits = 0
    for _ in range(trials):
        # Next machine failure after the first one:
        gap = rng.exponential(1.0 / rate)
        if gap < recovery_window:
            # It strikes a uniformly random node; same group of g-1
            # remaining peers out of NODES-1 others:
            if rng.integers(NODES - 1) < group - 1:
                hits += 1
    return hits / trials


def run_all():
    out = {}
    for g in GROUPS:
        ck = checkpoint_time(CKPT, g, SIERRA.node.memory_bw, SIERRA.network.link_bw)
        rs = restart_time(CKPT, g, SIERRA.node.memory_bw, SIERRA.network.link_bw)
        mem_overhead = 1.0 / (g - 1)
        risk = overlap_risk(g, recovery_window=rs + 5.0, seed=g)
        out[g] = (ck, rs, mem_overhead, risk)
    return out


def test_ablation_xor_group_size(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        "Ablation: XOR group size (6 GB/node) -- time vs memory vs risk",
        ["Group", "ckpt (s)", "restart (s)", "parity overhead",
         "2nd-failure-in-group risk"],
    )
    for g, (ck, rs, mem, risk) in out.items():
        table.add(g, round(ck, 2), round(rs, 2), f"{mem * 100:.1f}%",
                  f"{risk * 100:.4f}%")
    table.show()
    # Memory overhead and checkpoint time shrink with group size...
    assert out[2][2] > out[16][2] > out[64][2]
    assert out[2][0] > out[16][0]
    # ...while the unrecoverable-overlap risk grows.
    assert out[64][3] > out[4][3]
    # The paper's choice, 16: parity under 7 %, C/R within 10 % of the
    # asymptote -- the knee of the curve.
    assert out[16][2] < 0.07
    assert out[16][0] - out[64][0] < 0.10 * out[16][0]
