"""Machine-readable benchmark results: the perf trajectory.

Every bench can emit a ``BENCH_<id>.json`` record through
:func:`emit`.  The committed records under ``benchmarks/results/``
form the repo's perf baseline trajectory: one record per PR that
touched the engine, so a regression shows up as a diff against a
number somebody signed off on.

Record shape::

    {
      "bench_id": "5",
      "scenario": "engine_throughput",
      "scale": "quick",
      "entries": [
        {"procs": 384, "wall_clock_s": ..., "simulated_s": ...,
         "events": ..., "events_per_sec": ..., "msgs_per_sec": ..., ...},
        ...
      ]
    }

The module is also the regression checker the perf-smoke CI job runs::

    python benchmarks/_results.py check BENCH_ci.json \
        --baseline benchmarks/results/BENCH_5.json --max-drop 0.30

Entries are joined on ``(scenario, procs)``; the check fails if
``events_per_sec`` of any joined entry dropped more than ``max-drop``
below the baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: id for freshly emitted records; committed baselines use the PR number
BENCH_ID = os.environ.get("REPRO_BENCH_ID", "local")


def emit(
    scenario: str,
    scale: str,
    entries: List[Dict[str, Any]],
    bench_id: Optional[str] = None,
    out_dir: Optional[str] = None,
) -> str:
    """Write one ``BENCH_<id>.json`` record; returns its path.

    ``entries`` is a list of per-measurement dicts; each should carry
    at least ``procs``, ``wall_clock_s``, ``simulated_s`` and
    ``events_per_sec`` so the trajectory stays comparable across PRs.
    """
    bench_id = BENCH_ID if bench_id is None else bench_id
    out_dir = RESULTS_DIR if out_dir is None else out_dir
    os.makedirs(out_dir, exist_ok=True)
    record = {
        "bench_id": bench_id,
        "scenario": scenario,
        "scale": scale,
        "entries": entries,
    }
    path = os.path.join(out_dir, f"BENCH_{bench_id}.json")
    existing: List[Dict[str, Any]] = []
    if os.path.exists(path):
        with open(path) as fh:
            loaded = json.load(fh)
        existing = loaded if isinstance(loaded, list) else [loaded]
        existing = [
            rec for rec in existing
            if not (rec.get("scenario") == scenario and rec.get("scale") == scale)
        ]
    existing.append(record)
    with open(path, "w") as fh:
        json.dump(existing, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _load(path: str) -> List[Dict[str, Any]]:
    with open(path) as fh:
        loaded = json.load(fh)
    return loaded if isinstance(loaded, list) else [loaded]


def _index(records: List[Dict[str, Any]]) -> Dict[Any, Dict[str, Any]]:
    out: Dict[Any, Dict[str, Any]] = {}
    for rec in records:
        for entry in rec.get("entries", []):
            out[(rec.get("scenario"), entry.get("procs"))] = entry
    return out


def check(new_path: str, baseline_path: str, max_drop: float,
          metric: str = "events_per_sec") -> int:
    """Compare ``metric`` entry-by-entry; returns a process exit code."""
    new = _index(_load(new_path))
    base = _index(_load(baseline_path))
    joined = sorted(set(new) & set(base), key=repr)
    if not joined:
        print(f"perf-check: no comparable entries between {new_path} "
              f"and {baseline_path}", file=sys.stderr)
        return 2
    failures = 0
    for key in joined:
        scenario, procs = key
        got = new[key].get(metric)
        want = base[key].get(metric)
        if not got or not want:
            continue
        ratio = got / want
        verdict = "ok"
        if ratio < 1.0 - max_drop:
            verdict = "REGRESSION"
            failures += 1
        print(f"perf-check: {scenario} procs={procs}: {metric} "
              f"{got:,.0f} vs baseline {want:,.0f} "
              f"({ratio:.2f}x) {verdict}")
    if failures:
        print(f"perf-check: {failures} entr{'y' if failures == 1 else 'ies'} "
              f"dropped more than {max_drop:.0%} below baseline",
              file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)
    chk = sub.add_parser("check", help="compare a record against a baseline")
    chk.add_argument("new", help="freshly emitted BENCH_*.json")
    chk.add_argument("--baseline", required=True)
    chk.add_argument("--max-drop", type=float, default=0.30,
                     help="allowed fractional drop (default 0.30)")
    chk.add_argument("--metric", default="events_per_sec")
    args = parser.parse_args(argv)
    return check(args.new, args.baseline, args.max_drop, args.metric)


if __name__ == "__main__":
    raise SystemExit(main())
