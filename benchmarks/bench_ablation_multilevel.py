"""Ablation -- the level-2 extension (§VIII) in action.

Measures what multilevel C/R buys and costs on a live job: the same
double-failure (two nodes of one XOR group) either kills the run
(level 1 only) or costs one deep rollback (level 1+2), while the
level-2 flush cadence sets the failure-free overhead.
"""

import numpy as np
import pytest

from _harness import make_machine
from repro.analysis.tables import Table
from repro.fmi import FmiConfig, FmiJob
from repro.fmi.errors import FmiAbort

NRANKS = 16
PPN = 2
LOOPS = 12
WORK = 0.4
CKPT_BYTES = 50e6  # per rank, synthetic


def app(fmi):
    from repro.fmi.payload import Payload

    state = Payload.synthetic(CKPT_BYTES, seed=fmi.rank, rep_bytes=64)
    marker = np.zeros(1)
    yield from fmi.init()
    while True:
        n = yield from fmi.loop([state, marker])
        if n >= LOOPS:
            break
        yield fmi.elapse(WORK)
        marker[0] = n + 1
    yield from fmi.finalize()
    return marker[0]


def run(level2_every, kill_pair=False, seed=0):
    sim, machine = make_machine(NRANKS // PPN + 3, seed=seed)
    job = FmiJob(
        machine, app, num_ranks=NRANKS, procs_per_node=PPN,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=3,
                         level2_every=level2_every),
    )
    done = job.launch()
    if kill_pair:
        def killer():
            yield sim.timeout(3.0)
            machine.fail_nodes([0, 1], cause="ablation-double")

        sim.spawn(killer())
    try:
        results = sim.run(until=done)
        ok = all(r == LOOPS for r in results)
        return dict(outcome="completed" if ok else "wrong", wall=sim.now,
                    l2_flushes=job.level2_flushes,
                    l2_restores=job.level2_restores)
    except FmiAbort:
        return dict(outcome="ABORTED", wall=sim.now, l2_flushes=0,
                    l2_restores=0)


def run_all():
    return {
        "L1 only, no failure": run(None),
        "L1+L2 every ckpt, no failure": run(1),
        "L1+L2 every 4th, no failure": run(4),
        "L1 only, double failure": run(None, kill_pair=True),
        "L1+L2 every 4th, double failure": run(4, kill_pair=True, seed=1),
    }


def test_ablation_multilevel(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        "Ablation: level-2 C/R -- overhead vs protection (16 ranks, 50MB/rank)",
        ["Configuration", "outcome", "wall (s)", "L2 flushes", "L2 restores"],
    )
    for name, r in out.items():
        table.add(name, r["outcome"], round(r["wall"], 2), r["l2_flushes"],
                  r["l2_restores"])
    table.show()

    base = out["L1 only, no failure"]["wall"]
    every1 = out["L1+L2 every ckpt, no failure"]["wall"]
    every4 = out["L1+L2 every 4th, no failure"]["wall"]
    # Flushing costs time; flushing less costs less.
    assert base < every4 < every1
    # The protection story: L1-only dies, L1+L2 survives.
    assert out["L1 only, double failure"]["outcome"] == "ABORTED"
    survived = out["L1+L2 every 4th, double failure"]
    assert survived["outcome"] == "completed"
    assert survived["l2_restores"] >= 1
    # Surviving a deep rollback still beats... not existing.
    assert survived["wall"] > every4
