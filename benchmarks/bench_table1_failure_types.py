"""Table I -- TSUBAME2.0 failure types: failures/year and MTBF per class.

Regenerates the table by running a multi-year Poisson failure trace
with the per-component rates of Fig 1 and recomputing the per-class
statistics from the *observed* arrivals.
"""

import pytest

from repro.analysis.tables import Table
from repro.cluster.failures import FailureInjector, TSUBAME2_FAILURE_TYPES
from repro.cluster.spec import SECONDS_PER_YEAR
from repro.simt import Simulator
from repro.simt.rng import RngRegistry

PAPER = {
    "PFS, Core switch": (1408, 5.61, 65.10),
    "Rack": (32, 4.20, 86.90),
    "Edge switch": (16, 21.02, 17.37),
    "PSU": (4, 12.61, 28.94),
    "Compute node": (1, 554.10, 0.658),
}

YEARS = 25


def run_trace(seed=7):
    sim = Simulator()
    inj = FailureInjector(
        sim, RngRegistry(seed).stream("t1"), TSUBAME2_FAILURE_TYPES, num_nodes=1408
    )
    inj.start()
    duration = YEARS * SECONDS_PER_YEAR
    sim.run(until=duration)
    inj.stop()
    return inj.class_stats(duration)


def test_table1_failure_types(benchmark):
    stats = benchmark.pedantic(run_trace, rounds=1, iterations=1)
    table = Table(
        f"Table I: TSUBAME2.0 failure types ({YEARS}-year simulated trace)",
        ["Failure type", "Affected nodes", "fails/yr (paper)", "fails/yr (measured)",
         "MTBF days (paper)", "MTBF days (measured)"],
    )
    for cls_name, affected, per_year, mtbf_days in stats:
        p_aff, p_fy, p_mtbf = PAPER[cls_name]
        table.add(cls_name, affected, p_fy, per_year, p_mtbf, mtbf_days)
        assert affected == p_aff
        # Poisson noise over 25 years; rarest class has ~100 samples.
        assert per_year == pytest.approx(p_fy, rel=0.25), cls_name
        assert mtbf_days == pytest.approx(p_mtbf, rel=0.25), cls_name
    table.show()
