"""Fig 11 -- XOR restart time vs XOR group size (6 GB/node).

Checkpoint, erase one member's storage (the replacement process), then
time the group-collective restore: decode pipeline + the gather of the
rebuilt checkpoint to the new rank -- the extra ``s/net_bw`` stage that
makes restart slower than checkpoint.
"""

import pytest

from _harness import CKPT_BYTES, GROUP_SIZES, run_engine_group
from repro.analysis.tables import Table
from repro.models.cr_model import checkpoint_time, restart_time

FAILED = 0


def measure_restart(group_size: int):
    durations = {}

    def body(api, engine, storage, payload):
        yield from engine.checkpoint([payload], dataset_id=0)
        if api.rank == FAILED:
            storage.clear()
        yield from api.barrier()
        t0 = api.now
        _meta, restored = yield from engine.restore()
        durations[api.rank] = api.now - t0
        assert restored[0] == payload

    run_engine_group(body, group_size, scheme="xor", seed=100 + group_size)
    return max(durations.values())


def run_sweep():
    return {n: measure_restart(n) for n in GROUP_SIZES}


def test_fig11_xor_restart_time(benchmark):
    measured = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table(
        "Fig 11: XOR restart time vs group size (1 proc/node)",
        ["Group size", "measured (s)", "model (s)", "gather term (s)"],
    )
    for n in GROUP_SIZES:
        model = restart_time(CKPT_BYTES, n, 32e9, 3.24e9)
        table.add(n, round(measured[n], 3), round(model, 3),
                  round(CKPT_BYTES / 3.24e9, 3))
        if n >= 4:
            assert measured[n] == pytest.approx(model, rel=0.35), n
            # Fig 11 sits above Fig 10 at every size: decode + gather
            # beats encode alone.
            assert measured[n] > checkpoint_time(CKPT_BYTES, n, 32e9, 3.24e9)
        else:
            # Degenerate group of 2: the parity *is* the lost
            # checkpoint, so our decode skips the ring transfer the
            # sequential model assumes (cheaper than the paper here).
            assert 0.3 * model < measured[n] <= 1.1 * model
    table.show()
    # The paper's conclusion: restart time saturates by group size 16.
    if 16 in GROUP_SIZES:
        last = GROUP_SIZES[-1]
        assert abs(measured[16] - measured[last]) < 0.05 * measured[16]
