"""Fig 11 -- XOR restart time vs XOR group size (6 GB/node).

Checkpoint, erase one member's storage (the replacement process), then
time the group-collective restore: decode pipeline + the gather of the
rebuilt checkpoint to the new rank -- the extra ``s/net_bw`` stage that
makes restart slower than checkpoint.
"""

import pytest

from _harness import FULL, make_machine
from repro.analysis.tables import Table
from repro.fmi.checkpoint import MemoryStorage, XorCheckpointEngine
from repro.fmi.payload import Payload
from repro.models.cr_model import checkpoint_time, restart_time
from repro.mpi.runtime import MpiJob

CKPT_BYTES = 6e9
GROUP_SIZES = [2, 4, 8, 16, 32, 64] if FULL else [2, 4, 8, 16, 32]
FAILED = 0


def measure_restart(group_size: int):
    sim, machine = make_machine(group_size, seed=100 + group_size)
    durations = {}

    def app(api):
        storage = MemoryStorage(api.node)
        engine = XorCheckpointEngine(api.world, storage, api.memcpy)
        payload = Payload.synthetic(CKPT_BYTES, seed=api.rank, rep_bytes=64)
        yield from engine.checkpoint([payload], dataset_id=0)
        if api.rank == FAILED:
            storage.clear()
        yield from api.barrier()
        t0 = api.now
        _meta, restored = yield from engine.restore()
        durations[api.rank] = api.now - t0
        assert restored[0] == payload

    job = MpiJob(machine, app, nprocs=group_size, procs_per_node=1,
                 charge_init=False)
    sim.run(until=job.launch())
    return max(durations.values())


def run_sweep():
    return {n: measure_restart(n) for n in GROUP_SIZES}


def test_fig11_xor_restart_time(benchmark):
    measured = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table(
        "Fig 11: XOR restart time vs group size (6 GB/node, 1 proc/node)",
        ["Group size", "measured (s)", "model (s)", "gather term (s)"],
    )
    for n in GROUP_SIZES:
        model = restart_time(CKPT_BYTES, n, 32e9, 3.24e9)
        table.add(n, round(measured[n], 3), round(model, 3),
                  round(CKPT_BYTES / 3.24e9, 3))
        if n >= 4:
            assert measured[n] == pytest.approx(model, rel=0.35), n
            # Fig 11 sits above Fig 10 at every size: decode + gather
            # beats encode alone.
            assert measured[n] > checkpoint_time(CKPT_BYTES, n, 32e9, 3.24e9)
        else:
            # Degenerate group of 2: the parity *is* the lost
            # checkpoint, so our decode skips the ring transfer the
            # sequential model assumes (cheaper than the paper here).
            assert 0.3 * model < measured[n] <= 1.1 * model
    table.show()
    # The paper's conclusion: restart time saturates by group size 16.
    last = GROUP_SIZES[-1]
    assert abs(measured[16] - measured[last]) < 0.05 * measured[16]
