"""Fig 14 -- MPI_Init vs FMI_Init.

FMI_Init = PMGR bootstrapping (H1) + log-ring overlay build (H2);
the baseline is MVAPICH2's MPI_Init under SLURM.  The paper's shape:
FMI's bootstrap is about 2x faster than MVAPICH2, and the log-ring
build is a small logarithmic addition.
"""

import numpy as np
import pytest

from _harness import PROC_COUNTS, PROCS_PER_NODE, make_machine, nodes_for
from repro.analysis.tables import Table
from repro.fmi import FmiConfig, FmiJob
from repro.mpi.runtime import MpiJob


def trivial_fmi(fmi):
    yield from fmi.init()
    yield from fmi.finalize()


def trivial_mpi(mpi):
    yield from mpi.barrier()


def measure(nprocs: int):
    # MPI_Init (MVAPICH2/SLURM model).
    sim, machine = make_machine(nodes_for(nprocs), seed=1)
    job = MpiJob(machine, trivial_mpi, nprocs, procs_per_node=PROCS_PER_NODE)
    sim.run(until=job.launch())
    spawn = machine.spec.proc_spawn_latency + machine.spec.exec_load_latency
    mpi_init = job.init_done_at - job.launched_at - spawn

    # FMI_Init = H1 + H2.
    sim, machine = make_machine(nodes_for(nprocs), seed=2)
    fjob = FmiJob(
        machine, trivial_fmi, num_ranks=nprocs, procs_per_node=PROCS_PER_NODE,
        config=FmiConfig(xor_group_size=4, spare_nodes=0,
                         checkpoint_enabled=False),
    )
    sim.run(until=fjob.launch())
    h1_done = fjob._h1_rdv[0].released_at
    h2_done = fjob.recovered_at[0]
    bootstrap = h1_done - fjob.launched_at - spawn
    logring = h2_done - h1_done
    return mpi_init, bootstrap, logring


def run_sweep():
    return {n: measure(n) for n in PROC_COUNTS}


def test_fig14_init_time(benchmark):
    out = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table(
        "Fig 14: MPI_Init vs FMI_Init (bootstrap + log-ring)",
        ["Procs", "SLURM/MVAPICH2 (s)", "FMI bootstrap (s)", "log-ring (s)",
         "FMI total (s)", "speedup"],
    )
    for nprocs, (mpi_init, bootstrap, logring) in out.items():
        fmi_total = bootstrap + logring
        table.add(nprocs, round(mpi_init, 3), round(bootstrap, 3),
                  round(logring, 3), round(fmi_total, 3),
                  round(mpi_init / fmi_total, 2))
        # "The FMI bootstrapping time (H1 state) is about two times
        # faster than that of MVAPICH2" (Section VI-A).
        assert 1.5 < mpi_init / bootstrap < 2.6, nprocs
        # Even with the log-ring build added, FMI_Init wins clearly.
        assert mpi_init / fmi_total > 1.25, nprocs
        # The log-ring build is small and logarithmic.
        assert logring < 0.5
    table.show()
    # Both grow with scale.
    series = list(out.values())
    assert series[-1][0] > series[0][0]
    assert series[-1][1] > series[0][1]
