"""Table III -- ping-pong: 1-byte latency and 8 MB bandwidth, MPI vs FMI.

The same ping-pong application generator runs on both runtimes
("because FMI can intercept MPI calls, we compiled the same ping-pong
source for both MPI and FMI").
"""

import pytest

from _harness import make_machine
from repro.analysis.tables import Table, fmt_seconds
from repro.apps.pingpong import pingpong_app
from repro.fmi import FmiConfig, FmiJob
from repro.mpi.runtime import MpiJob

PAPER = {
    ("MPI", "latency"): 3.555e-6,
    ("FMI", "latency"): 3.573e-6,
    ("MPI", "bandwidth"): 3.227e9,
    ("FMI", "bandwidth"): 3.211e9,
}

EIGHT_MB = 8 * 1024 * 1024


def run_pingpong(runtime: str, nbytes: float, iterations=50):
    sim, machine = make_machine(3)
    app = pingpong_app(nbytes, iterations=iterations)
    if runtime == "MPI":
        job = MpiJob(machine, app, nprocs=2, charge_init=False)
        results = sim.run(until=job.launch())
    else:
        job = FmiJob(machine, app, num_ranks=2,
                     config=FmiConfig(xor_group_size=2, spare_nodes=0))
        results = sim.run(until=job.launch())
    return results[0]  # (latency, bandwidth)


def run_all():
    out = {}
    for runtime in ("MPI", "FMI"):
        lat, _ = run_pingpong(runtime, 1.0)
        _, bw = run_pingpong(runtime, EIGHT_MB, iterations=20)
        out[runtime] = (lat, bw)
    return out


def test_table3_pingpong(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        "Table III: ping-pong performance of MPI and FMI",
        ["Runtime", "1B latency (paper)", "1B latency (measured)",
         "8MB bw GB/s (paper)", "8MB bw GB/s (measured)"],
    )
    for runtime, (lat, bw) in out.items():
        table.add(
            runtime,
            fmt_seconds(PAPER[(runtime, "latency")]), fmt_seconds(lat),
            round(PAPER[(runtime, "bandwidth")] / 1e9, 3), round(bw / 1e9, 3),
        )
        assert lat == pytest.approx(PAPER[(runtime, "latency")], rel=0.02)
        assert bw == pytest.approx(PAPER[(runtime, "bandwidth")], rel=0.02)
    table.show()
    # The headline: FMI's fault-tolerance overhead on messaging is
    # negligible (latencies within ~0.5%).
    assert out["FMI"][0] / out["MPI"][0] < 1.01
