"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` regenerates one table or figure of the paper's
evaluation (see DESIGN.md's per-experiment index).  Benchmarks print a
paper-vs-measured table and assert the *shape* of the result (who
wins, crossovers, scaling behaviour) -- absolute agreement with the
paper's testbed numbers is not expected and not asserted.

Scale control via ``REPRO_BENCH_SCALE``:

* ``smoke`` -- minutes-of-CI scale: tiny payloads, short sweeps (used
  by the CI redundancy-ablation job);
* ``quick`` -- the default: each bench runs in tens of seconds;
* ``full`` -- the paper's full process counts (up to 1,536).
"""

from __future__ import annotations

import os
from typing import List

from repro.cluster import Machine
from repro.cluster.spec import SIERRA, ClusterSpec
from repro.simt import Simulator
from repro.simt.rng import RngRegistry

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
if SCALE not in ("smoke", "quick", "full"):
    raise ValueError(f"REPRO_BENCH_SCALE must be smoke/quick/full, not {SCALE!r}")
FULL = SCALE == "full"

#: Fig 12/13/14/15 x-axis (processes at 12 per node).  Overridable via
#: ``REPRO_BENCH_PROCS`` (space/comma separated) so the figure benches
#: can be pushed to macro-tier counts, e.g.::
#:
#:     REPRO_BENCH_PROCS="1536 6144 16128" REPRO_COLLECTIVES=macro \
#:         python -m pytest benchmarks/bench_fig14_init_time.py ...
#:
#: (counts must stay divisible by :data:`PROCS_PER_NODE`; 16,128 is the
#: closest 12-per-node count to 16k ranks)
PROC_COUNTS: List[int] = {
    "smoke": [48, 96],
    "quick": [48, 96, 192, 384],
    "full": [48, 96, 192, 384, 768, 1536],
}[SCALE]
_PROCS_ENV = os.environ.get("REPRO_BENCH_PROCS", "").replace(",", " ").split()
if _PROCS_ENV:
    PROC_COUNTS = [int(tok) for tok in _PROCS_ENV]
PROCS_PER_NODE = 12

#: macro-tier x-axis for the engine throughput bench: process counts
#: only the macro collective engine can sustain in CI-tolerable time.
#: 16 ranks per node so 16,384 divides evenly (1,024 nodes).
MACRO_PROC_COUNTS: List[int] = {
    "smoke": [1536, 6144],
    "quick": [1536, 6144, 16384],
    "full": [1536, 6144, 16384],
}[SCALE]
MACRO_PROCS_PER_NODE = 16

#: Fig 10/11 x-axis (redundancy group sizes, one rank per node)
GROUP_SIZES: List[int] = {
    "smoke": [2, 4, 8],
    "quick": [2, 4, 8, 16, 32],
    "full": [2, 4, 8, 16, 32, 64],
}[SCALE]

#: per-node checkpoint bytes for the engine benches (the paper: 6 GB)
CKPT_BYTES: float = {"smoke": 96e6, "quick": 6e9, "full": 6e9}[SCALE]


def make_machine(num_nodes: int, seed: int = 0, spec: ClusterSpec = SIERRA):
    sim = Simulator()
    machine = Machine(sim, spec.with_nodes(num_nodes), RngRegistry(seed))
    return sim, machine


def nodes_for(nprocs: int, spares: int = 0) -> int:
    return nprocs // PROCS_PER_NODE + spares


def run_engine_group(body, group_size: int, scheme: str = "xor",
                     ckpt_bytes: float = None, seed: int = 0,
                     trace: bool = False):
    """Drive one redundancy group (one member per node) through the
    simulated fabric.

    ``body(api, engine, storage, payload)`` is a generator run on every
    member, handed a fresh :class:`MemoryStorage`, a
    :class:`CheckpointEngine` bound to ``scheme``, and a synthetic
    per-member payload of ``ckpt_bytes`` (default: the scale-dependent
    :data:`CKPT_BYTES`).  Returns ``(sim, results, tracer)`` with
    ``tracer`` None unless ``trace`` is set.
    """
    from repro.fmi.checkpoint import CheckpointEngine, MemoryStorage
    from repro.fmi.payload import Payload
    from repro.fmi.redundancy import make_scheme
    from repro.mpi.runtime import MpiJob

    if ckpt_bytes is None:
        ckpt_bytes = CKPT_BYTES
    sim, machine = make_machine(group_size, seed=seed)
    tracer = None
    if trace:
        from repro.obs import Tracer

        tracer = Tracer(sim)

    def app(api):
        storage = MemoryStorage(api.node)
        engine = CheckpointEngine(api.world, storage, api.memcpy,
                                  scheme=make_scheme(scheme))
        payload = Payload.synthetic(ckpt_bytes, seed=api.rank, rep_bytes=64)
        result = yield from body(api, engine, storage, payload)
        return result

    job = MpiJob(machine, app, nprocs=group_size, procs_per_node=1,
                 charge_init=False)
    results = sim.run(until=job.launch())
    return sim, results, tracer
