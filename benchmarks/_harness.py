"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` regenerates one table or figure of the paper's
evaluation (see DESIGN.md's per-experiment index).  Benchmarks print a
paper-vs-measured table and assert the *shape* of the result (who
wins, crossovers, scaling behaviour) -- absolute agreement with the
paper's testbed numbers is not expected and not asserted.

Scale control: set ``REPRO_BENCH_SCALE=full`` for the paper's full
process counts (up to 1,536); the default ``quick`` keeps each bench
to tens of seconds.
"""

from __future__ import annotations

import os
from typing import List

from repro.cluster import Machine
from repro.cluster.spec import SIERRA, ClusterSpec
from repro.simt import Simulator
from repro.simt.rng import RngRegistry

FULL = os.environ.get("REPRO_BENCH_SCALE", "quick").lower() == "full"

#: Fig 12/13/14/15 x-axis (processes at 12 per node)
PROC_COUNTS: List[int] = (
    [48, 96, 192, 384, 768, 1536] if FULL else [48, 96, 192, 384]
)
PROCS_PER_NODE = 12


def make_machine(num_nodes: int, seed: int = 0, spec: ClusterSpec = SIERRA):
    sim = Simulator()
    machine = Machine(sim, spec.with_nodes(num_nodes), RngRegistry(seed))
    return sim, machine


def nodes_for(nprocs: int, spares: int = 0) -> int:
    return nprocs // PROCS_PER_NODE + spares
