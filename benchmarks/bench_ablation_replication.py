"""Ablation -- recovery families: rollback (global), partial rollback
(logged) and failover (replicated).

The same seeded kill schedules run three times, once per
``FmiConfig(recovery=...)`` family.  Kills target virtual slots drawn
at rule-build time, so all three modes see the *same* victims at the
same times (under replication that slot's lead copy dies and the
replica is promoted in place).  Swept over checkpoint interval and
kill count, measuring:

* **recovery latency** -- the ``recovery`` trace span (failure to every
  rank back in H3).  Failover moves no state, so the replicated plane
  must beat the logged plane's measured 0.455 s at *every* sweep point
  -- the FTHP-MPI trade: 2x the hardware for near-zero recovery time;
* **restore traffic shape** -- replicated runs must show *zero*
  checkpoint restores (the ``zero-rollback`` invariant); promotions and
  background re-arms replace them;
* **mirror traffic** -- the dual-send bandwidth price replication pays
  while nothing is failing.

Every run must come back green (all chaos invariants, bit-equal
answers vs the failure-free reference).  The analytic crossover
(``replication_vs_cr_crossover``) is checked for the FTHP-MPI shape:
the node-MTBF below which replication wins grows with job size.

Emits a machine-readable ``BENCH_<id>.json`` record (scenario
``replication-ablation``) via :mod:`_results` for the perf trajectory.
"""

import time

import numpy as np

from _harness import SCALE
from _results import emit
from repro.analysis.tables import Table
from repro.chaos import Campaign, run_campaign
from repro.chaos.scenario import AtTime, KillSlot, Rule
from repro.models.efficiency import replication_vs_cr_crossover

SEEDS = {"smoke": 2, "quick": 4, "full": 8}[SCALE]
INTERVALS = [1, 3]
KILL_COUNTS = {"smoke": [1], "quick": [1, 2], "full": [1, 2]}[SCALE]
MODES = ["global", "logged", "replicated"]
#: the logged plane's measured single-kill recovery (the paper's
#: transparency bar); failover must land under it everywhere
LOGGED_RECOVERY_BAR_S = 0.455


def _kill_rules(kills):
    def rules(rng: np.random.Generator, c: Campaign):
        # Identical draws for every mode at a given seed: victims are
        # *virtual* slots fixed at build time (distinct, so replicated
        # runs exercise independent failovers rather than the
        # both-copies fallback -- that corner has its own campaign).
        slots = rng.choice(c.num_slots, size=kills, replace=False)
        t0 = float(rng.uniform(1.5, 2.5))
        gap = float(rng.uniform(1.2, 1.8))
        return [
            Rule(AtTime(t0 + k * gap), KillSlot(int(slot)))
            for k, slot in enumerate(slots)
        ]

    return rules


def _campaign(mode, interval, kills):
    name = f"replication-ablation-{mode}-i{interval}-k{kills}"
    extra = {"interval": interval}
    if mode != "global":
        extra["recovery"] = mode
    return Campaign(name, name, _kill_rules(kills), pool_extra=3,
                    config_extra=extra)


def _measure(result):
    """Trace-derived per-run measurements."""
    ev = result.tracer.events
    spans = [e.dur for e in ev if e.name == "recovery" and e.dur]
    return {
        "ok": result.ok,
        "recovery_latency_s": max(spans) if spans else 0.0,
        "recoveries": result.recoveries,
        "sim_time_s": result.sim_time,
        "ckpt_restores": sum(1 for e in ev if e.name == "ckpt.restore.begin"),
        "promotions": sum(1 for e in ev if e.name == "repl.promote"),
        "fallbacks": sum(1 for e in ev if e.name == "repl.fallback"),
        "rearms": sum(1 for e in ev if e.name == "repl.standby.sync"),
        "trace_events": result.trace_events,
    }


def run_sweep():
    out = {}
    for mode in MODES:
        for interval in INTERVALS:
            for kills in KILL_COUNTS:
                campaign = _campaign(mode, interval, kills)
                t0 = time.monotonic()
                runs = [
                    _measure(run_campaign(campaign, seed, keep_trace=True))
                    for seed in range(SEEDS)
                ]
                out[(mode, interval, kills)] = {
                    "runs": runs,
                    "wall_clock_s": time.monotonic() - t0,
                }
    return out


def _mean(runs, key):
    picked = [r for r in runs if r["recoveries"] > 0] or runs
    return sum(r[key] for r in picked) / len(picked)


def test_ablation_replication(benchmark):
    out = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table(
        f"Recovery-family ablation, {SEEDS} seeds per point "
        f"(8 ranks, ppn=2, XOR group 4, degree 2 when replicated)",
        ["mode", "interval", "kills", "green", "recovery (s)", "sim (s)",
         "ckpt restores", "promote/rearm/fallback"],
    )
    entries = []
    for (mode, interval, kills), point in sorted(out.items()):
        runs = point["runs"]
        latency = _mean(runs, "recovery_latency_s")
        entry = {
            "procs": 8,
            "mode": mode,
            "interval": interval,
            "kills": kills,
            "seeds": SEEDS,
            "green": sum(1 for r in runs if r["ok"]),
            "recovery_latency_s": latency,
            "worst_recovery_latency_s": max(
                r["recovery_latency_s"] for r in runs
            ),
            "sim_time_s": _mean(runs, "sim_time_s"),
            "ckpt_restores": sum(r["ckpt_restores"] for r in runs),
            "promotions": sum(r["promotions"] for r in runs),
            "fallbacks": sum(r["fallbacks"] for r in runs),
            "rearms": sum(r["rearms"] for r in runs),
            "wall_clock_s": point["wall_clock_s"],
            "simulated_s": sum(r["sim_time_s"] for r in runs),
            "events_per_sec": (
                sum(r["trace_events"] for r in runs) / point["wall_clock_s"]
            ),
        }
        entries.append(entry)
        table.add(
            mode, interval, kills, f"{entry['green']}/{SEEDS}",
            round(latency, 3), round(entry["sim_time_s"], 2),
            entry["ckpt_restores"],
            f"{entry['promotions']}/{entry['rearms']}/{entry['fallbacks']}",
        )
    table.show()

    # The FTHP-MPI crossover shape: bigger jobs tolerate less per-node
    # unreliability before replication's 1/2-hardware bound wins.
    crossover = [
        (n, replication_vs_cr_crossover(n)) for n in (50, 1000, 100_000)
    ]
    for n, x in crossover:
        print(f"  replication beats C/R below node-MTBF "
              f"{x:,.0f} s at n={n}")
    entries.append({
        "mode": "model",
        "crossover_mtbf_s": {str(n): x for n, x in crossover},
    })
    emit("replication-ablation", SCALE, entries)

    # -- assertions: green board, restore shapes, and the latency win
    sim_entries = [e for e in entries if e["mode"] != "model"]
    by_key = {(e["mode"], e["interval"], e["kills"]): e for e in sim_entries}
    for entry in sim_entries:
        assert entry["green"] == SEEDS, entry
        if entry["mode"] == "replicated":
            # Failover, not rollback: no checkpoint restore anywhere,
            # every kill absorbed by an in-place promotion.
            assert entry["ckpt_restores"] == 0, entry
            assert entry["promotions"] > 0, entry
            assert entry["fallbacks"] == 0, entry
            # The headline bar, at every sweep point and every seed.
            assert (entry["worst_recovery_latency_s"]
                    < LOGGED_RECOVERY_BAR_S), entry
        else:
            assert entry["promotions"] == 0
            assert entry["ckpt_restores"] > 0 or entry["mode"] == "logged"
    # Failover also beats both rollback families head-to-head on every
    # (interval, kills) sweep point.
    for interval in INTERVALS:
        for kills in KILL_COUNTS:
            repl = by_key[("replicated", interval, kills)]
            for other in ("global", "logged"):
                assert (repl["recovery_latency_s"]
                        < by_key[(other, interval, kills)]
                        ["recovery_latency_s"]), (interval, kills, other)
    xs = [x for _n, x in crossover]
    assert xs == sorted(xs) and xs[0] > 0
