"""Ablation -- spare-node policy (Section II-B).

"One solution is to request additional nodes in the allocation ...
Another solution is to request compute nodes from the resource
manager.  This method may incur a high overhead if the job has to wait
for spare nodes to become available."

We measure end-to-end recovery latency of the same failure under three
policies: pre-reserved spares, on-demand grant from an idle pool, and
on-demand with a busy pool (the replacement must wait for a release).
"""

import numpy as np
import pytest

from _harness import make_machine
from repro.analysis.tables import Table
from repro.fmi import FmiConfig, FmiJob

NRANKS = 16
PPN = 2


def looping_app(iters=40, step=0.5):
    def app(fmi):
        u = np.zeros(4)
        yield from fmi.init()
        while True:
            n = yield from fmi.loop([u])
            if n >= iters:
                break
            yield fmi.elapse(step)
        yield from fmi.finalize()

    return app


def run_policy(policy: str, crash_at: float = 3.0, seed: int = 1):
    spares = {"prereserved": 1, "ondemand": 0}[policy]
    pool_extra = 1  # one extra node exists either way
    sim, machine = make_machine(NRANKS // PPN + pool_extra, seed=seed)
    job = FmiJob(
        machine, looping_app(), num_ranks=NRANKS, procs_per_node=PPN,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=spares),
    )
    done = job.launch()

    def killer():
        yield sim.timeout(crash_at)
        job.fmirun.node_slots[0].crash("ablation")

    sim.spawn(killer())
    sim.run(until=done)
    return job.recovery_latency(1)


def run_contended(crash_at: float = 3.0, seed: int = 2):
    """On-demand with an initially-empty pool: a 'foreign job' releases
    a node several seconds after the crash."""
    sim, machine = make_machine(NRANKS // PPN + 1, seed=seed)
    foreign = machine.rm.allocate(1)  # occupies the only spare node
    job = FmiJob(
        machine, looping_app(), num_ranks=NRANKS, procs_per_node=PPN,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=0),
    )
    done = job.launch()
    release_delay = 4.0

    def killer():
        yield sim.timeout(crash_at)
        job.fmirun.node_slots[0].crash("ablation")
        yield sim.timeout(release_delay)
        foreign.release()

    sim.spawn(killer())
    sim.run(until=done)
    return job.recovery_latency(1)


def run_all():
    return {
        "pre-reserved spare": run_policy("prereserved"),
        "RM grant (idle node)": run_policy("ondemand"),
        "RM grant (wait 4s for release)": run_contended(),
    }


def test_ablation_spare_policy(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        "Ablation: spare-node policy vs recovery latency (16 ranks, 1 node crash)",
        ["Policy", "recovery latency (s)"],
    )
    for name, latency in out.items():
        assert latency is not None
        table.add(name, round(latency, 3))
    table.show()
    pre = out["pre-reserved spare"]
    idle = out["RM grant (idle node)"]
    wait = out["RM grant (wait 4s for release)"]
    # Pre-reserved spares skip the grant latency...
    assert pre < idle
    assert idle == pytest.approx(pre + 0.5, abs=0.2)  # the grant latency
    # ...and a busy pool adds the full wait.
    assert wait > idle + 3.0
