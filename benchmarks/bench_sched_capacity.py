"""Service-mode capacity: arrival rate x failure rate x recovery family.

Sweeps the ``python -m repro.sched`` soak harness over a grid of
operating points on one shared 8-node cluster and checks the queueing
*shape* of the result:

* **rate sweep** (failure-free): per family, mean queue wait is
  monotone non-decreasing in the arrival rate, and at least one family
  genuinely queues at the top rate;
* **failure sweep** (fixed arrival rate): per family, goodput at the
  harshest MTBF does not exceed the failure-free goodput -- failures
  burn occupancy without useful work;
* **model cross-check**: at low utilization the simulated mean wait
  agrees with :func:`repro.models.queueing.estimate_capacity` once the
  model is calibrated with the measured service time (the analytic
  M/G/c wait and the simulated wait are both ~0 there; divergence
  means the scheduler is inventing queueing delay the theory says
  should not exist).

Every operating point lands in the ``BENCH_<id>.json`` record
(`p50/p99/mean wait, goodput, makespan, completed fraction, model
prediction``) so the capacity trajectory is diffable across PRs.
"""

from __future__ import annotations

import argparse
import statistics
import time
from typing import Any, Dict, List

from _harness import SCALE
from _results import emit

from repro.analysis.tables import Table
from repro.models.queueing import estimate_capacity
from repro.sched.__main__ import run_soak

NUM_SEEDS = {"smoke": 2, "quick": 3, "full": 5}[SCALE]
JOBS = {"smoke": 10, "quick": 16, "full": 24}[SCALE]
NODES = 8

#: failure-free arrival-rate sweep (jobs/s); the top rate saturates the
#: narrow families on 8 nodes, the bottom rate is the low-utilization
#: point the analytic model must agree with
RATES = {
    "smoke": [0.25, 1.5],
    "quick": [0.25, 0.75, 1.5],
    "full": [0.125, 0.25, 0.5, 1.0, 2.0],
}[SCALE]

#: machine-wide MTBF sweep (seconds between kills) at a fixed arrival
#: rate; 0 = no failures.  Streams run ~15-25 simulated seconds, so
#: single-digit MTBFs land several kills per run.
MTBFS = {
    "smoke": [0.0, 6.0],
    "quick": [0.0, 12.0, 6.0],
    "full": [0.0, 24.0, 12.0, 6.0, 3.0],
}[SCALE]
FIXED_RATE = 0.6

FAMILIES = {
    "smoke": ["failstop", "global"],
    "quick": ["failstop", "global", "logged", "replicated"],
    "full": ["failstop", "global", "logged", "replicated"],
}[SCALE]


def _soak_args(family: str, rate: float, mtbf: float) -> argparse.Namespace:
    return argparse.Namespace(
        mix=family, nodes=NODES, jobs=JOBS, rate=rate, mtbf=mtbf,
        spare_pool=0, no_backfill=False, preempt=False,
    )


def soak_point(family: str, rate: float, mtbf: float) -> Dict[str, Any]:
    """Run NUM_SEEDS soaks at one operating point; aggregate over seeds."""
    t0 = time.perf_counter()
    waits: List[float] = []
    p50s: List[float] = []
    p99s: List[float] = []
    goodputs: List[float] = []
    makespans: List[float] = []
    services: List[float] = []
    sim_t = 0.0
    completed = jobs = 0
    violations: List[str] = []
    for seed in range(NUM_SEEDS):
        summary, viol, now = run_soak(seed, _soak_args(family, rate, mtbf))
        violations.extend(f"seed {seed}: {v}" for v in viol)
        waits.append(summary.mean_wait)
        p50s.append(summary.p50_wait)
        p99s.append(summary.p99_wait)
        goodputs.append(summary.goodput)
        makespans.append(summary.makespan)
        services.extend(
            r.service_s for r in summary.records if r.service_s is not None
        )
        completed += summary.completed
        jobs += summary.jobs
        sim_t += now
    return {
        "procs": f"{family}/rate{rate:g}/mtbf{mtbf:g}",
        "family": family,
        "rate": rate,
        "mtbf": mtbf,
        "nodes": NODES,
        "jobs_per_seed": JOBS,
        "seeds": NUM_SEEDS,
        "mean_wait_s": statistics.mean(waits),
        "p50_wait_s": statistics.mean(p50s),
        "p99_wait_s": statistics.mean(p99s),
        "goodput": statistics.mean(goodputs),
        "makespan_s": statistics.mean(makespans),
        "completed_frac": completed / jobs if jobs else 0.0,
        "service_s": statistics.mean(services) if services else 0.0,
        "service_scv": (
            statistics.variance(services) / statistics.mean(services) ** 2
            if len(services) > 1 and statistics.mean(services) > 0 else 0.0
        ),
        "violations": violations,
        "wall_clock_s": time.perf_counter() - t0,
        "simulated_s": sim_t / NUM_SEEDS,
    }


def _attach_model(points: List[Dict[str, Any]]) -> None:
    """Annotate a family's rate sweep with the analytic M/G/c curve,
    calibrated with the measured low-load service time (which folds in
    launch/checkpoint overhead the spec's ideal runtime does not)."""
    base = points[0]  # lowest rate = calibration point
    svc, scv = base["service_s"], base["service_scv"]
    per_job = base["footprint"]
    for pt in points:
        est = estimate_capacity(
            num_nodes=NODES, nodes_per_job=per_job,
            arrival_rate=pt["rate"], ideal_runtime=svc, service_scv=scv,
        )
        pt["model_mean_wait_s"] = est.mean_wait
        pt["model_utilization"] = est.utilization


def run_all() -> List[Dict[str, Any]]:
    from repro.sched.__main__ import FAMILY_SPECS

    out: List[Dict[str, Any]] = []
    for family in FAMILIES:
        footprint = FAMILY_SPECS[family].total_nodes
        sweep = []
        for rate in RATES:
            pt = soak_point(family, rate, mtbf=0.0)
            pt["footprint"] = footprint
            sweep.append(pt)
        _attach_model(sweep)
        out.extend(sweep)
        for mtbf in MTBFS:
            pt = soak_point(family, FIXED_RATE, mtbf)
            pt["footprint"] = footprint
            out.append(pt)
    return out


def _check_shape(out: List[Dict[str, Any]]) -> None:
    bad = [(p["procs"], v) for p in out for v in p["violations"]]
    assert bad == [], f"service-mode invariant violations: {bad[:3]}"

    queued_anywhere = False
    for family in FAMILIES:
        # -- wait monotone in arrival rate (failure-free sweep)
        sweep = [p for p in out if p["family"] == family and p["mtbf"] == 0.0
                 and p["rate"] in RATES]
        sweep.sort(key=lambda p: p["rate"])
        waits = [p["mean_wait_s"] for p in sweep]
        for lo, hi in zip(waits, waits[1:]):
            assert hi >= lo - 0.15, (
                f"{family}: mean wait fell from {lo:.2f}s to {hi:.2f}s "
                f"as the arrival rate rose"
            )
        assert waits[-1] >= waits[0], family
        queued_anywhere = queued_anywhere or waits[-1] > 0.05
        # -- model agreement at low utilization
        for pt in sweep:
            if pt["model_utilization"] <= 0.35:
                assert abs(pt["mean_wait_s"] - pt["model_mean_wait_s"]) <= 0.4, (
                    f"{pt['procs']}: simulated wait {pt['mean_wait_s']:.2f}s "
                    f"vs M/G/c {pt['model_mean_wait_s']:.2f}s at "
                    f"{pt['model_utilization']:.0%} utilization"
                )
        # -- goodput degrades (gracefully) with the failure rate
        fsweep = [p for p in out if p["family"] == family
                  and p["rate"] == FIXED_RATE]
        clean = next(p for p in fsweep if p["mtbf"] == 0.0)
        harsh = min((p for p in fsweep if p["mtbf"] > 0.0),
                    key=lambda p: p["mtbf"])
        assert harsh["goodput"] <= clean["goodput"] + 0.02, (
            f"{family}: goodput rose from {clean['goodput']:.3f} to "
            f"{harsh['goodput']:.3f} under mtbf={harsh['mtbf']:g}s"
        )
    assert queued_anywhere, "no family ever queued: the sweep has no teeth"


def test_sched_capacity(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        f"Service-mode capacity ({SCALE}): {NODES} nodes, "
        f"{JOBS} jobs/seed, {NUM_SEEDS} seeds",
        ["Point", "p50 wait", "p99 wait", "mean wait", "model wait",
         "goodput", "done", "makespan"],
    )
    for p in out:
        table.add(
            p["procs"], f"{p['p50_wait_s']:.2f}", f"{p['p99_wait_s']:.2f}",
            f"{p['mean_wait_s']:.2f}",
            f"{p['model_mean_wait_s']:.2f}" if "model_mean_wait_s" in p else "-",
            f"{p['goodput']:.3f}", f"{p['completed_frac']:.2f}",
            f"{p['makespan_s']:.1f}",
        )
    table.show()
    _check_shape(out)
    entries = [{k: v for k, v in p.items() if k != "violations"} for p in out]
    path = emit("sched_capacity", SCALE, entries)
    print(f"wrote {path}")
