"""Fig 15 -- Himeno benchmark: MPI, FMI, MPI+C, FMI+C, FMI+C/R.

Synthetic-scale Himeno (821 MB/node checkpoints, 12 procs/node), with
Vaidya-tuned checkpoint intervals at a configured MTBF of 1 minute, and
-- for the C/R variant -- real injected node failures at that MTBF.
The GFlops metric counts only useful progress, exactly as the paper
defines it: work lost to rollback is not credited.

Paper shape to reproduce:
* MPI ~= FMI without checkpointing;
* FMI+C beats MPI+C by ~10 % (memcpy vs filesystem checkpoints);
* FMI+C/R at MTBF = 1 min retains ~72 % of the no-failure throughput
  ("only a 28 % overhead with a very high failure rate").
"""

import pytest

from _harness import FULL, PROCS_PER_NODE, make_machine, nodes_for
from repro.analysis.tables import Table
from repro.apps.himeno import FLOPS_PER_POINT, HimenoParams, himeno_fmi_app, himeno_mpi_app
from repro.cluster.failures import MtbfInjector
from repro.fmi import FmiConfig, FmiJob
from repro.mpi.runtime import MpiJob
from repro.mpi.scr import Scr

PROC_COUNTS = [48, 96, 192, 384, 768, 1536] if FULL else [48, 192]
MTBF = 60.0
ITERATIONS = 120
POINTS_PER_RANK = 3.42e7  # ~0.85 s/iteration at 1.37 GFlops/rank
CKPT_PER_RANK = 821e6 / PROCS_PER_NODE


def params():
    return HimenoParams(
        iterations=ITERATIONS, synthetic=True,
        points_per_rank=POINTS_PER_RANK, halo_bytes=333e3,
        ckpt_bytes=CKPT_PER_RANK,
    )


def gflops(nprocs: int, elapsed: float) -> float:
    useful = nprocs * ITERATIONS * POINTS_PER_RANK * FLOPS_PER_POINT
    return useful / elapsed / 1e9


def run_mpi(nprocs: int, with_ckpt: bool, seed: int):
    sim, machine = make_machine(nodes_for(nprocs), seed=seed)
    scr_factory = None
    if with_ckpt:
        scr_factory = lambda api: Scr(
            api, procs_per_node=PROCS_PER_NODE, group_size=16,
            mtbf_seconds=MTBF,
        )
    job = MpiJob(machine, himeno_mpi_app(params(), scr_factory), nprocs,
                 procs_per_node=PROCS_PER_NODE)
    sim.run(until=job.launch())
    return gflops(nprocs, sim.now - job.init_done_at)


def run_fmi(nprocs: int, with_ckpt: bool, inject: bool, seed: int):
    spares = 2 if inject else 0
    sim, machine = make_machine(nodes_for(nprocs, spares=spares), seed=seed)
    config = FmiConfig(
        mtbf_seconds=MTBF if with_ckpt else None,
        checkpoint_enabled=with_ckpt,
        xor_group_size=16,
        spare_nodes=spares,
    )
    job = FmiJob(machine, himeno_fmi_app(params()), num_ranks=nprocs,
                 procs_per_node=PROCS_PER_NODE, config=config)
    done = job.launch()
    injector = None
    if inject:
        injector = MtbfInjector(
            sim, machine.rng.stream("fig15-kills"), MTBF,
            kill=lambda slot: job.fmirun.node_slots[slot].crash("mtbf"),
            num_nodes=job.num_nodes,
        )
        injector.start()
        done.callbacks.append(lambda _e: injector.stop())
    sim.run(until=done)
    elapsed = sim.now - job.init_done_at
    return gflops(nprocs, elapsed), job.recovery_count


def run_all():
    out = {}
    for nprocs in PROC_COUNTS:
        mpi = run_mpi(nprocs, with_ckpt=False, seed=10)
        fmi, _ = run_fmi(nprocs, with_ckpt=False, inject=False, seed=11)
        mpi_c = run_mpi(nprocs, with_ckpt=True, seed=12)
        fmi_c, _ = run_fmi(nprocs, with_ckpt=True, inject=False, seed=13)
        fmi_cr, recoveries = run_fmi(nprocs, with_ckpt=True, inject=True, seed=14)
        out[nprocs] = dict(mpi=mpi, fmi=fmi, mpi_c=mpi_c, fmi_c=fmi_c,
                           fmi_cr=fmi_cr, recoveries=recoveries)
    return out


def test_fig15_himeno(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        "Fig 15: Himeno GFlops (821 MB/node ckpt, Vaidya @ MTBF 1 min)",
        ["Procs", "MPI", "FMI", "MPI+C", "FMI+C", "FMI+C/R", "failures",
         "FMI+C vs MPI+C", "C/R efficiency"],
    )
    for nprocs, r in out.items():
        table.add(nprocs, round(r["mpi"], 1), round(r["fmi"], 1),
                  round(r["mpi_c"], 1), round(r["fmi_c"], 1),
                  round(r["fmi_cr"], 1), r["recoveries"],
                  f"{(r['fmi_c'] / r['mpi_c'] - 1) * 100:+.1f}%",
                  f"{r['fmi_cr'] / r['fmi'] * 100:.0f}%")
        # Failure-free messaging parity (Table III carried into Fig 15).
        assert r["fmi"] == pytest.approx(r["mpi"], rel=0.03)
        # FMI+C beats MPI+C (paper: +10.3 %).
        assert 1.04 < r["fmi_c"] / r["mpi_c"] < 1.25
        # FMI+C/R keeps most of the throughput despite MTBF = 1 min
        # (paper: 72 %).  Failure draws are stochastic; keep a band.
        assert 0.55 < r["fmi_cr"] / r["fmi"] < 0.95
        assert r["recoveries"] >= 1
    table.show()
    # Scaling: throughput grows ~linearly with processes.
    first, last = PROC_COUNTS[0], PROC_COUNTS[-1]
    assert out[last]["fmi"] / out[first]["fmi"] == pytest.approx(
        last / first, rel=0.10
    )
