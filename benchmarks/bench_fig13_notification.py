"""Fig 13 -- global failure-notification time with the log-ring overlay.

Launch an FMI job, crash one node mid-run, and measure the time from
the crash until the *last* surviving rank is notified through the
log-ring cascade.  The paper's shape: a ~0.2 s constant (the ibverbs
close delay) plus a logarithmic cascade term, totalling ~0.25-0.4 s out
to 1,536 processes.

Measurement comes from the observability layer: a
:class:`repro.obs.Tracer` records the ``node.crash`` instant and every
``overlay.notified`` event (with its cascade hop count), and
:func:`repro.obs.summary.notification_summary` turns that into the
survivor count, hop histogram and notification latency -- no hand-
rolled timing in the benchmark itself.
"""

import numpy as np
import pytest

from _harness import PROC_COUNTS, PROCS_PER_NODE, make_machine, nodes_for
from repro.analysis.tables import Table
from repro.fmi import FmiConfig, FmiJob
from repro.net.overlay import max_notification_hops_bound
from repro.obs import Tracer
from repro.obs.summary import notification_summary


def idle_app(iterations=1000, step=0.25):
    def app(fmi):
        u = np.zeros(2)
        yield from fmi.init()
        while True:
            n = yield from fmi.loop([u])
            if n >= iterations:
                break
            yield fmi.elapse(step)
        yield from fmi.finalize()

    return app


def measure(nprocs: int, crash_at: float = 5.0):
    sim, machine = make_machine(nodes_for(nprocs, spares=1), seed=nprocs)
    tracer = Tracer(sim)
    job = FmiJob(
        machine, idle_app(), num_ranks=nprocs, procs_per_node=PROCS_PER_NODE,
        config=FmiConfig(interval=1000000, xor_group_size=4, spare_nodes=1),
    )
    job.launch()
    victim = job.fmirun.node_slots[0]

    def killer():
        yield sim.timeout(crash_at)
        victim.crash("bench")

    sim.spawn(killer())
    sim.run(until=crash_at + 2.0)
    gen1 = notification_summary(tracer)[1]
    survivors = nprocs - PROCS_PER_NODE
    assert gen1["count"] == survivors, (
        f"log-ring reached {gen1['count']}/{survivors} survivors"
    )
    assert gen1["failure_at"] == pytest.approx(crash_at)
    return gen1


def run_sweep():
    return {n: measure(n) for n in PROC_COUNTS}


def test_fig13_notification_time(benchmark):
    out = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    from repro.cluster.spec import SIERRA

    net = SIERRA.network
    table = Table(
        "Fig 13: global failure-notification time (log-ring overlay)",
        ["Procs", "measured (s)", "max hop", "hop bound", "bound time (s)"],
    )
    for nprocs, gen1 in out.items():
        t = gen1["latency"]
        hops = max_notification_hops_bound(nprocs)
        bound = net.ibverbs_close_delay + (hops - 1) * net.notify_hop_delay
        table.add(nprocs, round(t, 4), gen1["max_hop"], hops, round(bound, 4))
        # The ibverbs constant dominates; the cascade adds hop delays.
        assert net.ibverbs_close_delay <= t <= bound + 1e-9
        # Traced hop counts respect the paper's Figure 8 bound.
        assert gen1["max_hop"] <= hops
    table.show()
    # Paper shape: ~0.2 s floor, under ~0.4 s at the largest scale,
    # growing (weakly) with process count.
    times = [gen1["latency"] for gen1 in out.values()]
    assert times[-1] <= 0.45
    assert times[-1] >= times[0]
