"""Fig 1 -- TSUBAME2.0 failure-rate breakdown by component.

Same multi-year trace as Table I, but reported per component on the
figure's 1e-6 failures/second axis, with the component's failure level
(1..5 by affected-node count).
"""

import pytest

from repro.analysis.tables import Table
from repro.cluster.failures import FailureInjector, TSUBAME2_FAILURE_TYPES
from repro.cluster.spec import SECONDS_PER_YEAR
from repro.simt import Simulator
from repro.simt.rng import RngRegistry

YEARS = 25


def run_trace(seed=11):
    sim = Simulator()
    inj = FailureInjector(
        sim, RngRegistry(seed).stream("f1"), TSUBAME2_FAILURE_TYPES, num_nodes=1408
    )
    inj.start()
    duration = YEARS * SECONDS_PER_YEAR
    sim.run(until=duration)
    inj.stop()
    return {
        t.name: (t, inj.observed_rate(t.name, duration))
        for t in TSUBAME2_FAILURE_TYPES
    }


def test_fig01_failure_breakdown(benchmark):
    rates = benchmark.pedantic(run_trace, rounds=1, iterations=1)
    table = Table(
        f"Fig 1: failure breakdown, x1e-6 failures/second ({YEARS}-year trace)",
        ["Component", "Level", "configured", "measured", "bar"],
    )
    ordered = sorted(rates.values(), key=lambda tv: -tv[0].rate_per_second)
    for ftype, measured in ordered:
        conf_us = ftype.rate_per_second * 1e6
        meas_us = measured * 1e6
        bar = "#" * max(1, int(round(meas_us)))
        table.add(ftype.name, ftype.level, round(conf_us, 3), round(meas_us, 3), bar)
        tol = 0.2 if conf_us > 1 else 0.6  # rarer components are noisier
        assert meas_us == pytest.approx(conf_us, rel=tol), ftype.name
    table.show()
    # The figure's dominant shape: CPU failures lead, single-node
    # (level-1) components dominate the total rate.
    assert ordered[0][0].name == "CPU"
    level1 = sum(m for t, m in rates.values() if t.level == 1)
    total = sum(m for _t, m in rates.values())
    assert level1 / total > 0.85  # "~92% of failures affect a single node"
