"""Fig 16 -- probability of running continuously for 24 hours.

Coastal failure rates (L1 MTBF 130 h recoverable by XOR, L2 MTBF 650 h
unrecoverable) scaled 1..50x.  With FMI only level-2 failures end a
run; without FMI every failure does.  The analytic model is
cross-checked against a Monte-Carlo draw from the same Poisson
processes.
"""

import numpy as np
import pytest

from repro.analysis.tables import Table
from repro.cluster.spec import COASTAL_L1_RATE, COASTAL_L2_RATE
from repro.models.availability import DAY_SECONDS, run_probability_curve

SCALES = [1, 2, 5, 6, 10, 20, 30, 40, 50]

#: Claims quoted in Section VI-C.
PAPER_POINTS = {
    # scale: (with_fmi, without_fmi)
    6: (0.80, None),   # "80% of executions can run for 24 hours at 6x"
    10: (0.70, 0.10),  # "70% ... while only 10% of non-FMI executions"
}


def monte_carlo(rate: float, trials: int = 20000, seed: int = 3) -> float:
    """Fraction of runs whose first failure lands after 24 h."""
    if rate == 0:
        return 1.0
    rng = np.random.default_rng(seed)
    first = rng.exponential(1.0 / rate, size=trials)
    return float(np.mean(first > DAY_SECONDS))


def run_model():
    rows = run_probability_curve(SCALES)
    mc = {
        f: (
            monte_carlo(f * COASTAL_L2_RATE),
            monte_carlo(f * (COASTAL_L1_RATE + COASTAL_L2_RATE)),
        )
        for f in SCALES
    }
    return rows, mc


def test_fig16_run_probability(benchmark):
    rows, mc = benchmark.pedantic(run_model, rounds=1, iterations=1)
    table = Table(
        "Fig 16: probability to run continuously for 24 hours (Coastal rates)",
        ["Scale", "with FMI (model)", "with FMI (MC)", "w/o FMI (model)",
         "w/o FMI (MC)"],
    )
    for scale, p_fmi, p_plain in rows:
        mc_fmi, mc_plain = mc[scale]
        table.add(scale, round(p_fmi, 3), round(mc_fmi, 3),
                  round(p_plain, 3), round(mc_plain, 3))
        # Model and Monte-Carlo agree.
        assert mc_fmi == pytest.approx(p_fmi, abs=0.02)
        assert mc_plain == pytest.approx(p_plain, abs=0.02)
        # FMI always helps.
        assert p_fmi > p_plain or scale == 0
        paper = PAPER_POINTS.get(scale)
        if paper:
            want_fmi, want_plain = paper
            assert p_fmi == pytest.approx(want_fmi, abs=0.03)
            if want_plain is not None:
                assert p_plain == pytest.approx(want_plain, abs=0.03)
    table.show()
