"""Fig 17 -- efficiency of multilevel C/R under scaled failure rates.

Four curves: {only L1 rate scaled, both L1 & L2 scaled} x {1, 10
GB/node}.  Level-1 C/R cost is constant with scale (the XOR model);
level-2 (PFS) cost grows with the scale factor (bigger machine, fixed
50 GB/s filesystem).  Coastal base rates; scale factors 1..50.

Paper shape: L1-only curves stay high; scaling both rates with
10 GB/node checkpoints collapses efficiency ("drops down to under
2%" -- our simplified renewal model reaches ~0.15, same cliff, less
extreme than [16]'s full Markov model).
"""

import pytest

from repro.analysis.tables import Table
from repro.cluster.spec import COASTAL, COASTAL_L1_RATE, COASTAL_L2_RATE, SIERRA
from repro.models.cr_model import checkpoint_time, restart_time
from repro.models.efficiency import multilevel_efficiency

SCALES = [1, 2, 5, 10, 20, 30, 40, 50]
PFS_BW = 50e9
NODES = COASTAL.num_nodes  # 1,152 on Coastal


def curve(size_gb: float, scale_both: bool):
    out = {}
    s = size_gb * 1e9
    mem = SIERRA.node.memory_bw
    net = SIERRA.network.link_bw
    c1 = checkpoint_time(s, 16, mem, net)
    r1 = restart_time(s, 16, mem, net)
    for f in SCALES:
        c2 = f * NODES * s / PFS_BW
        r2 = c2
        l1 = f * COASTAL_L1_RATE
        l2 = (f if scale_both else 1) * COASTAL_L2_RATE
        out[f] = multilevel_efficiency(c1, r1, l1, c2, r2, l2)
    return out


def run_all():
    return {
        "L1 - 1 GB/node": curve(1, scale_both=False),
        "L1 - 10 GB/node": curve(10, scale_both=False),
        "L1&2 - 1 GB/node": curve(1, scale_both=True),
        "L1&2 - 10 GB/node": curve(10, scale_both=True),
    }


def test_fig17_multilevel_efficiency(benchmark):
    curves = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        "Fig 17: multilevel C/R efficiency vs failure-rate scale factor",
        ["Scale", *curves.keys()],
    )
    for f in SCALES:
        table.add(f, *(round(curves[name][f], 3) for name in curves))
    table.show()

    l1_1, l1_10 = curves["L1 - 1 GB/node"], curves["L1 - 10 GB/node"]
    b_1, b_10 = curves["L1&2 - 1 GB/node"], curves["L1&2 - 10 GB/node"]
    # "fairly high efficiencies if future systems can keep current
    # level-2 failure rates constant":
    assert l1_1[50] > 0.90 and l1_10[50] > 0.80
    # Scaling both rates hurts; large checkpoints hurt more.
    for f in SCALES:
        assert b_1[f] <= l1_1[f] + 1e-9
        assert b_10[f] <= b_1[f] + 1e-9
    # The collapse: both-scaled 10 GB/node ends in the cellar (paper:
    # <2 %; our simplified model: <20 %, same qualitative cliff).
    assert b_10[50] < 0.20
    assert b_10[50] < 0.25 * b_10[1]
    # Monotone decline along every curve.
    for name, data in curves.items():
        vals = [data[f] for f in SCALES]
        assert all(a >= b - 1e-9 for a, b in zip(vals, vals[1:])), name
