"""Fig 12 -- checkpoint/restart throughput vs number of processes.

6 GB/node split over 12 processes/node, XOR group of up to 16 nodes.
The paper's point: aggregate throughput grows linearly with node count
(per-node throughput constant, ~2.4 GB/s checkpoint and ~1.3 GB/s
restart) because the XOR C/R cost is independent of the total process
count.
"""

import pytest

from _harness import FULL, PROCS_PER_NODE, make_machine
from repro.analysis.tables import Table
from repro.fmi.checkpoint import MemoryStorage, XorCheckpointEngine
from repro.fmi.payload import Payload
from repro.fmi.xor_group import XorGroupLayout
from repro.mpi.communicator import Communicator
from repro.mpi.runtime import MpiJob

BYTES_PER_NODE = 6e9
BYTES_PER_RANK = BYTES_PER_NODE / PROCS_PER_NODE
PROC_COUNTS = [48, 96, 192, 384, 768, 1536] if FULL else [48, 96, 192, 384]

PAPER_CKPT_PER_NODE = 2.4e9
PAPER_RESTART_PER_NODE = 1.3e9


def measure(nprocs: int):
    num_nodes = nprocs // PROCS_PER_NODE
    group = min(16, num_nodes)
    sim, machine = make_machine(num_nodes, seed=nprocs)
    layout = XorGroupLayout(nprocs, PROCS_PER_NODE, group)
    ckpt_times = {}
    restart_times = {}

    def app(api):
        gid = layout.group_of(api.rank)
        comm = Communicator(api, (1 << 28) + gid, layout.members(gid))
        storage = MemoryStorage(api.node)
        engine = XorCheckpointEngine(comm, storage, api.memcpy)
        payload = Payload.synthetic(BYTES_PER_RANK, seed=api.rank, rep_bytes=32)
        yield from api.barrier()
        t0 = api.now
        yield from engine.checkpoint([payload], dataset_id=0)
        yield from api.barrier()
        ckpt_times[api.rank] = api.now - t0
        # One rank per node-slot 0 loses its checkpoint (a whole node's
        # worth of replacements would double-load the gather; the paper
        # restarts the failed node's processes -- group-local view is
        # one lost member per group).
        if layout.node_of(api.rank) == 0:
            storage.clear()
        yield from api.barrier()
        t1 = api.now
        yield from engine.restore()
        yield from api.barrier()
        restart_times[api.rank] = api.now - t1

    job = MpiJob(machine, app, nprocs, procs_per_node=PROCS_PER_NODE,
                 charge_init=False)
    sim.run(until=job.launch())
    total = BYTES_PER_RANK * nprocs
    return (total / max(ckpt_times.values()), total / max(restart_times.values()),
            num_nodes)


def run_sweep():
    return {n: measure(n) for n in PROC_COUNTS}


def test_fig12_cr_throughput(benchmark):
    out = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table(
        "Fig 12: C/R throughput, 6 GB/node, 12 procs/node, XOR group <=16",
        ["Procs", "Nodes", "ckpt GB/s", "ckpt GB/s/node", "restart GB/s",
         "restart GB/s/node"],
    )
    per_node_ckpt = {}
    per_node_restart = {}
    for nprocs, (ckpt_bw, restart_bw, nodes) in out.items():
        per_node_ckpt[nprocs] = ckpt_bw / nodes
        per_node_restart[nprocs] = restart_bw / nodes
        table.add(nprocs, nodes, round(ckpt_bw / 1e9, 1),
                  round(ckpt_bw / nodes / 1e9, 2), round(restart_bw / 1e9, 1),
                  round(restart_bw / nodes / 1e9, 2))
    table.show()
    print(f"paper: ~{PAPER_CKPT_PER_NODE/1e9} GB/s/node checkpoint, "
          f"~{PAPER_RESTART_PER_NODE/1e9} GB/s/node restart")
    # Shape assertions: scalability = per-node throughput roughly flat
    # across a 8-32x range of process counts (compare at group size 16,
    # i.e. from 192 procs up, where the group geometry is constant).
    ref = per_node_ckpt[192]
    for nprocs in PROC_COUNTS:
        if nprocs >= 192:
            assert per_node_ckpt[nprocs] == pytest.approx(ref, rel=0.15)
    # Magnitudes in the paper's ballpark.
    biggest = PROC_COUNTS[-1]
    assert per_node_ckpt[biggest] == pytest.approx(PAPER_CKPT_PER_NODE, rel=0.35)
    assert per_node_restart[biggest] == pytest.approx(PAPER_RESTART_PER_NODE, rel=0.45)
    # Restart is slower than checkpoint (the gather stage).
    for nprocs in PROC_COUNTS:
        assert per_node_restart[nprocs] < per_node_ckpt[nprocs]
