"""Ablation -- XOR vs PARTNER vs SINGLE level-1 redundancy.

Sweeps the three redundancy schemes over group sizes, measuring
checkpoint time, restart time (where the scheme can repair a lost
member), and storage overhead, each against its analytic model in
:mod:`repro.models.cr_model`.

Expected shape, per the models:

* checkpoint: SINGLE (no network) < PARTNER (``s`` on the wire) <
  XOR (``s + s/(n-1)`` on the wire);
* storage overhead: SINGLE (0) < XOR (``1/(n-1)``) < PARTNER (1.0) --
  XOR's trade, and why the paper picks it;
* restart: PARTNER's copy-back beats XOR's group decode at small
  groups; both saturate with group size.
"""

import pytest

from _harness import CKPT_BYTES, GROUP_SIZES, run_engine_group
from repro.analysis.tables import Table
from repro.models.cr_model import checkpoint_time, restart_time, storage_overhead

SCHEMES = ["xor", "partner", "single"]
MEM_BW, NET_BW = 32e9, 3.24e9
FAILED = 0


def measure(scheme: str, group_size: int):
    """One group: checkpoint, then (if repairable) lose member 0 and
    restore.  Returns (ckpt_time, restart_time_or_None, overhead)."""
    ckpt_durations = {}
    restore_durations = {}
    overheads = {}
    repairable = scheme != "single"

    def body(api, engine, storage, payload):
        t0 = api.now
        yield from engine.checkpoint([payload], dataset_id=0)
        ckpt_durations[api.rank] = api.now - t0
        if api.rank == 0:
            blob_bytes = storage._blobs["ckpt@0"].data.nbytes
            extra = sum(
                p.data.nbytes for k, p in storage._blobs.items()
                if not k.startswith("ckpt@")
            )
            overheads[api.rank] = extra / blob_bytes
        if not repairable:
            return
        if api.rank == FAILED:
            storage.clear()
        yield from api.barrier()
        t0 = api.now
        _meta, restored = yield from engine.restore()
        restore_durations[api.rank] = api.now - t0
        assert restored[0] == payload

    run_engine_group(body, group_size, scheme=scheme, seed=group_size)
    return (
        max(ckpt_durations.values()),
        restore_durations.get(FAILED),
        overheads[0],
    )


def run_sweep():
    return {
        (scheme, n): measure(scheme, n)
        for scheme in SCHEMES
        for n in GROUP_SIZES
    }


def test_ablation_redundancy_schemes(benchmark):
    out = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table(
        "Redundancy ablation: level-1 schemes (1 proc/node)",
        ["Scheme", "Group", "ckpt (s)", "ckpt model", "restart (s)",
         "restart model", "overhead", "overhead model"],
    )
    for scheme in SCHEMES:
        for n in GROUP_SIZES:
            ckpt, restart, overhead = out[(scheme, n)]
            ckpt_model = checkpoint_time(CKPT_BYTES, n, MEM_BW, NET_BW,
                                         scheme=scheme)
            restart_model = restart_time(CKPT_BYTES, n, MEM_BW, NET_BW,
                                         scheme=scheme)
            ov_model = storage_overhead(scheme, n)
            table.add(
                scheme, n, round(ckpt, 3), round(ckpt_model, 3),
                "-" if restart is None else round(restart, 3),
                round(restart_model, 3),
                round(overhead, 4), round(ov_model, 4),
            )
            # Measured phase costs track each scheme's analytic model.
            assert ckpt == pytest.approx(ckpt_model, rel=0.20), (scheme, n)
            assert overhead == pytest.approx(ov_model, rel=1e-6), (scheme, n)
            if restart is not None and n >= 4:
                assert restart == pytest.approx(restart_model, rel=0.35), \
                    (scheme, n)
    table.show()

    for n in GROUP_SIZES:
        # Checkpoint cost ordering: single < partner < xor.
        assert out[("single", n)][0] < out[("partner", n)][0] < out[("xor", n)][0]
        # Storage overhead ordering: single < xor <= partner (a group
        # of 2 degenerates XOR's parity into a full copy).
        assert out[("single", n)][2] < out[("xor", n)][2] <= out[("partner", n)][2]
        if n > 2:
            assert out[("xor", n)][2] < out[("partner", n)][2]
        # Partner restart is a copy-back, cheaper than XOR's decode at
        # every group size.
        if n >= 4:
            assert out[("partner", n)][1] < out[("xor", n)][1]
