"""Fig 10 -- XOR checkpoint time vs XOR group size (6 GB/node).

One rank per node (so per-rank == per-node as in the paper's figure),
synthetic payloads, group sizes 2..64 (scale-dependent).  Overlays the
Section V-B model; asserts the paper's conclusion that the time
saturates around group size 16 (where parity overhead is 6.6 %).

Timing comes from the observability layer: the checkpoint engine
emits ``ckpt.checkpoint`` (and per-phase ``ckpt.snapshot`` /
``ckpt.encode`` / ...) spans into an attached
:class:`repro.obs.Tracer`, and the benchmark reads the distributions
back through :func:`repro.obs.summary.checkpoint_summary` instead of
stopwatching inside the application.
"""

import pytest

from _harness import CKPT_BYTES, GROUP_SIZES, run_engine_group
from repro.analysis.tables import Table
from repro.models.cr_model import checkpoint_time
from repro.obs.summary import checkpoint_summary


def measure_checkpoint(group_size: int):
    def body(api, engine, storage, payload):
        yield from engine.checkpoint([payload], dataset_id=0)

    _sim, _results, tracer = run_engine_group(
        body, group_size, scheme="xor", seed=group_size, trace=True
    )
    phases = checkpoint_summary(tracer)
    assert phases["ckpt.checkpoint"]["count"] == group_size
    return phases


def run_sweep():
    return {n: measure_checkpoint(n) for n in GROUP_SIZES}


def test_fig10_xor_checkpoint_time(benchmark):
    out = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    spec_mem, spec_net = 32e9, 3.24e9
    table = Table(
        "Fig 10: XOR checkpoint time vs group size (1 proc/node)",
        ["Group size", "measured (s)", "model (s)", "memcpy (s)", "comm (s)",
         "encode (s)"],
    )
    measured = {n: phases["ckpt.checkpoint"]["max"] for n, phases in out.items()}
    for n in GROUP_SIZES:
        model = checkpoint_time(CKPT_BYTES, n, spec_mem, spec_net)
        memcpy = CKPT_BYTES / spec_mem
        comm = (CKPT_BYTES + CKPT_BYTES / (n - 1)) / spec_net
        encode = out[n]["ckpt.encode"]["max"]
        table.add(n, round(measured[n], 3), round(model, 3),
                  round(memcpy, 3), round(comm, 3), round(encode, 3))
        assert measured[n] == pytest.approx(model, rel=0.20), n
        # The traced ring-encode phase carries the (s + s/(n-1))/net_bw
        # transfer term; it dominates the whole checkpoint.
        assert encode == pytest.approx(comm, rel=0.25), n
    table.show()
    # Shape: time decreases with group size and saturates near 16.
    assert measured[2] > measured[8]
    if 16 in GROUP_SIZES:
        assert measured[8] > measured[16]
        last = GROUP_SIZES[-1]
        assert measured[16] - measured[last] < 0.08 * measured[16]
    # Parity overhead at 16: 1/15 = 6.7 % of the checkpoint.
    assert 1 / 15 == pytest.approx(0.0667, rel=0.01)
