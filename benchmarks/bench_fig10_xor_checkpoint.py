"""Fig 10 -- XOR checkpoint time vs XOR group size (6 GB/node).

One rank per node (so per-rank == per-node as in the paper's figure),
synthetic 6 GB payloads, group sizes 2..64.  Overlays the Section V-B
model; asserts the paper's conclusion that the time saturates around
group size 16 (where parity overhead is 6.6 %).

Timing comes from the observability layer: the checkpoint engine
emits ``ckpt.checkpoint`` (and per-phase ``ckpt.snapshot`` /
``ckpt.encode`` / ...) spans into an attached
:class:`repro.obs.Tracer`, and the benchmark reads the distributions
back through :func:`repro.obs.summary.checkpoint_summary` instead of
stopwatching inside the application.
"""

import pytest

from _harness import FULL, make_machine
from repro.analysis.tables import Table
from repro.fmi.checkpoint import MemoryStorage, XorCheckpointEngine
from repro.fmi.payload import Payload
from repro.models.cr_model import checkpoint_time
from repro.mpi.runtime import MpiJob
from repro.obs import Tracer
from repro.obs.summary import checkpoint_summary

CKPT_BYTES = 6e9
GROUP_SIZES = [2, 4, 8, 16, 32, 64] if FULL else [2, 4, 8, 16, 32]


def measure_checkpoint(group_size: int):
    sim, machine = make_machine(group_size, seed=group_size)
    tracer = Tracer(sim)

    def app(api):
        storage = MemoryStorage(api.node)
        engine = XorCheckpointEngine(api.world, storage, api.memcpy)
        payload = Payload.synthetic(CKPT_BYTES, seed=api.rank, rep_bytes=64)
        yield from engine.checkpoint([payload], dataset_id=0)

    job = MpiJob(machine, app, nprocs=group_size, procs_per_node=1,
                 charge_init=False)
    sim.run(until=job.launch())
    phases = checkpoint_summary(tracer)
    assert phases["ckpt.checkpoint"]["count"] == group_size
    return phases


def run_sweep():
    return {n: measure_checkpoint(n) for n in GROUP_SIZES}


def test_fig10_xor_checkpoint_time(benchmark):
    out = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    spec_mem, spec_net = 32e9, 3.24e9
    table = Table(
        "Fig 10: XOR checkpoint time vs group size (6 GB/node, 1 proc/node)",
        ["Group size", "measured (s)", "model (s)", "memcpy (s)", "comm (s)",
         "encode (s)"],
    )
    measured = {n: phases["ckpt.checkpoint"]["max"] for n, phases in out.items()}
    for n in GROUP_SIZES:
        model = checkpoint_time(CKPT_BYTES, n, spec_mem, spec_net)
        memcpy = CKPT_BYTES / spec_mem
        comm = (CKPT_BYTES + CKPT_BYTES / (n - 1)) / spec_net
        encode = out[n]["ckpt.encode"]["max"]
        table.add(n, round(measured[n], 3), round(model, 3),
                  round(memcpy, 3), round(comm, 3), round(encode, 3))
        assert measured[n] == pytest.approx(model, rel=0.20), n
        # The traced ring-encode phase carries the (s + s/(n-1))/net_bw
        # transfer term; it dominates the whole checkpoint.
        assert encode == pytest.approx(comm, rel=0.25), n
    table.show()
    # Shape: time decreases with group size and saturates near 16.
    assert measured[2] > measured[8] > measured[16]
    last = GROUP_SIZES[-1]
    assert measured[16] - measured[last] < 0.08 * measured[16]
    # Parity overhead at 16: 1/15 = 6.7 % of the checkpoint.
    assert 1 / 15 == pytest.approx(0.0667, rel=0.01)
