"""Ablation -- checkpoint-interval policy (Vaidya auto-tuning).

FMI auto-tunes its interval from the configured MTBF (Section III-B).
This bench compares the expected runtime factor of the Vaidya-optimal
interval against fixed intervals that are too eager or too lazy, at
several MTBFs, using the paper's Himeno checkpoint cost.
"""

import pytest

from repro.analysis.tables import Table
from repro.cluster.spec import SIERRA
from repro.models.cr_model import checkpoint_time, restart_time
from repro.models.vaidya import expected_runtime_factor, optimal_interval

#: Fig 15's checkpoint: 821 MB/node through the XOR engine.
CKPT_COST = checkpoint_time(821e6, 16, SIERRA.node.memory_bw, SIERRA.network.link_bw)
RESTART_COST = restart_time(821e6, 16, SIERRA.node.memory_bw, SIERRA.network.link_bw)
MTBFS = [30.0, 60.0, 300.0, 3600.0]
FIXED_MULTIPLIERS = [0.1, 0.3, 1.0, 3.0, 10.0]


def run_all():
    out = {}
    for mtbf in MTBFS:
        t_opt = optimal_interval(CKPT_COST, mtbf, RESTART_COST)
        row = {}
        for mult in FIXED_MULTIPLIERS:
            f = expected_runtime_factor(t_opt * mult, CKPT_COST, mtbf, RESTART_COST)
            row[mult] = f
        out[mtbf] = (t_opt, row)
    return out


def test_ablation_checkpoint_interval(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        f"Ablation: interval policy (ckpt cost {CKPT_COST:.2f}s, Himeno 821MB/node)",
        ["MTBF (s)", "Vaidya t* (s)", *(f"{m}x t*" for m in FIXED_MULTIPLIERS)],
    )
    for mtbf, (t_opt, row) in out.items():
        table.add(mtbf, round(t_opt, 2),
                  *(round(row[m], 4) for m in FIXED_MULTIPLIERS))
        # The optimum really is optimal.
        assert row[1.0] <= min(row.values()) + 1e-9
        # Over- and under-checkpointing both cost real efficiency.
        assert row[0.1] > row[1.0] * 1.05
        assert row[10.0] > row[1.0] * 1.01
    table.show()
    # Higher MTBF -> longer optimal interval and lower overhead.
    opts = [out[m][0] for m in MTBFS]
    assert opts == sorted(opts)
    factors = [out[m][1][1.0] for m in MTBFS]
    assert factors == sorted(factors, reverse=True)
