"""Chaos soak -- campaign survival matrix.

Sweeps every canned campaign (``repro.chaos.campaigns``) over a seed
set and reports survival rate, recovery counts, and injected-failure
counts per campaign.  Every run must come back with all invariants
green: the runtime survives the schedule AND the surviving run's answer
is bit-equal to the failure-free reference (Section V's transparent
recovery claim, adversarially scheduled).

Seed count scales with ``REPRO_BENCH_SCALE`` (smoke/quick/full).
"""

from _harness import SCALE
from repro.analysis.tables import Table
from repro.chaos import CAMPAIGNS, run_campaign

NUM_SEEDS = {"smoke": 3, "quick": 10, "full": 25}[SCALE]


def run_all():
    out = {}
    for name in CAMPAIGNS:
        results = [run_campaign(name, seed) for seed in range(NUM_SEEDS)]
        out[name] = results
    return out


def test_chaos_soak(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        f"Chaos soak: campaign survival over {NUM_SEEDS} seeds "
        f"(8 ranks, ppn=2, XOR group 4)",
        ["Campaign", "green", "recoveries (min/mean/max)", "kills (mean)"],
    )
    for name, results in out.items():
        recoveries = [r.recoveries for r in results]
        kills = sum(len(r.injected) for r in results) / len(results)
        table.add(
            name,
            f"{sum(1 for r in results if r.ok)}/{len(results)}",
            f"{min(recoveries)}/"
            f"{sum(recoveries) / len(recoveries):.1f}/{max(recoveries)}",
            round(kills, 1),
        )
    table.show()
    failing = [
        (name, r.seed, str(v))
        for name, results in out.items()
        for r in results if not r.ok
        for v in r.violations[:1]
    ]
    assert failing == [], f"invariant violations: {failing}"
    # Every campaign actually injected failures and exercised recovery
    # (drain-then-fail always recovers twice; the double-kill campaign
    # may coalesce into zero epochs when both kills land pre-launch
    # work, but across the sweep recoveries must happen).
    for name, results in out.items():
        assert any(r.injected for r in results), name
        assert any(r.recoveries > 0 for r in results), name
