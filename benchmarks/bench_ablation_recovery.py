"""Ablation -- recovery planes: global rollback vs logged partial rollback.

The same seeded kill schedules run twice, once under
``FmiConfig(recovery="global")`` (every rank restores the last
checkpoint) and once under ``recovery="logged"`` (sender-based message
logging: only the killed slot's ranks restore, survivors replay their
logs).  Swept over checkpoint interval and kill count, measuring:

* **recovery latency** -- the ``recovery`` trace span (failure to every
  rank back in H3), the paper's transparency metric;
* **restore traffic shape** -- survivors must perform *zero*
  checkpoint-restore events under the logged plane (only the ``ppn``
  restarted ranks run ``mlog.restore``), while global rollback restores
  all ranks;
* **replay traffic** -- messages and bytes pushed from survivor logs
  into the restarted ranks, the price partial rollback pays instead of
  the world-wide rollback.

Every run must come back green (all chaos invariants, bit-equal
answers vs the failure-free reference -- including the no-orphans
check), and the sweep must contain at least one point where the logged
plane recovers faster than global rollback.

Emits a machine-readable ``BENCH_<id>.json`` record (scenario
``recovery-ablation``) via :mod:`_results` for the perf trajectory.
"""

import time

import numpy as np

from _harness import SCALE
from _results import emit
from repro.analysis.tables import Table
from repro.chaos import Campaign, run_campaign
from repro.chaos.scenario import AtTime, KillRandomSlot, Rule

SEEDS = {"smoke": 2, "quick": 4, "full": 8}[SCALE]
INTERVALS = [1, 3]
KILL_COUNTS = {"smoke": [1], "quick": [1, 2], "full": [1, 2]}[SCALE]
MODES = ["global", "logged"]


def _kill_rules(kills):
    def rules(rng: np.random.Generator, c: Campaign):
        # Identical draws for both modes at a given seed: the kill
        # schedule is the controlled variable of the ablation.
        t0 = float(rng.uniform(1.5, 2.5))
        gap = float(rng.uniform(1.2, 1.8))
        return [
            Rule(AtTime(t0 + k * gap), KillRandomSlot())
            for k in range(kills)
        ]

    return rules


def _campaign(mode, interval, kills):
    name = f"recovery-ablation-{mode}-i{interval}-k{kills}"
    extra = {"interval": interval}
    if mode == "logged":
        extra["recovery"] = "logged"
    return Campaign(name, name, _kill_rules(kills), pool_extra=3,
                    config_extra=extra)


def _measure(result):
    """Trace-derived per-run measurements."""
    ev = result.tracer.events
    spans = [e.dur for e in ev if e.name == "recovery" and e.dur]
    return {
        "ok": result.ok,
        "recovery_latency_s": max(spans) if spans else 0.0,
        "recoveries": result.recoveries,
        "sim_time_s": result.sim_time,
        "ckpt_restores": sum(1 for e in ev if e.name == "ckpt.restore.begin"),
        "mlog_restores": sum(1 for e in ev if e.name == "mlog.restore.begin"),
        "replay_msgs": sum(
            e.args.get("msgs", 0) for e in ev if e.name == "mlog.replay.done"
        ),
        "replay_bytes": sum(
            e.args.get("nbytes", 0.0) for e in ev
            if e.name == "mlog.replay.done"
        ),
        "logged_msgs": sum(1 for e in ev if e.name == "mlog.log"),
        "trace_events": result.trace_events,
    }


def run_sweep():
    out = {}
    for mode in MODES:
        for interval in INTERVALS:
            for kills in KILL_COUNTS:
                campaign = _campaign(mode, interval, kills)
                t0 = time.monotonic()
                runs = [
                    _measure(run_campaign(campaign, seed, keep_trace=True))
                    for seed in range(SEEDS)
                ]
                out[(mode, interval, kills)] = {
                    "runs": runs,
                    "wall_clock_s": time.monotonic() - t0,
                }
    return out


def _mean(runs, key):
    picked = [r for r in runs if r["recoveries"] > 0] or runs
    return sum(r[key] for r in picked) / len(picked)


def test_ablation_recovery_planes(benchmark):
    out = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table(
        f"Recovery-plane ablation, {SEEDS} seeds per point "
        f"(8 ranks, ppn=2, XOR group 4)",
        ["mode", "interval", "kills", "green", "recovery (s)", "sim (s)",
         "restores ckpt/mlog", "replay msgs/bytes"],
    )
    entries = []
    for (mode, interval, kills), point in sorted(out.items()):
        runs = point["runs"]
        latency = _mean(runs, "recovery_latency_s")
        entry = {
            "procs": 8,
            "mode": mode,
            "interval": interval,
            "kills": kills,
            "seeds": SEEDS,
            "green": sum(1 for r in runs if r["ok"]),
            "recovery_latency_s": latency,
            "sim_time_s": _mean(runs, "sim_time_s"),
            "ckpt_restores": sum(r["ckpt_restores"] for r in runs),
            "mlog_restores": sum(r["mlog_restores"] for r in runs),
            "replay_msgs": sum(r["replay_msgs"] for r in runs),
            "replay_bytes": sum(r["replay_bytes"] for r in runs),
            "logged_msgs": sum(r["logged_msgs"] for r in runs),
            "wall_clock_s": point["wall_clock_s"],
            "simulated_s": sum(r["sim_time_s"] for r in runs),
            "events_per_sec": (
                sum(r["trace_events"] for r in runs) / point["wall_clock_s"]
            ),
        }
        entries.append(entry)
        table.add(
            mode, interval, kills, f"{entry['green']}/{SEEDS}",
            round(latency, 3), round(entry["sim_time_s"], 2),
            f"{entry['ckpt_restores']}/{entry['mlog_restores']}",
            f"{entry['replay_msgs']}/{entry['replay_bytes']:.3g}",
        )
    table.show()
    emit("recovery-ablation", SCALE, entries)

    # -- assertions: green board, restore shapes, and the latency win
    by_key = {(e["mode"], e["interval"], e["kills"]): e for e in entries}
    for entry in entries:
        assert entry["green"] == SEEDS, entry
    for (mode, interval, kills), entry in by_key.items():
        if mode == "logged":
            # Survivors never touch checkpoint restore: only the killed
            # slot's ppn ranks restore, through the plane.
            assert entry["ckpt_restores"] == 0, entry
            assert entry["mlog_restores"] > 0
            assert entry["logged_msgs"] > 0
        else:
            assert entry["mlog_restores"] == 0
            assert entry["ckpt_restores"] > 0
    # Replay traffic flows on at least one logged point (a kill can
    # land before any cross-slot backlog exists, but not everywhere).
    assert any(
        e["replay_msgs"] > 0 for e in entries if e["mode"] == "logged"
    )
    # The headline: partial rollback recovers faster than global
    # rollback on at least one (interval, kills) sweep point.
    wins = [
        (interval, kills)
        for interval in INTERVALS
        for kills in KILL_COUNTS
        if by_key[("logged", interval, kills)]["recovery_latency_s"]
        < by_key[("global", interval, kills)]["recovery_latency_s"]
    ]
    assert wins, {
        k: (v["mode"], v["recovery_latency_s"]) for k, v in by_key.items()
    }
