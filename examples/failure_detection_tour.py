#!/usr/bin/env python
"""A tour of the log-ring failure detector.

Part 1 reproduces the paper's Figure 7 on paper: the overlay structure
for n=16 and how a failure of process 0 reaches everyone in 2 hops.

Part 2 runs it live: a 96-rank FMI job, one node crash, and the exact
simulated time each surviving rank received its notification -- the
~0.2 s ibverbs constant plus the cascade.

Run:  python examples/failure_detection_tour.py
"""

import numpy as np

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.net.overlay import (
    logring_neighbors,
    max_notification_hops_bound,
    notification_hops,
)
from repro.simt import Simulator
from repro.simt.rng import RngRegistry


def part1_figure7():
    n = 16
    print(f"Figure 7: log-ring overlay, n={n}")
    print(f"  process 0 connects to: {logring_neighbors(0, n)}")
    incoming = sorted(r for r in range(n) if 0 in logring_neighbors(r, n))
    print(f"  ...and receives connections from: {incoming}")
    hops = notification_hops(n, failed=0)
    by_hop = {}
    for rank, h in hops.items():
        by_hop.setdefault(h, []).append(rank)
    for h in sorted(by_hop):
        print(f"  hop {h}: ranks {sorted(by_hop[h])}")
    print(f"  bound: ceil(ceil(log2 {n})/2) = {max_notification_hops_bound(n)} hops")
    print()


def part2_live(nranks=96, ppn=12):
    print(f"Live detection: {nranks} ranks, 12/node; crashing node 0 at t=5s")
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(nranks // ppn + 1), RngRegistry(7))

    def idle(fmi):
        u = np.zeros(1)
        yield from fmi.init()
        while True:
            n = yield from fmi.loop([u])
            if n >= 200:
                break
            yield fmi.elapse(0.25)
        yield from fmi.finalize()

    job = FmiJob(machine, idle, num_ranks=nranks, procs_per_node=ppn,
                 config=FmiConfig(interval=10**6, xor_group_size=4,
                                  spare_nodes=1))
    job.launch()
    crash_at = 5.0

    def chaos():
        yield sim.timeout(crash_at)
        job.fmirun.node_slots[0].crash("tour")

    sim.spawn(chaos())
    sim.run(until=crash_at + 2.0)

    delays = sorted(t - crash_at for _r, t, g in job.detector.notifications if g == 1)
    print(f"  survivors notified: {len(delays)} / {nranks - ppn}")
    print(f"  first (direct ibverbs event): {delays[0] * 1e3:.1f} ms")
    print(f"  last  (end of cascade):       {delays[-1] * 1e3:.1f} ms")
    buckets = {}
    for d in delays:
        buckets[round(d, 3)] = buckets.get(round(d, 3), 0) + 1
    for t, count in sorted(buckets.items()):
        print(f"    t+{t * 1e3:6.1f} ms: {count:3d} ranks {'#' * (count // 2)}")
    net = machine.spec.network
    hops = max_notification_hops_bound(nranks)
    print(f"  paper bound: 0.2s + {hops - 1} hops x {net.notify_hop_delay * 1e3:.0f}ms"
          f" = {(net.ibverbs_close_delay + (hops - 1) * net.notify_hop_delay) * 1e3:.0f} ms")


if __name__ == "__main__":
    part1_figure7()
    part2_live()
