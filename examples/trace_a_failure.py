#!/usr/bin/env python
"""Trace a failure: watch a recovery through the observability layer.

Runs the quickstart scenario -- a 16-rank FMI job that loses a node
mid-run and recovers from its in-memory XOR checkpoint -- but with a
:class:`repro.obs.Tracer` and :class:`repro.obs.MetricsRegistry`
attached to the simulator.  Every message, overlay notification,
checkpoint phase, state transition and recovery window becomes a typed
event; afterwards we

* print the summary report (the same numbers Figures 5, 10 and 13 are
  built from),
* export the trace as deterministic JSONL (re-running this script
  produces a byte-identical file), and
* export a Chrome ``trace_event`` file you can open in Perfetto or
  ``chrome://tracing`` to *see* the cascade and the recovery.

Run:  python examples/trace_a_failure.py [output-dir]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.obs import MetricsRegistry, Tracer, write_chrome_trace, write_jsonl
from repro.obs.summary import notification_summary, report
from repro.simt import Simulator
from repro.simt.rng import RngRegistry

NUM_LOOPS = 8
NUM_RANKS = 16
PROCS_PER_NODE = 2
CRASH_AT = 3.0


def application(fmi):
    state = np.zeros(8, dtype=np.float64)
    yield from fmi.init()
    while True:
        n = yield from fmi.loop([state])
        if n >= NUM_LOOPS:
            break
        yield fmi.elapse(0.5)
        state[0] = n + 1
        state[1] = yield from fmi.allreduce(float(fmi.rank + n))
    yield from fmi.finalize()
    return state


def main():
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())

    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(10), RngRegistry(42))
    tracer = Tracer(sim)            # sim.tracer: every subsystem now emits
    metrics = MetricsRegistry(sim)  # sim.metrics: counters ride along
    job = FmiJob(
        machine,
        application,
        num_ranks=NUM_RANKS,
        procs_per_node=PROCS_PER_NODE,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=1),
    )
    done = job.launch()

    def chaos():
        yield sim.timeout(CRASH_AT)
        job.fmirun.node_slots[2].crash("traced demo")

    sim.spawn(chaos())
    sim.run(until=done)

    # -- the report the obs layer derives from the raw events ----------------
    print(report(tracer))

    # The log-ring cascade, straight from the trace: who heard, and in
    # how many hops (compare Figures 8 and 13).
    gen1 = notification_summary(tracer)[1]
    print(f"\nfailure at t={gen1['failure_at']:.3f}s reached "
          f"{gen1['count']} survivors in <= {gen1['max_hop']} hops, "
          f"last one {gen1['latency']*1000:.0f} ms after the crash")

    # A few counters (full snapshot: metrics.snapshot()).
    print(f"messages sent: {metrics.sum_counters('net.msgs_sent'):.0f}, "
          f"checkpoints: {metrics.sum_counters('ckpt.checkpoints'):.0f}, "
          f"recoveries: {metrics.sum_counters('fmi.recoveries'):.0f}")

    # -- exports -------------------------------------------------------------
    jsonl = out_dir / "trace.jsonl"
    chrome = out_dir / "trace.chrome.json"
    n = write_jsonl(tracer, str(jsonl))
    write_chrome_trace(tracer, str(chrome))
    print(f"\nwrote {n} events to {jsonl}")
    print(f"open {chrome} in chrome://tracing or https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
