#!/usr/bin/env python
"""Conjugate gradient under chaos engineering.

Solves the same SPD linear system three times on a simulated cluster:

1. failure-free, for the reference solution;
2. with one graceful node *drain* mid-solve (planned maintenance:
   ranks migrate, the healthy node returns to the pool);
3. with a random crash *storm* (MTBF ~ a few seconds) plus level-2
   PFS checkpoints, so even same-XOR-group double failures survive.

All three produce the bit-identical solution; the run report shows
what each disruption cost.

Run:  python examples/cg_solver_chaos.py
"""

import numpy as np

from repro.analysis.report import render_report
from repro.apps.cg import cg_fmi_app, make_spd_problem
from repro.cluster import Machine
from repro.cluster.failures import MtbfInjector
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.simt import Simulator
from repro.simt.rng import RngRegistry

N, ITERS = 32, 24
NRANKS, PPN = 8, 2


def launch(machine, level2=False, spares=1):
    return FmiJob(
        machine,
        cg_fmi_app(N, ITERS, extra_work_s=0.4),
        num_ranks=NRANKS,
        procs_per_node=PPN,
        config=FmiConfig(
            interval=1, xor_group_size=4, spare_nodes=spares,
            level2_every=2 if level2 else None,
        ),
    )


def run_clean():
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(8), RngRegistry(1))
    job = launch(machine, spares=0)
    x = sim.run(until=job.launch())[0]
    return x, job


def run_with_drain():
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(8), RngRegistry(2))
    job = launch(machine)

    def maintenance():
        yield sim.timeout(4.0)
        print(f"  [t={sim.now:.2f}s] draining node "
              f"{job.fmirun.node_slots[1].id} for maintenance")
        job.fmirun.drain_slot(1)

    done = job.launch()
    sim.spawn(maintenance())
    x = sim.run(until=done)[0]
    return x, job


def run_with_storm():
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(20), RngRegistry(3))
    job = launch(machine, level2=True, spares=3)
    done = job.launch()
    injector = MtbfInjector(
        sim, machine.rng.stream("storm"), mtbf_seconds=5.0,
        kill=lambda slot: job.fmirun.node_slots[slot].crash("storm"),
        num_nodes=job.num_nodes,
    )
    injector.start()
    done.callbacks.append(lambda _e: injector.stop())
    x = sim.run(until=done)[0]
    return x, job


def main():
    _a, _b, x_true = make_spd_problem(N)

    x_clean, job_clean = run_clean()
    print(render_report(job_clean, "1) failure-free"))
    print()

    x_drain, job_drain = run_with_drain()
    print(render_report(job_drain, "2) graceful drain mid-solve"))
    print()

    x_storm, job_storm = run_with_storm()
    print(render_report(job_storm, "3) crash storm (MTBF 5s, multilevel C/R)"))
    print()

    assert np.array_equal(x_clean, x_drain)
    assert np.array_equal(x_clean, x_storm)
    assert np.allclose(x_clean, x_true, atol=1e-6)
    print("all three solutions are bit-identical and correct "
          f"(|x - x_true| <= {np.abs(x_clean - x_true).max():.2e})")


if __name__ == "__main__":
    main()
