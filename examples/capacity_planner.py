#!/usr/bin/env python
"""Resilience capacity planning with the paper's analytic models.

Given a machine size, per-node checkpoint footprint, and failure-rate
assumptions, this walks the three questions an operator of an
FMI-style system would ask:

1. How often should I checkpoint?  (Vaidya interval from MTBF and the
   Section V-B XOR cost model.)
2. What are my odds of finishing a 24-hour run?  (Fig 16 model, with
   and without a survivable runtime.)
3. Is my PFS fast enough for level-2 checkpoints as the machine grows?
   (Fig 17 multilevel-efficiency model.)
4. How hard can I drive the cluster in service mode -- a shared
   substrate admitting a stream of jobs -- before queue waits blow up?
   (M/G/c model from ``repro.models.queueing``; cross-check any row
   against the simulator with
   ``python -m repro.sched --rate <r> --mtbf <m>``.)

Run:  python examples/capacity_planner.py [scale_factor]
"""

import sys

from repro.analysis.tables import Table
from repro.cluster.spec import (
    COASTAL,
    COASTAL_L1_RATE,
    COASTAL_L2_RATE,
    SIERRA,
)
from repro.models.availability import run_probability_curve
from repro.models.cr_model import checkpoint_time, restart_time
from repro.models.efficiency import multilevel_efficiency
from repro.models.queueing import estimate_capacity
from repro.models.vaidya import expected_runtime_factor, optimal_interval

CKPT_PER_NODE = 1e9  # 1 GB/node
GROUP = 16


def main(scale: float = 10.0):
    mem, net = SIERRA.node.memory_bw, SIERRA.network.link_bw
    c1 = checkpoint_time(CKPT_PER_NODE, GROUP, mem, net)
    r1 = restart_time(CKPT_PER_NODE, GROUP, mem, net)
    l1 = scale * COASTAL_L1_RATE
    l2 = scale * COASTAL_L2_RATE
    mtbf1 = 1.0 / l1

    print(f"machine: {COASTAL.num_nodes} nodes, {CKPT_PER_NODE/1e9:.0f} GB/node "
          f"checkpoints, XOR group {GROUP}, failure rates x{scale:g}")
    print()

    # 1 -- checkpoint cadence
    t_opt = optimal_interval(c1, mtbf1, r1)
    overhead = expected_runtime_factor(t_opt, c1, mtbf1, r1) - 1.0
    print("1. checkpoint cadence")
    print(f"   XOR checkpoint cost: {c1:.2f}s, restart: {r1:.2f}s")
    print(f"   level-1 MTBF: {mtbf1/3600:.1f}h -> Vaidya interval {t_opt:.0f}s "
          f"({t_opt/60:.1f} min)")
    print(f"   expected C/R overhead at that cadence: {overhead*100:.2f}%")
    print()

    # 2 -- survival odds
    print("2. probability of a continuous 24-hour run")
    table = Table("P(24h) vs failure scale", ["scale", "with FMI", "without FMI"])
    for f, w, wo in run_probability_curve([1, scale / 2, scale, 2 * scale]):
        table.add(f"{f:g}", round(w, 3), round(wo, 3))
    print(table.render())
    print()

    # 3 -- level-2 headroom
    print("3. multilevel C/R efficiency vs PFS bandwidth")
    table = Table(
        f"efficiency at scale x{scale:g}", ["PFS GB/s", "1 GB/node", "10 GB/node"]
    )
    for pfs_gbps in (25, 50, 100, 200, 400):
        row = []
        for size in (1e9, 10e9):
            c2 = COASTAL.num_nodes * size * scale / (pfs_gbps * 1e9)
            eff = multilevel_efficiency(
                checkpoint_time(size, GROUP, mem, net),
                restart_time(size, GROUP, mem, net),
                l1, c2, c2, l2,
            )
            row.append(round(eff, 3))
        table.add(pfs_gbps, *row)
    print(table.render())
    print()
    print("reading: if the 10 GB/node column sags, the PFS -- not the")
    print("compute fabric -- is the resilience bottleneck at this scale")
    print("(the paper's closing point in Section VI-C).")
    print()

    # 4 -- service-mode headroom
    print("4. service-mode headroom (shared cluster, stream of jobs)")
    nodes, per_job, runtime = 64, 4, 600.0  # 10-min jobs on 4 nodes each
    servers = nodes // per_job
    print(f"   {nodes} nodes, {per_job} nodes/job, {runtime:.0f}s jobs "
          f"-> {servers} job slots")
    table = Table(
        "M/G/c queue waits vs arrival rate (jobs/hour)",
        ["jobs/h", "util", "P(wait)", "mean wait s", "p99 wait s", "goodput"],
    )
    sat = 3600.0 * servers / runtime
    for frac in (0.3, 0.5, 0.7, 0.85, 0.95):
        per_hour = frac * sat
        est = estimate_capacity(
            num_nodes=nodes, nodes_per_job=per_job,
            arrival_rate=per_hour / 3600.0, ideal_runtime=runtime,
            mtbf=mtbf1, interval=t_opt, ckpt_cost=c1, restart_cost=r1,
        )
        table.add(round(per_hour, 1), round(est.utilization, 2),
                  round(est.prob_wait, 3), round(est.mean_wait, 1),
                  round(est.p99_wait, 1), round(est.goodput, 3))
    print(table.render())
    print()
    print("reading: waits stay negligible to ~70% utilization, then the")
    print("queue takes over; failures shrink usable capacity (goodput)")
    print("before they show up in the wait column.  Validate any row in")
    print("the simulator: python -m repro.sched --rate R --mtbf M")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 10.0)
