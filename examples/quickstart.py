#!/usr/bin/env python
"""Quickstart: run an FMI application through a node crash.

A 16-rank job iterates on a small state vector, checkpointing every
iteration through ``fmi.loop`` (the paper's ``FMI_Loop``).  Three
seconds in, we crash a compute node.  The FMI runtime detects it via
the log-ring, allocates the spare node, restarts the lost ranks there,
restores the last in-memory XOR checkpoint, and the application
finishes with the same answer it would have produced failure-free --
the application code contains no fault-tolerance logic at all.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.simt import Simulator
from repro.simt.rng import RngRegistry

NUM_LOOPS = 8
NUM_RANKS = 16
PROCS_PER_NODE = 2


def application(fmi):
    """An ordinary iterative solver written against the FMI API."""
    state = np.zeros(8, dtype=np.float64)
    yield from fmi.init()
    while True:
        n = yield from fmi.loop([state])  # sync + checkpoint + restore
        if n >= NUM_LOOPS:
            break
        yield fmi.elapse(0.5)  # one iteration of "compute"
        state[0] = n + 1
        state[1] = yield from fmi.allreduce(float(fmi.rank + n))
    yield from fmi.finalize()
    return state


def main():
    sim = Simulator()
    machine = Machine(sim, SIERRA.with_nodes(10), RngRegistry(42))
    job = FmiJob(
        machine,
        application,
        num_ranks=NUM_RANKS,
        procs_per_node=PROCS_PER_NODE,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=1),
    )
    done = job.launch()

    def chaos():
        yield sim.timeout(3.0)
        victim = job.fmirun.node_slots[2]
        print(f"[t={sim.now:6.3f}s] !!! crashing node {victim.id} "
              f"(ranks {job.ranks_of_slot(2)})")
        victim.crash("quickstart demo")

    sim.spawn(chaos())
    results = sim.run(until=done)

    print(f"[t={sim.now:6.3f}s] job finished")
    print(f"  recoveries:        {job.recovery_count}")
    print(f"  checkpoints taken: {job.checkpoints_done}")
    print(f"  restores:          {job.restores_done}")
    lat = job.recovery_latency(1)
    print(f"  recovery latency:  {lat:.3f}s (crash -> all ranks back in H3)")
    for time, cause in job.recovery_causes:
        print(f"  failure at t={time:.3f}s: {cause}")
    final = results[0]
    assert all(np.array_equal(r, final) or r[0] == final[0] for r in results)
    print(f"  final state[0] on every rank: {final[0]:.0f} "
          f"(expected {NUM_LOOPS}) -- answer correct despite the crash")


if __name__ == "__main__":
    main()
