#!/usr/bin/env python
"""Himeno (Poisson solver) under failures: FMI vs traditional MPI C/R.

Runs the same stencil problem three ways on the same simulated cluster
and prints a side-by-side comparison:

1. FMI with transparent in-memory XOR C/R, one injected node crash --
   survivors keep running, the spare node joins, the run continues;
2. MPI + SCR with the same crash -- the whole job is torn down,
   relaunched by the batch script, and restarted from the tmpfs
   checkpoint (rebuilding the lost node's files from the XOR group);
3. a failure-free MPI reference for the correct answer and baseline
   wall time.

Run:  python examples/himeno_under_failures.py
"""

from repro.apps.himeno import HimenoParams, himeno_fmi_app, himeno_mpi_app
from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.fmi import FmiConfig, FmiJob
from repro.mpi.runtime import MpiJob, MpiRestartDriver
from repro.mpi.scr import Scr
from repro.simt import Simulator
from repro.simt.rng import RngRegistry

PARAMS = HimenoParams(iterations=8, nx=8, ny=8, nz=16, extra_work_s=0.4)
NRANKS = 4
CRASH_DELAY = 1.2


def fresh_machine(seed):
    sim = Simulator()
    return sim, Machine(sim, SIERRA.with_nodes(6), RngRegistry(seed))


def run_reference():
    sim, machine = fresh_machine(1)
    job = MpiJob(machine, himeno_mpi_app(PARAMS), NRANKS, charge_init=False)
    results = sim.run(until=job.launch())
    return results[0], sim.now


def run_fmi_with_crash():
    sim, machine = fresh_machine(2)
    job = FmiJob(
        machine, himeno_fmi_app(PARAMS), num_ranks=NRANKS,
        config=FmiConfig(interval=1, xor_group_size=4, spare_nodes=1),
    )
    done = job.launch()

    def chaos():
        yield sim.timeout(job.machine.spec.fmi_bootstrap_time(NRANKS) + CRASH_DELAY)
        job.fmirun.node_slots[1].crash("demo")

    sim.spawn(chaos())
    results = sim.run(until=done)
    return results[0], sim.now, job


def run_mpi_scr_with_crash():
    sim, machine = fresh_machine(3)

    def scr_factory(api):
        return Scr(api, procs_per_node=1, group_size=4, interval=1)

    driver = MpiRestartDriver(
        machine, himeno_mpi_app(PARAMS, scr_factory), NRANKS, procs_per_node=1
    )
    proc = sim.spawn(driver.run())

    def chaos():
        yield sim.timeout(machine.spec.mpi_init_time(NRANKS) + CRASH_DELAY)
        driver.jobs[0].nodes[1].crash("demo")

    sim.spawn(chaos())
    sim.run()
    return proc.value[0], sim.now, driver


def main():
    ref, t_ref = run_reference()
    fmi, t_fmi, fmi_job = run_fmi_with_crash()
    mpi, t_mpi, driver = run_mpi_scr_with_crash()

    print("Himeno under a node crash (8 iterations, 4 ranks)")
    print("-" * 64)
    print(f"{'variant':30s} {'wall (sim s)':>12s} {'final residual':>18s}")
    print(f"{'MPI, failure-free':30s} {t_ref:12.2f} {ref['residuals'][-1]:18.6e}")
    print(f"{'FMI, 1 node crash':30s} {t_fmi:12.2f} {fmi['residuals'][-1]:18.6e}")
    print(f"{'MPI+SCR relaunch, 1 crash':30s} {t_mpi:12.2f} {mpi['residuals'][-1]:18.6e}")
    print("-" * 64)
    print(f"FMI recoveries: {fmi_job.recovery_count} "
          f"(latency {fmi_job.recovery_latency(1):.2f}s, survivors kept running)")
    print(f"MPI relaunches: {driver.restarts} "
          "(every rank killed, full job relaunch + SCR rebuild)")
    same = (ref["field_sum"] == fmi["field_sum"] == mpi["field_sum"])
    print(f"answers identical across all three runs: {same}")
    overhead_fmi = (t_fmi - t_ref) / t_ref * 100
    overhead_mpi = (t_mpi - t_ref) / t_ref * 100
    print(f"failure overhead: FMI {overhead_fmi:+.0f}% vs MPI+SCR {overhead_mpi:+.0f}%")
    assert same


if __name__ == "__main__":
    main()
