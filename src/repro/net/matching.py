"""MPI-style message matching.

Incoming envelopes are matched against posted receives on
``(source, tag)`` with wildcards, FIFO within each matching pair --
the non-overtaking rule MPI guarantees and applications rely on.
Unmatched arrivals wait in the unexpected-message queue.

On FMI recovery the engine is :meth:`reset`: posted receives are
cancelled (their events fail with :class:`RecvCancelled`) and
unexpected messages from the old epoch are purged.

Index layout (the hot-path rewrite)
-----------------------------------

Both queues are hash-bucket indexes keyed on ``(comm_id, source,
tag)``; wildcard patterns use :data:`ANY_SOURCE` / :data:`ANY_TAG` in
the key, so wildcard receives live in *side-lists* next to the exact
buckets:

* **posted receives** -- each posted receive sits in exactly one
  bucket: its own pattern.  A delivery consults at most four buckets
  (exact, source-wildcard, tag-wildcard, both-wildcard) and takes the
  live head with the smallest post sequence number -- byte-identical
  match order to a linear scan of a single deque, at O(1) per message
  instead of O(posted).
* **unexpected messages** -- each arrival is appended to all four
  buckets it could be claimed under.  A posted receive consults
  exactly one bucket: its own pattern.  Claiming an envelope marks it
  *taken*; the stale aliases in sibling buckets are skipped (and
  popped) when they surface at a bucket head.

Dead entries -- posted receives whose waiter died (killed process,
:meth:`~repro.simt.kernel.Event.cancel`, an externally failed event)
and taken unexpected aliases -- are swept lazily: they are popped when
they reach a bucket head during matching, and a full compaction runs
once enough cancellations/claims have accumulated (cancelled events
report in through the kernel's cancellation hook).  The compaction
only drops dead entries, so it can never change match order.

The pre-refactor linear engine survives as
:class:`repro.net.matching_reference.ReferenceMatchingEngine`: it is
the conformance oracle for the property tests and the baseline the
engine-throughput benchmark measures speedups against.  Set
``REPRO_MATCHING=reference`` to run any simulation on it.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Callable, Deque, Dict, Iterator, Optional, Tuple

from repro.net.message import Envelope
from repro.simt.kernel import Event, Simulator

__all__ = [
    "MatchingEngine",
    "ANY_SOURCE",
    "ANY_TAG",
    "RecvCancelled",
    "make_engine",
    "set_engine_factory",
]

ANY_SOURCE = -1
ANY_TAG = -1

#: full compactions run once this many dead/taken entries accumulated
_SWEEP_THRESHOLD = 64

_BucketKey = Tuple[int, int, int]  # (comm_id, source, tag)


class RecvCancelled(Exception):
    """A posted receive was cancelled by a recovery reset."""


class _PostedRecv:
    __slots__ = ("source", "tag", "comm_id", "event", "seq")

    def __init__(self, source: int, tag: int, comm_id: int, event: Event,
                 seq: int):
        self.source = source
        self.tag = tag
        self.comm_id = comm_id
        self.event = event
        self.seq = seq

    @property
    def live(self) -> bool:
        evt = self.event
        return evt.callbacks is not None and not evt.triggered

    def matches(self, env: Envelope) -> bool:
        return (
            env.comm_id == self.comm_id
            and (self.source == ANY_SOURCE or env.src == self.source)
            and (self.tag == ANY_TAG or env.tag == self.tag)
        )


class _Unexpected:
    """One arrived envelope, shared between its four index buckets."""

    __slots__ = ("env", "taken")

    def __init__(self, env: Envelope):
        self.env = env
        self.taken = False


class MatchingEngine:
    """Per-process matching state: posted receives + unexpected queue."""

    #: optional observer called as ``match_sink(source, tag, env)`` with
    #: the *posted pattern* and the envelope, just before each match
    #: fires.  The message-logging recovery plane uses it to track
    #: consumption and to record wildcard-match determinants.
    match_sink = None

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._posted: Dict[_BucketKey, Deque[_PostedRecv]] = {}
        self._post_seq = 0
        self._unexpected: Dict[_BucketKey, Deque[_Unexpected]] = {}
        self._unexpected_live = 0
        #: dead/taken entries accumulated since the last compaction;
        #: a compaction runs when the debt reaches ``_sweep_at``, which
        #: is re-armed to the surviving entry count so sweeps stay
        #: amortised O(1) per operation at any queue depth
        self._sweep_debt = 0
        self._sweep_at = _SWEEP_THRESHOLD
        self._on_cancel = self._note_cancel  # bind once, not per post
        #: observability counters
        self.delivered = 0
        self.matched_unexpected = 0
        self.matched_posted = 0
        #: dead posted receives pruned during delivery matching
        self.pruned_dead = 0
        #: dead/taken entries removed by background compactions
        self.swept_dead = 0
        #: lifetime totals across every recovery reset
        self.cancelled_total = 0
        self.purged_total = 0

    # -- receive side -----------------------------------------------------
    def post(self, source: int, tag: int, comm_id: int) -> Event:
        """Post a receive; the event fires with the matching Envelope."""
        evt = Event(self.sim)
        # First look in the unexpected queue (oldest first: FIFO).  A
        # post consults exactly one bucket -- its own pattern -- so no
        # probe object and no scan are needed.
        key = (comm_id, source, tag)
        dq = self._unexpected.get(key)
        if dq is not None:
            while dq and dq[0].taken:
                dq.popleft()
            if dq:
                rec = dq.popleft()
                rec.taken = True
                self._unexpected_live -= 1
                self._note_debt()
                self.matched_unexpected += 1
                if self.match_sink is not None:
                    self.match_sink(source, tag, rec.env)
                evt.succeed(rec.env)
                return evt
            del self._unexpected[key]
        rec = _PostedRecv(source, tag, comm_id, evt, self._post_seq)
        self._post_seq += 1
        bucket = self._posted.get(key)
        if bucket is None:
            bucket = self._posted[key] = deque()
        bucket.append(rec)
        evt._cancel_cb = self._on_cancel
        return evt

    def probe(self, source: int, tag: int, comm_id: int) -> Optional[Envelope]:
        """Non-destructive check of the unexpected queue (MPI_Iprobe)."""
        dq = self._unexpected.get((comm_id, source, tag))
        if dq is None:
            return None
        while dq and dq[0].taken:
            dq.popleft()
        if not dq:
            del self._unexpected[(comm_id, source, tag)]
            return None
        return dq[0].env

    # -- delivery side ------------------------------------------------------
    def deliver(self, env: Envelope) -> None:
        """An envelope arrived from the transport."""
        self.delivered += 1
        comm_id, src, tag = env.comm_id, env.src, env.tag
        keys = (
            (comm_id, src, tag),
            (comm_id, src, ANY_TAG),
            (comm_id, ANY_SOURCE, tag),
            (comm_id, ANY_SOURCE, ANY_TAG),
        )
        posted = self._posted
        # Walk matching posted receives in post order (= ascending seq
        # across the candidate bucket heads), pruning dead entries as
        # they are encountered, until a live one claims the envelope --
        # exactly the linear scan's semantics.
        while True:
            best_dq: Optional[Deque[_PostedRecv]] = None
            best_seq = -1
            for key in keys:
                dq = posted.get(key)
                if dq is None:
                    continue
                if not dq:
                    del posted[key]
                    continue
                seq = dq[0].seq
                if best_dq is None or seq < best_seq:
                    best_dq = dq
                    best_seq = seq
            if best_dq is None:
                break
            rec = best_dq.popleft()
            evt = rec.event
            if evt.callbacks is not None and not evt.triggered:
                self.matched_posted += 1
                if self.match_sink is not None:
                    self.match_sink(rec.source, rec.tag, env)
                evt.succeed(env)
                return
            # The waiter died (killed process / already-cancelled
            # event): prune the entry and keep walking -- a *live*
            # receive with a later seq may also match, and must not be
            # shadowed by the corpse.
            self.pruned_dead += 1
        rec = _Unexpected(env)
        unexpected = self._unexpected
        for key in keys:
            dq = unexpected.get(key)
            if dq is None:
                dq = unexpected[key] = deque()
            dq.append(rec)
        self._unexpected_live += 1

    # -- recovery ------------------------------------------------------------
    def reset(self) -> Tuple[int, int]:
        """Cancel all posted receives and purge unexpected messages.

        Returns ``(cancelled, purged)`` counts.
        """
        live = [
            rec
            for dq in self._posted.values()
            for rec in dq
            if rec.live
        ]
        live.sort(key=lambda rec: rec.seq)  # fail in post order
        for rec in live:
            rec.event._cancel_cb = None
            rec.event.fail(RecvCancelled())
        cancelled = len(live)
        self._posted.clear()
        purged = self._unexpected_live
        self._unexpected.clear()
        self._unexpected_live = 0
        self._sweep_debt = 0
        self.cancelled_total += cancelled
        self.purged_total += purged
        return cancelled, purged

    # -- lazy sweeping --------------------------------------------------------
    def _note_cancel(self, _evt: Event) -> None:
        """Kernel cancellation hook for posted-receive events."""
        self._note_debt()

    def _note_debt(self) -> None:
        self._sweep_debt += 1
        if self._sweep_debt >= self._sweep_at:
            self._sweep()

    def _sweep(self) -> None:
        """Compact every bucket: drop dead receives and taken aliases.

        Removal order is irrelevant to matching semantics -- only dead
        entries go -- so the sweep can run at any point between
        deliveries.
        """
        self._sweep_debt = 0
        surviving = 0
        for key in list(self._posted):
            dq = self._posted[key]
            kept = [rec for rec in dq if rec.live]
            if len(kept) != len(dq):
                self.swept_dead += len(dq) - len(kept)
                if kept:
                    self._posted[key] = deque(kept)
                else:
                    del self._posted[key]
                    continue
            surviving += len(kept)
        for key in list(self._unexpected):
            dq = self._unexpected[key]
            kept = [rec for rec in dq if not rec.taken]
            if len(kept) != len(dq):
                if kept:
                    self._unexpected[key] = deque(kept)
                else:
                    del self._unexpected[key]
                    continue
            surviving += len(kept)
        self._sweep_at = max(_SWEEP_THRESHOLD, surviving)

    # -- introspection --------------------------------------------------------
    def _iter_posted(self) -> Iterator[_PostedRecv]:
        for dq in self._posted.values():
            yield from dq

    @property
    def unexpected_count(self) -> int:
        return self._unexpected_live

    @property
    def posted_count(self) -> int:
        return sum(len(dq) for dq in self._posted.values())

    @property
    def pending_posted(self) -> int:
        """Posted receives still waiting on a live event -- the ones a
        finished rank must have drained (chaos invariant feed)."""
        return sum(1 for rec in self._iter_posted() if rec.live)


# -- engine selection ---------------------------------------------------------
def _resolve_default() -> Callable[[Simulator], "MatchingEngine"]:
    choice = os.environ.get("REPRO_MATCHING", "indexed").lower()
    if choice == "indexed":
        return MatchingEngine
    if choice == "reference":
        from repro.net.matching_reference import ReferenceMatchingEngine

        return ReferenceMatchingEngine
    raise ValueError(
        f"REPRO_MATCHING must be 'indexed' or 'reference', not {choice!r}"
    )


_engine_factory: Callable[[Simulator], "MatchingEngine"] = _resolve_default()


def make_engine(sim: Simulator) -> "MatchingEngine":
    """Build the matching engine every fresh :class:`NetContext` uses."""
    return _engine_factory(sim)


def set_engine_factory(factory) -> Callable[[Simulator], "MatchingEngine"]:
    """Swap the engine implementation (benchmarks / conformance runs).

    Returns the previous factory so callers can restore it.
    """
    global _engine_factory
    previous = _engine_factory
    _engine_factory = factory
    return previous
