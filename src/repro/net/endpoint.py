"""ibverbs-like reliable connections with disconnect events.

The paper's failure-detection substrate: the ibverbs library raises an
event on every connection to a process that terminates, ~0.2 s after
the death (Section VI-A).  Surviving processes can also close their
own connections *explicitly*, which their peers observe after a small
per-hop delay -- the mechanism the log-ring uses to cascade a failure
notification across the machine in ceil(ceil(log2 n)/2) hops.

Only the detector uses these connections; bulk data rides the PSM-like
transport, which (as on the real hardware) reports nothing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.cluster.machine import Machine
from repro.cluster.node import Node

__all__ = ["Connection", "ConnectionManager"]

#: disconnect callback: (connection, peer_key, reason)
DisconnectCb = Callable[["Connection", Any, str], None]


class Connection:
    """A reliable connection between two endpoint owners.

    Owners are identified by opaque hashable keys (the FMI layer uses
    ``(rank, incarnation)``); each side registers a disconnect callback.
    """

    def __init__(self, mgr: "ConnectionManager", key_a: Any, node_a: Node,
                 key_b: Any, node_b: Node):
        self.mgr = mgr
        self.ends: Tuple[Any, Any] = (key_a, key_b)
        self.nodes: Dict[Any, Node] = {key_a: node_a, key_b: node_b}
        self._cbs: Dict[Any, DisconnectCb] = {}
        self.open = True

    def peer_of(self, key: Any) -> Any:
        a, b = self.ends
        return b if key == a else a

    def on_disconnect(self, key: Any, callback: DisconnectCb) -> None:
        """Register ``key``'s handler for this connection breaking."""
        self._cbs[key] = callback

    # -- breaking ----------------------------------------------------------
    def close_from(self, key: Any, reason: str = "explicit-close") -> None:
        """``key`` closes the connection; its peer is notified after
        the per-hop notification delay."""
        if not self.open:
            return
        self.open = False
        self.mgr._forget(self)
        peer = self.peer_of(key)
        self.mgr._notify(self, peer, reason, self.mgr.hop_delay)

    def close_silent(self) -> None:
        """Tear down without notifying anyone (overlay rebuild: both
        sides are already re-entering H1 and replace their edges)."""
        if not self.open:
            return
        self.open = False
        self.mgr._forget(self)

    def break_by_owner_death(self, dead_key: Any, reason: str) -> None:
        """The process behind ``dead_key`` died (without its node
        dying); the peer hears after the ibverbs close delay, exactly
        like a node death."""
        if not self.open:
            return
        self.open = False
        self.mgr._forget(self)
        peer = self.peer_of(dead_key)
        node = self.nodes[peer]
        if node.alive:
            self.mgr._notify(self, peer, reason, self.mgr.close_delay)

    def break_by_partition(self, reason: str) -> None:
        """A network partition cut this connection.  Unlike a death,
        *both* endpoints are alive and both observe a disconnect event
        (after the ibverbs close delay) -- the raw material of a
        false-positive failure suspicion."""
        if not self.open:
            return
        self.open = False
        self.mgr._forget(self)
        for key, node in self.nodes.items():
            if node.alive:
                self.mgr._notify(self, key, reason, self.mgr.close_delay)

    def _break_by_death(self, dead_node: Node, reason: str) -> None:
        """A node died; the surviving side learns after the ibverbs delay."""
        if not self.open:
            return
        self.open = False
        self.mgr._forget(self)
        for key, node in self.nodes.items():
            if node is not dead_node and node.alive:
                self.mgr._notify(self, key, reason, self.mgr.close_delay)


class ConnectionManager:
    """Tracks connections and turns node deaths into disconnect events."""

    def __init__(self, machine: Machine):
        self.sim = machine.sim
        self.machine = machine
        net = machine.spec.network
        self.close_delay = net.ibverbs_close_delay
        self.hop_delay = net.notify_hop_delay
        self.connect_cost = net.overlay_connect_cost
        # Insertion-ordered (dict-as-set): on a node death the
        # disconnect timers must be scheduled in establishment order,
        # not in hash/memory-address order, or replays of the same
        # seed diverge in same-instant event ordering.
        self._by_node: Dict[int, Dict[Connection, None]] = {}
        self._all: Dict[Connection, None] = {}
        machine.on_node_death(self._on_node_death)
        machine.fabric.on_partition(self._on_partition)

    def detach(self) -> None:
        """Unhook from the machine at job teardown (the machine outlives
        any one tenant's connection manager)."""
        self.machine.remove_death_listener(self._on_node_death)
        self.machine.fabric.remove_partition_listener(self._on_partition)

    # -- establishment ----------------------------------------------------
    def connect(self, key_a: Any, node_a: Node, key_b: Any, node_b: Node) -> Connection:
        """Create a connection (instantaneous bookkeeping; callers charge
        ``connect_cost`` simulated time themselves, since they may
        pipeline several establishments)."""
        if not (node_a.alive and node_b.alive):
            raise ConnectionError("cannot connect: endpoint node is down")
        if not self.machine.fabric.reachable(node_a.id, node_b.id):
            raise ConnectionError(
                f"cannot connect: nodes {node_a.id} and {node_b.id} are partitioned"
            )
        conn = Connection(self, key_a, node_a, key_b, node_b)
        self._all[conn] = None
        self._by_node.setdefault(node_a.id, {})[conn] = None
        self._by_node.setdefault(node_b.id, {})[conn] = None
        return conn

    @property
    def open_connections(self) -> int:
        return len(self._all)

    # -- plumbing ------------------------------------------------------------
    def _forget(self, conn: Connection) -> None:
        self._all.pop(conn, None)
        for node in conn.nodes.values():
            bucket = self._by_node.get(node.id)
            if bucket is not None:
                bucket.pop(conn, None)

    def _notify(self, conn: Connection, key: Any, reason: str, delay: float) -> None:
        cb = conn._cbs.get(key)
        if cb is None:
            return
        timer = self.sim.timeout(delay)
        timer.callbacks.append(lambda _e: cb(conn, key, reason))

    def _on_node_death(self, node: Node, cause: Any) -> None:
        conns: List[Connection] = list(self._by_node.get(node.id, ()))
        for conn in conns:
            conn._break_by_death(node, f"peer-death:{cause}")

    def _on_partition(self, tag: str, component: Dict[int, int]) -> None:
        """Break every connection whose endpoints now sit in different
        partition components (establishment order, for determinism)."""
        for conn in list(self._all):
            key_a, key_b = conn.ends
            nid_a = conn.nodes[key_a].id
            nid_b = conn.nodes[key_b].id
            if component.get(nid_a, 0) != component.get(nid_b, 0):
                conn.break_by_partition(f"partition:{tag}")
