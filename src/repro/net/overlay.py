"""Overlay-network topology math.

The paper's §IV-C compares three overlays for failure notification:

* **complete** -- O(1) notification but O(n) establishment;
* **ring**     -- O(1) establishment but O(n) notification;
* **log-ring** -- each rank connects to neighbours ``k^j`` hops ahead
  (``k^j < n``), giving O(log n) establishment *and* notification:
  every rank learns of a failure within ``ceil(ceil(log_k n)/2)`` hops.

These functions are pure graph math; the live detector
(:mod:`repro.fmi.detector`) builds real connections from
:func:`logring_neighbors` and its propagation is cross-validated
against :func:`notification_schedule` in the tests.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Set

__all__ = [
    "logring_neighbors",
    "ring_neighbors",
    "complete_neighbors",
    "undirected_neighbors",
    "notification_hops",
    "notification_schedule",
    "max_notification_hops_bound",
    "establishment_connections",
    "cascade_depth",
    "hops_of_reason",
    "root_reason",
]

_CASCADE_PREFIX = "cascade:"


def cascade_depth(reason: str) -> int:
    """Explicit-close cascade steps encoded in a disconnect reason.

    Each survivor that relays a notification closes its remaining
    overlay connections with ``cascade:`` prefixed to the reason it
    received, so the prefix count *is* the relay depth: a direct
    ibverbs event (``peer-death:...``) has depth 0.
    """
    depth = 0
    while reason.startswith(_CASCADE_PREFIX):
        depth += 1
        reason = reason[len(_CASCADE_PREFIX):]
    return depth


def root_reason(reason: str) -> str:
    """The originating disconnect reason, with ``cascade:`` relays
    stripped -- what classifies an event as death- vs partition-rooted
    no matter how many hops it travelled."""
    while reason.startswith(_CASCADE_PREFIX):
        reason = reason[len(_CASCADE_PREFIX):]
    return reason


def hops_of_reason(reason: str) -> int:
    """Overlay hops a notification travelled: the paper counts the
    ibverbs event on the failed rank's direct neighbours as hop 1, and
    each cascade relay as one more -- comparable to
    :func:`notification_hops` and the Figure 8 bound."""
    return cascade_depth(reason) + 1


def logring_neighbors(rank: int, n: int, k: int = 2) -> List[int]:
    """Outgoing log-ring connections of ``rank``.

    Base ``k`` uses Chord-style fingers: offsets ``m * k^j`` for
    ``1 <= m < k`` and ``k^j < n`` -- ``(k-1) * log_k(n)`` connections.
    For the default ``k=2`` this reduces to offsets 1, 2, 4, 8, ...:
    for n=16, rank 0 connects to [1, 2, 4, 8], exactly the paper's
    Figure 7 example.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if k < 2:
        raise ValueError("log-ring base k must be >= 2")
    if not 0 <= rank < n:
        raise ValueError(f"rank {rank} out of range for n={n}")
    out: List[int] = []
    level = 1
    seen: Set[int] = set()
    while level < n:
        for m in range(1, k):
            offset = m * level
            if offset >= n:
                break
            peer = (rank + offset) % n
            if peer != rank and peer not in seen:
                out.append(peer)
                seen.add(peer)
        level *= k
    return out


def ring_neighbors(rank: int, n: int) -> List[int]:
    """Plain ring: one outgoing connection to the successor."""
    if n < 2:
        return []
    return [(rank + 1) % n]


def complete_neighbors(rank: int, n: int) -> List[int]:
    """Complete graph: outgoing connections to every higher rank
    (each pair connects once)."""
    return [r for r in range(rank + 1, n)]


def undirected_neighbors(n: int, k: int = 2, topology: str = "logring") -> Dict[int, Set[int]]:
    """Adjacency of the overlay, ignoring direction (disconnect events
    fire on both ends of a connection)."""
    builders = {
        "logring": lambda r: logring_neighbors(r, n, k),
        "ring": lambda r: ring_neighbors(r, n),
        "complete": lambda r: complete_neighbors(r, n),
    }
    try:
        build = builders[topology]
    except KeyError:
        raise ValueError(f"unknown topology {topology!r}") from None
    adj: Dict[int, Set[int]] = {r: set() for r in range(n)}
    for r in range(n):
        for peer in build(r):
            adj[r].add(peer)
            adj[peer].add(r)
    return adj


def notification_hops(n: int, failed: int, k: int = 2, topology: str = "logring") -> Dict[int, int]:
    """Hops until each surviving rank hears about ``failed``.

    Hop 1 = ibverbs event on the failed rank's direct neighbours; each
    later hop = explicit closes cascading outward (BFS).
    """
    adj = undirected_neighbors(n, k, topology)
    hops: Dict[int, int] = {}
    frontier = deque()
    for peer in adj[failed]:
        hops[peer] = 1
        frontier.append(peer)
    while frontier:
        cur = frontier.popleft()
        for nxt in adj[cur]:
            if nxt != failed and nxt not in hops:
                hops[nxt] = hops[cur] + 1
                frontier.append(nxt)
    return hops


def max_notification_hops_bound(n: int, k: int = 2) -> int:
    """Worst-case notification hops for the log-ring.

    For the paper's ``k=2`` this is its ceil(ceil(log2 n)/2) bound
    (each hop covers two signed binary digits of the remaining ring
    distance).  For ``k > 2`` that halving does not apply -- a hop
    covers one signed base-``k`` digit via the ``(k-1)`` per-level
    fingers -- so the bound is ceil(log_k n); the property suite
    cross-validates both against BFS on the actual overlay.
    """
    if n <= 2:
        return 1
    if k == 2:
        return math.ceil(math.ceil(math.log2(n)) / 2)
    return math.ceil(math.log(n, k))


def notification_schedule(
    n: int,
    failed: int,
    close_delay: float,
    hop_delay: float,
    k: int = 2,
    topology: str = "logring",
) -> Dict[int, float]:
    """Absolute notification time per surviving rank.

    Direct neighbours pay the ibverbs ``close_delay``; each further hop
    adds ``hop_delay``.
    """
    return {
        rank: close_delay + (h - 1) * hop_delay
        for rank, h in notification_hops(n, failed, k, topology).items()
    }


def establishment_connections(n: int, k: int = 2, topology: str = "logring") -> int:
    """Total connections the overlay needs (establishment cost proxy)."""
    adj = undirected_neighbors(n, k, topology)
    return sum(len(peers) for peers in adj.values()) // 2
