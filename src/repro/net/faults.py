"""Probabilistic link-fault model: omission, duplication, delay.

The transport (:mod:`repro.net.transport`) consults an attached
:class:`LinkFaultModel` for every message and gets back a *fault plan*:
how many times the message's bytes are dropped on the wire before a
copy finally lands, whether the receiver sees a duplicate, and how
much extra queueing delay the surviving copy picks up.

Losses never translate into a hung application: the reliable layer on
top of a lossy link retransmits on a timeout (``rto``), the way
GASPI-style fault-tolerant runtimes make every communication call
timeout-based rather than trusting the fabric.  Duplicates are
suppressed by the receiver through the envelope's globally unique
sequence number.  The model draws from one seeded RNG stream, so a
campaign replayed with the same seed loses, duplicates, and delays the
exact same messages.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

__all__ = ["FaultPlan", "LinkFaultModel"]

#: safety valve: a message is never dropped more times than this in a
#: row (drop_p < 1 makes longer runs astronomically unlikely anyway)
MAX_CONSECUTIVE_DROPS = 64


class FaultPlan:
    """The per-message fault draw (see :meth:`LinkFaultModel.plan`)."""

    __slots__ = ("drops", "delay", "duplicate")

    def __init__(self, drops: int, delay: float, duplicate: bool):
        self.drops = drops
        self.delay = delay
        self.duplicate = duplicate

    @property
    def clean(self) -> bool:
        return self.drops == 0 and self.delay == 0.0 and not self.duplicate

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FaultPlan drops={self.drops} delay={self.delay:.6g}"
            f" dup={self.duplicate}>"
        )


class LinkFaultModel:
    """Seeded per-link drop/duplicate/delay model.

    Parameters are per message: ``drop_p`` is the chance each
    transmission attempt is lost (attempts are redrawn until one
    survives, each lost attempt costing one ``rto`` retransmission
    timeout); ``dup_p`` the chance the receiver sees the message twice
    (the copy trailing by ``dup_lag``); ``delay_p`` the chance of
    extra exponentially distributed queueing delay of mean
    ``delay_mean``.  ``links`` optionally restricts the model to a set
    of directed ``(src_node, dst_node)`` pairs; ``None`` afflicts every
    inter-node link.
    """

    def __init__(
        self,
        rng,
        drop_p: float = 0.0,
        dup_p: float = 0.0,
        delay_p: float = 0.0,
        rto: float = 0.05,
        dup_lag: float = 0.002,
        delay_mean: float = 0.01,
        links: Optional[Set[Tuple[int, int]]] = None,
    ):
        for name, p in (("drop_p", drop_p), ("dup_p", dup_p), ("delay_p", delay_p)):
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must be in [0, 1), not {p}")
        if rto <= 0 or dup_lag <= 0 or delay_mean <= 0:
            raise ValueError("rto, dup_lag and delay_mean must be positive")
        self.rng = rng
        self.drop_p = drop_p
        self.dup_p = dup_p
        self.delay_p = delay_p
        self.rto = rto
        self.dup_lag = dup_lag
        self.delay_mean = delay_mean
        self.links = None if links is None else set(links)

    def applies(self, src_node: int, dst_node: int) -> bool:
        """Is the ``src -> dst`` link afflicted?  Loopback never is."""
        if src_node == dst_node:
            return False
        if self.links is None:
            return True
        return (src_node, dst_node) in self.links

    def plan(self, src_node: int, dst_node: int) -> FaultPlan:
        """Draw the fault plan for one message on ``src -> dst``."""
        if not self.applies(src_node, dst_node):
            return FaultPlan(0, 0.0, False)
        rng = self.rng
        drops = 0
        if self.drop_p:
            while rng.random() < self.drop_p and drops < MAX_CONSECUTIVE_DROPS:
                drops += 1
        delay = 0.0
        if self.delay_p and rng.random() < self.delay_p:
            delay = float(rng.exponential(self.delay_mean))
        duplicate = bool(self.dup_p) and rng.random() < self.dup_p
        return FaultPlan(drops, delay, duplicate)

    def describe(self) -> str:
        scope = "all links" if self.links is None else f"{len(self.links)} link(s)"
        return (
            f"drop_p={self.drop_p:g} dup_p={self.dup_p:g} "
            f"delay_p={self.delay_p:g} rto={self.rto:g} on {scope}"
        )
