"""The pre-refactor linear matching engine, kept on purpose.

This is the original deque-scan implementation of
:class:`~repro.net.matching.MatchingEngine`, preserved verbatim for
two jobs:

* **conformance oracle** -- the property tests drive this engine and
  the indexed one with the same random post/deliver/reset/cancel
  sequence and assert identical match order, FIFO non-overtaking and
  counter values (``tests/test_matching_conformance.py``);
* **perf baseline** -- ``benchmarks/bench_engine_throughput.py``
  measures the indexed engine's speedup against it, and
  ``REPRO_MATCHING=reference`` runs any simulation on it end to end.

It must keep the exact observable semantics of the indexed engine; do
not optimise it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.net.matching import ANY_SOURCE, ANY_TAG, RecvCancelled
from repro.net.message import Envelope
from repro.simt.kernel import Event, Simulator

__all__ = ["ReferenceMatchingEngine"]


class _PostedRecv:
    __slots__ = ("source", "tag", "comm_id", "event")

    def __init__(self, source: int, tag: int, comm_id: int, event: Event):
        self.source = source
        self.tag = tag
        self.comm_id = comm_id
        self.event = event

    def matches(self, env: Envelope) -> bool:
        return (
            env.comm_id == self.comm_id
            and (self.source == ANY_SOURCE or env.src == self.source)
            and (self.tag == ANY_TAG or env.tag == self.tag)
        )


class ReferenceMatchingEngine:
    """Linear-scan matching: O(posted + unexpected) per operation."""

    #: optional observer called as ``match_sink(source, tag, env)`` with
    #: the posted pattern and the envelope, just before each match fires
    #: (same contract as the indexed engine's).
    match_sink = None

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._posted: Deque[_PostedRecv] = deque()
        self._unexpected: Deque[Envelope] = deque()
        #: observability counters
        self.delivered = 0
        self.matched_unexpected = 0
        self.matched_posted = 0
        #: dead posted receives pruned during delivery scans
        self.pruned_dead = 0
        #: lifetime totals across every recovery reset
        self.cancelled_total = 0
        self.purged_total = 0

    # -- receive side -----------------------------------------------------
    def post(self, source: int, tag: int, comm_id: int) -> Event:
        """Post a receive; the event fires with the matching Envelope."""
        evt = Event(self.sim)
        probe = _PostedRecv(source, tag, comm_id, evt)
        # First look in the unexpected queue (oldest first: FIFO).
        for env in self._unexpected:
            if probe.matches(env):
                self._unexpected.remove(env)
                self.matched_unexpected += 1
                if self.match_sink is not None:
                    self.match_sink(source, tag, env)
                evt.succeed(env)
                return evt
        self._posted.append(probe)
        return evt

    def probe(self, source: int, tag: int, comm_id: int) -> Optional[Envelope]:
        """Non-destructive check of the unexpected queue (MPI_Iprobe)."""
        probe = _PostedRecv(source, tag, comm_id, Event(self.sim))
        for env in self._unexpected:
            if probe.matches(env):
                return env
        return None

    # -- delivery side ------------------------------------------------------
    def deliver(self, env: Envelope) -> None:
        """An envelope arrived from the transport."""
        self.delivered += 1
        for posted in list(self._posted):
            if not posted.matches(env):
                continue
            if posted.event.callbacks is not None and not posted.event.triggered:
                self._posted.remove(posted)
                self.matched_posted += 1
                if self.match_sink is not None:
                    self.match_sink(posted.source, posted.tag, env)
                posted.event.succeed(env)
                return
            # The waiter died (killed process / already-cancelled
            # event): prune the entry and keep scanning -- a *live*
            # receive further down the deque may also match, and must
            # not be shadowed by the corpse.
            self._posted.remove(posted)
            self.pruned_dead += 1
        self._unexpected.append(env)

    # -- recovery ------------------------------------------------------------
    def reset(self) -> Tuple[int, int]:
        """Cancel all posted receives and purge unexpected messages.

        Returns ``(cancelled, purged)`` counts.
        """
        cancelled = 0
        while self._posted:
            posted = self._posted.popleft()
            if posted.event.callbacks is not None and not posted.event.triggered:
                posted.event.fail(RecvCancelled())
                cancelled += 1
        purged = len(self._unexpected)
        self._unexpected.clear()
        self.cancelled_total += cancelled
        self.purged_total += purged
        return cancelled, purged

    @property
    def unexpected_count(self) -> int:
        return len(self._unexpected)

    @property
    def posted_count(self) -> int:
        return len(self._posted)

    @property
    def pending_posted(self) -> int:
        """Posted receives still waiting on a live event -- the ones a
        finished rank must have drained (chaos invariant feed)."""
        return sum(
            1 for p in self._posted
            if p.event.callbacks is not None and not p.event.triggered
        )
