"""repro.net -- the communication substrate shared by MPI and FMI.

Mirrors the split in the paper's implementation:

* :mod:`~repro.net.transport` -- a PSM-like low-latency messaging layer
  (send/deliver through the fabric).  Exactly as the paper observes of
  PSM, it does **not** detect peer failures after connection
  establishment; messages to dead processes silently vanish.
* :mod:`~repro.net.matching` -- the MPI-style (source, tag) matching
  engine with an unexpected-message queue, modelled on Open MPI's
  Matching Transfer Layer.
* :mod:`~repro.net.endpoint` -- ibverbs-like reliable connections whose
  *only* runtime role here is event-driven disconnect notification --
  the raw material of the log-ring failure detector.
* :mod:`~repro.net.overlay` -- overlay-graph construction (ring,
  complete, log-ring) and notification-propagation analysis.
* :mod:`~repro.net.pmgr` -- PMGR-style bootstrap rendezvous used by
  both ``FMI_Init`` and recovery re-bootstrap.
"""

from repro.net.endpoint import Connection, ConnectionManager
from repro.net.faults import LinkFaultModel
from repro.net.matching import ANY_SOURCE, ANY_TAG, MatchingEngine
from repro.net.message import Envelope
from repro.net.overlay import (
    complete_neighbors,
    logring_neighbors,
    notification_hops,
    notification_schedule,
    ring_neighbors,
    root_reason,
)
from repro.net.pmgr import PmgrRendezvous
from repro.net.transport import NetContext, Transport

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Connection",
    "ConnectionManager",
    "Envelope",
    "LinkFaultModel",
    "MatchingEngine",
    "NetContext",
    "PmgrRendezvous",
    "Transport",
    "complete_neighbors",
    "logring_neighbors",
    "notification_hops",
    "notification_schedule",
    "ring_neighbors",
    "root_reason",
]
