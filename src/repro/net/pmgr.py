"""PMGR-style bootstrap rendezvous.

PMGR_COLLECTIVE gives an MPI launcher a scalable TCP tree for
bootstrapping: every process checks in, endpoint information is
allgathered, and everyone proceeds together.  We model it as a
rendezvous barrier whose cost (charged once the last participant
arrives) follows the calibrated sqrt(n) bootstrap model in
:class:`~repro.cluster.spec.ClusterSpec` -- the quantity Fig 14 plots.

The same rendezvous implements the H1 synchronising state during
recovery: survivors arrive early and *block* until replacement
processes check in (the paper's "Non-failed processes block in
FMI_Loop until the new processes are bootstrapped").
"""

from __future__ import annotations

from typing import List, Optional

from repro.simt.kernel import Event, Simulator

__all__ = ["PmgrRendezvous"]


class PmgrRendezvous:
    """A one-shot all-arrive barrier with an exchange cost.

    ``arrive()`` returns an event; once ``size`` participants have
    arrived, the exchange runs for ``cost`` seconds and then every
    participant's event fires simultaneously.
    """

    def __init__(self, sim: Simulator, size: int, cost: float):
        if size < 1:
            raise ValueError("size must be >= 1")
        self.sim = sim
        self.size = size
        self.cost = cost
        self._arrived: List[Event] = []
        self._released = False
        #: time the last participant checked in (None until complete)
        self.complete_at: Optional[float] = None
        #: time participants were released (None until released)
        self.released_at: Optional[float] = None

    @property
    def waiting(self) -> int:
        return len(self._arrived) if not self._released else 0

    def arrive(self) -> Event:
        """Check in; the event fires when everyone has and the
        endpoint exchange has completed."""
        if self._released:
            raise RuntimeError("rendezvous already released (one-shot)")
        evt = Event(self.sim)
        self._arrived.append(evt)
        if len(self._arrived) > self.size:
            raise RuntimeError(
                f"rendezvous overfull: {len(self._arrived)} > size {self.size}"
            )
        if len(self._arrived) == self.size:
            self.complete_at = self.sim.now
            exchange = self.sim.timeout(self.cost)
            exchange.callbacks.append(self._release)
        return evt

    def _release(self, _evt: Event) -> None:
        self._released = True
        self.released_at = self.sim.now
        for evt in self._arrived:
            if evt.callbacks is not None and not evt.triggered:
                evt.succeed(None)
