"""Message envelopes.

An :class:`Envelope` is what travels through the transport: addressing
(rank, tag, communicator), the *epoch* stamp used to discard stale
pre-failure traffic (Section IV-D), a declared byte count for timing,
and the actual payload object for data fidelity.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Envelope"]

_seq = itertools.count()


@dataclass
class Envelope:
    """One message in flight."""

    #: sender's rank within ``comm_id``
    src: int
    #: destination rank within ``comm_id``
    dst: int
    tag: int
    comm_id: int
    #: recovery epoch the message was sent in; receivers drop envelopes
    #: from older epochs (stale pre-failure messages)
    epoch: int
    #: declared size for timing purposes
    nbytes: float
    #: the payload object (numpy array, Python object, Payload...)
    data: Any = None
    #: global monotonic sequence number -- debugging/trace ordering
    seq: int = field(default_factory=lambda: next(_seq))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Env {self.src}->{self.dst} tag={self.tag} comm={self.comm_id} "
            f"epoch={self.epoch} {self.nbytes:.0f}B>"
        )
