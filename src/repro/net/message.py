"""Message envelopes.

An :class:`Envelope` is what travels through the transport: addressing
(rank, tag, communicator), the *epoch* stamp used to discard stale
pre-failure traffic (Section IV-D), a declared byte count for timing,
and the actual payload object for data fidelity.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

__all__ = ["Envelope"]

_seq = itertools.count()


class Envelope:
    """One message in flight.

    A plain ``__slots__`` class (not a dataclass): one envelope is
    allocated per simulated message, so construction cost and per-
    instance dicts matter.
    """

    __slots__ = ("src", "dst", "tag", "comm_id", "epoch", "nbytes",
                 "data", "seq", "lseq")

    def __init__(
        self,
        src: int,
        dst: int,
        tag: int,
        comm_id: int,
        epoch: int,
        nbytes: float,
        data: Any = None,
        seq: Optional[int] = None,
    ):
        #: sender's / destination rank within ``comm_id``
        self.src = src
        self.dst = dst
        self.tag = tag
        self.comm_id = comm_id
        #: recovery epoch the message was sent in; receivers drop
        #: envelopes from older epochs (stale pre-failure messages)
        self.epoch = epoch
        #: declared size for timing purposes
        self.nbytes = nbytes
        #: the payload object (numpy array, Python object, Payload...)
        self.data = data
        #: global monotonic sequence number -- debugging/trace ordering
        self.seq = next(_seq) if seq is None else seq
        #: message-logging identity ``(sender_world_rank, channel_seq)``;
        #: stamped only when a recovery plane is active.  Unlike ``seq``
        #: it is *reproduced* when a rolled-back sender re-executes, so
        #: receivers can suppress duplicate re-sends during replay.
        self.lseq = None

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Env {self.src}->{self.dst} tag={self.tag} comm={self.comm_id} "
            f"epoch={self.epoch} {self.nbytes:.0f}B>"
        )
