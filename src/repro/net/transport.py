"""PSM-like low-latency transport.

Faithful to the property the paper highlights for QLogic's PSM: after
connection establishment, **communication calls do not report peer
failures**.  A send to a dead process completes locally and the bytes
vanish; failure awareness comes exclusively from the ibverbs-style
connection events consumed by the log-ring detector
(:mod:`repro.net.endpoint` + :mod:`repro.fmi.detector`).

Epoch hygiene (Section IV-D): every envelope carries the sender's
recovery epoch; delivery into a context with a newer epoch is silently
dropped, so stale pre-failure messages can never satisfy a
post-recovery receive.

Gray failures ride the same delivery path:

* **Partitions** -- the fabric (:mod:`repro.cluster.network`) says
  which node pairs are cut.  A message arriving at a cut is either
  *stalled* (parked until the partition heals, modelling switch
  buffering plus link-layer retry) or *dropped* (the reliable layer
  retransmits on a timeout until the link returns) depending on
  ``partition_mode``.  Either way delivery is eventually exact-once.
* **Omission** -- an attached :class:`~repro.net.faults.LinkFaultModel`
  injects seeded per-message drop/duplicate/delay.  Drops cost
  retransmission timeouts; duplicates are suppressed at the receiver
  via the envelope's globally unique sequence number.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.machine import Machine
from repro.cluster.node import Node
from repro.net.faults import LinkFaultModel
from repro.net.matching import make_engine
from repro.net.message import Envelope
from repro.simt.kernel import Event

__all__ = ["Transport", "NetContext"]

Address = Tuple[int, int]  # (node_id, serial)


class NetContext:
    """Per-process networking state: address, matching engine, epoch."""

    def __init__(self, transport: "Transport", node: Node, label: str = ""):
        # Serials are per-transport, not per-process: two simulations in
        # the same interpreter must assign identical addresses/labels or
        # the byte-identical-replay guarantee breaks.
        serial = transport._next_serial = transport._next_serial + 1
        self.transport = transport
        self.node = node
        self.addr: Address = (node.id, serial)
        self.label = label or f"ctx{serial}"
        self.matching = make_engine(transport.sim)
        #: current recovery epoch; bumped by the FMI runtime on recovery
        self.epoch = 0
        self.closed = False
        #: per-context delivery filter (replication plane): called with
        #: every lseq-stamped envelope just before delivery; returning
        #: False suppresses it (cross-copy duplicate, or buffered by an
        #: unsynced standby).  Unlike ``Transport.recovery_filter`` this
        #: is per *copy*, not per rank.
        self.recv_filter = None
        #: stale envelopes dropped by the epoch filter
        self.stale_dropped = 0
        #: sequence numbers already delivered (duplicate suppression;
        #: only populated when a lossy link model has been attached)
        self.delivered_seqs: Set[int] = set()

    @property
    def alive(self) -> bool:
        return not self.closed and self.node.alive

    def close(self) -> None:
        self.closed = True
        self.transport._registry.pop(self.addr, None)


class Transport:
    """Message movement between :class:`NetContext` instances."""

    #: retransmission timeout for messages lost at a drop-mode
    #: partition cut (no fault model required to be attached)
    partition_rto = 0.05

    def __init__(self, machine: Machine, sw_overhead: Optional[float] = None):
        self.machine = machine
        self.sim = machine.sim
        self.sw_overhead = (
            machine.spec.network.sw_overhead_fmi
            if sw_overhead is None
            else sw_overhead
        )
        self._registry: Dict[Address, NetContext] = {}
        self._next_serial = 0
        #: every context ever created (chaos invariant sweeps)
        self.contexts: List[NetContext] = []
        #: envelopes dropped because the destination was gone
        self.dropped_dead = 0
        #: envelopes dropped by the epoch filter
        self.dropped_stale = 0
        # -- gray-failure state --
        #: attached link-fault model (None = clean links)
        self.faults: Optional[LinkFaultModel] = None
        #: sticky flag: once a fault model has ever been attached,
        #: duplicate suppression stays armed (a detached model may
        #: still have duplicates in flight)
        self._lossy = False
        #: what happens to a message arriving at a partition cut
        self.partition_mode = "stall"  # or "drop"
        #: envelopes parked at a cut, flushed in order on heal
        self._stalled: List[Tuple[Envelope, int, Address, Optional[Event]]] = []
        #: cut envelopes parked until heal (stall mode)
        self.partition_stalls = 0
        #: parked envelopes delivered by a heal
        self.partition_flushed = 0
        #: retransmission attempts burned at a cut (drop mode)
        self.partition_retries = 0
        #: transmission attempts lost to the omission model
        self.omission_drops = 0
        #: messages that picked up extra omission delay
        self.omission_delays = 0
        #: duplicate copies injected by the omission model
        self.omission_dups = 0
        #: duplicate copies suppressed at the receiver
        self.dup_dropped = 0
        #: message-logging recovery filter (set by the logged recovery
        #: plane): called with every lseq-stamped envelope just before
        #: delivery; returning False suppresses a replayed/re-sent
        #: duplicate of a message this receiver already holds
        self.recovery_filter = None
        #: envelopes suppressed by the recovery filter
        self.replay_dup_dropped = 0
        #: replication plane (set by the replicated recovery family):
        #: sends to a lead rank's address fan out cloned envelopes to
        #: its live replicas, and per-context ``recv_filter``s keep the
        #: copies' delivery streams duplicate-free
        self.replication = None
        #: envelopes suppressed/buffered by per-context recv filters
        self.replication_filtered = 0
        # -- macro-event collectives --
        #: lazily-created per-job coordinator (repro.mpi.macro); lives
        #: here because the transport is the per-job rendezvous object
        #: every rank's API shares
        self.macro = None
        #: explicit vetoes on the macro fast path (chaos engine arming,
        #: experiment drivers); while > 0 every collective goes hop-level
        self.macro_blockers = 0
        machine.fabric.on_heal(self._on_heal)

    def detach(self) -> None:
        """Unhook from the (long-lived) fabric at job teardown so a
        stream of tenant jobs does not accumulate dead heal listeners."""
        self.machine.fabric.remove_heal_listener(self._on_heal)

    # -- macro-event eligibility ---------------------------------------------
    def block_macro(self) -> None:
        """Veto the macro-event collective fast path (stackable)."""
        self.macro_blockers += 1

    def unblock_macro(self) -> None:
        self.macro_blockers = max(0, self.macro_blockers - 1)

    def hop_fidelity_reason(self) -> Optional[str]:
        """Why collectives on this transport need per-hop fidelity.

        Returns ``None`` when the macro-event fast path may run, or a
        short reason string: something is armed, degraded, observed or
        recorded that makes individual message hops load-bearing.
        The check is *nominal* network state, not instantaneous
        in-flight traffic -- concurrent point-to-point flows (halo
        exchanges) do not disable the fast path; their contention
        error is what the conformance tolerance covers.
        """
        if self.macro_blockers > 0:
            return "blocked"
        if self.sim.fault_injectors > 0:
            return "injector"
        if self.faults is not None or self._lossy:
            return "omission"
        if self.machine.fabric.partitioned:
            return "partition"
        if self.machine.limping_count > 0:
            return "limp"
        if self.recovery_filter is not None:
            return "msglog"
        if self.replication is not None:
            # Mirroring happens per physical hop: a macro-collapsed
            # collective would bypass the replicas entirely.
            return "replicated"
        if self.sim.tracer.enabled or self.sim.metrics.enabled:
            return "observability"
        return None

    def macro_reset(self) -> None:
        """Recovery hook: drop all in-flight macro collective state
        (pending instances, per-rank sequence counters, scheduled
        completions) so a post-rollback world starts from a clean
        collective sequence."""
        if self.macro is not None:
            self.macro.reset()

    # -- registry ---------------------------------------------------------
    def create_context(self, node: Node, label: str = "") -> NetContext:
        ctx = NetContext(self, node, label)
        self._registry[ctx.addr] = ctx
        self.contexts.append(ctx)
        return ctx

    def lookup(self, addr: Address) -> Optional[NetContext]:
        ctx = self._registry.get(addr)
        if ctx is not None and ctx.alive:
            return ctx
        return None

    def context_at(self, addr: Address) -> Optional[NetContext]:
        """The registered context at ``addr`` regardless of liveness."""
        return self._registry.get(addr)

    # -- link faults ----------------------------------------------------------
    def set_faults(self, model: LinkFaultModel) -> None:
        """Attach a lossy-link model (all subsequent sends consult it)."""
        self.faults = model
        self._lossy = True

    def clear_faults(self) -> None:
        """Detach the model; in-flight faults still play out."""
        self.faults = None

    # -- data plane ----------------------------------------------------------
    def send(self, src: NetContext, dst_addr: Address, env: Envelope) -> Event:
        """Send ``env`` from ``src`` to the context at ``dst_addr``.

        The returned event fires when the bytes have left/landed; it
        fires even if the destination died mid-flight (the sender
        cannot tell -- PSM semantics).  It only fails if the *sender's*
        node is down.
        """
        repl = self.replication
        if repl is not None and env.lseq is not None:
            # Mirror onto the replicas shadowing this destination.  The
            # clones carry fresh (non-lead) addresses, so the recursive
            # sends fan out exactly once.
            for maddr, menv in repl.mirror_copies(dst_addr, env):
                self.send(src, maddr, menv)
        dst_node = self.machine.nodes[dst_addr[0]]
        fabric = self.machine.fabric
        wire = fabric.send(
            src.node, dst_node, env.nbytes, sw_overhead=self.sw_overhead
        )
        done = Event(self.sim)
        tracer = self.sim.tracer
        metrics = self.sim.metrics
        src_nid = src.node.id
        if (
            self.faults is None
            and not tracer.enabled
            and not metrics.enabled
        ):
            # No-observability fast path: identical delivery semantics
            # and event ordering, but no outcome labels, no label-dict
            # construction, and no per-message metric lookups.
            registry = self._registry

            def on_arrival_fast(evt: Event) -> None:
                if not evt._ok:
                    if not done.triggered:
                        done.fail(evt._value)
                    return
                if fabric._partition is not None and not fabric.reachable(
                    src_nid, dst_addr[0]
                ):
                    self._cut(env, src_nid, dst_addr, done)
                    return
                ctx = registry.get(dst_addr)
                if ctx is None or ctx.closed or not ctx.node.alive:
                    self.dropped_dead += 1
                elif env.epoch < ctx.epoch:
                    self.dropped_stale += 1
                    ctx.stale_dropped += 1
                elif self._lossy and env.seq in ctx.delivered_seqs:
                    self.dup_dropped += 1
                elif (
                    env.lseq is not None
                    and self.recovery_filter is not None
                    and not self.recovery_filter(env)
                ):
                    self.replay_dup_dropped += 1
                elif ctx.recv_filter is not None and not ctx.recv_filter(env):
                    self.replication_filtered += 1
                else:
                    if self._lossy:
                        ctx.delivered_seqs.add(env.seq)
                    ctx.matching.deliver(env)
                if not done.triggered:
                    done.succeed(None)

            wire.callbacks.append(on_arrival_fast)
            return done
        if tracer.enabled:
            tracer.instant(
                "net.send", "net", rank=env.src, node=src_nid,
                epoch=env.epoch, dst=env.dst, dst_node=dst_addr[0],
                nbytes=env.nbytes, tag=env.tag,
            )
        if metrics.enabled:
            metrics.counter("net.msgs_sent", node=src_nid).inc()
            metrics.counter("net.bytes_sent", node=src_nid).inc(env.nbytes)

        # Draw this message's fault plan up front (one seeded draw per
        # message keeps replays byte-identical).
        faults = self.faults
        plan = None
        if faults is not None:
            plan = faults.plan(src_nid, dst_addr[0])
            if plan.clean:
                plan = None
            else:
                self.omission_drops += plan.drops
                if plan.delay:
                    self.omission_delays += 1
                if plan.duplicate:
                    self.omission_dups += 1
                if tracer.enabled:
                    tracer.instant(
                        "net.omission", "net", rank=env.src, node=src_nid,
                        epoch=env.epoch, dst=env.dst, drops=plan.drops,
                        delay=plan.delay, dup=plan.duplicate,
                    )

        def on_arrival(evt: Event) -> None:
            if not evt._ok:
                if not done.triggered:
                    done.fail(evt._value)
                return
            if plan is None:
                self._arrive(env, src_nid, dst_addr, done)
                return
            extra = plan.drops * faults.rto + plan.delay
            if extra > 0:
                timer = self.sim.timeout(extra)
                timer.callbacks.append(
                    lambda _e: self._arrive(env, src_nid, dst_addr, done)
                )
            else:
                self._arrive(env, src_nid, dst_addr, done)
            if plan.duplicate:
                dup_timer = self.sim.timeout(extra + faults.dup_lag)
                dup_timer.callbacks.append(
                    lambda _e: self._arrive(env, src_nid, dst_addr, None)
                )

        wire.callbacks.append(on_arrival)
        return done

    # -- delivery ------------------------------------------------------------
    def _arrive(
        self,
        env: Envelope,
        src_nid: int,
        dst_addr: Address,
        done: Optional[Event],
    ) -> None:
        """Final delivery step: partition cut, liveness, epoch filter,
        duplicate suppression -- in that order."""
        fabric = self.machine.fabric
        if fabric._partition is not None and not fabric.reachable(
            src_nid, dst_addr[0]
        ):
            self._cut(env, src_nid, dst_addr, done)
            return
        tracer = self.sim.tracer
        metrics = self.sim.metrics
        ctx = self.lookup(dst_addr)
        if ctx is None:
            self.dropped_dead += 1
            outcome = "net.drop_dead"
        elif env.epoch < ctx.epoch:
            self.dropped_stale += 1
            ctx.stale_dropped += 1
            outcome = "net.drop_stale"
        elif self._lossy and env.seq in ctx.delivered_seqs:
            self.dup_dropped += 1
            outcome = "net.drop_dup"
        elif (
            env.lseq is not None
            and self.recovery_filter is not None
            and not self.recovery_filter(env)
        ):
            self.replay_dup_dropped += 1
            outcome = "net.drop_replay_dup"
        elif ctx.recv_filter is not None and not ctx.recv_filter(env):
            self.replication_filtered += 1
            outcome = "net.drop_replica_dup"
        else:
            if self._lossy:
                ctx.delivered_seqs.add(env.seq)
            ctx.matching.deliver(env)
            outcome = "net.recv"
        if tracer.enabled:
            # ctx_epoch lets post-hoc checkers re-verify the epoch
            # filter: a net.recv with env.epoch < ctx_epoch would be
            # a stale delivery.
            extra = {} if ctx is None else {"ctx_epoch": ctx.epoch}
            if env.lseq is not None:
                # (src, dst, n) channel identity: the orphan checker
                # correlates deliveries with mlog.log / mlog.rewind.
                extra["lseq"] = env.lseq
            tracer.instant(
                outcome, "net", rank=env.dst, node=dst_addr[0],
                epoch=env.epoch, src=env.src, nbytes=env.nbytes,
                tag=env.tag, **extra,
            )
        if metrics.enabled:
            metrics.counter(outcome, node=dst_addr[0]).inc()
        if done is not None and not done.triggered:
            done.succeed(None)

    def _cut(
        self,
        env: Envelope,
        src_nid: int,
        dst_addr: Address,
        done: Optional[Event],
    ) -> None:
        """The message hit a partition cut.

        ``stall`` parks it until the fabric heals (switch buffering +
        link-layer retry); ``drop`` loses the bytes and retransmits
        every ``partition_rto`` until the link is back.  Both converge
        to exact-once delivery once the partition heals.
        """
        if self.partition_mode == "stall":
            self.partition_stalls += 1
            if self.sim.tracer.enabled:
                self.sim.tracer.instant(
                    "net.partition_stall", "net", rank=env.dst,
                    node=dst_addr[0], epoch=env.epoch, src=env.src,
                    tag=env.tag,
                )
            self._stalled.append((env, src_nid, dst_addr, done))
            return
        self.partition_retries += 1
        timer = self.sim.timeout(self.partition_rto)
        timer.callbacks.append(
            lambda _e: self._arrive(env, src_nid, dst_addr, done)
        )

    def _on_heal(self, tag: str) -> None:
        """Flush envelopes parked at the (now healed) cut, in order."""
        if not self._stalled:
            return
        stalled, self._stalled = self._stalled, []
        self.partition_flushed += len(stalled)
        for env, src_nid, dst_addr, done in stalled:
            self._arrive(env, src_nid, dst_addr, done)
