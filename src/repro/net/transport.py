"""PSM-like low-latency transport.

Faithful to the property the paper highlights for QLogic's PSM: after
connection establishment, **communication calls do not report peer
failures**.  A send to a dead process completes locally and the bytes
vanish; failure awareness comes exclusively from the ibverbs-style
connection events consumed by the log-ring detector
(:mod:`repro.net.endpoint` + :mod:`repro.fmi.detector`).

Epoch hygiene (Section IV-D): every envelope carries the sender's
recovery epoch; delivery into a context with a newer epoch is silently
dropped, so stale pre-failure messages can never satisfy a
post-recovery receive.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.machine import Machine
from repro.cluster.node import Node
from repro.net.matching import make_engine
from repro.net.message import Envelope
from repro.simt.kernel import Event

__all__ = ["Transport", "NetContext"]

Address = Tuple[int, int]  # (node_id, serial)


class NetContext:
    """Per-process networking state: address, matching engine, epoch."""

    def __init__(self, transport: "Transport", node: Node, label: str = ""):
        # Serials are per-transport, not per-process: two simulations in
        # the same interpreter must assign identical addresses/labels or
        # the byte-identical-replay guarantee breaks.
        serial = transport._next_serial = transport._next_serial + 1
        self.transport = transport
        self.node = node
        self.addr: Address = (node.id, serial)
        self.label = label or f"ctx{serial}"
        self.matching = make_engine(transport.sim)
        #: current recovery epoch; bumped by the FMI runtime on recovery
        self.epoch = 0
        self.closed = False
        #: stale envelopes dropped by the epoch filter
        self.stale_dropped = 0

    @property
    def alive(self) -> bool:
        return not self.closed and self.node.alive

    def close(self) -> None:
        self.closed = True
        self.transport._registry.pop(self.addr, None)


class Transport:
    """Message movement between :class:`NetContext` instances."""

    def __init__(self, machine: Machine, sw_overhead: Optional[float] = None):
        self.machine = machine
        self.sim = machine.sim
        self.sw_overhead = (
            machine.spec.network.sw_overhead_fmi
            if sw_overhead is None
            else sw_overhead
        )
        self._registry: Dict[Address, NetContext] = {}
        self._next_serial = 0
        #: every context ever created (chaos invariant sweeps)
        self.contexts: List[NetContext] = []
        #: envelopes dropped because the destination was gone
        self.dropped_dead = 0
        #: envelopes dropped by the epoch filter
        self.dropped_stale = 0

    # -- registry ---------------------------------------------------------
    def create_context(self, node: Node, label: str = "") -> NetContext:
        ctx = NetContext(self, node, label)
        self._registry[ctx.addr] = ctx
        self.contexts.append(ctx)
        return ctx

    def lookup(self, addr: Address) -> Optional[NetContext]:
        ctx = self._registry.get(addr)
        if ctx is not None and ctx.alive:
            return ctx
        return None

    def context_at(self, addr: Address) -> Optional[NetContext]:
        """The registered context at ``addr`` regardless of liveness."""
        return self._registry.get(addr)

    # -- data plane ----------------------------------------------------------
    def send(self, src: NetContext, dst_addr: Address, env: Envelope) -> Event:
        """Send ``env`` from ``src`` to the context at ``dst_addr``.

        The returned event fires when the bytes have left/landed; it
        fires even if the destination died mid-flight (the sender
        cannot tell -- PSM semantics).  It only fails if the *sender's*
        node is down.
        """
        dst_node = self.machine.node(dst_addr[0])
        wire = self.machine.fabric.send(
            src.node, dst_node, env.nbytes, sw_overhead=self.sw_overhead
        )
        done = Event(self.sim)
        tracer = self.sim.tracer
        metrics = self.sim.metrics
        if not tracer.enabled and not metrics.enabled:
            # No-observability fast path: identical delivery semantics
            # and event ordering, but no outcome labels, no label-dict
            # construction, and no per-message metric lookups.
            registry = self._registry

            def on_arrival_fast(evt: Event) -> None:
                if not evt._ok:
                    if not done.triggered:
                        done.fail(evt._value)
                    return
                ctx = registry.get(dst_addr)
                if ctx is None or ctx.closed or not ctx.node.alive:
                    self.dropped_dead += 1
                elif env.epoch < ctx.epoch:
                    self.dropped_stale += 1
                    ctx.stale_dropped += 1
                else:
                    ctx.matching.deliver(env)
                if not done.triggered:
                    done.succeed(None)

            wire.callbacks.append(on_arrival_fast)
            return done
        if tracer.enabled:
            tracer.instant(
                "net.send", "net", rank=env.src, node=src.node.id,
                epoch=env.epoch, dst=env.dst, dst_node=dst_addr[0],
                nbytes=env.nbytes, tag=env.tag,
            )
        if metrics.enabled:
            metrics.counter("net.msgs_sent", node=src.node.id).inc()
            metrics.counter("net.bytes_sent", node=src.node.id).inc(env.nbytes)

        def on_arrival(evt: Event) -> None:
            if not evt._ok:
                if not done.triggered:
                    done.fail(evt._value)
                return
            ctx = self.lookup(dst_addr)
            if ctx is None:
                self.dropped_dead += 1
                outcome = "net.drop_dead"
            elif env.epoch < ctx.epoch:
                self.dropped_stale += 1
                ctx.stale_dropped += 1
                outcome = "net.drop_stale"
            else:
                ctx.matching.deliver(env)
                outcome = "net.recv"
            if tracer.enabled:
                # ctx_epoch lets post-hoc checkers re-verify the epoch
                # filter: a net.recv with env.epoch < ctx_epoch would be
                # a stale delivery.
                extra = {} if ctx is None else {"ctx_epoch": ctx.epoch}
                tracer.instant(
                    outcome, "net", rank=env.dst, node=dst_addr[0],
                    epoch=env.epoch, src=env.src, nbytes=env.nbytes,
                    tag=env.tag, **extra,
                )
            if metrics.enabled:
                metrics.counter(outcome, node=dst_addr[0]).inc()
            if not done.triggered:
                done.succeed(None)

        wire.callbacks.append(on_arrival)
        return done
