"""repro -- a reproduction of "FMI: Fault Tolerant Messaging Interface
for Fast and Transparent Recovery" (Sato et al., IPDPS 2014).

A survivable MPI-like runtime on a calibrated, deterministic
discrete-event-simulated HPC cluster.  Layer map (bottom up):

==================  ==================================================
``repro.simt``      discrete-event kernel: generator processes,
                    interrupts/kills, fair-share bandwidth resources
``repro.cluster``   the machine: nodes, fabric, tmpfs/PFS, resource
                    manager, failure injection
``repro.net``       PSM-like transport, MPI-style matching,
                    ibverbs-like connections, overlays, PMGR bootstrap
``repro.mpi``       the fail-stop MPI baseline + SCR checkpointing
``repro.fmi``       the paper's contribution: the survivable runtime
``repro.models``    the paper's analytic models (C/R cost, Vaidya,
                    availability, multilevel efficiency)
``repro.apps``      ping-pong, Himeno, conjugate gradient, synthetic
``repro.analysis``  tables and post-run reports
==================  ==================================================

Start with :class:`repro.fmi.FmiJob` (see the README quickstart) or the
scripts under ``examples/``.
"""

__version__ = "1.0.0"
