"""Post-run trace reports: the quantities the paper plots.

Given a trace (a :class:`~repro.obs.tracer.Tracer`, a list of events,
or a JSONL file via the CLI), this module computes:

* **failure-notification distributions** -- per recovery generation,
  how many survivors heard, over how many log-ring hops, and how long
  after the failure (Figures 8 & 13);
* **checkpoint/restore phase distributions** -- durations of the
  snapshot / ring-encode / parity / meta phases and whole checkpoints
  and restores (Figures 10-12);
* **state-machine dwell times** -- how long ranks spent in H1/H2/H3
  per incarnation, and per-epoch recovery windows (Figure 5).

Run it directly on an exported trace::

    PYTHONPATH=src python -m repro.obs.summary trace.jsonl
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.obs.tracer import TraceEvent, Tracer

__all__ = [
    "notification_summary",
    "checkpoint_summary",
    "recovery_summary",
    "state_dwell_times",
    "report",
    "main",
]

EventSource = Union[Tracer, Iterable[TraceEvent]]


def _events(source: EventSource) -> List[TraceEvent]:
    evs = source.events if isinstance(source, Tracer) else list(source)
    return list(evs)


def _dist(values: Sequence[float]) -> Dict[str, float]:
    """Summary statistics of a duration sample."""
    if not values:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "p50": 0.0}
    ordered = sorted(values)
    mid = ordered[max(0, min(len(ordered) - 1, int(round(0.5 * (len(ordered) - 1)))))]
    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "min": ordered[0],
        "max": ordered[-1],
        "p50": mid,
    }


# -------------------------------------------------------------- notification
def notification_summary(source: EventSource) -> Dict[int, Dict[str, Any]]:
    """Per-generation log-ring notification statistics.

    Keys are recovery generations (the epoch each failure leads to);
    each value reports the survivor count reached, the hop histogram
    ``{hop: ranks}``, the worst-case hop, and -- when the trace holds
    the failure event -- the time from failure to the last survivor's
    notification (Fig 13's y-axis).
    """
    events = _events(source)
    crash_times = [ev.ts for ev in events
                   if ev.cat == "failure" and ev.name == "node.crash"]
    if not crash_times:
        crash_times = [ev.ts for ev in events
                       if ev.cat == "failure" and ev.name == "failure.inject"]
    out: Dict[int, Dict[str, Any]] = {}
    for ev in events:
        if ev.cat != "overlay" or ev.name != "overlay.notified":
            continue
        gen = ev.epoch if ev.epoch is not None else 0
        entry = out.setdefault(gen, {"count": 0, "hops": {}, "times": []})
        entry["count"] += 1
        hop = int(ev.args.get("hop", 0))
        entry["hops"][hop] = entry["hops"].get(hop, 0) + 1
        entry["times"].append(ev.ts)
    for gen, entry in out.items():
        times = entry.pop("times")
        entry["first"] = min(times)
        entry["last"] = max(times)
        entry["max_hop"] = max(entry["hops"]) if entry["hops"] else 0
        # The failure that opened this generation: the newest failure
        # event at or before the first notification.
        origin = max((t for t in crash_times if t <= entry["first"]), default=None)
        entry["failure_at"] = origin
        entry["latency"] = None if origin is None else entry["last"] - origin
    return out


# ---------------------------------------------------------------- checkpoint
def checkpoint_summary(source: EventSource) -> Dict[str, Dict[str, float]]:
    """Duration distributions of every ``ckpt.*`` span, keyed by name.

    ``ckpt.checkpoint`` is directly comparable to the Section V-B model
    (Fig 10); ``ckpt.encode`` isolates the ring-pipelined XOR transfer;
    ``ckpt.restore`` matches the restart model (Fig 11).
    """
    by_name: Dict[str, List[float]] = {}
    for ev in _events(source):
        if ev.cat == "ckpt" and ev.ph == "X":
            by_name.setdefault(ev.name, []).append(ev.dur or 0.0)
    return {name: _dist(durs) for name, durs in sorted(by_name.items())}


# ------------------------------------------------------------------ recovery
def recovery_summary(source: EventSource) -> List[Dict[str, Any]]:
    """Per-epoch recovery windows (failure epoch bump -> all ranks back
    in H3), in trace order."""
    out = []
    for ev in _events(source):
        if ev.cat == "recovery" and ev.name == "recovery" and ev.ph == "X":
            out.append({
                "epoch": ev.epoch,
                "start": ev.ts,
                "duration": ev.dur,
                "cause": ev.args.get("cause", ""),
            })
    return out


def state_dwell_times(source: EventSource) -> Dict[str, Dict[str, float]]:
    """How long rank incarnations dwell in each state (H1, H2, H3).

    Computed from consecutive ``fmi.state`` instants of the same
    ``(rank, incarnation)``; the final state of each incarnation has no
    successor and is excluded.
    """
    per_proc: Dict[Any, List[TraceEvent]] = {}
    for ev in _events(source):
        if ev.cat == "state" and ev.name == "fmi.state":
            per_proc.setdefault((ev.rank, ev.incarnation), []).append(ev)
    dwell: Dict[str, List[float]] = {}
    for transitions in per_proc.values():
        transitions.sort(key=lambda e: e.ts)
        for cur, nxt in zip(transitions, transitions[1:]):
            state = str(cur.args.get("state", "?"))
            dwell.setdefault(state, []).append(nxt.ts - cur.ts)
    return {state: _dist(vals) for state, vals in sorted(dwell.items())}


# -------------------------------------------------------------------- report
def report(source: EventSource) -> str:
    """Human-readable multi-table report over a whole trace."""
    from repro.analysis.tables import Table

    events = _events(source)
    lines: List[str] = [f"trace: {len(events)} events"]

    notif = notification_summary(events)
    if notif:
        table = Table(
            "Failure notification (log-ring cascade)",
            ["gen", "survivors", "max hop", "hop histogram", "latency (s)"],
        )
        for gen in sorted(notif):
            entry = notif[gen]
            hops = " ".join(f"{h}:{c}" for h, c in sorted(entry["hops"].items()))
            latency = "-" if entry["latency"] is None else f"{entry['latency']:.4f}"
            table.add(gen, entry["count"], entry["max_hop"], hops, latency)
        lines.append(table.render())

    ckpt = checkpoint_summary(events)
    if ckpt:
        table = Table(
            "Checkpoint / restore phases",
            ["span", "count", "mean (s)", "min (s)", "max (s)"],
        )
        for name, dist in ckpt.items():
            table.add(name, dist["count"], round(dist["mean"], 4),
                      round(dist["min"], 4), round(dist["max"], 4))
        lines.append(table.render())

    recov = recovery_summary(events)
    if recov:
        table = Table(
            "Recovery windows (failure -> all ranks in H3)",
            ["epoch", "start (s)", "duration (s)", "cause"],
        )
        for entry in recov:
            table.add(entry["epoch"], round(entry["start"], 4),
                      round(entry["duration"], 4), entry["cause"])
        lines.append(table.render())

    dwell = state_dwell_times(events)
    if dwell:
        table = Table(
            "State dwell times per incarnation",
            ["state", "samples", "mean (s)", "min (s)", "max (s)"],
        )
        for state, dist in dwell.items():
            table.add(state, dist["count"], round(dist["mean"], 4),
                      round(dist["min"], 4), round(dist["max"], 4))
        lines.append(table.render())

    return "\n\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.summary <trace.jsonl>", file=sys.stderr)
        return 2
    from repro.obs.export import read_jsonl

    print(report(read_jsonl(argv[0])))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
