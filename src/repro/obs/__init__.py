"""repro.obs -- observability: structured tracing, metrics, exporters.

* :class:`~repro.obs.tracer.Tracer` records typed events (sim-time,
  rank, node, incarnation, epoch) from instrumentation hooks wired
  through the transport, overlay detector, FMI runtime, checkpoint
  engine and failure injectors.  Attach one to a simulator before
  launching a job::

      sim = Simulator()
      tracer = Tracer(sim)           # sim.tracer now records
      metrics = MetricsRegistry(sim) # sim.metrics now records

* :class:`~repro.obs.metrics.MetricsRegistry` holds labelled counters,
  gauges and histograms updated by the same hooks.
* :mod:`~repro.obs.export` writes deterministic JSONL (byte-identical
  across replays of a seeded scenario) and Chrome ``trace_event`` JSON.
* :mod:`~repro.obs.summary` turns a trace into the paper's quantities:
  notification-hop distributions, checkpoint-phase times, recovery
  windows.  Also a CLI: ``python -m repro.obs.summary trace.jsonl``.

When nothing is attached, every hook hits the shared no-op
:data:`~repro.obs.tracer.NULL_TRACER` /
:data:`~repro.obs.metrics.NULL_METRICS`, keeping the un-instrumented
fast path within noise of the un-instrumented build.

(`summary` is imported lazily -- ``from repro.obs import summary`` --
because this package sits below the simulation kernel in the import
graph.)
"""

from repro.obs.export import (
    dumps_jsonl,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, TraceEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "dumps_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
