"""Structured tracing for the simulated runtime.

A :class:`Tracer` attaches to a :class:`~repro.simt.kernel.Simulator`
and records typed :class:`TraceEvent` records stamped with sim-time,
rank, node, incarnation and recovery epoch.  Instrumentation sites
throughout the stack (transport, overlay detector, FMI runtime,
checkpoint engine, failure injectors) emit events through
``sim.tracer``; by default that is :data:`NULL_TRACER`, whose methods
are no-ops, and every hot call site additionally guards on
``tracer.enabled`` so a disabled simulation pays only an attribute
lookup and a branch.

Two event shapes cover everything the paper measures:

* **instant** (``ph="i"``) -- a point occurrence: a message delivered,
  a failure injected, a notification arriving, a state transition.
* **complete** (``ph="X"``) -- a span with a duration: a checkpoint
  phase, a restore, a recovery window.  The instrumented code records
  the start time itself and calls :meth:`Tracer.complete` at the end,
  so no begin/end matching is ever needed.

Events serialise deterministically (see :mod:`repro.obs.export`):
replaying the same seeded scenario produces byte-identical traces.

This module imports nothing from the rest of ``repro`` -- the kernel
imports it, so it must stay at the bottom of the dependency graph.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "Tracer", "NullTracer", "NULL_TRACER"]

#: Instant and complete phase markers (Chrome trace_event vocabulary).
PH_INSTANT = "i"
PH_COMPLETE = "X"

#: Event categories used by the built-in instrumentation.
CAT_NET = "net"
CAT_OVERLAY = "overlay"
CAT_CKPT = "ckpt"
CAT_STATE = "state"
CAT_FAILURE = "failure"
CAT_RECOVERY = "recovery"


class TraceEvent:
    """One typed trace record.

    ``ts`` (and for spans ``dur``) are simulated seconds.  ``rank``,
    ``node``, ``incarnation`` and ``epoch`` are optional identity
    labels; anything else lives in the ``args`` dict.
    """

    __slots__ = ("name", "cat", "ph", "ts", "dur", "rank", "node",
                 "incarnation", "epoch", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        ph: str,
        ts: float,
        dur: Optional[float] = None,
        rank: Optional[int] = None,
        node: Optional[int] = None,
        incarnation: Optional[int] = None,
        epoch: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts
        self.dur = dur
        self.rank = rank
        self.node = node
        self.incarnation = incarnation
        self.epoch = epoch
        self.args = args or {}

    @property
    def end(self) -> float:
        """End time of a span (== ``ts`` for instants)."""
        return self.ts + (self.dur or 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = f" dur={self.dur:.6g}" if self.dur is not None else ""
        who = f" r{self.rank}" if self.rank is not None else ""
        return f"<TraceEvent {self.cat}/{self.name} t={self.ts:.6g}{span}{who}>"


class Tracer:
    """Event recorder bound to one simulator.

    Constructing a tracer with a simulator attaches it (``sim.tracer``
    becomes this object); pass ``attach=False`` to keep the simulator's
    existing tracer.  ``enabled`` can be flipped at any time -- call
    sites check it before building event arguments.
    """

    enabled: bool

    def __init__(self, sim, enabled: bool = True, attach: bool = True):
        self.sim = sim
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        #: live subscribers invoked on every recorded event (the chaos
        #: engine's event triggers).  Listeners must not advance the
        #: simulation or kill processes synchronously -- the event may
        #: have been emitted from inside the frame they would destroy;
        #: defer side effects through a zero-delay timeout.
        self._listeners: List[Any] = []
        if attach:
            sim.tracer = self

    # -- live subscription ----------------------------------------------------
    def add_listener(self, callback) -> None:
        """Subscribe ``callback(event)`` to every recorded event."""
        self._listeners.append(callback)

    def remove_listener(self, callback) -> None:
        if callback in self._listeners:
            self._listeners.remove(callback)

    def _notify(self, ev: TraceEvent) -> None:
        for cb in tuple(self._listeners):
            cb(ev)

    # -- recording -----------------------------------------------------------
    def instant(
        self,
        name: str,
        cat: str,
        rank: Optional[int] = None,
        node: Optional[int] = None,
        incarnation: Optional[int] = None,
        epoch: Optional[int] = None,
        **args: Any,
    ) -> None:
        """Record a point event at the current sim time."""
        if not self.enabled:
            return
        ev = TraceEvent(
            name, cat, PH_INSTANT, self.sim.now,
            rank=rank, node=node, incarnation=incarnation, epoch=epoch,
            args=args,
        )
        self.events.append(ev)
        if self._listeners:
            self._notify(ev)

    def complete(
        self,
        name: str,
        cat: str,
        start: float,
        rank: Optional[int] = None,
        node: Optional[int] = None,
        incarnation: Optional[int] = None,
        epoch: Optional[int] = None,
        **args: Any,
    ) -> None:
        """Record a span from ``start`` to the current sim time."""
        if not self.enabled:
            return
        now = self.sim.now
        ev = TraceEvent(
            name, cat, PH_COMPLETE, start, dur=now - start,
            rank=rank, node=node, incarnation=incarnation, epoch=epoch,
            args=args,
        )
        self.events.append(ev)
        if self._listeners:
            self._notify(ev)

    # -- querying ------------------------------------------------------------
    def select(self, cat: Optional[str] = None, name: Optional[str] = None) -> Iterator[TraceEvent]:
        """Iterate events, optionally filtered by category and/or name."""
        for ev in self.events:
            if cat is not None and ev.cat != cat:
                continue
            if name is not None and ev.name != name:
                continue
            yield ev

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class NullTracer:
    """The default tracer: records nothing, costs (almost) nothing.

    ``enabled`` is ``False`` so guarded call sites skip argument
    construction entirely; unguarded sites hit a no-op method.
    """

    enabled = False
    events: List[TraceEvent] = []

    def instant(self, *_a: Any, **_k: Any) -> None:
        pass

    def complete(self, *_a: Any, **_k: Any) -> None:
        pass

    def select(self, *_a: Any, **_k: Any) -> Iterator[TraceEvent]:
        return iter(())

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: Shared no-op tracer every fresh :class:`Simulator` starts with.
NULL_TRACER = NullTracer()
