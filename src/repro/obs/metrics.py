"""Counters, gauges and histograms with per-rank / per-node labels.

A :class:`MetricsRegistry` attaches to a simulator (``sim.metrics``)
the same way the tracer does.  Instrumentation sites ask the registry
for a metric by name + labels and update it:

    sim.metrics.counter("net.msgs", node=3).inc()
    sim.metrics.histogram("ckpt.encode_s").observe(dt)

Metrics are get-or-create: the first call with a given (name, labels)
pair creates the instrument, later calls return the same object.  When
the registry is disabled (the default :data:`NULL_METRICS`), every
accessor returns a shared no-op instrument, so un-instrumented runs
pay one branch per update site.

Like the tracer, this module imports nothing from the rest of
``repro``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
]

LabelSet = Tuple[Tuple[str, Any], ...]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """All observed values, with summary statistics on demand.

    Simulated experiments are small enough that keeping the raw values
    beats pre-bucketing: summaries can compute exact percentiles, and
    the paper-figure reports need full distributions anyway.
    """

    __slots__ = ("values",)
    kind = "histogram"

    def __init__(self) -> None:
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile (nearest-rank), ``q`` in [0, 100]."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        idx = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[idx]

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class _NullInstrument:
    """Accepts updates and drops them (disabled-registry path)."""

    __slots__ = ()
    kind = "null"
    value = 0.0
    values: List[float] = []
    count = 0
    total = 0.0
    mean = 0.0
    min = 0.0
    max = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Labelled metric store for one simulation."""

    enabled: bool

    def __init__(self, sim=None, enabled: bool = True, attach: bool = True):
        self.enabled = enabled
        self._metrics: Dict[Tuple[str, str, LabelSet], Any] = {}
        if sim is not None and attach:
            sim.metrics = self

    # -- access ------------------------------------------------------------
    @staticmethod
    def _key(kind: str, name: str, labels: Dict[str, Any]) -> Tuple[str, str, LabelSet]:
        return kind, name, tuple(sorted(labels.items()))

    def _get(self, cls, name: str, labels: Dict[str, Any]):
        if not self.enabled:
            return _NULL_INSTRUMENT
        key = self._key(cls.kind, name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls()
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- aggregation -------------------------------------------------------
    def merged_histogram(self, name: str) -> Histogram:
        """One histogram combining every label set of ``name``."""
        merged = Histogram()
        for (kind, n, _labels), metric in self._metrics.items():
            if kind == "histogram" and n == name:
                merged.values.extend(metric.values)
        return merged

    def sum_counters(self, name: str) -> float:
        """Total of every label set of counter ``name``."""
        return sum(
            metric.value
            for (kind, n, _labels), metric in self._metrics.items()
            if kind == "counter" and n == name
        )

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic flat dump: ``kind:name{k=v,...} -> snapshot``."""
        out: Dict[str, Any] = {}
        for (kind, name, labels) in sorted(self._metrics, key=repr):
            label_txt = ",".join(f"{k}={v}" for k, v in labels)
            out[f"{kind}:{name}{{{label_txt}}}"] = self._metrics[
                (kind, name, labels)
            ].snapshot()
        return out


class NullMetricsRegistry(MetricsRegistry):
    """The default registry: permanently disabled."""

    def __init__(self) -> None:
        super().__init__(sim=None, enabled=False, attach=False)


#: Shared no-op registry every fresh :class:`Simulator` starts with.
NULL_METRICS = NullMetricsRegistry()
