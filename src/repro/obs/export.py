"""Trace exporters: deterministic JSONL and Chrome ``trace_event``.

The JSONL form is the canonical one -- one event per line, fixed key
order, compact separators, no wall-clock anywhere -- so two runs of
the same seeded scenario produce **byte-identical** files (the
deterministic-replay tests rely on this).  The Chrome form
(``chrome://tracing`` / Perfetto) maps sim-seconds to microseconds,
nodes to ``pid`` and ranks to ``tid`` for visual inspection.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Union

from repro.obs.tracer import PH_COMPLETE, TraceEvent, Tracer

__all__ = [
    "event_to_dict",
    "event_from_dict",
    "dumps_jsonl",
    "write_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
]

EventSource = Union[Tracer, Iterable[TraceEvent]]

#: Serialised field order (stable across runs and Python versions).
_FIELDS = ("ts", "dur", "ph", "cat", "name", "rank", "node", "incarnation", "epoch")


def _events(source: EventSource) -> Iterable[TraceEvent]:
    return source.events if isinstance(source, Tracer) else source


def event_to_dict(ev: TraceEvent) -> Dict[str, Any]:
    """Plain dict with deterministic key order; ``None`` fields omitted."""
    out: Dict[str, Any] = {}
    for field in _FIELDS:
        value = getattr(ev, field)
        if value is not None:
            out[field] = value
    if ev.args:
        out["args"] = {k: ev.args[k] for k in sorted(ev.args)}
    return out


def event_from_dict(d: Dict[str, Any]) -> TraceEvent:
    return TraceEvent(
        d["name"], d["cat"], d["ph"], d["ts"],
        dur=d.get("dur"), rank=d.get("rank"), node=d.get("node"),
        incarnation=d.get("incarnation"), epoch=d.get("epoch"),
        args=d.get("args") or {},
    )


def _dump_line(ev: TraceEvent) -> str:
    return json.dumps(event_to_dict(ev), separators=(",", ":"), sort_keys=False)


def dumps_jsonl(source: EventSource) -> str:
    """The whole trace as one JSONL string (deterministic)."""
    return "".join(_dump_line(ev) + "\n" for ev in _events(source))


def write_jsonl(source: EventSource, path_or_file: Union[str, IO[str]]) -> int:
    """Write the trace as JSON Lines; returns the event count."""
    events = list(_events(source))
    if hasattr(path_or_file, "write"):
        path_or_file.write(dumps_jsonl(events))  # type: ignore[union-attr]
    else:
        with open(path_or_file, "w") as fh:  # type: ignore[arg-type]
            fh.write(dumps_jsonl(events))
    return len(events)


def read_jsonl(path_or_file: Union[str, IO[str]]) -> List[TraceEvent]:
    """Load a JSONL trace back into :class:`TraceEvent` objects."""
    if hasattr(path_or_file, "read"):
        lines = path_or_file.read().splitlines()  # type: ignore[union-attr]
    else:
        with open(path_or_file) as fh:  # type: ignore[arg-type]
            lines = fh.read().splitlines()
    return [event_from_dict(json.loads(line)) for line in lines if line.strip()]


# ------------------------------------------------------------- Chrome format
def to_chrome_trace(source: EventSource) -> Dict[str, Any]:
    """Convert to the Chrome ``trace_event`` JSON object format.

    ``pid`` = node id, ``tid`` = rank, ``ts``/``dur`` in microseconds
    (the format's native unit).  Identity labels that have no Chrome
    field ride along in ``args``.
    """
    trace_events: List[Dict[str, Any]] = []
    for ev in _events(source):
        entry: Dict[str, Any] = {
            "name": ev.name,
            "cat": ev.cat,
            "ph": ev.ph,
            "ts": ev.ts * 1e6,
            "pid": ev.node if ev.node is not None else 0,
            "tid": ev.rank if ev.rank is not None else 0,
        }
        if ev.ph == PH_COMPLETE:
            entry["dur"] = (ev.dur or 0.0) * 1e6
        args = {k: ev.args[k] for k in sorted(ev.args)}
        if ev.incarnation is not None:
            args["incarnation"] = ev.incarnation
        if ev.epoch is not None:
            args["epoch"] = ev.epoch
        if args:
            entry["args"] = args
        trace_events.append(entry)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(source: EventSource, path: str) -> int:
    """Write a ``chrome://tracing``-loadable JSON file."""
    doc = to_chrome_trace(source)
    with open(path, "w") as fh:
        json.dump(doc, fh, separators=(",", ":"), sort_keys=False)
    return len(doc["traceEvents"])
