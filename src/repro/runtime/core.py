"""Job and rank-process lifecycle shared by the MPI and FMI stacks.

:class:`JobBase` is the blackboard both runtimes read and write: the
placement geometry, the rank -> transport-address table, the recovery
epoch, the per-rank results, and the single ``done`` event.  The
policy object attached at construction decides what happens when a
rank dies (see :mod:`repro.runtime.policy`).

:class:`RankProcess` wraps one rank's simulated process: it creates
the rank's network context, charges the spawn + exec-load boot
latency, runs the stack-specific body, and routes the process's exit
event to the job's fault policy.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.cluster.machine import Machine
from repro.cluster.node import Node
from repro.net.transport import NetContext, Transport
from repro.simt.kernel import Event

__all__ = ["JobAborted", "JobBase", "RankProcess"]


class JobAborted(RuntimeError):
    """The fail-stop tear-down: some rank died, so every rank died."""

    def __init__(self, cause: Any):
        super().__init__(f"MPI job aborted: {cause}")
        self.cause = cause


class RankProcess:
    """One rank's runtime process (one incarnation).

    Subclasses override :meth:`_body` (what runs after boot) and, when
    a rank can outlive its first process (FMI), :meth:`_main` itself.
    """

    def __init__(self, job: "JobBase", rank: int, node: Node, incarnation: int = 0):
        self.job = job
        self.rank = rank
        self.node = node
        self.incarnation = incarnation
        self.sim = job.sim
        self.ctx: NetContext = job.transport.create_context(node, self._ctx_label())
        self.proc = node.spawn(self._main(), name=self._proc_name())
        self.proc.callbacks.append(self._dispatch_exit)

    # -- naming hooks -------------------------------------------------------
    def _ctx_label(self) -> str:
        return f"{self.job.name}:r{self.rank}"

    def _proc_name(self) -> str:
        return f"{self.job.name}:rank{self.rank}"

    # -- liveness -----------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.proc.alive and self.node.alive

    def kill(self, cause: str) -> None:
        if self.proc.alive:
            self.proc.kill(cause=cause)

    # -- failure notification (survivable stacks override) -------------------
    #: highest recovery generation this process has been told about
    notified_gen = -1

    @property
    def needs_resync(self) -> bool:
        """True when this process cannot hear failures through the
        normal detection overlay and needs a direct poke (FMI's
        processes in H1/H2)."""
        return False

    def notify_failure(self, generation: int, reason: str = "") -> None:
        """Deliver a failure notification.  Fail-stop ranks never
        receive one (the job dies first)."""

    # -- lifecycle ----------------------------------------------------------
    def _boot(self):
        """fork/exec + loading the executable (once per process)."""
        spec = self.job.machine.spec
        yield self.sim.timeout(spec.proc_spawn_latency + spec.exec_load_latency)

    def _main(self):
        yield from self._boot()
        result = yield from self._body()
        return result

    def _body(self):
        raise NotImplementedError

    def _dispatch_exit(self, proc_evt: Event) -> None:
        self.job.policy.on_rank_exit(self, proc_evt)


class JobBase:
    """One launch of a parallel application on the simulated machine.

    Owns everything the two stacks used to duplicate: validation,
    transport creation, the context table, result collection, the
    completion event, and abort/teardown.  Allocation and placement
    are delegated to the attached :class:`~repro.runtime.policy
    .FaultPolicy` (eager whole-job allocation for fail-stop, spare-
    backed slot allocation for survivable).
    """

    def __init__(
        self,
        machine: Machine,
        app: Callable[..., Any],
        num_ranks: int,
        procs_per_node: int,
        policy,
        name: str,
        sw_overhead: Optional[float] = None,
        alloc=None,
        job_id: Optional[str] = None,
    ):
        if num_ranks < 1 or procs_per_node < 1:
            raise ValueError("num_ranks and procs_per_node must be >= 1")
        if num_ranks % procs_per_node != 0:
            raise ValueError("num_ranks must be a multiple of procs_per_node")
        self.machine = machine
        self.sim = machine.sim
        self.app = app
        self.num_ranks = num_ranks
        self.ppn = procs_per_node
        self.num_nodes = num_ranks // procs_per_node
        self.name = name
        #: externally owned allocation (service mode: the scheduler
        #: grants nodes and hands the job a ready allocation); None =
        #: the policy allocates for itself at bind/start
        self.alloc = alloc
        #: tenant label on every metric/trace record this job emits
        self.job_id = job_id if job_id is not None else name
        self.transport = Transport(machine, sw_overhead=sw_overhead)

        # -- shared runtime state --
        self.epoch = 0
        self.rank_procs: Dict[int, RankProcess] = {}
        self.addr_table: Dict[int, Tuple[int, int]] = {}
        self.finished_ranks: Set[int] = set()
        self.results: Dict[int, Any] = {}
        self.done: Event = self.sim.event()
        # Jobs come and go on a long-lived machine: drop the machine-
        # level subscriptions (transport heal hook, and whatever
        # subclasses add via _detach) once the job is over, so a stream
        # of tenants does not accumulate dead listeners.
        self.done.callbacks.append(lambda _e: self._detach())
        self.launched_at: Optional[float] = None
        #: simulated time init (MPI_Init / FMI's first H2 exit) completed
        self.init_done_at: Optional[float] = None
        #: (time, cause) per recovery epoch (empty for fail-stop jobs)
        self.recovery_causes: List[Tuple[float, str]] = []

        # Bind last: the policy may allocate nodes (fail-stop does so
        # eagerly, matching srun's behaviour) and attach teardown hooks
        # to ``done``.
        self.policy = policy
        policy.bind(self)

    # -- geometry -----------------------------------------------------------
    def ranks_of_slot(self, slot: int) -> List[int]:
        return list(range(slot * self.ppn, (slot + 1) * self.ppn))

    def slot_of_rank(self, rank: int) -> int:
        return rank // self.ppn

    def node_of_rank(self, rank: int) -> Node:
        return self.policy.node_of_rank(rank)

    # -- context table ------------------------------------------------------
    def register_endpoint(self, rank: int, ctx: NetContext) -> None:
        """Publish a rank's current transport address (for FMI this is
        the per-epoch endpoint update of Figure 8).

        A replacement incarnation supersedes the dead incarnation's
        context; close it so in-flight traffic to the stale address is
        dropped by the transport instead of parking forever in a
        matching engine nobody will ever read.
        """
        old_addr = self.addr_table.get(rank)
        if old_addr is not None and old_addr != ctx.addr:
            old_ctx = self.transport.context_at(old_addr)
            if old_ctx is not None and old_ctx is not ctx:
                old_ctx.close()
        self.addr_table[rank] = ctx.addr

    # -- rank-process factory (stack-specific) -------------------------------
    def make_rank_process(self, rank: int, node: Node, **kwargs) -> RankProcess:
        raise NotImplementedError

    def adopt_rank_process(self, rproc: RankProcess) -> None:
        """Record a freshly spawned rank process.  The default maps the
        rank straight to the process; replicated jobs override this to
        route through the plane (only the lead copy owns the entry)."""
        self.rank_procs[rproc.rank] = rproc

    # -- launch -------------------------------------------------------------
    def launch(self) -> Event:
        """Start the job; returns the job-completion event (value: the
        list of per-rank app return values)."""
        if self.launched_at is not None:
            raise RuntimeError("job already launched")
        self.launched_at = self.sim.now
        self.policy.start()
        return self.done

    # -- completion & abort --------------------------------------------------
    def rank_finished(self, rank: int, result: Any) -> None:
        if self.done.triggered:
            return
        self.finished_ranks.add(rank)
        self.results[rank] = result
        self._on_rank_finished(rank)
        if len(self.finished_ranks) == self.num_ranks:
            self.policy.shutdown()
            self.done.succeed([self.results[r] for r in range(self.num_ranks)])

    def _on_rank_finished(self, rank: int) -> None:
        """Hook for per-rank completion bookkeeping (FMI deregisters
        the rank from the failure detector here)."""

    def process_lost(self, rproc: RankProcess, exc: BaseException) -> None:
        """A rank process was killed (injected failure / node crash)
        under a survivable policy.  Recovery is driven by the policy's
        node monitoring; nothing to do here beyond bookkeeping."""

    def abort(self, cause: Any) -> None:
        if self.done.triggered:
            return
        for rproc in list(self.rank_procs.values()):
            rproc.kill(cause="job-abort")
        self.policy.shutdown()
        self.done.fail(self.policy.wrap_abort(cause))

    def _detach(self) -> None:
        """Unhook this job's machine-level listeners (job teardown).
        Subclasses extend this with their own subscriptions (FMI's
        failure detector and connection manager)."""
        self.transport.detach()

    # -- observability -------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.done.triggered
