"""The fault-policy seam: what happens when a rank dies.

:class:`FailStop` is MPI's contract -- any rank death tears the whole
job down and the job event fails with
:class:`~repro.runtime.core.JobAborted`.  :class:`Survivable` is the
machinery behind FMI's fmirun master (Figure 6): pre-reserved spares,
per-node task monitoring, the recovery-epoch bump, replacement-node
acquisition, and graceful drain.  Both operate purely through the
:class:`~repro.runtime.core.JobBase` blackboard, so a new strategy
(process replication, partial restart...) is one subclass.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.node import Node
from repro.net.pmgr import PmgrRendezvous
from repro.runtime.core import JobAborted, JobBase, RankProcess
from repro.simt.kernel import Event
from repro.simt.process import ProcessKilled

__all__ = [
    "FaultPolicy", "FailStop", "Survivable",
    "RecoveryStrategy", "GlobalRollback", "PartialRollback",
    "ReplicatedFailover",
]


class RecoveryStrategy:
    """How a :class:`Survivable` job gets its ranks computing again.

    Orthogonal to the :class:`~repro.fmi.redundancy.RedundancyScheme`
    (what state survives) and to detection (who hears about a death):
    this seam decides *which* ranks roll back and how the restarted
    ones are re-admitted.  Selected per job via
    ``FmiConfig(recovery=...)``.
    """

    #: config name this strategy answers to
    name = "global"
    #: whether a failure notification unwinds *every* rank to H1 (the
    #: global rollback) or only the ranks that actually restarted
    unwind_survivors = True
    #: scope of the H1/H2 re-admission rendezvous: "world" gathers all
    #: unfinished ranks; "slot" gathers only the restarted slot's
    rendezvous_scope = "world"

    def absorb_notification(self, rproc, generation: int) -> bool:
        """True if ``rproc`` should record this failure notification
        without acting on it (no unwind to H1)."""
        return False

    def try_failover(self, policy: "Survivable", cause: str) -> bool:
        """Attempt to recover without any rollback at all (promote a
        live replica in place).  Returns True when the failure was
        absorbed by failover -- the policy then skips the rank
        notifications and the safety sweep entirely; survivors never
        learn a failure happened.  Rollback-based strategies always
        return False."""
        return False


class GlobalRollback(RecoveryStrategy):
    """The paper's behaviour (and the default): every rank unwinds to
    H1, re-rendezvouses world-wide, and restores the last coordinated
    checkpoint."""


class PartialRollback(RecoveryStrategy):
    """Message-logging recovery (``recovery="logged"``): survivors keep
    computing; only the restarted slot re-bootstraps, restores via a
    sidecar group rebuild, and catches up from the sender-based logs in
    :class:`~repro.fmi.msglog.RecoveryPlane`."""

    name = "logged"
    unwind_survivors = False
    rendezvous_scope = "slot"

    def __init__(self, plane):
        self.plane = plane

    def absorb_notification(self, rproc, generation: int) -> bool:
        # Survivors absorb: their state is never rolled back, and the
        # lseq dedup (not the epoch filter) guards their channels.  A
        # rank caught *mid-restore* must unwind and retry, though: its
        # sidecar rebuild ensemble may include the newly dead node.
        return rproc.rank not in self.plane.recovering


class ReplicatedFailover(RecoveryStrategy):
    """Dual-modular redundancy (``recovery="replicated"``): every
    virtual rank is backed by ``replication_degree`` live processes.
    A copy's death is absorbed by promoting a surviving copy in place
    (:meth:`try_failover`); nobody rolls back, nobody even leaves H3.
    Only when *all* copies of some rank die inside the re-arm window
    does the plane fall back to an ordinary global C/R restore."""

    name = "replicated"
    unwind_survivors = False
    rendezvous_scope = "world"

    def __init__(self, plane):
        self.plane = plane

    def absorb_notification(self, rproc, generation: int) -> bool:
        # Failover epochs are invisible: every copy absorbs.  Only the
        # fallback epoch (some rank lost every copy) unwinds to H1.
        return generation != self.plane.fallback_epoch

    def try_failover(self, policy: "Survivable", cause: str) -> bool:
        return self.plane.try_failover(policy, cause)


#: shared default instance (stateless)
GLOBAL_ROLLBACK = GlobalRollback()


class FaultPolicy:
    """Strategy object owning allocation, placement, and rank-death
    handling for one :class:`~repro.runtime.core.JobBase`."""

    job: JobBase

    def bind(self, job: JobBase) -> None:
        """Attach to a job (called once, at the end of job __init__).
        May allocate nodes and hook teardown onto ``job.done``."""
        self.job = job

    def node_of_rank(self, rank: int) -> Node:
        raise NotImplementedError

    def start(self) -> None:
        """Create contexts and spawn every rank (job launch)."""
        raise NotImplementedError

    def on_rank_exit(self, rproc: RankProcess, proc_evt: Event) -> None:
        """A rank process exited (successfully or not)."""
        raise NotImplementedError

    def wrap_abort(self, cause) -> BaseException:
        """Turn an abort cause into the exception ``job.done`` fails with."""
        if isinstance(cause, BaseException):
            return cause
        return RuntimeError(str(cause))

    def shutdown(self) -> None:
        """Job teardown (completion or abort)."""


class FailStop(FaultPolicy):
    """MPI semantics: eager whole-job allocation, one launch, and any
    rank death kills every rank."""

    def __init__(self, nodes: Optional[List[Node]] = None, charge_init: bool = True):
        self.nodes = nodes
        self.charge_init = charge_init
        self.alloc = None
        # True only for the srun-style self-allocation: an externally
        # owned allocation (service mode) is never released on a failed
        # bind -- its owner decides.
        self._owns_alloc = False

    def bind(self, job: JobBase) -> None:
        super().bind(job)
        nodes = self.nodes
        if nodes is None and job.alloc is not None:
            # Service mode: the scheduler granted the allocation; the
            # job runs on it and releases it when done (the scheduler
            # watches the idle pool, not the allocation object).
            self.alloc = job.alloc
            nodes = self.alloc.nodes
        elif nodes is None:
            # srun-style: the allocation is grabbed when the job object
            # is created, released when the job event triggers.
            self.alloc = job.machine.rm.allocate(job.num_nodes)
            nodes = self.alloc.nodes
            self._owns_alloc = True
        if len(nodes) < job.num_nodes:
            # A failed bind must not keep holding nodes: release any
            # srun-style allocation before propagating the error.  An
            # externally owned allocation stays with its owner.
            if self._owns_alloc and self.alloc is not None:
                self.alloc.release()
                self.alloc = None
                self._owns_alloc = False
            raise ValueError("not enough nodes for the requested ranks")
        self.nodes = nodes[: job.num_nodes]
        job.nodes = self.nodes
        if self.alloc is not None:
            alloc = self.alloc  # bind the object: self.alloc may be reset
            job.done.callbacks.append(lambda _e: alloc.release())

    def node_of_rank(self, rank: int) -> Node:
        return self.nodes[self.job.slot_of_rank(rank)]

    def init_cost(self) -> float:
        spec = self.job.machine.spec
        return spec.mpi_init_time(self.job.num_ranks) if self.charge_init else 0.0

    def start(self) -> None:
        job = self.job
        for rank in range(job.num_ranks):
            node = self.node_of_rank(rank)
            if not node.alive:
                job.abort(f"launch onto dead node {node.id}")
                return
        rendezvous = PmgrRendezvous(job.sim, job.num_ranks, cost=self.init_cost())
        for rank in range(job.num_ranks):
            rproc = job.make_rank_process(
                rank, self.node_of_rank(rank), rendezvous=rendezvous
            )
            job.rank_procs[rank] = rproc
            job.register_endpoint(rank, rproc.ctx)

    def on_rank_exit(self, rproc: RankProcess, proc_evt: Event) -> None:
        if proc_evt._ok:
            self.job.rank_finished(rproc.rank, proc_evt._value)
        else:
            self.job.abort(proc_evt._value)

    def wrap_abort(self, cause) -> BaseException:
        if isinstance(cause, JobAborted):
            return cause
        return JobAborted(cause)


class Survivable(FaultPolicy):
    """In-place recovery: spare-backed slots, per-node tasks, and the
    recovery-epoch machine.

    Subclasses provide the per-node task object (:meth:`make_task`,
    FMI's ``fmirun.task``) and the policy knobs below; everything else
    -- slot bookkeeping, epoch bumps with same-instant coalescing,
    replacement acquisition (spares first, then the resource manager),
    the re-sync of ranks that cannot hear the detection overlay, the
    safety sweep, and graceful drain -- is shared machinery.
    """

    #: pre-reserved spare nodes requested with the allocation
    num_spares: int = 0
    #: give up after this many recoveries; None = unlimited
    max_recoveries: Optional[int] = None
    #: seconds to wait for a replacement node; None = wait forever
    replacement_timeout: Optional[float] = None
    #: exception type raised on policy-level aborts
    abort_error = RuntimeError

    def bind(self, job: JobBase) -> None:
        super().bind(job)
        self.sim = job.sim
        self.machine = job.machine
        self.alloc = None
        self.node_slots: List[Node] = []
        self.tasks: Dict[int, object] = {}
        self._last_bump_time: Optional[float] = None
        self._recovery_proc = None

    def node_of_rank(self, rank: int) -> Node:
        return self.node_slots[self.job.slot_of_rank(rank)]

    @property
    def recovery_strategy(self) -> RecoveryStrategy:
        """The job's recovery strategy (the seam the message-logging
        plane mounts on); :class:`GlobalRollback` unless the job says
        otherwise."""
        return getattr(self.job, "recovery_strategy", GLOBAL_ROLLBACK)

    # -- per-node task factory (stack-specific) ------------------------------
    def make_task(self, slot: int, node: Node):
        raise NotImplementedError

    # -- launch --------------------------------------------------------------
    def start(self) -> None:
        job = self.job
        need = job.num_nodes * self.num_copies
        if job.alloc is not None:
            # Service mode: run on the scheduler-granted allocation.
            if len(job.alloc.nodes) < need:
                raise ValueError(
                    f"allocation has {len(job.alloc.nodes)} compute nodes, "
                    f"job needs {need}"
                )
            self.alloc = job.alloc
        else:
            self.alloc = self.machine.rm.allocate(
                need, num_spares=self.num_spares
            )
        self.node_slots = list(self.alloc.nodes[:need])
        for slot, node in enumerate(self.node_slots):
            self._start_task(slot, node, incarnation=0)

    def _start_task(self, slot: int, node: Node, incarnation: int) -> None:
        task = self.make_task(slot, node)
        self.tasks[slot] = task
        task.spawn_ranks(
            self.job.ranks_of_slot(slot % self.job.num_nodes), incarnation
        )

    # -- rank death ----------------------------------------------------------
    def on_rank_exit(self, rproc: RankProcess, proc_evt: Event) -> None:
        if proc_evt._ok or rproc.rank in self.job.finished_ranks:
            return
        exc = proc_evt._value
        if isinstance(exc, ProcessKilled):
            # Injected failure / node crash: the survivable path.
            self.job.process_lost(rproc, exc)
        else:
            # Programming error or unrecoverable condition: abort.
            self.job.abort(exc)

    def on_task_failure(self, task, cause: str) -> None:
        if self.job.finished:
            return
        self.begin_recovery(f"task[{task.slot}]: {cause}")

    # -- recovery ------------------------------------------------------------
    def begin_recovery(self, cause: str) -> None:
        """Bump the recovery epoch (coalescing same-instant failures)
        and make sure the replacement machinery is running."""
        job = self.job
        if self._last_bump_time == self.sim.now:
            return
        self._last_bump_time = self.sim.now
        job.epoch += 1
        job.recovery_causes.append((self.sim.now, cause))
        failover = self.recovery_strategy.try_failover(self, cause)
        if not failover:
            # In-flight macro collective instances are dead timelines
            # now: every rank will unwind to H1 and replay the
            # collective sequence from the restored iteration, so the
            # coordinator's counters and pending completions must start
            # clean.  A failover keeps every survivor's timeline, so
            # the fidelity guard (not a reset) handles it.
            job.transport.macro_reset()
        if self.sim.tracer.enabled:
            self.sim.tracer.instant(
                "recovery.begin", "recovery", epoch=job.epoch, cause=cause,
                failover=failover, job=job.job_id,
            )
        if self.sim.metrics.enabled:
            self.sim.metrics.counter("fmi.recoveries", job=job.job_id).inc()
            self.sim.metrics.gauge("fmi.epoch", job=job.job_id).set(job.epoch)
        if self.max_recoveries is not None and job.epoch > self.max_recoveries:
            job.abort(self.abort_error(
                f"exceeded max_recoveries={self.max_recoveries}"
            ))
            return
        if not failover:
            # Processes already recovering from an earlier failure have
            # no detection overlay to hear through; the master re-syncs
            # them directly.  Running processes hear via the overlay
            # (log-ring).
            for rproc in self._notify_targets():
                if rproc.alive and rproc.needs_resync:
                    rproc.notify_failure(job.epoch, "fmirun re-sync")
        if self._recovery_proc is None or not self._recovery_proc.alive:
            self._recovery_proc = self.sim.spawn(
                self._recover(), name="fmirun.recover"
            )
        if not failover:
            # Safety sweep: anything still un-notified well after the
            # overlay should have reached it gets a direct poke.
            sweep = self.sim.timeout(1.0)
            target = job.epoch
            sweep.callbacks.append(lambda _e: self._sweep(target))

    def _notify_targets(self):
        """Processes a recovery must reach (replication widens this to
        every live copy, not just the current leads)."""
        return list(self.job.rank_procs.values())

    def _sweep(self, generation: int) -> None:
        job = self.job
        if job.finished or job.epoch != generation:
            return
        for rproc in self._notify_targets():
            if rproc.alive and rproc.notified_gen < generation:
                rproc.notify_failure(generation, "fmirun sweep")

    # -- slot geometry hooks (replication multiplies the slot space) ---------
    @property
    def num_copies(self) -> int:
        """Physical rank-processes per virtual rank; physical slot
        ``s`` hosts copy ``s // num_nodes`` of virtual slot
        ``s % num_nodes``."""
        return 1

    def _slot_procs(self, slot: int) -> List[RankProcess]:
        """The rank processes hosted on physical slot ``slot``."""
        return [self.job.rank_procs[r] for r in self.job.ranks_of_slot(slot)]

    def _reuse_healthy_node(self, slot: int) -> bool:
        """Whether a slot whose processes died on a still-healthy node
        may respawn onto that same node (replication's fallback kills
        un-synced standby *processes* without touching their nodes)."""
        return False

    def _recover(self):
        """Replace failed nodes and respawn their ranks (Figure 6)."""
        job = self.job
        spec = self.machine.spec
        while True:
            target_epoch = job.epoch
            for slot in range(job.num_nodes * self.num_copies):
                node = self.node_slots[slot]
                task = self.tasks.get(slot)
                procs = self._slot_procs(slot)
                if all(
                    p.alive or p.rank in job.finished_ranks
                    for p in procs
                ) and node.alive and task is not None and not task.failed:
                    continue
                # This slot needs a fresh node (spare list first, then
                # the resource manager).  Any node we acquire can be
                # killed while we wait -- the spare while idle in the
                # reserve pool, the granted node during the grant
                # latency, or either during the task-spawn window -- so
                # every acquisition is re-checked after each wait and
                # retried until a task starts on a *live* node.
                if task is not None and not task.failed:
                    # A broken slot whose guard never reported: this
                    # scan can land on a fresh failure before the
                    # guard's exit callback fires (shutting it down
                    # below would then suppress the report forever).
                    # Open the failure's epoch first so the recovery
                    # strategy classifies it before the respawn; a
                    # report already in flight at this instant
                    # coalesces in begin_recovery.
                    self.on_task_failure(task, "discovered during recovery")
                if task is not None:
                    task.shutdown()
                while True:
                    if node is not None and node.alive and self._reuse_healthy_node(slot):
                        new_node = node
                        node = None  # one reuse attempt only
                    else:
                        new_node = self.alloc.take_spare()
                    if new_node is None:
                        # On-demand tier: the allocation's grow() seam
                        # (shared spare pool first when the scheduler
                        # attached one, else a resource-manager grant).
                        request = self.alloc.grow()
                        deadline = self.replacement_timeout
                        if deadline is None:
                            new_node = yield request
                        else:
                            from repro.simt.primitives import AnyOf

                            idx, value = yield AnyOf(
                                self.sim, [request, self.sim.timeout(deadline)]
                            )
                            if idx == 1:
                                # Withdraw before aborting: a grant
                                # racing this deadline re-enters the
                                # pool instead of stranding.
                                request.cancel()
                                job.abort(self.abort_error(
                                    f"no replacement node granted within "
                                    f"{deadline}s (machine exhausted?)"
                                ))
                                return
                            new_node = value
                    if not new_node.alive:
                        continue  # died during the grant; ask again
                    self.node_slots[slot] = new_node
                    yield self.sim.timeout(spec.proc_spawn_latency)  # start the task
                    if new_node.alive:
                        break
                    # Killed in the spawn window: acquire another node.
                incarnation = max(p.incarnation for p in procs) + 1
                self._start_task(slot, new_node, incarnation)
            if job.epoch == target_epoch:
                return

    # -- dynamic leave (maintenance drain) ------------------------------------
    def drain_slot(self, slot: int) -> None:
        """Gracefully vacate a node ("compute nodes ... leave the job
        dynamically", Section III-A).

        The slot's ranks are migrated onto a replacement node through
        the ordinary recovery machinery -- one rollback to the last
        checkpoint, redundancy-group rebuild of the leaving ranks'
        state -- and the *healthy* node goes back to the resource
        manager's idle pool, immediately available to other jobs (or as
        this job's next replacement).
        """
        if self.job.finished:
            raise RuntimeError("cannot drain a finished job")
        task = self.tasks.get(slot)
        node = self.node_slots[slot]
        if task is None or task.failed or not node.alive:
            raise RuntimeError(f"slot {slot} is not drainable")
        for child in list(task.children):
            if child.proc.alive:
                child.proc.kill(cause=f"drain slot {slot}")
                break  # the sibling-kill path takes down the rest
        # The node is healthy; put it back in the pool once its guard
        # process is gone (the child-death path killed it synchronously).
        # It leaves through the allocation so release() won't reclaim it
        # a second time (that double entry could grant one node to two
        # tenants at once).
        self.alloc.return_node(node)

    # -- teardown ---------------------------------------------------------------
    def shutdown(self) -> None:
        for task in self.tasks.values():
            task.shutdown()
        if self.alloc is not None:
            self.alloc.release()
