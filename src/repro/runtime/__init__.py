"""repro.runtime -- the launch-stack core both MPI and FMI build on.

The paper's central contrast -- fail-stop MPI relaunch vs. FMI's
survivable in-place recovery (Figures 6 and 14) -- is a difference in
*fault policy*, not in launch mechanics.  Both stacks allocate nodes,
create per-rank network contexts, spawn rank processes (paying spawn +
exec-load latency), rendezvous, collect results, and tear down.  This
package owns that shared machinery:

* :class:`~repro.runtime.core.JobBase` -- allocation geometry, the
  rank -> address context table, result collection, abort/teardown.
* :class:`~repro.runtime.core.RankProcess` -- one rank's lifecycle:
  context creation, boot latency, exit-callback dispatch.
* :class:`~repro.runtime.policy.FaultPolicy` -- the seam.
  :class:`~repro.runtime.policy.FailStop` kills the whole job on any
  rank death (MPI semantics); :class:`~repro.runtime.policy.Survivable`
  replaces lost nodes in place (spare pool, recovery-epoch bump, the
  machinery behind FMI's fmirun master).

``repro.mpi.runtime`` and ``repro.fmi`` specialise these classes; new
fault-tolerance strategies are one policy subclass, not a third forked
stack.
"""

from repro.runtime.core import JobAborted, JobBase, RankProcess
from repro.runtime.policy import FailStop, FaultPolicy, Survivable

__all__ = [
    "FailStop",
    "FaultPolicy",
    "JobAborted",
    "JobBase",
    "RankProcess",
    "Survivable",
]
