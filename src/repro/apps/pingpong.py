"""Ping-pong microbenchmark (Table III).

Two ranks bounce a message back and forth; rank 0 reports the one-way
latency and the bandwidth.  The same application generator runs on both
the MPI and the FMI API -- "we compiled the same ping-pong source for
both MPI and FMI".
"""

from __future__ import annotations

import numpy as np

__all__ = ["pingpong_app"]


def pingpong_app(nbytes: float, iterations: int = 100, warmup: int = 10):
    """Build a 2-rank app; rank 0 returns ``(latency_s, bandwidth_Bps)``.

    ``latency`` is the half round-trip averaged over ``iterations``
    (after ``warmup`` untimed exchanges); ``bandwidth`` is
    ``nbytes / latency``.
    """
    if nbytes < 1:
        raise ValueError("nbytes must be >= 1")

    def app(api):
        if api.size < 2:
            raise ValueError("ping-pong needs at least 2 ranks")
        peer = 1 - api.rank
        if api.rank > 1:
            return None  # spectators
        payload = np.zeros(max(1, int(min(nbytes, 4096))), dtype=np.uint8)
        if api.rank == 0:
            for _ in range(warmup):
                yield api.send(peer, payload, nbytes=nbytes)
                yield from api.recv(peer)
            t0 = api.now
            for _ in range(iterations):
                yield api.send(peer, payload, nbytes=nbytes)
                yield from api.recv(peer)
            elapsed = api.now - t0
            latency = elapsed / (2 * iterations)
            return (latency, nbytes / latency)
        for _ in range(warmup + iterations):
            yield from api.recv(peer)
            yield api.send(peer, payload, nbytes=nbytes)
        return None

    return app
