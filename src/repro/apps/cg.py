"""Distributed conjugate gradient -- a second realistic workload.

Solves ``A x = b`` for a symmetric positive-definite matrix with the
classic CG recurrence, row-block distributed: each iteration is one
halo-free *allgather* matvec (every rank needs the full ``p`` vector)
plus two dot-product *allreduces* -- a communication pattern dominated
by collectives, complementing Himeno's halo-exchange pattern.

The FMI variant checkpoints the full solver state (``x, r, p`` and the
scalar recurrence) through ``FMI_Loop``; the iteration count lives in
the loop id.  Tests verify that a mid-solve node crash changes nothing
about the computed solution -- CG's sensitivity to any state
perturbation makes it a sharp rollback-correctness probe.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["make_spd_problem", "cg_fmi_app", "cg_mpi_app", "CG_FLOPS_PER_ROW"]

CG_FLOPS_PER_ROW = 2.0  # per matrix row entry: multiply + add


def make_spd_problem(n: int, seed: int = 0):
    """A dense SPD system (diagonally dominant) and its exact solution."""
    rng = np.random.default_rng(seed)
    m = rng.normal(size=(n, n))
    a = m @ m.T + n * np.eye(n)
    x_true = rng.normal(size=n)
    b = a @ x_true
    return a, b, x_true


def _my_rows(n: int, rank: int, size: int):
    if n % size != 0:
        raise ValueError("matrix size must divide evenly across ranks")
    rows = n // size
    return rank * rows, (rank + 1) * rows


def _cg_iteration(api, a_local, p_full, r, x_local, p_local, rz_old):
    """One CG step; returns updated (x, r, p, rz, residual_norm)."""
    lo_flops = a_local.size * CG_FLOPS_PER_ROW
    yield api.compute(lo_flops)
    ap_local = a_local @ p_full
    p_ap_local = float(p_local @ ap_local)
    p_ap = yield from api.allreduce(p_ap_local)
    alpha = rz_old / p_ap
    x_local = x_local + alpha * p_local
    r = r - alpha * ap_local
    rz_local = float(r @ r)
    rz_new = yield from api.allreduce(rz_local)
    beta = rz_new / rz_old
    p_local = r + beta * p_local
    return x_local, r, p_local, rz_new


def cg_fmi_app(n: int, iterations: int, seed: int = 0,
               extra_work_s: float = 0.0):
    """FMI flavour: solver state checkpointed each FMI_Loop call."""

    def app(fmi):
        a, b, _xt = make_spd_problem(n, seed)
        lo, hi = _my_rows(n, fmi.rank, fmi.size)
        a_local = a[lo:hi]
        # State vector: [x_local | r_local | p_local | rz]
        state = np.zeros(3 * (hi - lo) + 1, dtype=np.float64)
        rows = hi - lo
        state[rows:2 * rows] = b[lo:hi]          # r = b (x0 = 0)
        state[2 * rows:3 * rows] = b[lo:hi]      # p = r
        rz0 = float(b @ b)
        state[-1] = rz0

        yield from fmi.init()
        while True:
            k = yield from fmi.loop([state])
            if k >= iterations:
                break
            if extra_work_s:
                yield fmi.elapse(extra_work_s)
            x_local = state[:rows].copy()
            r = state[rows:2 * rows].copy()
            p_local = state[2 * rows:3 * rows].copy()
            rz = float(state[-1])
            p_full = np.concatenate(
                (yield from fmi.allgather(p_local, nbytes=p_local.nbytes))
            )
            x_local, r, p_local, rz = yield from _cg_iteration(
                fmi, a_local, p_full, r, x_local, p_local, rz
            )
            state[:rows] = x_local
            state[rows:2 * rows] = r
            state[2 * rows:3 * rows] = p_local
            state[-1] = rz
        yield from fmi.finalize()
        x_parts = yield from fmi.allgather(state[:rows].copy(),
                                           nbytes=state[:rows].nbytes)
        return np.concatenate(x_parts)

    return app


def cg_mpi_app(n: int, iterations: int, seed: int = 0):
    """Plain MPI flavour (reference answer)."""

    def app(mpi):
        a, b, _xt = make_spd_problem(n, seed)
        lo, hi = _my_rows(n, mpi.rank, mpi.size)
        rows = hi - lo
        a_local = a[lo:hi]
        x_local = np.zeros(rows)
        r = b[lo:hi].copy()
        p_local = r.copy()
        rz = float(b @ b)
        for _k in range(iterations):
            p_full = np.concatenate(
                (yield from mpi.allgather(p_local, nbytes=p_local.nbytes))
            )
            x_local, r, p_local, rz = yield from _cg_iteration(
                mpi, a_local, p_full, r, x_local, p_local, rz
            )
        yield from mpi.barrier()
        x_parts = yield from mpi.allgather(x_local, nbytes=x_local.nbytes)
        return np.concatenate(x_parts)

    return app
