"""Synthetic SPMD workloads.

Parametrised compute/communication mixes for tests and ablations that
need controllable behaviour rather than a real solver:

* :func:`bsp_app` -- bulk-synchronous iterations: compute, optional
  neighbour exchange, allreduce, checkpointable state vector.  The
  checkpointed state encodes the full iteration history, so any
  rollback bug corrupts a checkable invariant.
* :func:`imbalanced_app` -- per-rank compute skew (stragglers), for
  studying synchronisation costs.
* :func:`comm_storm_app` -- all-to-all pressure on the fabric.

All run unchanged on MPI (:class:`~repro.mpi.api.MpiApi`) and FMI
(:class:`~repro.fmi.api.FmiContext`); when the handle has ``loop`` the
FMI protocol is used, otherwise plain iteration.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["bsp_app", "imbalanced_app", "comm_storm_app", "expected_bsp_state"]


def expected_bsp_state(rank: int, size: int, iterations: int) -> np.ndarray:
    """The state vector a correct :func:`bsp_app` run must end with."""
    u = np.zeros(4, dtype=np.float64)
    for n in range(iterations):
        u[0] = n + 1.0
        u[1] = u[1] * 0.5 + rank + n
        u[2] = float(sum(range(size))) + size * n  # allreduce of rank+n
        u[3] = (rank - 1) % size + n  # left neighbour's payload
    return u


def bsp_app(iterations: int, work_s: float = 0.1, halo_bytes: float = 1e4):
    """Bulk-synchronous benchmark with a verifiable state recurrence."""

    def app(api):
        u = np.zeros(4, dtype=np.float64)
        is_fmi = hasattr(api, "loop")
        if is_fmi:
            yield from api.init()
        n = 0
        while n < iterations:
            if is_fmi:
                n = yield from api.loop([u])
                if n >= iterations:
                    break
            yield api.elapse(work_s)
            right = (api.rank + 1) % api.size
            left = (api.rank - 1) % api.size
            got = yield from api.sendrecv(right, float(api.rank + n),
                                          source=left, nbytes=halo_bytes)
            total = yield from api.allreduce(float(api.rank + n))
            u[0] = n + 1.0
            u[1] = u[1] * 0.5 + api.rank + n
            u[2] = total
            u[3] = got
            if not is_fmi:
                n += 1
        if is_fmi:
            yield from api.finalize()
        else:
            yield from api.barrier()
        return u

    return app


def imbalanced_app(iterations: int, base_work_s: float = 0.05,
                   skew: float = 2.0):
    """Rank r computes ``base * (1 + skew * r / (size-1))`` per step:
    the last rank is the straggler every barrier waits for."""

    def app(api):
        factor = 1.0 + (
            skew * api.rank / max(1, api.size - 1)
        )
        t0 = api.now
        for _n in range(iterations):
            yield api.elapse(base_work_s * factor)
            yield from api.barrier()
        return api.now - t0

    return app


def comm_storm_app(rounds: int, nbytes_per_peer: float = 1e5):
    """All-to-all exchanges back to back; returns fabric time/round."""

    def app(api):
        t0 = api.now
        for r in range(rounds):
            values = [(api.rank, r, dst) for dst in range(api.size)]
            got = yield from api.alltoall(values, nbytes=nbytes_per_peer)
            assert [g[0] for g in got] == list(range(api.size))
        return (api.now - t0) / rounds

    return app
