"""repro.apps -- applications and microbenchmarks used in the evaluation."""

from repro.apps.cg import cg_fmi_app, cg_mpi_app, make_spd_problem
from repro.apps.himeno import HimenoParams, himeno_fmi_app, himeno_mpi_app
from repro.apps.pingpong import pingpong_app
from repro.apps.synthetic import bsp_app, comm_storm_app, imbalanced_app

__all__ = [
    "HimenoParams",
    "bsp_app",
    "cg_fmi_app",
    "cg_mpi_app",
    "comm_storm_app",
    "himeno_fmi_app",
    "himeno_mpi_app",
    "imbalanced_app",
    "make_spd_problem",
    "pingpong_app",
]
