"""The Himeno benchmark: an iterative Poisson-equation solver.

"Himeno is a stencil application in which each grid point is
iteratively updated using only neighbor points ... Himeno uses
point-to-point communications and one Allreduce at the end of each
iteration."  (Section VI-B)

We implement a Jacobi-relaxed Poisson solve on a 3D grid, 1-D
decomposed along the slowest axis: per iteration each rank

1. exchanges boundary planes with its up/down neighbours (sendrecv),
2. applies the 7-point stencil (really, with numpy, in *real* mode),
3. allreduces the residual.

Two fidelity modes:

* ``real`` (default) -- a small grid is actually computed; tests verify
  the residual decreases and that recovery is bit-exact.
* ``synthetic`` -- the grid exists only as sizes (points per rank,
  halo-plane bytes, checkpoint bytes); compute time is charged from the
  paper-calibrated flops/point.  This scales to 1,536 ranks for the
  Fig 15 benchmark.

In both modes the simulated time charged per iteration is identical in
structure: flops/compute-rate + halo messages + allreduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.fmi.payload import Payload

__all__ = ["HimenoParams", "himeno_fmi_app", "himeno_mpi_app", "jacobi_step"]

#: flops per grid point per iteration (Himeno's kernel is ~34)
FLOPS_PER_POINT = 34.0
BYTES_PER_POINT = 8.0


@dataclass
class HimenoParams:
    """Problem geometry and execution mode."""

    #: iterations to run (FMI_Loop count)
    iterations: int = 10
    # -- real mode ------------------------------------------------------
    #: global grid (nz is decomposed across ranks); used when
    #: ``synthetic`` is False
    nx: int = 16
    ny: int = 16
    nz: int = 32
    # -- synthetic mode ----------------------------------------------------
    synthetic: bool = False
    #: grid points per rank (synthetic)
    points_per_rank: float = 8.55e6
    #: bytes of one halo plane (synthetic)
    halo_bytes: float = 333e3
    #: checkpoint bytes per rank (synthetic); Fig 15 uses 821 MB/node
    #: over 12 ranks = ~68.4 MB/rank
    ckpt_bytes: float = 68.4e6
    #: checkpoint every k-th iteration; None lets the FMI/SCR policy
    #: decide (MTBF auto-tuning)
    ckpt_interval: Optional[int] = None
    #: extra simulated seconds per iteration (lets small test grids
    #: occupy realistic wall time so failures can be injected mid-run)
    extra_work_s: float = 0.0

    def local_nz(self, size: int) -> int:
        if not self.synthetic and self.nz % size != 0:
            raise ValueError("nz must divide evenly across ranks")
        return self.nz // size

    def rank_points(self, size: int) -> float:
        if self.synthetic:
            return self.points_per_rank
        return float(self.nx * self.ny * self.local_nz(size))

    def rank_flops(self, size: int) -> float:
        return self.rank_points(size) * FLOPS_PER_POINT

    def plane_bytes(self, size: int) -> float:
        if self.synthetic:
            return self.halo_bytes
        return float(self.nx * self.ny * BYTES_PER_POINT)


def jacobi_step(u: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """One Jacobi sweep of the 7-point Poisson stencil on the interior
    of ``u`` (ghost planes at z=0 and z=-1).  Returns the new array."""
    new = u.copy()
    new[1:-1, 1:-1, 1:-1] = (
        u[:-2, 1:-1, 1:-1]
        + u[2:, 1:-1, 1:-1]
        + u[1:-1, :-2, 1:-1]
        + u[1:-1, 2:, 1:-1]
        + u[1:-1, 1:-1, :-2]
        + u[1:-1, 1:-1, 2:]
        - rhs[1:-1, 1:-1, 1:-1]
    ) / 6.0
    return new


def _halo_exchange(api, u, params, tag_up=101, tag_dn=102):
    """Exchange boundary planes with rank-1 (down) and rank+1 (up)."""
    rank, size = api.rank, api.size
    plane = params.plane_bytes(size)
    if params.synthetic:
        up_data = dn_data = None
    else:
        up_data = u[-2].copy()  # my top interior plane -> neighbour's ghost
        dn_data = u[1].copy()
    if size == 1:
        return
    # Send up / receive from below, then send down / receive from above.
    if rank + 1 < size and rank - 1 >= 0:
        got_dn = yield from api.sendrecv(rank + 1, up_data, source=rank - 1,
                                         nbytes=plane, tag=tag_up)
        got_up = yield from api.sendrecv(rank - 1, dn_data, source=rank + 1,
                                         nbytes=plane, tag=tag_dn)
        if not params.synthetic:
            u[0] = got_dn
            u[-1] = got_up
    elif rank + 1 < size:  # bottom rank
        yield api.send(rank + 1, up_data, nbytes=plane, tag=tag_up)
        got_up = yield from api.recv(rank + 1, tag=tag_dn)
        if not params.synthetic:
            u[-1] = got_up
    elif rank - 1 >= 0:  # top rank
        got_dn = yield from api.recv(rank - 1, tag=tag_up)
        yield api.send(rank - 1, dn_data, nbytes=plane, tag=tag_dn)
        if not params.synthetic:
            u[0] = got_dn


def _make_state(api, params):
    """Allocate this rank's field (+ checkpoint stand-in)."""
    size = api.size
    if params.synthetic:
        field = Payload.synthetic(params.ckpt_bytes, seed=api.rank, rep_bytes=64)
        rhs = None
    else:
        lz = params.local_nz(size)
        shape = (lz + 2, params.nx, params.ny)
        field = np.zeros(shape, dtype=np.float64)
        # Fixed unit source in the domain interior drives the solve.
        rng = np.random.default_rng(12345)
        rhs = rng.normal(scale=1e-3, size=shape)
    return field, rhs


def _iteration(api, params, field, rhs):
    """One Himeno iteration; returns (new_field, local residual)."""
    yield from _halo_exchange(api, field if not params.synthetic else None, params)
    yield api.compute(params.rank_flops(api.size))
    if params.extra_work_s > 0:
        yield api.elapse(params.extra_work_s)
    if params.synthetic:
        return field, 0.0
    new = jacobi_step(field, rhs)
    residual = float(np.sum((new[1:-1] - field[1:-1]) ** 2))
    return new, residual


def himeno_fmi_app(params: HimenoParams):
    """FMI flavour: FMI_Loop drives checkpoint/rollback transparently."""

    def app(fmi):
        field, rhs = _make_state(fmi, params)
        residuals = []
        gflops_points = 0.0
        yield from fmi.init()
        while True:
            ckpt = [field] if params.synthetic else [field]
            n = yield from fmi.loop(ckpt)
            if n >= params.iterations:
                break
            field, res = yield from _iteration(fmi, params, field, rhs)
            total_res = yield from fmi.allreduce(res)
            residuals.append(total_res)
            gflops_points += params.rank_points(fmi.size)
        yield from fmi.finalize()
        return {"residuals": residuals,
                "field_sum": None if params.synthetic else float(field.sum()),
                "points": gflops_points}

    return app


def himeno_mpi_app(params: HimenoParams, scr_factory=None):
    """MPI flavour.  ``scr_factory(api)`` (optional) builds an SCR
    context; with it, the app restarts from the latest dataset and
    checkpoints explicitly -- the traditional C/R structure."""

    def app(mpi):
        field, rhs = _make_state(mpi, params)
        residuals = []
        start = 0
        scr = scr_factory(mpi) if scr_factory is not None else None
        if scr is not None:
            found = yield from scr.restart()
            if found is not None:
                dataset_id, payloads = found
                yield from scr.restore_into([field], payloads)
                # The dataset holds state *entering* iteration
                # dataset_id, so redo that iteration.
                start = dataset_id
        for n in range(start, params.iterations):
            if scr is not None:
                want = yield from scr.need_checkpoint_collective()
                if want:
                    yield from scr.checkpoint([field], dataset_id=n)
            field, res = yield from _iteration(mpi, params, field, rhs)
            total_res = yield from mpi.allreduce(res)
            residuals.append(total_res)
        yield from mpi.barrier()
        return {"residuals": residuals,
                "field_sum": None if params.synthetic else float(field.sum()),
                "points": params.rank_points(mpi.size) * len(residuals)}

    return app
