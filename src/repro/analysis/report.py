"""Post-run reports: turn a job's runtime records into a readable
summary and machine-checkable statistics.

Consumes the bookkeeping every :class:`~repro.fmi.job.FmiJob` keeps
(transition log, recovery causes/completions, checkpoint counters) and
produces:

* :func:`job_report` -- a structured dict of everything an experiment
  wants to log;
* :func:`render_report` -- a human-readable text block (used by the
  examples);
* :func:`phase_durations` -- per-rank time spent in H1/H2/H3, from the
  transition log (how much of the run was recovery overhead).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.tables import Table, fmt_seconds
from repro.fmi.state import ProcState

__all__ = ["job_report", "render_report", "phase_durations"]


def phase_durations(job, end_time: Optional[float] = None) -> Dict[int, Dict[str, float]]:
    """Seconds each rank spent in each live state.

    A rank's final interval (last transition to job completion) is
    attributed to that last state.
    """
    end = end_time if end_time is not None else job.sim.now
    out: Dict[int, Dict[str, float]] = {}
    for rank in range(job.num_ranks):
        entries = job.transitions.of_rank(rank)
        acc = {state.value: 0.0 for state in ProcState}
        for cur, nxt in zip(entries, entries[1:]):
            acc[cur.state.value] += nxt.time - cur.time
        if entries:
            acc[entries[-1].state.value] += max(0.0, end - entries[-1].time)
        out[rank] = acc
    return out


def job_report(job) -> dict:
    """Everything an experiment wants to record about one FMI run."""
    end = job.sim.now
    phases = phase_durations(job, end)
    h3_total = sum(p.get("H3", 0.0) for p in phases.values())
    live_total = sum(
        p.get("H1", 0.0) + p.get("H2", 0.0) + p.get("H3", 0.0)
        for p in phases.values()
    )
    latencies = [
        job.recovery_latency(e)
        for e in sorted(job.recovered_at)
        if e > 0 and job.recovery_latency(e) is not None
    ]
    return {
        "finished": job.finished,
        "wall_time": end - (job.launched_at or 0.0),
        "ranks": job.num_ranks,
        "recoveries": job.recovery_count,
        "recovery_latencies": latencies,
        "checkpoint_rounds": (
            job.checkpoints_done // job.num_ranks if job.num_ranks else 0
        ),
        "restores": job.restores_done,
        "level2_flushes": job.level2_flushes,
        "level2_restores": job.level2_restores,
        "h3_fraction": (h3_total / live_total) if live_total else 0.0,
        "failure_causes": [cause for _t, cause in job.recovery_causes],
    }


def render_report(job, title: str = "FMI job report") -> str:
    """Human-readable summary block."""
    r = job_report(job)
    table = Table(title, ["metric", "value"])
    table.add("ranks", r["ranks"])
    table.add("wall time", fmt_seconds(r["wall_time"]))
    table.add("finished", str(r["finished"]))
    table.add("checkpoint rounds", r["checkpoint_rounds"])
    table.add("recoveries", r["recoveries"])
    if r["recovery_latencies"]:
        lats = r["recovery_latencies"]
        table.add("recovery latency (min/max)",
                  f"{fmt_seconds(min(lats))} / {fmt_seconds(max(lats))}")
    table.add("level-2 flushes / restores",
              f"{r['level2_flushes']} / {r['level2_restores']}")
    table.add("time in H3 (useful states)", f"{r['h3_fraction'] * 100:.1f}%")
    lines = [table.render()]
    for i, cause in enumerate(r["failure_causes"], 1):
        lines.append(f"  failure {i}: {cause}")
    return "\n".join(lines)
