"""Fixed-width table rendering for benchmark output.

Every benchmark prints a paper-vs-measured table through this module so
the regenerated numbers are legible in CI logs and `EXPERIMENTS.md` can
quote them verbatim.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["Table", "fmt_seconds", "fmt_bytes"]


def fmt_seconds(value: float) -> str:
    """Human scale: us / ms / s."""
    if value < 1e-3:
        return f"{value * 1e6:.3f} us"
    if value < 1.0:
        return f"{value * 1e3:.2f} ms"
    return f"{value:.3f} s"


def fmt_bytes(value: float) -> str:
    for unit, scale in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if value >= scale:
            return f"{value / scale:.2f} {unit}"
    return f"{value:.0f} B"


class Table:
    """A titled fixed-width table."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([self._fmt(c) for c in cells])

    @staticmethod
    def _fmt(cell: Any) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1e5 or abs(cell) < 1e-3:
                return f"{cell:.3e}"
            return f"{cell:.4g}"
        return str(cell)

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        head = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        body = [
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in self.rows
        ]
        lines = [f"== {self.title} ==", head, sep, *body]
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())
