"""repro.analysis -- table rendering and experiment bookkeeping."""

from repro.analysis.tables import Table, fmt_bytes, fmt_seconds

__all__ = ["Table", "fmt_bytes", "fmt_seconds"]
