"""repro.simt -- a deterministic discrete-event simulation (DES) kernel.

This package is the bottom-most substrate of the FMI reproduction.  All
"hardware" (nodes, links, filesystems) and all "processes" (MPI ranks,
FMI ranks, ``fmirun`` daemons) are simulated on top of it.

The design follows the classic event/process DES style (SimPy-like):

* :class:`~repro.simt.kernel.Simulator` owns the virtual clock and the
  event heap.
* :class:`~repro.simt.kernel.Event` is a one-shot occurrence that can
  *succeed* with a value or *fail* with an exception; callbacks fire
  when the event is processed.
* :class:`~repro.simt.process.Process` wraps a generator.  The
  generator ``yield``\\ s events; the process resumes when a yielded
  event fires.  Processes can be *interrupted* (an
  :class:`~repro.simt.process.Interrupt` is thrown into the generator)
  or *killed* (abrupt termination -- this is how node crashes are
  modelled: a dead process is never resumed).
* :mod:`~repro.simt.resources` provides queues, counted resources and a
  fair-share :class:`~repro.simt.resources.BandwidthResource` used to
  model NICs, memory buses and filesystem streams.

Determinism: given the same seed(s) from :mod:`~repro.simt.rng`, a
simulation is bit-for-bit reproducible; there is no wall-clock input
anywhere in the kernel.
"""

from repro.simt.kernel import BulkCompletion, Event, SimStats, Simulator, Timeout
from repro.simt.process import Interrupt, Process, ProcessKilled
from repro.simt.primitives import AllOf, AnyOf
from repro.simt.resources import BandwidthResource, Resource, Store
from repro.simt.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthResource",
    "BulkCompletion",
    "Event",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "Resource",
    "RngRegistry",
    "SimStats",
    "Simulator",
    "Store",
    "Timeout",
]
