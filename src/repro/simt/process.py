"""Generator-coroutine processes for the DES kernel.

A *process* wraps a Python generator.  The generator ``yield``\\ s
:class:`~repro.simt.kernel.Event` objects; when a yielded event fires,
the process resumes with the event's value (or the event's exception is
thrown into the generator).

Two ways a process can die from the outside:

* :meth:`Process.interrupt` -- an :class:`Interrupt` is thrown into the
  generator at the current simulation time.  The generator may catch it
  and keep running (used e.g. for failure *notification*).
* :meth:`Process.kill` -- abrupt termination.  The generator is closed
  and never resumed; the process event fails with
  :class:`ProcessKilled`.  This models a node crash: a process on a
  dead node simply ceases to exist, mid-instruction, with no chance to
  clean up its protocol state.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.simt.kernel import _PENDING, Event, SimulationError, Simulator

__all__ = ["Process", "Interrupt", "ProcessKilled"]


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """The failure value of a process event after :meth:`Process.kill`."""

    def __init__(self, process: "Process", cause: Any = None):
        super().__init__(f"process {process.name!r} killed ({cause!r})")
        self.process = process
        self.cause = cause


class Process(Event):
    """A running generator on the simulation timeline.

    The process is itself an :class:`Event`: it succeeds with the
    generator's return value, or fails with the uncaught exception.
    Other processes can therefore ``yield proc`` to join it.
    """

    __slots__ = ("generator", "name", "_target", "_killed", "_resume_cb")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None  # event we are waiting on
        self._killed = False
        self._resume_cb = self._resume
        # Bootstrap: resume once at the current time.
        init = Event(sim)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume_cb)
        sim._push(init, 0.0)

    # -- lifecycle ------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the generator has not finished or been killed."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the generator asap.

        No-op if the process already finished or was killed.
        """
        if self.triggered or self._killed:
            return
        self._detach()
        evt = Event(self.sim)
        evt._ok = False
        evt._value = Interrupt(cause)
        evt.callbacks.append(self._resume_cb)
        self.sim._push(evt, 0.0)
        self._target = evt

    def kill(self, cause: Any = None) -> None:
        """Terminate the process abruptly, never resuming the generator.

        The generator is closed (``finally`` blocks run, as in CPython
        process teardown) and the process event fails with
        :class:`ProcessKilled`.
        """
        if self.triggered or self._killed:
            return
        self._killed = True
        self._detach()
        # If nobody else is waiting on the target, withdraw it: a
        # killed process must not leave a live-looking posted receive
        # behind to swallow a message meant for a living waiter.
        tgt = self._target
        if tgt is not None and not tgt.callbacks and not tgt.triggered:
            tgt.cancel()
        self._target = None
        try:
            self.generator.close()
        except Exception:  # pragma: no cover - user finally blocks misbehaving
            pass
        self._ok = False
        self._value = ProcessKilled(self, cause)
        self.sim._push(self, 0.0)

    def _detach(self) -> None:
        """Stop listening to the event we were waiting on."""
        tgt = self._target
        if tgt is not None and tgt.callbacks is not None:
            try:
                tgt.callbacks.remove(self._resume_cb)
            except ValueError:
                pass

    # -- the trampoline -------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._killed or self._value is not _PENDING:  # killed/finished
            return
        # Single-shot resume: if some *other* event still holds our
        # callback (an interrupt raced the bootstrap init before
        # ``_target`` was ever set, leaving two registrations), drop it
        # now -- otherwise that event later resumes the generator in
        # place of whatever it is actually waiting on, permanently
        # desynchronising yield values.  On the normal path ``_target``
        # *is* ``event`` and its callback list is already detached by
        # the dispatch loop, so this is a no-op.
        self._detach()
        self._target = None
        self.sim._active_proc = self
        try:
            if event._ok:
                nxt = self.generator.send(event._value)
            else:
                nxt = self.generator.throw(event._value)
        except StopIteration as stop:
            self.sim._active_proc = None
            self._ok = True
            self._value = stop.value
            self.sim._push(self, 0.0)
            return
        except BaseException as exc:
            self.sim._active_proc = None
            self._ok = False
            self._value = exc
            self.sim._push(self, 0.0)
            return
        self.sim._active_proc = None

        if not isinstance(nxt, Event):
            err = SimulationError(
                f"process {self.name!r} yielded {type(nxt).__name__}, "
                "expected an Event"
            )
            self._ok = False
            self._value = err
            self.sim._push(self, 0.0)
            try:
                self.generator.close()
            except Exception:  # pragma: no cover
                pass
            return

        self._target = nxt
        if nxt.processed:
            # Already fired: resume on a fresh zero-delay event carrying
            # the same outcome so scheduling order stays heap-driven.
            relay = Event(self.sim)
            relay._ok = nxt._ok
            relay._value = nxt._value
            relay.callbacks.append(self._resume_cb)
            self.sim._push(relay, 0.0)
            self._target = relay
        else:
            nxt.callbacks.append(self._resume_cb)
