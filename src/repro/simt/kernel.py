"""Core event loop: the virtual clock, the event heap, and ``Event``.

The kernel is intentionally small.  Everything else (processes,
resources, network links) is built from :class:`Event` and
:meth:`Simulator.schedule`.

Hot-path notes (this is the innermost loop of every simulation):

* :meth:`Simulator.run` keeps the heap, the pop function and the
  counters in locals and dispatches callbacks inline instead of going
  through :meth:`Simulator.step`, which exists for single-stepping and
  subclass instrumentation but costs a method call per event.
* Zero-delay schedules (event completions, process resumes -- the
  majority of all events) bypass the heap entirely and go to a FIFO
  *immediate queue*.  Order is unchanged: an entry already in the heap
  for the current instant was necessarily scheduled earlier (smaller
  seq) than anything in the immediate queue, so draining "heap entries
  at ``now`` first, then the FIFO" reproduces exact seq order while
  the common case pays O(1) instead of O(log heap).  At 16k simulated
  ranks the heap otherwise holds tens of thousands of entries and the
  per-event heap traffic dominates the loop.
* Callback lists are pooled per simulator: an event takes a list from
  ``sim._cb_pool`` on construction and the dispatch loop returns it
  after the callbacks ran, so steady-state simulations allocate no
  list objects per event.
* :meth:`Event.cancel` withdraws an event that will never fire so dead
  waiters (killed processes) leave no live-looking tombstones in
  whatever queue holds them; the matching engine keys its lazy sweeps
  off the cancellation hook.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional

from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER

__all__ = [
    "BulkCompletion",
    "Event",
    "Simulator",
    "SimStats",
    "Timeout",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-trigger, running a dead sim...)."""


#: Sentinel for "event has not produced a value yet".
_PENDING = object()

#: Callback lists kept per simulator for reuse (bounded so a burst of
#: wide events cannot pin memory forever).
_CB_POOL_MAX = 512


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *untriggered*.  Calling :meth:`succeed` or
    :meth:`fail` puts it on the event heap at the current simulation
    time (optionally after ``delay``); when the simulator pops it, the
    event becomes *processed* and its callbacks run in registration
    order.

    Callbacks receive the event itself and can inspect :attr:`ok` and
    :attr:`value`.

    :meth:`cancel` is the third exit: an untriggered event whose waiter
    is gone can be withdrawn.  A cancelled event never runs callbacks,
    and later ``succeed``/``fail`` calls become no-ops (the in-flight
    completion of an operation whose waiter died must not crash).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed",
                 "_scheduled", "_cancelled", "_cancel_cb")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        pool = sim._cb_pool
        self.callbacks: Optional[List[Callable[["Event"], None]]] = (
            pool.pop() if pool else []
        )
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._processed = False
        self._scheduled = False
        self._cancelled = False
        #: single hook invoked (synchronously) on cancellation; used by
        #: queue owners (the matching engine) to sweep dead entries
        self._cancel_cb: Optional[Callable[["Event"], None]] = None

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) on the heap."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` withdrew the event."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Mark the event successful and schedule its callbacks."""
        if self._cancelled:
            return self
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._push(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed; waiting processes see ``exc`` raised."""
        if self._cancelled:
            return self
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self.sim._push(self, delay)
        return self

    def cancel(self) -> bool:
        """Withdraw an untriggered event; returns True if it took effect.

        After a successful cancel the event never fires: callbacks are
        dropped, later ``succeed``/``fail`` calls are silently ignored,
        and any registered cancellation hook runs immediately so the
        structure holding the waiter can unlink it.
        """
        if self._value is not _PENDING or self._cancelled:
            return False
        self._cancelled = True
        cbs = self.callbacks
        self.callbacks = None
        if cbs is not None:
            pool = self.sim._cb_pool
            if len(pool) < _CB_POOL_MAX:
                cbs.clear()
                pool.append(cbs)
        hook = self._cancel_cb
        if hook is not None:
            self._cancel_cb = None
            hook(self)
        return True

    # -- internal ------------------------------------------------------------
    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        if callbacks is not None:
            for cb in callbacks:
                cb(self)
            pool = self.sim._cb_pool
            if len(pool) < _CB_POOL_MAX:
                callbacks.clear()
                pool.append(callbacks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self._processed
            else "cancelled"
            if self._cancelled
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6g}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._push(self, delay)


class BulkCompletion(Event):
    """One heap entry that completes a whole batch of events at once.

    The macro-event collective fast path schedules a single
    ``BulkCompletion`` where the hop-level engine would schedule
    O(n log n) per-message events: ``batch`` is a list of
    ``(event, value)`` pairs, and when the bulk event fires every
    batch event succeeds with its value *without ever touching the
    heap* -- their callbacks run inline, in batch order, at the bulk
    event's timestamp.  Cancelled or already-triggered batch entries
    are skipped (a waiter killed mid-flight must not be resumed).

    Dispatch happens through an ordinary callback so it works under
    both :meth:`Simulator.step` and the inlined :meth:`Simulator.run`
    fast loop.  Cancelling the bulk event drops the entire batch.

    Each batch event dispatched inline counts toward
    ``stats.events_processed``: they are real event completions whose
    heap traffic the bulk event absorbed, and counting them keeps the
    events/s throughput metric comparable between the macro and
    hop-level collective engines.
    """

    __slots__ = ("_batch",)

    def __init__(self, sim: "Simulator", delay: float,
                 batch: List[tuple]):
        super().__init__(sim)
        self._batch = batch
        self.callbacks.append(self._dispatch)
        self._ok = True
        self._value = None
        sim._push(self, delay)

    def _dispatch(self, _evt: Event) -> None:
        done = 0
        for evt, value in self._batch:
            if evt._cancelled or evt._value is not _PENDING:
                continue
            evt._ok = True
            evt._value = value
            evt._run_callbacks()
            done += 1
        self.sim.stats.events_processed += done

    def cancel(self) -> bool:
        """Withdraw a *scheduled* bulk completion (recovery reset).

        Unlike the base class (which refuses triggered events -- a
        bulk completion is triggered at birth, like a Timeout), this
        leaves the heap entry in place but makes it inert: callbacks
        and batch are dropped, so the pop dispatches nothing.
        """
        if self._processed or self._cancelled:
            return False
        self._cancelled = True
        self._batch = ()
        cbs = self.callbacks
        self.callbacks = None
        if cbs is not None:
            pool = self.sim._cb_pool
            if len(pool) < _CB_POOL_MAX:
                cbs.clear()
                pool.append(cbs)
        hook = self._cancel_cb
        if hook is not None:
            self._cancel_cb = None
            hook(self)
        return True


class SimStats:
    """Lifetime kernel counters for one :class:`Simulator`."""

    __slots__ = ("events_processed", "peak_heap")

    def __init__(self) -> None:
        #: event completions dispatched: heap pops plus batch events a
        #: :class:`BulkCompletion` completed inline
        self.events_processed = 0
        #: largest number of scheduled events ever outstanding at once
        self.peak_heap = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimStats events={self.events_processed} "
            f"peak_heap={self.peak_heap}>"
        )


class Simulator:
    """The discrete-event simulator: virtual clock plus event heap.

    Heap entries are ``(time, seq, event)``; ``seq`` is a monotonically
    increasing tiebreaker so same-time events fire in schedule order,
    which makes the whole simulation deterministic.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Any] = []
        #: zero-delay events awaiting dispatch at the current instant
        #: (FIFO == schedule order; see module docstring)
        self._nowq: deque = deque()
        self._seq: int = 0
        self._active_proc = None  # set by Process while resuming
        #: recycled callback lists (see module docstring)
        self._cb_pool: List[list] = []
        self.stats = SimStats()
        #: observability sinks; no-ops until a Tracer / MetricsRegistry
        #: attaches itself (instrumentation sites guard on ``.enabled``)
        self.tracer = NULL_TRACER
        self.metrics = NULL_METRICS
        #: failure injectors currently armed against this simulation
        #: (maintained by ``cluster.failures``); the macro-event
        #: eligibility check reads it -- a fault may land in any window
        #: while an injector is live, so per-hop fidelity stays on.
        self.fault_injectors = 0

    # -- scheduling ----------------------------------------------------------
    def _push(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event._scheduled = True
        seq = self._seq = self._seq + 1
        heap = self._heap
        # Zero-delay (and float-underflow) schedules take the O(1)
        # immediate queue; only entries for a *future* instant pay for
        # the heap.  The underflow guard keeps the ordering invariant:
        # a heap entry at time == now always predates the whole FIFO.
        if delay == 0.0 or self.now + delay == self.now:
            nowq = self._nowq
            nowq.append(event)
            depth = len(heap) + len(nowq)
        else:
            heappush(heap, (self.now + delay, seq, event))
            depth = len(heap) + len(self._nowq)
        stats = self.stats
        if depth > stats.peak_heap:
            stats.peak_heap = depth

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def spawn(self, generator, name: str = "") -> "Process":
        """Start a new process running ``generator`` (see ``process.py``)."""
        from repro.simt.process import Process

        return Process(self, generator, name=name)

    @property
    def active_process(self):
        """The process currently being resumed, if any."""
        return self._active_proc

    # -- execution -------------------------------------------------------------
    def step(self) -> None:
        """Process the next scheduled event (heap or immediate queue)."""
        heap = self._heap
        nowq = self._nowq
        if nowq and (not heap or heap[0][0] > self.now):
            event = nowq.popleft()
        else:
            time, _seq, event = heappop(heap)
            if time < self.now:  # pragma: no cover - defensive
                raise SimulationError(
                    "event heap corrupted: time went backwards"
                )
            self.now = time
        self.stats.events_processed += 1
        event._run_callbacks()

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if nothing is scheduled."""
        if self._nowq:
            return self.now
        if self._heap:
            return self._heap[0][0]
        return float("inf")

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None):
        """Run until the heap drains, ``until`` is reached, or the event
        ``until`` (if an :class:`Event` is passed) is processed.

        Returns the value of the ``until`` event when one is given.
        """
        limit_time = None
        limit_event = None
        if isinstance(until, Event):
            limit_event = until
        elif until is not None:
            limit_time = float(until)

        heap = self._heap
        nowq = self._nowq
        pop = heappop
        popleft = nowq.popleft
        cb_pool = self._cb_pool
        n = 0
        try:
            while heap or nowq:
                if limit_event is not None and limit_event._processed:
                    break
                # Heap entries at the current instant predate the FIFO
                # (smaller seq), so they drain first; otherwise the
                # FIFO empties before the clock may advance.
                if nowq and (not heap or heap[0][0] > self.now):
                    event = popleft()
                else:
                    if limit_time is not None and heap[0][0] > limit_time:
                        self.now = limit_time
                        break
                    time, _seq, event = pop(heap)
                    self.now = time
                event._processed = True
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks is not None:
                    for cb in callbacks:
                        cb(event)
                    if len(cb_pool) < _CB_POOL_MAX:
                        callbacks.clear()
                        cb_pool.append(callbacks)
                n += 1
                if max_events is not None and n >= max_events:
                    # The budget is a livelock tripwire, not a hard
                    # stop: the awaited event completing on exactly the
                    # Nth step is success, not livelock.
                    if limit_event is not None and limit_event._processed:
                        break
                    raise SimulationError(
                        f"exceeded max_events={max_events}; livelock suspected"
                    )
        finally:
            self.stats.events_processed += n
        if limit_event is not None:
            if not limit_event.triggered:
                raise SimulationError(
                    "simulation ran out of events before the awaited event fired"
                )
            if not limit_event.ok:
                raise limit_event.value
            return limit_event.value
        # If the heap drained before limit_time, the clock stays at the
        # last event time by convention.
        return None
