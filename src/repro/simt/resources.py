"""Shared-resource primitives: FIFO stores, counted resources, and a
fair-share bandwidth resource.

:class:`BandwidthResource` is the workhorse of the hardware model.  A
NIC, a memory bus, or a filesystem stream is a pipe with a fixed
capacity in bytes/second; concurrent transfers share it *processor-
sharing* style (each of the *k* active flows progresses at capacity/k).
This is what makes, e.g., 12 ranks on one node checkpointing 512 MB
each take ~12x longer through the node's single InfiniBand link than
one rank would -- the effect behind Figure 12's per-node throughput
numbers.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from repro.simt.kernel import Event, Simulator

__all__ = ["Store", "Resource", "BandwidthResource"]


class Store:
    """An unbounded FIFO channel of Python objects.

    ``put`` never blocks.  ``get`` returns an event that fires with the
    oldest item once one is available.  Items are matched to getters in
    strict FIFO order, which the message-matching layer relies on.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        # Hand the item to the oldest *live* getter, if any.
        while self._getters:
            getter = self._getters.popleft()
            # A killed waiter detaches its resume callback, leaving an
            # untriggered event nobody listens to -- skip it or the item
            # would be lost.
            if not getter.callbacks or getter.triggered:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        evt = Event(self.sim)
        if self._items:
            evt.succeed(self._items.popleft())
        else:
            self._getters.append(evt)
        return evt


class Resource:
    """A counted resource with ``capacity`` slots and a FIFO wait queue.

    ``acquire`` returns an event that fires when a slot is granted;
    ``release`` frees a slot.  A process killed while *holding* a slot
    leaks it -- by design: a crashed node takes its hardware resources
    down with it, and the cluster layer discards the whole node object.
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def acquire(self) -> Event:
        evt = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            evt.succeed(self)
        else:
            self._waiters.append(evt)
        return evt

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError("release() without matching acquire()")
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.callbacks or waiter.triggered:
                continue  # waiter's process was killed while queued
            waiter.succeed(self)
            return
        self.in_use -= 1


class _Flow:
    __slots__ = ("remaining", "event", "nbytes")

    def __init__(self, nbytes: float, event: Event):
        self.nbytes = nbytes
        self.remaining = float(nbytes)
        self.event = event


class BandwidthResource:
    """A pipe of ``capacity`` bytes/second shared fairly between flows.

    :meth:`transfer` registers a flow of ``nbytes`` and returns an event
    that fires when the flow completes.  At any instant each of the *k*
    active flows progresses at ``capacity / k`` bytes/second (max-min
    fair share with equal demands).  Completion times are recomputed
    whenever a flow starts or finishes.

    A per-flow fixed ``overhead`` (seconds) models per-operation setup
    cost (e.g. per-message software latency) and is added *before* the
    bytes start moving.
    """

    #: bytes below this are considered finished (float-noise guard)
    _EPS = 1e-6

    def __init__(self, sim: Simulator, capacity: float, name: str = "bw"):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = float(capacity)
        self.name = name
        self._flows: List[_Flow] = []
        self._last = sim.now
        self._timer_gen = 0  # invalidates stale completion timers
        #: cumulative bytes fully transferred (for utilization stats)
        self.bytes_done: float = 0.0

    # -- public ----------------------------------------------------------------
    def transfer(self, nbytes: float, overhead: float = 0.0) -> Event:
        """Move ``nbytes`` through the pipe; event fires at completion."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        done = Event(self.sim)
        if overhead > 0:
            # Charge the fixed overhead first, then enter the shared pipe.
            t = self.sim.timeout(overhead)
            t.callbacks.append(lambda _e: self._start(nbytes, done))
        else:
            self._start(nbytes, done)
        return done

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def set_capacity(self, capacity: float) -> None:
        """Change the pipe's capacity mid-simulation (limping links).

        In-flight flows keep the progress accrued at the old rate and
        continue at the new one; completion timers are recomputed.
        """
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if capacity == self.capacity:
            return
        self._advance()
        self.capacity = float(capacity)
        self._reschedule()

    def time_for(self, nbytes: float) -> float:
        """Uncontended transfer time for ``nbytes`` (planning helper)."""
        return nbytes / self.capacity

    # -- internals ----------------------------------------------------------------
    def _start(self, nbytes: float, done: Event) -> None:
        if done.callbacks is None:
            return  # receiver abandoned before start (e.g. killed)
        self._advance()
        if nbytes <= self._EPS:
            self.bytes_done += nbytes
            done.succeed(None)
            self._reschedule()
            return
        self._flows.append(_Flow(nbytes, done))
        self._reschedule()

    def _rate(self) -> float:
        return self.capacity / len(self._flows)

    def _advance(self) -> None:
        """Apply progress accrued since the last recomputation."""
        now = self.sim.now
        if self._flows and now > self._last:
            progressed = (now - self._last) * self._rate()
            for flow in self._flows:
                flow.remaining -= progressed
        self._last = now

    def _reschedule(self) -> None:
        self._timer_gen += 1
        flows = self._flows
        if not flows:
            return
        gen = self._timer_gen
        if len(flows) == 1:  # uncontended pipe: skip the scan
            min_remaining = flows[0].remaining
        else:
            min_remaining = min(f.remaining for f in flows)
        dt = max(min_remaining, 0.0) / self._rate()
        timer = self.sim.timeout(dt)
        timer.callbacks.append(lambda _e: self._on_timer(gen))

    def _on_timer(self, gen: int) -> None:
        if gen != self._timer_gen:
            return  # superseded by a newer flow set
        self._advance()
        finished = [f for f in self._flows if f.remaining <= self._EPS]
        if not finished:
            # Float residue on multi-GB flows can exceed the absolute
            # epsilon; but this timer was armed exactly for the
            # minimum-remaining flow's deadline, so that flow *is* done.
            threshold = min(f.remaining for f in self._flows) + self._EPS
            finished = [f for f in self._flows if f.remaining <= threshold]
        done_set = set(id(f) for f in finished)
        self._flows = [f for f in self._flows if id(f) not in done_set]
        for flow in finished:
            self.bytes_done += flow.nbytes
            if flow.event.callbacks is not None and not flow.event.triggered:
                flow.event.succeed(None)
        self._reschedule()
