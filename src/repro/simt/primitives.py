"""Composite wait primitives: wait-for-all and wait-for-any."""

from __future__ import annotations

from typing import Iterable, List

from repro.simt.kernel import Event, Simulator

__all__ = ["AllOf", "AnyOf"]


class AllOf(Event):
    """Succeeds when every child event has succeeded.

    Value is the list of child values in input order.  Fails as soon as
    any child fails (with that child's exception).
    """

    __slots__ = ("_children", "_pending", "_results")

    def __init__(self, sim: Simulator, events: Iterable[Event]):
        super().__init__(sim)
        self._children: List[Event] = list(events)
        self._results: List = [None] * len(self._children)
        self._pending = len(self._children)
        if self._pending == 0:
            self.succeed([])
            return
        for idx, evt in enumerate(self._children):
            self._attach(idx, evt)

    def _attach(self, idx: int, evt: Event) -> None:
        def on_fire(e: Event, idx=idx) -> None:
            if self.triggered:
                return
            if not e._ok:
                self.fail(e._value)
                return
            self._results[idx] = e._value
            self._pending -= 1
            if self._pending == 0:
                self.succeed(list(self._results))

        if evt.processed:
            on_fire(evt)
        else:
            evt.callbacks.append(on_fire)


class AnyOf(Event):
    """Succeeds with ``(index, value)`` of the first child to succeed.

    Fails if the first child to fire fired with a failure.
    """

    __slots__ = ("_children",)

    def __init__(self, sim: Simulator, events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for idx, evt in enumerate(self._children):
            self._attach(idx, evt)

    def _attach(self, idx: int, evt: Event) -> None:
        def on_fire(e: Event, idx=idx) -> None:
            if self.triggered:
                return
            if e._ok:
                self.succeed((idx, e._value))
            else:
                self.fail(e._value)

        if evt.processed:
            on_fire(evt)
        else:
            evt.callbacks.append(on_fire)
