"""Named, seeded random streams.

Every stochastic component (failure injector, workload jitter...) draws
from its own named stream derived from a single master seed, so adding
a new consumer never perturbs the draws seen by existing ones and every
experiment is reproducible from one integer.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of independent ``numpy.random.Generator`` streams.

    Streams are keyed by name; the per-stream seed is derived by
    hashing ``(master_seed, name)`` so the mapping is stable across
    runs and platforms.
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()
            ).digest()
            seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(seed)
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        digest = hashlib.sha256(
            f"{self.master_seed}:fork:{name}".encode()
        ).digest()
        return RngRegistry(int.from_bytes(digest[:8], "little"))
