"""The recovery plane: *how* a job comes back after a failure.

Checkpointing (:mod:`repro.fmi.checkpoint` + :mod:`repro.fmi.redundancy`)
decides what state survives a failure; detection (:mod:`repro.fmi.detector`)
decides who hears about it; this package is the third pillar -- the
strategy that turns both into a running job again:

* :class:`~repro.runtime.policy.GlobalRollback` (``recovery="global"``,
  the default and the paper's behaviour): every rank unwinds to H1 and
  restores the last coordinated checkpoint.
* :class:`~repro.runtime.policy.PartialRollback` (``recovery="logged"``):
  survivors keep computing; only restarted ranks restore, driven by the
  sender-based message log and receiver determinants in
  :class:`~repro.fmi.msglog.RecoveryPlane`.

The strategy objects live in :mod:`repro.runtime.policy` (they are the
``Survivable`` policy's recovery seam); the message-logging machinery
lives in :mod:`repro.fmi.msglog`.  This package re-exports both so
``repro.recovery`` is the one import for recovery-plane work.
"""

from repro.fmi.msglog import LogEntry, RecoveryPlane
from repro.runtime.policy import (
    GlobalRollback,
    PartialRollback,
    RecoveryStrategy,
)

__all__ = [
    "RecoveryPlane",
    "LogEntry",
    "RecoveryStrategy",
    "GlobalRollback",
    "PartialRollback",
]
