"""Checkpoint-interval policy for FMI_Loop (Section III-B).

Two modes mirroring the paper's environment variables:

* ``interval=k`` -- checkpoint on every k-th FMI_Loop call;
* ``mtbf=T``     -- auto-tune a *time* interval with Vaidya's model.
  The cost of the first (mandatory) checkpoint is measured and fed
  into :func:`repro.models.vaidya.optimal_interval`; the interval is
  re-derived whenever a newer cost measurement arrives.
"""

from __future__ import annotations

from typing import Optional

from repro.fmi.config import FmiConfig
from repro.models.vaidya import optimal_interval

__all__ = ["IntervalPolicy"]


class IntervalPolicy:
    """Decides, at each FMI_Loop call, whether to write a checkpoint."""

    def __init__(self, config: FmiConfig):
        self.config = config
        self._measured_cost: Optional[float] = None
        self._time_interval: Optional[float] = None
        self._last_ckpt_time: Optional[float] = None
        self._calls_since_ckpt = 0

    # -- feedback from the runtime ------------------------------------------
    def record_checkpoint(self, now: float, cost: float) -> None:
        """A checkpoint just completed; update auto-tuning state."""
        self._last_ckpt_time = now
        self._calls_since_ckpt = 0
        self._measured_cost = cost
        if self.config.mtbf_seconds is not None and cost > 0:
            self._time_interval = optimal_interval(cost, self.config.mtbf_seconds)

    def reset_after_recovery(self, now: float) -> None:
        """Rollback restored state at ``now``; restart the clock."""
        self._last_ckpt_time = now
        self._calls_since_ckpt = 0

    # -- the decision -----------------------------------------------------------
    def should_checkpoint(self, now: float) -> bool:
        """Called once per FMI_Loop iteration."""
        if not self.config.checkpoint_enabled:
            return False
        if self._last_ckpt_time is None:
            # The paper: the first FMI_Loop call always checkpoints, so
            # any failure afterwards is level-1 recoverable.
            return True
        self._calls_since_ckpt += 1
        if self.config.interval is not None:
            return self._calls_since_ckpt >= self.config.interval
        if self.config.mtbf_seconds is not None:
            interval = self._time_interval
            if interval is None:
                return False  # cost not measured yet (cannot happen in practice)
            return now - self._last_ckpt_time >= interval
        return False  # neither knob set: only the initial checkpoint

    @property
    def time_interval(self) -> Optional[float]:
        """Current auto-tuned interval in seconds (None if interval mode)."""
        return self._time_interval
