"""FmiJob -- launch an FMI application and run it through failures."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.cluster.machine import Machine
from repro.fmi.config import FmiConfig
from repro.fmi.api import FmiContext
from repro.fmi.detector import LogRingDetector
from repro.fmi.errors import FmiAbort
from repro.fmi.runtime import Fmirun, FmiProcess
from repro.fmi.state import TransitionLog
from repro.fmi.xor_group import XorGroupLayout
from repro.net.pmgr import PmgrRendezvous
from repro.net.transport import Transport
from repro.simt.kernel import Event

__all__ = ["FmiJob"]

AppFactory = Callable[[FmiContext], Any]  # callable(fmi) -> generator


class FmiJob:
    """One FMI application run (the ``fmirun`` invocation).

    The job object is also the runtime's shared blackboard: the
    recovery epoch, the virtual-rank endpoint table, the per-epoch H1
    rendezvous, the log-ring detector, and the statistics every
    benchmark reads.

    Typical use::

        job = FmiJob(machine, app, num_ranks=48, procs_per_node=12,
                     config=FmiConfig(interval=5, xor_group_size=4))
        results = sim.run(until=job.launch())
    """

    def __init__(
        self,
        machine: Machine,
        app: AppFactory,
        num_ranks: int,
        procs_per_node: int = 1,
        config: Optional[FmiConfig] = None,
        name: str = "fmi",
    ):
        if num_ranks < 1 or procs_per_node < 1:
            raise ValueError("num_ranks and procs_per_node must be >= 1")
        if num_ranks % procs_per_node != 0:
            raise ValueError("num_ranks must be a multiple of procs_per_node")
        self.machine = machine
        self.sim = machine.sim
        self.app = app
        self.num_ranks = num_ranks
        self.ppn = procs_per_node
        self.num_nodes = num_ranks // procs_per_node
        self.config = config or FmiConfig()
        self.name = name
        group = min(self.config.xor_group_size, self.num_nodes)
        self.xor_layout = XorGroupLayout(num_ranks, procs_per_node, group)
        self.transport = Transport(
            machine, sw_overhead=machine.spec.network.sw_overhead_fmi
        )
        self.detector = LogRingDetector(self)
        self.transitions = TransitionLog()

        # -- shared runtime state --
        self.epoch = 0
        self.rank_procs: Dict[int, FmiProcess] = {}
        self.addr_table: Dict[int, Tuple[int, int]] = {}
        self._h1_rdv: Dict[int, PmgrRendezvous] = {}
        self._h2_rdv: Dict[int, PmgrRendezvous] = {}
        self.finished_ranks: Set[int] = set()
        self.results: Dict[int, Any] = {}
        self.done: Event = self.sim.event()
        self.fmirun = Fmirun(self)

        # -- statistics --
        self.recovery_causes: List[Tuple[float, str]] = []
        self.recovered_at: Dict[int, float] = {}
        self.checkpoints_done = 0
        self.restores_done = 0
        #: level-2 (multilevel C/R) bookkeeping
        self.next_l2_at = 0
        self.level2_flushes = 0
        self.level2_restores = 0
        self.launched_at: Optional[float] = None
        #: time rank 0 left H2 in epoch 0 (the FMI_Init measurement)
        self.init_done_at: Optional[float] = None

    # -- launch ----------------------------------------------------------------
    def launch(self) -> Event:
        if self.launched_at is not None:
            raise RuntimeError("job already launched")
        self.launched_at = self.sim.now
        self.fmirun.start()
        return self.done

    # -- geometry ------------------------------------------------------------------
    def ranks_of_slot(self, slot: int) -> List[int]:
        return list(range(slot * self.ppn, (slot + 1) * self.ppn))

    # -- runtime services (called by FmiProcess) -------------------------------------
    def register_endpoint(self, rank: int, fproc: FmiProcess) -> None:
        """H1: publish this incarnation's transport address (this is
        the endpoint update of Figure 8)."""
        self.addr_table[rank] = fproc.ctx.addr

    def h1_rendezvous(self) -> PmgrRendezvous:
        epoch = self.epoch
        rdv = self._h1_rdv.get(epoch)
        if rdv is None:
            size = self.num_ranks - len(self.finished_ranks)
            cost = self.machine.spec.fmi_bootstrap_time(self.num_ranks)
            rdv = PmgrRendezvous(self.sim, size, cost)
            self._h1_rdv[epoch] = rdv
        return rdv

    def h2_rendezvous(self) -> PmgrRendezvous:
        epoch = self.epoch
        rdv = self._h2_rdv.get(epoch)
        if rdv is None:
            size = self.num_ranks - len(self.finished_ranks)
            rdv = PmgrRendezvous(self.sim, size, cost=0.0)
            self._h2_rdv[epoch] = rdv
        return rdv

    def note_recovery_complete(self) -> None:
        epoch = self.epoch
        if epoch not in self.recovered_at:
            self.recovered_at[epoch] = self.sim.now
            if epoch == 0:
                self.init_done_at = self.sim.now
            if self.sim.tracer.enabled and epoch > 0:
                start = self.recovery_causes[epoch - 1][0] if (
                    epoch - 1 < len(self.recovery_causes)
                ) else self.sim.now
                self.sim.tracer.complete(
                    "recovery", "recovery", start, epoch=epoch,
                    cause=self.recovery_causes[epoch - 1][1] if (
                        epoch - 1 < len(self.recovery_causes)
                    ) else "",
                )
            if self.sim.metrics.enabled and epoch > 0:
                latency = self.recovery_latency(epoch)
                if latency is not None:
                    self.sim.metrics.histogram(
                        "fmi.recovery_latency_s"
                    ).observe(latency)

    def make_api(self, fproc: FmiProcess) -> FmiContext:
        return FmiContext(fproc)

    def rank_finished(self, rank: int, result: Any) -> None:
        self.finished_ranks.add(rank)
        self.results[rank] = result
        self.detector.leave(rank)
        if len(self.finished_ranks) == self.num_ranks and not self.done.triggered:
            self.fmirun.shutdown()
            self.done.succeed([self.results[r] for r in range(self.num_ranks)])

    def process_lost(self, fproc: FmiProcess, exc: Exception) -> None:
        """A rank process was killed (injected failure / node crash).
        Recovery is driven by fmirun's task monitoring; nothing to do
        here beyond bookkeeping."""

    def abort(self, exc: BaseException) -> None:
        if self.done.triggered:
            return
        for fproc in self.rank_procs.values():
            if fproc.proc.alive:
                fproc.proc.kill(cause="fmi job abort")
        self.fmirun.shutdown()
        self.done.fail(exc if isinstance(exc, FmiAbort) else FmiAbort(repr(exc)))

    # -- observability ---------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.done.triggered

    @property
    def recovery_count(self) -> int:
        return self.epoch

    def recovery_latency(self, epoch: int) -> Optional[float]:
        """Seconds from the failure that opened ``epoch`` to the moment
        every rank was back in H3."""
        if epoch not in self.recovered_at:
            return None
        start = next(
            (t for t, _c in self.recovery_causes if t <= self.recovered_at[epoch]),
            None,
        )
        causes = [t for t, _c in self.recovery_causes]
        if epoch - 1 < len(causes):
            start = causes[epoch - 1]
        if start is None:
            return None
        return self.recovered_at[epoch] - start
