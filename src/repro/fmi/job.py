"""FmiJob -- launch an FMI application and run it through failures."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.cluster.machine import Machine
from repro.cluster.node import Node
from repro.fmi.config import FmiConfig
from repro.fmi.api import FmiContext
from repro.fmi.detector import LogRingDetector
from repro.fmi.runtime import Fmirun, FmiProcess
from repro.fmi.state import TransitionLog
from repro.fmi.xor_group import XorGroupLayout
from repro.net.pmgr import PmgrRendezvous
from repro.runtime.core import JobBase
from repro.runtime.policy import GLOBAL_ROLLBACK, PartialRollback

__all__ = ["FmiJob"]

AppFactory = Callable[[FmiContext], Any]  # callable(fmi) -> generator


class FmiJob(JobBase):
    """One FMI application run (the ``fmirun`` invocation).

    The job object is also the runtime's shared blackboard: the
    recovery epoch, the virtual-rank endpoint table, the per-epoch H1
    rendezvous, the log-ring detector, and the statistics every
    benchmark reads.  Launch/context/abort machinery is inherited from
    :class:`~repro.runtime.core.JobBase`; the survivable behaviour is
    the attached :class:`~repro.fmi.runtime.Fmirun` policy.

    Typical use::

        job = FmiJob(machine, app, num_ranks=48, procs_per_node=12,
                     config=FmiConfig(interval=5, xor_group_size=4))
        results = sim.run(until=job.launch())
    """

    def __init__(
        self,
        machine: Machine,
        app: AppFactory,
        num_ranks: int,
        procs_per_node: int = 1,
        config: Optional[FmiConfig] = None,
        name: str = "fmi",
        alloc=None,
        job_id: Optional[str] = None,
    ):
        self.config = config or FmiConfig()
        super().__init__(
            machine, app, num_ranks, procs_per_node,
            policy=Fmirun(), name=name,
            sw_overhead=machine.spec.network.sw_overhead_fmi,
            alloc=alloc, job_id=job_id,
        )
        self.fmirun: Fmirun = self.policy  # the runtime's public name
        group = min(self.config.xor_group_size, self.num_nodes)
        self.xor_layout = XorGroupLayout(num_ranks, procs_per_node, group)
        self.detector = LogRingDetector(self)
        self.transitions = TransitionLog()
        # Recovery plane (config.recovery): "global" keeps the classic
        # everyone-rolls-back protocol; "logged" attaches the
        # message-logging plane and its partial-rollback strategy;
        # "replicated" attaches the replication plane and its
        # failover-first strategy.
        self.recovery_plane = None
        self.recovery_strategy = GLOBAL_ROLLBACK
        if self.config.recovery == "logged":
            from repro.fmi.msglog import RecoveryPlane

            plane = RecoveryPlane(self)
            self.recovery_plane = plane
            self.recovery_strategy = PartialRollback(plane)
            self.transport.recovery_filter = plane.accept
        elif self.config.recovery == "replicated":
            from repro.fmi.replication import ReplicationPlane
            from repro.runtime.policy import ReplicatedFailover

            plane = ReplicationPlane(self)
            self.recovery_plane = plane
            self.recovery_strategy = ReplicatedFailover(plane)
            self.transport.replication = plane
        self._h1_rdv: Dict[Any, PmgrRendezvous] = {}
        self._h2_rdv: Dict[Any, PmgrRendezvous] = {}

        # -- statistics --
        self.recovered_at: Dict[int, float] = {}
        self.checkpoints_done = 0
        self.restores_done = 0
        #: level-2 (multilevel C/R) bookkeeping
        self.next_l2_at = 0
        self.level2_flushes = 0
        self.level2_restores = 0

    # -- rank factory ----------------------------------------------------------
    def make_rank_process(self, rank: int, node: Node, incarnation: int = 0,
                          copy: int = 0, **kwargs) -> FmiProcess:
        return FmiProcess(self, rank, node, incarnation, copy=copy)

    def adopt_rank_process(self, rproc: FmiProcess) -> None:
        plane = self.recovery_plane
        if plane is not None and plane.kind == "replicated":
            plane.adopt(rproc)
            return
        self.rank_procs[rproc.rank] = rproc

    # -- runtime services (called by FmiProcess) -------------------------------------
    def _rendezvous_scope(self, rank: Optional[int], fproc=None):
        """Key + participant count for an H1/H2 rendezvous.

        Global rollback synchronises the whole world each epoch.
        Partial rollback (epoch > 0) synchronises only the restarted
        recovery unit: the failed node slot's own ranks.  Replicated
        jobs synchronise per copy-cohort at boot, per slot for a
        re-arming standby, and world-wide (one copy per rank) for a
        fallback restore.
        """
        epoch = self.epoch
        plane = self.recovery_plane
        if plane is not None and plane.kind == "replicated":
            copy = 0 if fproc is None else fproc.copy
            if fproc is not None and plane.is_unsynced(fproc):
                # A re-arming standby synchronises only with its own
                # slot-mates (they respawn as one task).
                slot = self.slot_of_rank(rank)
                size = sum(
                    1 for r in self.ranks_of_slot(slot)
                    if r not in self.finished_ranks
                )
                incarnation = 0 if fproc is None else fproc.incarnation
                return (
                    (epoch, "standby", slot, copy, incarnation),
                    max(size, 1), self.ppn,
                )
            if epoch == 0:
                # Boot: each copy-cohort bootstraps as a full world.
                return (0, "boot", copy), self.num_ranks, self.num_ranks
            # Fallback restore: the elected cohort, one copy per rank.
            return (
                (epoch, "fallback"),
                self.num_ranks - len(self.finished_ranks),
                self.num_ranks,
            )
        if (
            epoch > 0
            and rank is not None
            and self.recovery_strategy.rendezvous_scope == "slot"
        ):
            slot = self.slot_of_rank(rank)
            size = sum(
                1 for r in range(self.num_ranks)
                if self.slot_of_rank(r) == slot and r not in self.finished_ranks
            )
            return (epoch, slot), size, self.ppn
        return epoch, self.num_ranks - len(self.finished_ranks), self.num_ranks

    def h1_rendezvous(self, rank: Optional[int] = None,
                      fproc=None) -> PmgrRendezvous:
        key, size, scale = self._rendezvous_scope(rank, fproc)
        rdv = self._h1_rdv.get(key)
        if rdv is None:
            cost = self.machine.spec.fmi_bootstrap_time(scale)
            rdv = PmgrRendezvous(self.sim, size, cost)
            self._h1_rdv[key] = rdv
        return rdv

    def h2_rendezvous(self, rank: Optional[int] = None,
                      fproc=None) -> PmgrRendezvous:
        key, size, _scale = self._rendezvous_scope(rank, fproc)
        rdv = self._h2_rdv.get(key)
        if rdv is None:
            rdv = PmgrRendezvous(self.sim, size, cost=0.0)
            self._h2_rdv[key] = rdv
        return rdv

    def note_recovery_complete(self) -> None:
        epoch = self.epoch
        if epoch not in self.recovered_at:
            self.recovered_at[epoch] = self.sim.now
            if epoch == 0:
                self.init_done_at = self.sim.now
            if self.sim.tracer.enabled and epoch > 0:
                start = self.recovery_causes[epoch - 1][0] if (
                    epoch - 1 < len(self.recovery_causes)
                ) else self.sim.now
                self.sim.tracer.complete(
                    "recovery", "recovery", start, epoch=epoch,
                    cause=self.recovery_causes[epoch - 1][1] if (
                        epoch - 1 < len(self.recovery_causes)
                    ) else "",
                    job=self.job_id,
                )
            if self.sim.metrics.enabled and epoch > 0:
                latency = self.recovery_latency(epoch)
                if latency is not None:
                    self.sim.metrics.histogram(
                        "fmi.recovery_latency_s", job=self.job_id
                    ).observe(latency)

    def make_api(self, fproc: FmiProcess) -> FmiContext:
        return FmiContext(fproc)

    def _on_rank_finished(self, rank: int) -> None:
        self.detector.leave(rank)

    def _detach(self) -> None:
        super()._detach()
        self.detector.detach()

    # -- observability ---------------------------------------------------------------
    @property
    def recovery_count(self) -> int:
        return self.epoch

    def recovery_latency(self, epoch: int) -> Optional[float]:
        """Seconds from the failure that opened ``epoch`` to the moment
        every rank was back in H3."""
        if epoch not in self.recovered_at:
            return None
        start = next(
            (t for t, _c in self.recovery_causes if t <= self.recovered_at[epoch]),
            None,
        )
        causes = [t for t, _c in self.recovery_causes]
        if epoch - 1 < len(causes):
            start = causes[epoch - 1]
        if start is None:
            return None
        return self.recovered_at[epoch] - start
