"""Resumable collective I/O -- the paper's §VIII MPI-IO sketch.

"Checkpointing to a PFS can be very time consuming ... a checkpoint may
never complete due to frequent roll-backs.  However, if we create
parity data across nodes before initiating the MPI IO operation, we can
restore lost data and continue the I/O operation in the middle without
starting over."

:class:`CollectiveFile` implements that idea on top of the FMI stack:

1. the buffer is protected first (it sits in the rank's level-1 XOR
   checkpoint, so a failure mid-write cannot lose it -- FMI_Loop
   restores it and the application re-executes the write call);
2. the PFS write proceeds in *segments*, each committed with a marker;
3. when the re-executed call finds committed segments from the
   pre-failure attempt it skips them, so a long PFS write makes forward
   progress across failures instead of restarting from byte 0.

Segment markers live in the PFS (which survives node failures), keyed
by rank and write-name, so even a replacement process resumes its dead
predecessor's write.
"""

from __future__ import annotations

from typing import Optional

from repro.fmi.payload import Payload

__all__ = ["CollectiveFile", "DEFAULT_SEGMENT_BYTES"]

DEFAULT_SEGMENT_BYTES = 64e6


class CollectiveFile:
    """One named collective write target on the PFS."""

    def __init__(self, fmi, name: str, segment_bytes: float = DEFAULT_SEGMENT_BYTES):
        if segment_bytes <= 0:
            raise ValueError("segment_bytes must be positive")
        self.fmi = fmi
        self.pfs = fmi.fmi_job.machine.pfs
        self.name = name
        self.segment_bytes = float(segment_bytes)
        #: segments actually written (vs. skipped) by this process --
        #: observability for tests and the resume demo
        self.segments_written = 0
        self.segments_skipped = 0

    # -- paths -------------------------------------------------------------
    def _seg_path(self, idx: int) -> str:
        return f"cio/{self.fmi.fmi_job.name}/{self.name}/rank{self.fmi.rank}/seg{idx}"

    def _done_path(self) -> str:
        return f"cio/{self.fmi.fmi_job.name}/{self.name}/rank{self.fmi.rank}/DONE"

    # -- the operation ------------------------------------------------------
    def write_all(self, payload: Payload):
        """Collective write of ``payload``; resumes committed segments.

        Returns the number of segments freshly written this attempt.
        All ranks must call it (it ends with a barrier, like
        ``MPI_File_write_all``).
        """
        nseg = max(1, int(-(-payload.nbytes // self.segment_bytes)))
        fresh = 0
        if not self.pfs.exists(self._done_path()):
            # Real data is sliced proportionally so the reassembled file
            # is verifiable; declared sizes carry the timing.
            data_chunks = payload.split(nseg)
            for idx in range(nseg):
                if self.pfs.exists(self._seg_path(idx)):
                    self.segments_skipped += 1
                    continue  # committed by the pre-failure attempt
                yield self.pfs.write(
                    self._seg_path(idx),
                    data_chunks[idx].tobytes(),
                    nbytes=data_chunks[idx].nbytes,
                )
                self.segments_written += 1
                fresh += 1
            yield self.pfs.write(self._done_path(), b"done")
        yield from self.fmi.barrier()
        return fresh

    def read_back(self, expect_nbytes: Optional[float] = None):
        """Reassemble my rank's file (verification helper)."""
        import numpy as np

        chunks = []
        idx = 0
        while self.pfs.exists(self._seg_path(idx)):
            raw = yield self.pfs.read(self._seg_path(idx))
            chunks.append(np.frombuffer(raw, dtype=np.uint8))
            idx += 1
        if not chunks:
            return None
        data = np.concatenate(chunks)
        return Payload(data.copy(), nbytes=max(
            float(data.nbytes), expect_nbytes or 0.0
        ))

    @property
    def complete(self) -> bool:
        return self.pfs.exists(self._done_path())
