"""XOR-group construction.

Section V-A: "FMI splits ranks into XOR encoding groups with ranks in
each group distributed across nodes.  Because the common failure
affects a single node, FMI ensures that each rank in the same node
belongs to a different XOR group."

With block rank placement (ranks ``0..P-1`` on node 0, ``P..2P-1`` on
node 1, ...), the group of a rank is determined by its *local slot* on
the node and its node's *block* of ``g`` consecutive nodes: the group
contains the rank at the same slot on each of the ``g`` nodes of the
block.  Every group therefore spans ``g`` distinct nodes, and two ranks
sharing a node are always in different groups -- losing one node costs
each affected group exactly one member, which XOR can repair.
"""

from __future__ import annotations

from typing import List

__all__ = ["XorGroupLayout"]


class XorGroupLayout:
    """Rank → XOR-group mapping for block placement."""

    def __init__(self, num_ranks: int, procs_per_node: int, group_size: int):
        if num_ranks < 1 or procs_per_node < 1:
            raise ValueError("num_ranks and procs_per_node must be >= 1")
        if num_ranks % procs_per_node != 0:
            raise ValueError("num_ranks must be a multiple of procs_per_node")
        num_nodes = num_ranks // procs_per_node
        if group_size < 2:
            raise ValueError("group_size must be >= 2")
        if num_nodes % group_size != 0:
            raise ValueError(
                f"node count ({num_nodes}) must be a multiple of the XOR "
                f"group size ({group_size})"
            )
        self.num_ranks = num_ranks
        self.procs_per_node = procs_per_node
        self.group_size = group_size
        self.num_nodes = num_nodes
        self.groups_per_block = procs_per_node
        self.num_blocks = num_nodes // group_size

    # -- rank geometry ----------------------------------------------------
    def node_of(self, rank: int) -> int:
        self._check(rank)
        return rank // self.procs_per_node

    def slot_of(self, rank: int) -> int:
        self._check(rank)
        return rank % self.procs_per_node

    # -- group geometry ----------------------------------------------------
    def group_of(self, rank: int) -> int:
        """Global group index of ``rank``."""
        block = self.node_of(rank) // self.group_size
        return block * self.procs_per_node + self.slot_of(rank)

    def members(self, group: int) -> List[int]:
        """Ranks of ``group``, ordered by position within the group."""
        if not 0 <= group < self.num_groups:
            raise ValueError(f"group {group} out of range")
        block, slot = divmod(group, self.procs_per_node)
        first_node = block * self.group_size
        return [
            (first_node + i) * self.procs_per_node + slot
            for i in range(self.group_size)
        ]

    def position_in_group(self, rank: int) -> int:
        """Index of ``rank`` within its group (the codec's member id)."""
        return self.node_of(rank) % self.group_size

    @property
    def num_groups(self) -> int:
        return self.num_blocks * self.procs_per_node

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range")
