"""Sender-based message logging: the partial-rollback recovery plane.

Selected with ``FmiConfig(recovery="logged")``.  The default
(``"global"``) plane rolls *every* rank back to the last coordinated
checkpoint on any failure -- the paper's behaviour.  This plane instead
keeps survivors running and rolls back only the restarted ranks, the
protocol family of Dichev & Nikolopoulos (*Implementing Efficient
Message Logging Protocols as MPI Application Extensions*): sender-based
payload logs plus receiver determinants give piecewise-deterministic
replay, and a per-channel logical sequence number gives exact-once
delivery across the rollback.

The plane is a simulator-side oracle object (one per job), which is
exactly where a real implementation keeps this state too: the log lives
in the *sender's* memory and the determinants in the *receiver's*, and
neither is lost when some other rank dies.  Three mechanisms:

**Payload logs.**  Every send crossing a recovery unit (a node slot:
the set of ranks that die together) is appended to the sender's
in-memory log together with its payload copy and a per-channel logical
sequence number ``lseq = (src, dst, n)``.  ``n`` is *reproduced* by a
re-executing sender (unlike ``Envelope.seq``, which is a fresh draw per
transmission), so the same logical message always carries the same
identity.  Logs are garbage-collected when every live rank's retained
checkpoint window has advanced past an entry (:meth:`_gc`).

**Receiver determinants.**  The matching engine reports every match to
:attr:`~repro.net.matching.MatchingEngine.match_sink`; wildcard
(``ANY_SOURCE``/``ANY_TAG``) outcomes are recorded as determinants.  A
recovering rank re-posts its wildcard receives as *exact* receives in
the recorded order, so replayed messages match in the original order
even though replay interleaves senders arbitrarily.

**Partial restore.**  When a restarted rank reaches ``FMI_Loop`` it
runs :meth:`RecoveryPlane.partial_restore` instead of the global
``CheckpointEngine.restore``: a *sidecar* ensemble of per-member
network contexts drives ``CheckpointEngine.rebuild_missing`` over the
XOR group's live storages (survivor application state is untouched --
no world agreement, no pruning), the rank's plane state is rewound to
the snapshot taken at that checkpoint, and each surviving sender
replays its logged messages destined to the rank, serialized per
sender to preserve channel FIFO order.  Survivors meanwhile just block
on their pending receives from the restarted rank; when its
re-execution reaches the failure point it re-sends them, and re-sends
of messages a survivor already consumed are suppressed by the
transport's :attr:`~repro.net.transport.Transport.recovery_filter`
(the ``lseq`` dedup).  The epoch filter is *not* used: in logged mode
every context stays at epoch 0 (there is no global epoch to advance
past), and exact-once delivery rests entirely on the lseq sets.

Trace events (``mlog.*``): ``mlog.log`` (an entry appended),
``mlog.gc``, ``mlog.restore.begin`` / ``mlog.restore`` (span),
``mlog.rewind``, ``mlog.replay`` (one message), ``mlog.replay.done``,
``mlog.dup`` (a suppressed duplicate re-send), ``mlog.det.mismatch``.
The orphan invariant (:func:`repro.chaos.invariants.check_no_orphans`)
is checked post-hoc from ``mlog.log`` / ``mlog.rewind`` / ``net.recv``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.fmi.checkpoint import CheckpointEngine
from repro.fmi.redundancy import make_scheme
from repro.mpi.api import ParallelApi, _snapshot
from repro.net.matching import ANY_SOURCE, ANY_TAG
from repro.net.message import Envelope

__all__ = ["RecoveryPlane", "LogEntry"]


class LogEntry:
    """One logged cross-slot message (sender-side)."""

    __slots__ = (
        "dst", "env_src", "env_dst", "tag", "comm_id", "n", "nbytes",
        "data", "ckpt_tag",
    )

    def __init__(self, dst, env_src, env_dst, tag, comm_id, n, nbytes,
                 data, ckpt_tag):
        self.dst = dst            # destination world rank
        self.env_src = env_src    # comm-relative source rank
        self.env_dst = env_dst    # comm-relative destination rank
        self.tag = tag
        self.comm_id = comm_id
        self.n = n                # channel sequence number (lseq[2])
        self.nbytes = nbytes
        self.data = data          # payload copy
        self.ckpt_tag = ckpt_tag  # sender's last completed dataset at send


class Determinant:
    """One recorded wildcard match outcome (receiver-side)."""

    __slots__ = ("source", "tag", "comm_id", "env_src", "env_tag", "lseq")

    def __init__(self, source, tag, comm_id, env_src, env_tag, lseq):
        self.source = source      # posted pattern (may be ANY_SOURCE)
        self.tag = tag            # posted pattern (may be ANY_TAG)
        self.comm_id = comm_id
        self.env_src = env_src    # who actually matched
        self.env_tag = env_tag
        self.lseq = lseq          # identity of the matched message


class _Snapshot:
    """Plane state of one rank at a completed checkpoint."""

    __slots__ = ("counters", "consumed", "det_len")

    def __init__(self, counters: Dict[int, int], consumed: Set[Tuple[int, int]],
                 det_len: int):
        self.counters = counters  # dst world rank -> next channel seq
        self.consumed = consumed  # {(src, n)} consumed by the execution
        self.det_len = det_len    # determinants recorded so far


class _SidecarApi(ParallelApi):
    """Minimal API for the rebuild ensemble: ranks are XOR-group
    *positions*, routing goes through a private position->address
    table, epoch stays 0.  Gives ``CheckpointEngine`` collectives
    without touching any application context."""

    def __init__(self, transport, ctx, position, group_size, table):
        super().__init__(transport, ctx, position, group_size)
        self._table = table

    def _route(self, position: int):
        return self._table[position]


class RecoveryPlane:
    """Job-wide message-logging state + the partial-restore driver."""

    #: plane-family dispatch tag (the replication plane says
    #: "replicated"); callers branch on this instead of isinstance
    kind = "logged"

    def __init__(self, job):
        self.job = job
        self.sim = job.sim
        #: (src, dst) world-rank pair -> next channel sequence number
        self.send_seq: Dict[Tuple[int, int], int] = {}
        #: sender world rank -> its payload log (FIFO per channel)
        self.logs: Dict[int, List[LogEntry]] = {}
        #: receiver world rank -> recorded wildcard-match determinants
        self.determinants: Dict[int, List[Determinant]] = {}
        #: replay cursor / stop line into ``determinants`` per rank
        self.det_cursor: Dict[int, int] = {}
        self.det_limit: Dict[int, int] = {}
        #: receiver world rank -> {(src, n)} *delivered* into its live
        #: matching engine (the transport-level exact-once filter)
        self.seen: Dict[int, Set[Tuple[int, int]]] = {}
        #: receiver world rank -> {(src, n)} *consumed* (matched) by
        #: its execution -- the snapshot/rewind basis.  Delivered-but-
        #: unconsumed messages must be re-deliverable after a rollback,
        #: so the two sets are tracked separately.
        self.consumed: Dict[int, Set[Tuple[int, int]]] = {}
        #: (rank, dataset_id) -> plane snapshot at that checkpoint
        self.snapshots: Dict[Tuple[int, int], _Snapshot] = {}
        #: rank -> last completed dataset id (stamped on log entries)
        self.last_ckpt: Dict[int, int] = {}
        #: rank -> retained completed dataset ids (oldest first)
        self.completed: Dict[int, List[int]] = {}
        #: ranks currently inside partial_restore
        self.recovering: Set[int] = set()
        # -- counters (observability + tests) --
        self.log_entries = 0
        self.log_bytes = 0.0
        self.live_entries = 0
        self.live_bytes = 0.0
        self.gc_entries = 0
        self.gc_bytes = 0.0
        self.replayed_msgs = 0
        self.replayed_bytes = 0.0
        self.dup_suppressed = 0
        self.det_recorded = 0
        self.det_mismatches = 0
        self.partial_restores = 0

    # -- send path ---------------------------------------------------------
    def on_send(self, src: int, dst: int, env: Envelope, ctx=None) -> None:
        """Stamp ``env`` with its channel lseq; log it if cross-slot."""
        key = (src, dst)
        n = self.send_seq.get(key, 0)
        self.send_seq[key] = n + 1
        env.lseq = (src, dst, n)
        job = self.job
        if job.slot_of_rank(src) == job.slot_of_rank(dst):
            # Same recovery unit: sender and receiver die together, and
            # a restarted pair re-executes both ends -- nothing to log.
            return
        entry = LogEntry(
            dst, env.src, env.dst, env.tag, env.comm_id, n, env.nbytes,
            _snapshot(env.data), self.last_ckpt.get(src, -1),
        )
        self.logs.setdefault(src, []).append(entry)
        self.log_entries += 1
        self.log_bytes += env.nbytes
        self.live_entries += 1
        self.live_bytes += env.nbytes
        sim = self.sim
        if sim.tracer.enabled:
            sim.tracer.instant(
                "mlog.log", "mlog", rank=src, epoch=job.epoch, dst=dst,
                tag=env.tag, n=n, nbytes=env.nbytes, ckpt=entry.ckpt_tag,
            )
        if sim.metrics.enabled:
            sim.metrics.counter("mlog.logged_msgs").inc()
            sim.metrics.gauge("mlog.log_bytes").set(self.live_bytes)

    # -- receive path ------------------------------------------------------
    def accept(self, env: Envelope) -> bool:
        """Transport delivery filter: exact-once per channel lseq."""
        src, dst, n = env.lseq
        seen = self.seen.setdefault(dst, set())
        if (src, n) in seen:
            self.dup_suppressed += 1
            if self.sim.tracer.enabled:
                self.sim.tracer.instant(
                    "mlog.dup", "mlog", rank=dst, src=src, n=n, tag=env.tag,
                )
            return False
        seen.add((src, n))
        return True

    def make_sink(self, rank: int):
        """The per-context :attr:`MatchingEngine.match_sink` closure:
        consumption bookkeeping for every match, a determinant for
        every *wildcard* match."""

        def sink(source, tag, env):
            lseq = env.lseq
            if lseq is not None:
                self.consumed.setdefault(rank, set()).add((lseq[0], lseq[2]))
            if source == ANY_SOURCE or tag == ANY_TAG:
                if self.det_cursor.get(rank, 0) >= self.det_limit.get(rank, 0):
                    self.determinants.setdefault(rank, []).append(
                        Determinant(source, tag, env.comm_id, env.src,
                                    env.tag, lseq)
                    )
                    self.det_recorded += 1

        return sink

    def next_determinant(self, rank: int, source: int, tag: int,
                         comm_id: int) -> Optional[Determinant]:
        """The next recorded determinant for a re-executed wildcard
        post, or None once the cursor reaches the failure point (or on
        a pattern mismatch -- counted, replay degrades to free order)."""
        cursor = self.det_cursor.get(rank, 0)
        if cursor >= self.det_limit.get(rank, 0):
            return None
        det = self.determinants[rank][cursor]
        if (det.source, det.tag, det.comm_id) != (source, tag, comm_id):
            self.det_mismatches += 1
            self.det_cursor[rank] = self.det_limit.get(rank, 0)
            if self.sim.tracer.enabled:
                self.sim.tracer.instant(
                    "mlog.det.mismatch", "mlog", rank=rank,
                    posted=(source, tag, comm_id),
                    recorded=(det.source, det.tag, det.comm_id),
                )
            return None
        self.det_cursor[rank] = cursor + 1
        return det

    def check_replayed_match(self, evt, det: Determinant, rank: int) -> None:
        """Assert a determinant-rewritten post matched the recorded
        message (same channel identity), once it completes."""
        recorded = det.lseq

        def _check(env) -> None:
            if recorded is not None and getattr(env, "lseq", None) != recorded:
                self.det_mismatches += 1
                if self.sim.tracer.enabled:
                    self.sim.tracer.instant(
                        "mlog.det.mismatch", "mlog", rank=rank,
                        expected=recorded, got=getattr(env, "lseq", None),
                    )

        if evt.triggered:
            if evt._ok:
                _check(evt._value)
        else:
            evt.callbacks.append(
                lambda e: _check(e._value) if e._ok else None
            )

    # -- checkpoint bookkeeping -------------------------------------------
    #: retained checkpoint window per rank; mirrors CheckpointEngine.KEEP
    KEEP = CheckpointEngine.KEEP

    def note_ckpt_begin(self, rank: int, dataset_id: int, ctx=None) -> None:
        """Checkpoint-begin hook (the replication plane's standby sync
        keys off it); sender-based logging needs nothing here."""

    def note_rank_checkpoint(self, rank: int, dataset_id: int, ctx=None) -> None:
        """``rank`` completed checkpoint ``dataset_id``: snapshot its
        plane state (the rewind target) and advance garbage collection."""
        counters = {
            d: n for (s, d), n in self.send_seq.items() if s == rank
        }
        self.snapshots[(rank, dataset_id)] = _Snapshot(
            counters, set(self.consumed.get(rank, ())),
            len(self.determinants.get(rank, ())),
        )
        self.last_ckpt[rank] = dataset_id
        retained = self.completed.setdefault(rank, [])
        if dataset_id not in retained:
            retained.append(dataset_id)
            retained.sort()
        while len(retained) > self.KEEP:
            dropped = retained.pop(0)
            self.snapshots.pop((rank, dropped), None)
        self._gc()

    def _gc(self) -> None:
        """Drop entries no restore can ever need.

        A partial restore targets the newest dataset *common to the
        whole XOR group*, which is always >= the job-wide floor
        ``stable = min over live ranks of their oldest retained
        dataset``.  An entry stamped ``ckpt_tag < stable`` was sent
        before its sender's checkpoint ``stable`` completed; since
        checkpoints are coordinated and the BSP app quiesces its
        traffic at every ``FMI_Loop``, such a message was delivered
        before the receiver's ``stable`` snapshot -- its lseq is inside
        every rewind target's consumed set, so it is never replayed."""
        job = self.job
        floors: List[int] = []
        for r in range(job.num_ranks):
            if r in job.finished_ranks:
                continue
            ids = self.completed.get(r)
            if not ids:
                return  # a live rank has no checkpoint yet: keep all
            floors.append(ids[0])
        if not floors:
            return
        stable = min(floors)
        dropped = 0
        dropped_bytes = 0.0
        for src, entries in self.logs.items():
            kept = [e for e in entries if e.ckpt_tag >= stable]
            if len(kept) != len(entries):
                dropped += len(entries) - len(kept)
                dropped_bytes += sum(e.nbytes for e in entries) - sum(
                    e.nbytes for e in kept
                )
                self.logs[src] = kept
        if not dropped:
            return
        self.gc_entries += dropped
        self.gc_bytes += dropped_bytes
        self.live_entries -= dropped
        self.live_bytes -= dropped_bytes
        sim = self.sim
        if sim.tracer.enabled:
            sim.tracer.instant(
                "mlog.gc", "mlog", stable=stable, entries=dropped,
                nbytes=dropped_bytes, live=self.live_entries,
            )
        if sim.metrics.enabled:
            sim.metrics.gauge("mlog.log_bytes").set(self.live_bytes)
            sim.metrics.counter("mlog.gc_entries").inc(dropped)

    # -- partial restore ---------------------------------------------------
    def partial_restore(self, fmi_ctx):
        """The logged-mode replacement for ``CheckpointEngine.restore``.

        Runs inside the restarted rank's process (from ``FMI_Loop``).
        Returns ``(meta, payloads)`` like ``restore()``, or None on a
        group-wide cold start."""
        rank = fmi_ctx.world_rank
        job = self.job
        sim = self.sim
        t0 = sim.now
        self.recovering.add(rank)
        self.partial_restores += 1
        if sim.tracer.enabled:
            sim.tracer.instant(
                "mlog.restore.begin", "mlog", rank=rank,
                node=fmi_ctx.node.id, epoch=job.epoch,
                incarnation=fmi_ctx.fproc.incarnation,
            )
        restored = yield from self._rebuild(fmi_ctx)
        dataset = None if restored is None else restored[0].dataset_id
        self._rewind(rank, dataset, fmi_ctx.ctx.matching)
        msgs, nbytes = yield from self._replay_into(rank)
        self.recovering.discard(rank)
        if sim.tracer.enabled:
            sim.tracer.complete(
                "mlog.restore", "mlog", t0, rank=rank,
                node=fmi_ctx.node.id, epoch=job.epoch,
                dataset=-1 if dataset is None else dataset, replayed=msgs,
            )
            sim.tracer.instant(
                "mlog.replay.done", "mlog", rank=rank, epoch=job.epoch,
                msgs=msgs, nbytes=nbytes,
                dataset=-1 if dataset is None else dataset,
            )
        if sim.metrics.enabled:
            sim.metrics.counter("mlog.replayed_msgs").inc(msgs)
            sim.metrics.counter("mlog.replayed_bytes").inc(nbytes)
            sim.metrics.histogram("mlog.restore_latency_s").observe(
                sim.now - t0
            )
        return restored

    def _rebuild(self, fmi_ctx):
        """Drive ``CheckpointEngine.rebuild_missing`` over a sidecar
        ensemble: one fresh context per group member, on the member's
        *current* node, against the member's live storage.  Survivor
        application contexts are never touched."""
        job = self.job
        layout = job.xor_layout
        rank = fmi_ctx.world_rank
        group = layout.group_of(rank)
        members = layout.members(group)
        size = len(members)
        my_pos = members.index(rank)
        missing = sorted(
            pos for pos, m in enumerate(members) if m in self.recovering
        )
        transport = job.transport
        ctxs = []
        table: Dict[int, Tuple[int, int]] = {}
        for pos, member in enumerate(members):
            node = (
                fmi_ctx.node if member == rank
                else job.rank_procs[member].node
            )
            ctx = transport.create_context(
                node, label=f"mlog:rebuild:g{group}:p{pos}"
            )
            ctxs.append(ctx)
            table[pos] = ctx.addr
        scheme_name = job.config.redundancy
        try:
            procs = []
            for pos, member in enumerate(members):
                if pos == my_pos:
                    continue
                api = _SidecarApi(transport, ctxs[pos], pos, size, table)
                engine = CheckpointEngine(
                    api.world, job.rank_procs[member].storage, api.memcpy,
                    scheme=make_scheme(scheme_name),
                )
                procs.append(ctxs[pos].node.spawn(
                    self._assist(engine, missing),
                    name=f"mlog.rebuild[g{group}:p{pos}]",
                ))
            api = _SidecarApi(transport, ctxs[my_pos], my_pos, size, table)
            engine = CheckpointEngine(
                api.world, fmi_ctx.fproc.storage, api.memcpy,
                scheme=make_scheme(scheme_name),
            )
            mine = yield from engine.rebuild_missing(missing)
            for proc in procs:
                if not proc.triggered:
                    yield proc
                elif not proc._ok:
                    raise proc._value
        finally:
            for ctx in ctxs:
                ctx.close()
        return mine

    @staticmethod
    def _assist(engine, missing):
        yield from engine.rebuild_missing(list(missing))

    def _rewind(self, rank: int, dataset: Optional[int],
                matching=None) -> None:
        """Reset ``rank``'s plane state to its snapshot at ``dataset``.

        No snapshot for a non-None dataset means the previous
        incarnation died *inside* checkpoint ``dataset`` after its last
        contribution was out but before completing locally (the torn
        tail).  The resume point then coincides with the death point,
        so the live at-death values are already correct and nothing is
        rewound (re-sent lseqs stay unique, consumed collective traffic
        is not replayed).

        ``matching`` is the restarted rank's live matching engine.
        Survivors keep sending while the replacement bootstraps, so its
        fresh context accumulates deliveries *before* the rewind; those
        lseqs are about to be erased from ``seen``, which would let the
        replay deliver a second physical copy of each one (double
        consumption shifts every later match on the channel).  Purging
        the queue here makes the replay the single source of pre-rewind
        traffic: everything purged came from another recovery unit --
        the rank's own siblings restart with it and re-send -- so it is
        in the log and is regenerated exactly once."""
        snap = None if dataset is None else self.snapshots.get((rank, dataset))
        torn = snap is None and dataset is not None
        sim = self.sim
        consumed = self.consumed.setdefault(rank, set())
        if torn:
            # At-death values are the rewind target; only the delivered
            # set shrinks (below), so the unconsumed tail of the queue
            # is re-deliverable.
            counters = {
                d: n for (s, d), n in self.send_seq.items() if s == rank
            }
            det_cursor = len(self.determinants.get(rank, ()))
        else:
            counters = {} if snap is None else dict(snap.counters)
            for key in [k for k in self.send_seq if k[0] == rank]:
                del self.send_seq[key]
            self.send_seq.update({(rank, d): n for d, n in counters.items()})
            consumed.clear()
            if snap is not None:
                consumed.update(snap.consumed)
            det_cursor = 0 if snap is None else snap.det_len
        # In-place: the transport filter and match sinks hold these sets.
        seen = self.seen.setdefault(rank, set())
        seen.clear()
        seen.update(consumed)
        purged = 0
        if matching is not None:
            _cancelled, purged = matching.reset()
        self.det_limit[rank] = len(self.determinants.get(rank, ()))
        self.det_cursor[rank] = det_cursor
        # The re-execution re-logs everything past the snapshot; drop
        # the dead incarnation's copies so the log holds each logical
        # message once.
        entries = self.logs.get(rank)
        if entries:
            kept = [e for e in entries if e.n < counters.get(e.dst, 0)]
            removed = len(entries) - len(kept)
            if removed:
                self.live_entries -= removed
                self.live_bytes -= sum(e.nbytes for e in entries) - sum(
                    e.nbytes for e in kept
                )
                self.logs[rank] = kept
        if sim.tracer.enabled:
            sim.tracer.instant(
                "mlog.rewind", "mlog", rank=rank, epoch=self.job.epoch,
                dataset=-1 if dataset is None else dataset, torn=torn,
                purged=purged,
                counters={str(d): n for d, n in sorted(counters.items())},
            )

    def _replay_into(self, rank: int):
        """Replay logged messages destined to ``rank`` that its rewound
        execution has not consumed, one serialized stream per sender
        (channel FIFO), from each sender's current node."""
        job = self.job
        sim = self.sim
        consumed = self.consumed.get(rank, set())
        by_sender: Dict[int, List[LogEntry]] = {}
        for src, entries in self.logs.items():
            if src == rank or src in self.recovering:
                continue
            for entry in entries:
                if entry.dst == rank and (src, entry.n) not in consumed:
                    by_sender.setdefault(src, []).append(entry)
        if sim.tracer.enabled:
            sim.tracer.instant(
                "mlog.replay.begin", "mlog", rank=rank, epoch=job.epoch,
                senders=len(by_sender),
                msgs=sum(len(v) for v in by_sender.values()),
            )
        if not by_sender:
            return 0, 0.0
        counts = {"msgs": 0, "bytes": 0.0}
        procs = []
        for src in sorted(by_sender):
            rproc = job.rank_procs.get(src)
            if rproc is None or not rproc.node.alive:
                continue  # sender just died too; its replacement re-sends
            ctx = job.transport.create_context(
                rproc.node, label=f"mlog:replay:{src}->{rank}"
            )
            procs.append(rproc.node.spawn(
                self._replay_sender(ctx, src, rank, by_sender[src], counts),
                name=f"mlog.replay[{src}->{rank}]",
            ))
        for proc in procs:
            if not proc.triggered:
                yield proc
            elif not proc._ok:
                raise proc._value
        self.replayed_msgs += counts["msgs"]
        self.replayed_bytes += counts["bytes"]
        return counts["msgs"], counts["bytes"]

    def _replay_sender(self, ctx, src: int, rank: int,
                       entries: List[LogEntry], counts):
        job = self.job
        transport = job.transport
        tracer = self.sim.tracer
        try:
            for entry in entries:
                dst_addr = job.addr_table.get(rank)
                if dst_addr is None:
                    break
                env = Envelope(
                    src=entry.env_src, dst=entry.env_dst, tag=entry.tag,
                    comm_id=entry.comm_id, epoch=0, nbytes=entry.nbytes,
                    data=_snapshot(entry.data),
                )
                env.lseq = (src, rank, entry.n)
                if tracer.enabled:
                    tracer.instant(
                        "mlog.replay", "mlog", rank=rank, epoch=job.epoch,
                        src=src, tag=entry.tag, n=entry.n,
                        nbytes=entry.nbytes,
                    )
                yield transport.send(ctx, dst_addr, env)
                counts["msgs"] += 1
                counts["bytes"] += entry.nbytes
        finally:
            ctx.close()
