"""Level-2 (PFS) checkpointing for FMI -- the paper's §VIII future work.

"Future versions of FMI will support multilevel C/R to be able to
recover from any failures occurring on HPC systems."  This module is
that version: every ``level2_every``-th level-1 (XOR) checkpoint is
also flushed to the parallel filesystem, and when a failure exceeds
XOR protection (two members of one group lost, or a whole group wiped)
the job transparently falls back to the newest *complete* level-2
dataset instead of aborting.

Dataset completion on the PFS mirrors the level-1 protocol: each rank
writes its blob, a world barrier confirms everyone finished, then rank
0 writes a ``COMPLETE`` marker.  The two newest complete datasets are
retained (the same keep-2 argument as level 1).

After a level-2 restore every rank re-seeds its level-1 cache (stores
the blob locally and re-encodes XOR parity), so the cheap tier is
immediately protective again -- the multilevel invariant from the
SCR/multilevel-checkpointing line of work the paper builds on.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.fmi.payload import Payload

__all__ = ["Level2Store"]


class Level2Store:
    """Per-rank handle on the job's level-2 datasets in the PFS."""

    def __init__(self, pfs, job_name: str, rank: int):
        self.pfs = pfs
        self.job_name = job_name
        self.rank = rank

    # -- paths -------------------------------------------------------------
    def _blob_path(self, dataset: int, rank: Optional[int] = None) -> str:
        r = self.rank if rank is None else rank
        return f"fmi-l2/{self.job_name}/ds{dataset}/rank{r}"

    def _marker_path(self, dataset: int) -> str:
        return f"fmi-l2/{self.job_name}/ds{dataset}/COMPLETE"

    # -- write side -----------------------------------------------------------
    def flush(self, dataset: int, blob: Payload, sections: List[tuple]):
        """Write this rank's blob (async-ish: the PFS pipe is shared)."""
        import json

        header = json.dumps({"sections": [list(s) for s in sections]}).encode()
        yield self.pfs.write(self._blob_path(dataset) + ".meta", header)
        yield self.pfs.write(
            self._blob_path(dataset), blob.tobytes(), nbytes=blob.nbytes
        )

    def mark_complete(self, dataset: int, num_ranks: int):
        """Rank 0 only, after a world barrier: stamp the dataset."""
        yield self.pfs.write(
            self._marker_path(dataset), repr(num_ranks).encode()
        )

    def prune(self, keep: List[int]) -> None:
        """Drop this rank's blobs for datasets not in ``keep`` (rank 0
        also drops their markers)."""
        prefix = f"fmi-l2/{self.job_name}/ds"
        for path in self.pfs.listdir():
            if not path.startswith(prefix):
                continue
            rest = path[len(prefix):]
            ds = int(rest.split("/", 1)[0])
            if ds in keep:
                continue
            if path == self._blob_path(ds) or path == self._blob_path(ds) + ".meta":
                self.pfs.unlink(path)
            elif self.rank == 0 and path == self._marker_path(ds):
                self.pfs.unlink(path)

    # -- read side -----------------------------------------------------------
    def complete_datasets(self) -> List[int]:
        """Dataset ids with a COMPLETE marker (globally visible)."""
        prefix = f"fmi-l2/{self.job_name}/ds"
        out = []
        for path in self.pfs.listdir():
            if path.startswith(prefix) and path.endswith("/COMPLETE"):
                out.append(int(path[len(prefix):].split("/", 1)[0]))
        return sorted(out)

    def latest_for_me(self) -> int:
        """Newest complete dataset that has *my* blob (normally the
        newest complete one; -1 if none)."""
        for ds in reversed(self.complete_datasets()):
            if self.pfs.exists(self._blob_path(ds)):
                return ds
        return -1

    def read(self, dataset: int):
        """Fetch my blob; returns ``(payload, sections)``."""
        import json

        header = yield self.pfs.read(self._blob_path(dataset) + ".meta")
        sections = [tuple(s) for s in json.loads(header.decode())["sections"]]
        declared = None
        # The write recorded the declared size via the Payload nbytes;
        # recover it from the sections (sum of declared section sizes,
        # padded blob may be larger in real bytes).
        raw = yield self.pfs.read(self._blob_path(dataset))
        blob = Payload(
            np.frombuffer(raw, dtype=np.uint8).copy(),
            nbytes=max(float(len(raw)), sum(s[1] for s in sections)),
        )
        return blob, sections
