"""Pluggable checkpoint-redundancy schemes (SCR's level-1 trio).

The paper's Section II describes SCR's level-1 redundancy options --
node-local only, partner replication, and XOR encoding -- of which the
2014 FMI prototype hardwires XOR.  Here each option is a
:class:`RedundancyScheme` the generic
:class:`~repro.fmi.checkpoint.CheckpointEngine` drives, so the engine
owns the protocol (geometry agreement, dataset versioning, keep-2
pruning, group/world restore agreement) and the scheme owns only the
data plane:

* :class:`XorScheme` -- the paper's ring-pipelined parity (Figure 9):
  ``s/(n-1)`` storage overhead, tolerates one lost member per group.
* :class:`PartnerScheme` -- full-copy replication to the next group
  member (a la ReStore / FTHP-MPI): 100 % storage overhead, cheaper
  encode (``s`` instead of ``s + s/(n-1)`` on the wire), tolerates any
  failure pattern without two *adjacent* members lost.
* :class:`SingleScheme` -- node-local only: zero overhead, zero
  network cost, tolerates no lost member (pair with level 2 to get
  SCR's LOCAL+PFS configuration).

Group members are laid out across distinct nodes
(:class:`~repro.fmi.xor_group.XorGroupLayout`), so a partner copy is
automatically off-node.  Every scheme also exposes its analytic cost
model (:meth:`RedundancyScheme.checkpoint_model` /
:meth:`~RedundancyScheme.restart_model`), wired to
:mod:`repro.models.cr_model` so benchmarks and regression tests cover
each scheme against its own prediction.
"""

from __future__ import annotations

from typing import List, Optional

from repro.fmi.payload import Payload
from repro.fmi.xor_codec import chunk_of_slot, slot_of_chunk, split_into_chunks
from repro.net.matching import ANY_SOURCE

__all__ = [
    "RedundancyScheme",
    "XorScheme",
    "PartnerScheme",
    "SingleScheme",
    "make_scheme",
    "SCHEMES",
    "TAG_XOR_RING",
    "TAG_XOR_GATHER",
    "TAG_XOR_META",
    "TAG_XOR_PARITY",
    "TAG_PARTNER",
    "TAG_PARTNER_META",
]

TAG_XOR_RING = (1 << 25) + 1
TAG_XOR_GATHER = (1 << 25) + 2
TAG_XOR_META = (1 << 25) + 3
TAG_XOR_PARITY = (1 << 25) + 4
TAG_PARTNER = (1 << 25) + 5
TAG_PARTNER_META = (1 << 25) + 6


def _blob_key(ds: int) -> str:
    return f"ckpt@{ds}"


def _meta_key(ds: int) -> str:
    return f"meta@{ds}"


class RedundancyScheme:
    """The data-plane strategy behind one checkpoint engine.

    Bound to exactly one :class:`~repro.fmi.checkpoint.CheckpointEngine`
    (which supplies the group communicator, the storage adapter, and
    the memory-charge hook).  ``encode``/``assist_rebuild``/
    ``rebuild_replacement`` are generators driven from inside a rank
    process; they move *real bytes* so restores are bit-exact.
    """

    name = "?"

    def bind(self, engine) -> None:
        self.engine = engine
        self.comm = engine.comm
        self.storage = engine.storage
        self.mem_charge = engine.mem_charge

    # -- geometry ----------------------------------------------------------
    def pad_multiple(self, n: int) -> int:
        """Blobs are padded to a multiple of this (XOR needs chunks to
        split evenly)."""
        return 1

    def redundancy_key(self, dataset: int) -> Optional[str]:
        """Storage key of this scheme's redundancy data, or None."""
        return None

    def storage_overhead(self, n: int) -> float:
        """Redundancy bytes stored per checkpoint byte."""
        return 0.0

    # -- encode -------------------------------------------------------------
    def encode(self, blob: Payload):
        """Generator: produce this member's redundancy payload for the
        (padded) ``blob``, or None when the scheme stores none."""
        raise NotImplementedError
        yield  # pragma: no cover

    # -- repair --------------------------------------------------------------
    def can_repair(self, missing: List[int], n: int) -> bool:
        """Can this scheme rebuild the given missing group positions?"""
        return not missing

    def rebuild_replacement(self, f: int, dataset: int):
        """Generator, run on the replacement member ``f``: receive the
        rebuilt blob.  Returns ``(blob, redundancy_or_None,
        group_meta)``; the engine stores all three."""
        raise NotImplementedError
        yield  # pragma: no cover

    def assist_rebuild(self, f: int, dataset: int):
        """Generator, run on every survivor while ``f`` rebuilds.
        Returns this survivor's own (padded) blob when the assist
        loaded it anyway (saves the engine a second read), else None.
        """
        raise NotImplementedError
        yield  # pragma: no cover

    # -- analytic cost model ---------------------------------------------------
    def checkpoint_model(self, s: float, group_size: int, mem_bw: float,
                         net_bw: float, procs_per_node: int = 1) -> float:
        from repro.models.cr_model import checkpoint_time

        return checkpoint_time(s, group_size, mem_bw, net_bw,
                               procs_per_node, scheme=self.name)

    def restart_model(self, s: float, group_size: int, mem_bw: float,
                      net_bw: float, procs_per_node: int = 1) -> float:
        from repro.models.cr_model import restart_time

        return restart_time(s, group_size, mem_bw, net_bw,
                            procs_per_node, scheme=self.name)


class XorScheme(RedundancyScheme):
    """Ring-pipelined XOR parity -- the paper's Section V scheme.

    * **encode** (Figure 9): every group member starts a zeroed parity
      buffer, sends it around the ring for ``n`` steps, XORing in one
      local chunk per step; after ``n`` steps each member holds its
      completed parity slot.  Per member: ``s + s/(n-1)`` bytes
      transferred, ``s`` bytes XORed -- exactly the Section V-B model.
    * **rebuild**: the ``n - 1`` chunk reconstructions run as rotated
      pipelines over the survivor ring (decode time ~ encode time),
      then the replacement gathers one rebuilt chunk per survivor (the
      extra ``s/net_bw`` stage of Figs 11/12) while a binomial pass
      regenerates the lost parity slot.
    """

    name = "xor"

    def pad_multiple(self, n: int) -> int:
        return max(1, n - 1)

    def redundancy_key(self, dataset: int) -> str:
        return f"parity@{dataset}"

    def storage_overhead(self, n: int) -> float:
        return 1.0 / max(1, n - 1)

    def can_repair(self, missing: List[int], n: int) -> bool:
        return len(missing) <= 1

    def encode(self, blob: Payload):
        n = self.comm.size
        i = self.comm.rank
        if n == 1:  # degenerate group: no parity partner
            return Payload.zeros_like(blob)
        chunks = split_into_chunks(blob, n)
        right = (i + 1) % n
        left = (i - 1) % n
        buf = Payload.zeros_like(chunks[0])
        for step in range(n):
            recv_evt = self.comm.post_recv(left, TAG_XOR_RING)
            yield self.comm.send_async(right, buf, buf.nbytes, TAG_XOR_RING)
            env = yield recv_evt
            buf = env.data
            slot = (i - 1 - step) % n
            if slot != i:
                yield self.mem_charge(buf.nbytes)
                buf.xor_inplace(chunks[chunk_of_slot(i, slot, n)])
        return buf  # my parity slot P_i, complete after n hops

    def assist_rebuild(self, f: int, dataset: int):
        """Survivor side of the decode (same ring structure as encode).

        The ``n - 1`` chunk reconstructions run as *rotated* pipelines
        over the survivor ring: chunk ``m`` starts at survivor
        ``m mod (n-1)``, visits every survivor (each XORs in its
        contribution), and terminates at a *different* survivor for
        each ``m`` -- so at every step all survivor links are busy
        (decode time ~ encode time), and afterwards each survivor holds
        exactly one rebuilt chunk.  The replacement then "collects the
        decoded checkpoint chunks from the other ranks" (Section V-A),
        the extra ``s/net_bw`` Gather stage of Fig 11.  A final pass
        regenerates the lost parity slot ``P_f`` so the group is fully
        protected again.
        """
        n = self.comm.size
        me = self.comm.rank
        blob = yield from self.storage.load(_blob_key(dataset))
        parity = yield from self.storage.load(self.redundancy_key(dataset))
        chunks = split_into_chunks(blob, n)
        survivors = [r for r in range(n) if r != f]
        ns = len(survivors)
        p = survivors.index(me)
        if p == 0:
            # Ship the replicated group metadata so the replacement can
            # slice its rebuilt blob.
            meta = yield from self.storage.load_meta(_meta_key(dataset))
            yield self.comm.send_async(f, meta, 128.0, TAG_XOR_META)

        def contribution(m: int) -> Payload:
            j = slot_of_chunk(f, m, n)
            return parity if me == j else chunks[chunk_of_slot(me, j, n)]

        terminal: Optional[Payload] = None
        terminal_m = (p + 1) % ns  # the chunk whose pipeline ends at me
        for t in range(ns):
            m = (p - t) % ns  # the chunk I handle at step t
            if t == 0:
                buf = contribution(m).copy()
            else:
                env = yield self.comm.post_recv(
                    survivors[(p - 1) % ns], TAG_XOR_RING
                )
                buf = env.data
                yield self.mem_charge(buf.nbytes)
                buf.xor_inplace(contribution(m))
            if t == ns - 1:
                terminal = buf
            else:
                yield self.comm.send_async(
                    survivors[(p + 1) % ns], buf, buf.nbytes, TAG_XOR_RING
                )
        # Gather stage: every survivor forwards its one rebuilt chunk.
        yield self.comm.send_async(f, (terminal_m, terminal),
                                   terminal.nbytes, TAG_XOR_GATHER)
        # Parity regeneration: P_f = XOR of every survivor's chunk
        # assigned to slot f.  A binomial XOR-reduce (log2 depth, one
        # chunk per link) keeps this cheap next to the gather; the head
        # survivor forwards the finished slot to the replacement.
        acc = chunks[chunk_of_slot(me, f, n)].copy()
        mask = 1
        while mask < ns:
            if p & mask:
                dst = survivors[p - mask]
                yield self.comm.send_async(dst, acc, acc.nbytes, TAG_XOR_PARITY)
                break
            src = p + mask
            if src < ns:
                env = yield self.comm.post_recv(survivors[src], TAG_XOR_PARITY)
                yield self.mem_charge(acc.nbytes)
                acc.xor_inplace(env.data)
            mask <<= 1
        if p == 0:
            yield self.comm.send_async(f, acc, acc.nbytes, TAG_XOR_PARITY)
        return blob

    def rebuild_replacement(self, f: int, dataset: int):
        """Replacement side: collect one rebuilt chunk per survivor,
        plus the regenerated parity slot."""
        n = self.comm.size
        survivors = [r for r in range(n) if r != f]
        env = yield self.comm.post_recv(survivors[0], TAG_XOR_META)
        group_meta = env.data
        mine = group_meta["group"][str(f)]
        chunks: List[Optional[Payload]] = [None] * (n - 1)
        for _ in range(n - 1):
            env = yield self.comm.post_recv(ANY_SOURCE, TAG_XOR_GATHER)
            m, payload = env.data
            chunks[m] = payload
        blob = Payload.join(chunks, data_len=mine["blob_len"],
                            nbytes=mine["blob_nbytes"])
        env = yield self.comm.post_recv(survivors[0], TAG_XOR_PARITY)
        parity = env.data
        return blob, parity, group_meta


class PartnerScheme(RedundancyScheme):
    """Full-copy replication to the next group member.

    Each member ships its whole (padded) blob to its right neighbour
    in the group ring and stores the left neighbour's copy -- the
    ReStore / FTHP-MPI trade: double the storage and ``s`` bytes on
    the wire (cheaper than XOR's ``s + s/(n-1)``), but a restore is a
    single copy-back instead of a group-wide decode, and *multiple*
    simultaneous losses are repairable as long as no two adjacent
    members are gone.

    Rebuild of member ``f`` involves three parties: the *helper*
    ``(f+1) % n`` returns f's copy, and the *feeder* ``(f-1) % n``
    re-sends its own blob so the replacement is immediately protective
    again (the re-protection pass XOR gets from parity regeneration).
    With a group of two, helper and feeder are the same rank; the
    matching engine's FIFO-per-(source, tag) order keeps the two
    transfers unambiguous.
    """

    name = "partner"

    def redundancy_key(self, dataset: int) -> str:
        return f"partner@{dataset}"

    def storage_overhead(self, n: int) -> float:
        return 1.0 if n > 1 else 0.0

    def can_repair(self, missing: List[int], n: int) -> bool:
        if missing and n < 2:
            return False
        return all((f + 1) % n not in missing for f in missing)

    def encode(self, blob: Payload):
        n = self.comm.size
        i = self.comm.rank
        if n == 1:  # degenerate group: nobody to replicate to
            return None
        recv_evt = self.comm.post_recv((i - 1) % n, TAG_PARTNER)
        yield self.comm.send_async((i + 1) % n, blob, blob.nbytes, TAG_PARTNER)
        env = yield recv_evt
        return env.data  # the left neighbour's blob: my partner copy

    def assist_rebuild(self, f: int, dataset: int):
        n = self.comm.size
        me = self.comm.rank
        ret = None
        if me == (f + 1) % n:
            # Helper: return the lost member's copy (and the group
            # metadata so the replacement can slice its blob).
            group_meta = yield from self.storage.load_meta(_meta_key(dataset))
            yield self.comm.send_async(f, group_meta, 128.0, TAG_PARTNER_META)
            copy = yield from self.storage.load(self.redundancy_key(dataset))
            yield self.comm.send_async(f, copy, copy.nbytes, TAG_PARTNER)
        if me == (f - 1) % n:
            # Feeder: re-send my own blob so the replacement holds my
            # partner copy again (re-protection).
            blob = yield from self.storage.load(_blob_key(dataset))
            yield self.comm.send_async(f, blob, blob.nbytes, TAG_PARTNER)
            ret = blob
        return ret

    def rebuild_replacement(self, f: int, dataset: int):
        n = self.comm.size
        helper = (f + 1) % n
        feeder = (f - 1) % n
        env = yield self.comm.post_recv(helper, TAG_PARTNER_META)
        group_meta = env.data
        env = yield self.comm.post_recv(helper, TAG_PARTNER)
        blob = env.data
        env = yield self.comm.post_recv(feeder, TAG_PARTNER)
        redundancy = env.data
        return blob, redundancy, group_meta


class SingleScheme(RedundancyScheme):
    """Node-local only: no redundancy data at all.

    Zero network and storage cost per checkpoint, but a lost member is
    beyond level-1 repair -- pair with the level-2 (PFS) tier
    (``FmiConfig(level2_every=...)``) to complete SCR's LOCAL+PFS
    configuration from the paper's Section II.
    """

    name = "single"

    def encode(self, blob: Payload):
        return None
        yield  # pragma: no cover - makes this a generator

    def can_repair(self, missing: List[int], n: int) -> bool:
        return not missing


SCHEMES = {
    XorScheme.name: XorScheme,
    PartnerScheme.name: PartnerScheme,
    SingleScheme.name: SingleScheme,
}


def make_scheme(name: str) -> RedundancyScheme:
    """Instantiate a redundancy scheme by config name."""
    try:
        cls = SCHEMES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown redundancy scheme {name!r} "
            f"(choose from {sorted(SCHEMES)})"
        ) from None
    return cls()
