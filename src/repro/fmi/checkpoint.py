"""The in-memory (and, for SCR, filesystem) checkpoint engine.

Implements Section V:

* **storage adapters** -- FMI writes checkpoints "directly to memory
  using memcpy" (:class:`MemoryStorage`, charged through the node's
  memory bus); SCR writes "to memory via a file system"
  (:class:`TmpfsStorage`, charged through the tmpfs bandwidth + open
  latency + a CRC verification pass).  This difference is the ~10 %
  Himeno gap in Fig 15.

* **pluggable redundancy** -- the engine owns the *protocol* (geometry
  agreement, dataset versioning, keep-2 pruning, group/world restore
  agreement) and delegates the *data plane* to a
  :class:`~repro.fmi.redundancy.RedundancyScheme`: the paper's
  ring-pipelined XOR (Figure 9, the default), full-copy partner
  replication, or node-local-only storage.  See
  :mod:`repro.fmi.redundancy` for the schemes and their cost models.

* **dataset versioning** -- a failure can strike *during* a checkpoint,
  leaving some members with the new dataset and others without.  The
  engine therefore keeps the **two** most recent *complete* datasets
  (completion is marked only after the whole group encoded), and
  restore agrees -- group-wide and, via the ``world_agree`` hook,
  job-wide -- on the newest dataset every survivor still holds.  Any
  datasets newer than the agreed one belong to a rolled-back timeline
  and are pruned.

All of it moves *real bytes*: tests verify that a replacement rank's
restored checkpoint is bit-identical to what the failed rank saved --
for every scheme.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.node import Node
from repro.fmi.errors import UnrecoverableFailure
from repro.fmi.payload import Payload
from repro.fmi.redundancy import (
    TAG_XOR_GATHER,
    TAG_XOR_META,
    TAG_XOR_RING,
    RedundancyScheme,
    XorScheme,
    _blob_key,
    _meta_key,
)

__all__ = [
    "MemoryStorage",
    "TmpfsStorage",
    "CheckpointEngine",
    "XorCheckpointEngine",
    "CheckpointDataset",
    "TAG_XOR_RING",
    "TAG_XOR_GATHER",
    "TAG_XOR_META",
]

_COMPLETED_KEY = "completed"


class CheckpointDataset:
    """Metadata describing one stored checkpoint."""

    def __init__(self, dataset_id: int, sections: List[tuple],
                 blob_len: int, blob_nbytes: float):
        self.dataset_id = dataset_id
        #: per-user-buffer (data_len, declared_nbytes)
        self.sections = list(sections)
        self.blob_len = blob_len
        self.blob_nbytes = blob_nbytes

    def to_dict(self) -> dict:
        return {
            "dataset_id": self.dataset_id,
            "sections": [list(s) for s in self.sections],
            "blob_len": self.blob_len,
            "blob_nbytes": self.blob_nbytes,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CheckpointDataset":
        return cls(
            d["dataset_id"],
            [tuple(s) for s in d["sections"]],
            d["blob_len"],
            d["blob_nbytes"],
        )


class MemoryStorage:
    """FMI's diskless tier: raw memcpy into the process's memory.

    The backing dict lives in the owning process object, so it vanishes
    with the process -- which is precisely why redundancy across nodes
    exists.
    """

    def __init__(self, node: Node):
        self.node = node
        self._blobs: Dict[str, Payload] = {}
        self._meta: Dict[str, dict] = {}

    def store(self, key: str, payload: Payload):
        yield self.node.memcpy(payload.nbytes)
        self._blobs[key] = payload.copy()

    def load(self, key: str):
        payload = self._blobs[key]
        yield self.node.memcpy(payload.nbytes)
        return payload.copy()

    def has(self, key: str) -> bool:
        return key in self._blobs

    def unstore(self, key: str) -> None:
        self._blobs.pop(key, None)

    def store_meta(self, key: str, meta: dict):
        yield self.node.memcpy(64.0)
        self._meta[key] = dict(meta)

    def load_meta(self, key: str):
        yield self.node.memcpy(64.0)
        return dict(self._meta[key])

    def has_meta(self, key: str) -> bool:
        return key in self._meta

    def unstore_meta(self, key: str) -> None:
        self._meta.pop(key, None)

    def clear(self) -> None:
        self._blobs.clear()
        self._meta.clear()


class TmpfsStorage:
    """SCR's level-1 tier: node-local RAM *filesystem*.

    Real bytes land in the node's :class:`~repro.cluster.filesystem.Tmpfs`
    (so they survive an MPI job relaunch but die with the node), and
    every access pays filesystem bandwidth + open latency; writes add
    SCR's CRC32 verification read-back.
    """

    def __init__(self, node: Node, prefix: str):
        self.node = node
        self.prefix = prefix

    def _path(self, key: str) -> str:
        return f"{self.prefix}/{key}"

    def store(self, key: str, payload: Payload):
        yield self.node.tmpfs.write(
            self._path(key), payload.tobytes(), nbytes=payload.nbytes
        )
        # SCR verifies every file with a CRC32 pass after writing --
        # one more trip through the filesystem.
        yield self.node.tmpfs.read(self._path(key), nbytes=payload.nbytes)
        # sidecar meta records the declared size
        yield self.node.tmpfs.write(
            self._path(key) + ".size", repr(payload.nbytes).encode()
        )

    def load(self, key: str):
        size_raw = yield self.node.tmpfs.read(self._path(key) + ".size")
        declared = float(size_raw.decode())
        raw = yield self.node.tmpfs.read(self._path(key), nbytes=declared)
        import numpy as np

        return Payload(np.frombuffer(raw, dtype=np.uint8).copy(), nbytes=declared)

    def has(self, key: str) -> bool:
        return self.node.tmpfs.exists(self._path(key))

    def unstore(self, key: str) -> None:
        self.node.tmpfs.unlink(self._path(key))
        self.node.tmpfs.unlink(self._path(key) + ".size")

    def store_meta(self, key: str, meta: dict):
        import json

        yield self.node.tmpfs.write(self._path(key) + ".meta", json.dumps(meta).encode())

    def load_meta(self, key: str):
        import json

        raw = yield self.node.tmpfs.read(self._path(key) + ".meta")
        return json.loads(raw.decode())

    def has_meta(self, key: str) -> bool:
        return self.node.tmpfs.exists(self._path(key) + ".meta")

    def unstore_meta(self, key: str) -> None:
        self.node.tmpfs.unlink(self._path(key) + ".meta")

    def clear(self) -> None:
        for path in list(self.node.tmpfs.listdir()):
            if path.startswith(self.prefix + "/"):
                self.node.tmpfs.unlink(path)


class CheckpointEngine:
    """Group-collective checkpoint/restart for one redundancy-group
    member.

    ``comm`` is a communicator over exactly the group members (rank =
    position in group); ``storage`` is one of the adapters above;
    ``mem_charge(nbytes)`` charges encode compute time through the
    memory bus; ``scheme`` is a
    :class:`~repro.fmi.redundancy.RedundancyScheme` (XOR when omitted).
    All public methods are generators (drive with ``yield from`` inside
    a rank process).
    """

    #: complete datasets retained (2 tolerates one in-flight checkpoint)
    KEEP = 2

    #: world_agree sentinel: this group cannot recover at level 1.
    #: Smaller than every real dataset id, so a MIN-based agreement
    #: drags every group to the level-2 fallback.
    BEYOND = -2
    #: historical alias (the seed engine was XOR-only)
    BEYOND_XOR = BEYOND

    def __init__(self, comm, storage, mem_charge,
                 scheme: Optional[RedundancyScheme] = None):
        self.comm = comm
        self.storage = storage
        self.mem_charge = mem_charge
        self.sim = comm.api.sim
        self.scheme = scheme if scheme is not None else XorScheme()
        self.scheme.bind(self)

    def _trace_span(self, name: str, start: float, **args) -> None:
        """Emit one ``ckpt`` span for this member (world identity)."""
        api = self.comm.api
        self.sim.tracer.complete(
            name, "ckpt", start, rank=api.world_rank, node=api.node.id,
            group_rank=self.comm.rank, group_size=self.comm.size,
            scheme=self.scheme.name, **args,
        )

    def _trace_mark(self, name: str, **args) -> None:
        """Emit one instant ``ckpt`` marker.  Spans are recorded at
        phase *end* (with a retroactive start), so these begin markers
        are the only live signal that a phase just started -- the chaos
        engine keys mid-checkpoint fault injection off them."""
        api = self.comm.api
        self.sim.tracer.instant(
            name, "ckpt", rank=api.world_rank, node=api.node.id, **args,
        )

    # -- local dataset bookkeeping -------------------------------------------
    def completed_ids(self) -> List[int]:
        if not self.storage.has_meta(_COMPLETED_KEY):
            return []
        # Metadata dict reads are free of charge here (callers that
        # care run load_meta through the generator API).
        if isinstance(self.storage, MemoryStorage):
            return list(self.storage._meta[_COMPLETED_KEY]["ids"])
        import json

        raw = self.storage.node.tmpfs._files.get(
            self.storage._path(_COMPLETED_KEY) + ".meta"
        )
        return list(json.loads(raw.decode())["ids"]) if raw else []

    def _store_completed(self, ids: List[int]):
        yield from self.storage.store_meta(_COMPLETED_KEY, {"ids": sorted(ids)})

    def _drop_dataset(self, ds: int) -> None:
        self.storage.unstore(_blob_key(ds))
        rkey = self.scheme.redundancy_key(ds)
        if rkey is not None:
            self.storage.unstore(rkey)
        self.storage.unstore_meta(_meta_key(ds))

    def load_blob(self, dataset: int):
        """Read back the stored (padded) blob of a local dataset."""
        blob = yield from self.storage.load(_blob_key(dataset))
        return blob

    def reset_local(self):
        """Drop every local dataset (used before re-seeding level 1
        from a level-2 restore: local state is a stale timeline)."""
        for ds in self.completed_ids():
            self._drop_dataset(ds)
        yield from self._store_completed([])

    # ------------------------------------------------------------- checkpoint
    def checkpoint(self, payloads: Sequence[Payload], dataset_id: int):
        """Snapshot ``payloads``, encode redundancy across the group,
        and mark the dataset complete (retaining the last ``KEEP``).

        The rendezvous collectives (geometry agreement, meta
        allgather/completion barrier) always run hop-level: the
        interleaving of checkpoint traffic with failures is exactly
        what the recovery experiments measure.
        """
        with self.comm.api.hop_fidelity():
            meta = yield from self._checkpoint_impl(payloads, dataset_id)
        return meta

    def _checkpoint_impl(self, payloads, dataset_id):
        n = self.comm.size
        traced = self.sim.tracer.enabled
        t_total = self.sim.now
        if traced:
            self._trace_mark("ckpt.begin", dataset=dataset_id)
        sections = [(p.data.nbytes, p.nbytes) for p in payloads]
        blob = _concat(payloads)

        # Group members agree on a common (padded) blob geometry.
        dims = yield from self.comm.allreduce(
            (blob.data.nbytes, blob.nbytes), op=_pairmax, nbytes=16.0
        )
        max_len, max_declared = dims
        # Chunks must split evenly for every member (XOR: n-1 chunks).
        max_len = _round_up(max_len, max(1, self.scheme.pad_multiple(n)))
        blob = blob.padded(max_len, nbytes=max_declared)

        t_phase = self.sim.now
        yield from self.storage.store(_blob_key(dataset_id), blob)
        if traced:
            self._trace_span("ckpt.snapshot", t_phase, dataset=dataset_id,
                             nbytes=blob.nbytes)
        t_phase = self.sim.now
        if traced:
            self._trace_mark("ckpt.encode.begin", dataset=dataset_id,
                             nbytes=blob.nbytes)
        redundancy = yield from self.scheme.encode(blob)
        if traced:
            self._trace_span("ckpt.encode", t_phase, dataset=dataset_id,
                             nbytes=blob.nbytes)
        if redundancy is not None:
            t_phase = self.sim.now
            yield from self.storage.store(
                self.scheme.redundancy_key(dataset_id), redundancy
            )
            if traced:
                self._trace_span("ckpt.parity_store", t_phase,
                                 dataset=dataset_id, nbytes=redundancy.nbytes)
        t_phase = self.sim.now
        meta = CheckpointDataset(dataset_id, sections, max_len, blob.nbytes)
        # Metadata is tiny; replicate the whole group's metas everywhere
        # (as SCR does) so any survivor can describe a lost member's
        # checkpoint to its replacement.  The allgather doubles as the
        # group-wide completion barrier: once it returns, every member
        # has stored blob+redundancy.
        group_metas = yield from self.comm.allgather(meta.to_dict(), nbytes=96.0)
        yield from self.storage.store_meta(
            _meta_key(dataset_id),
            {"group": {str(pos): m for pos, m in enumerate(group_metas)}},
        )
        ids = [i for i in self.completed_ids() if i != dataset_id]
        ids.append(dataset_id)
        ids.sort()
        for old in ids[: -self.KEEP]:
            self._drop_dataset(old)
        yield from self._store_completed(ids[-self.KEEP :])
        if traced:
            self._trace_span("ckpt.meta", t_phase, dataset=dataset_id)
            self._trace_span("ckpt.checkpoint", t_total, dataset=dataset_id,
                             nbytes=blob.nbytes)
        metrics = self.sim.metrics
        if metrics.enabled:
            metrics.counter("ckpt.checkpoints").inc()
            metrics.histogram("ckpt.checkpoint_s").observe(
                self.sim.now - t_total
            )
        return meta

    # ---------------------------------------------------------------- restart
    def restore(self, world_agree=None, allow_beyond_xor: bool = False):
        """Group-collective restart.

        Collectively picks the newest dataset every survivor still
        holds (optionally narrowed job-wide through ``world_agree``, a
        generator-function mapping this group's candidate id to the
        global minimum), rebuilds the lost members the scheme can
        repair, prunes stale newer datasets, and returns
        ``(meta, payloads)`` -- or ``None`` when no checkpoint exists
        anywhere (cold start).

        If the scheme cannot repair this group's losses (more than one
        member for XOR, adjacent members for partner, any member for
        single) the group is *beyond level-1 repair*: with
        ``allow_beyond_xor`` (the multilevel path) the sentinel string
        ``"beyond-xor"`` is returned -- and, because the sentinel value
        :attr:`BEYOND` is smaller than every real dataset id, a
        MIN-based ``world_agree`` automatically drags **every** group to
        the level-2 fallback.  Otherwise
        :class:`UnrecoverableFailure` is raised.
        """
        t0 = self.sim.now
        if self.sim.tracer.enabled:
            self._trace_mark("ckpt.restore.begin")
        # restore collectives are hop-level for the same reason the
        # checkpoint rendezvous is
        with self.comm.api.hop_fidelity():
            result = yield from self._restore_inner(world_agree, allow_beyond_xor)
        if self.sim.tracer.enabled:
            if result == "beyond-xor":
                outcome, dataset = "beyond-xor", None
            elif result is None:
                outcome, dataset = "cold-start", None
            else:
                outcome, dataset = "restored", result[0].dataset_id
            self._trace_span("ckpt.restore", t0, outcome=outcome,
                             dataset=dataset)
        metrics = self.sim.metrics
        if metrics.enabled and result not in (None, "beyond-xor"):
            metrics.counter("ckpt.restores").inc()
            metrics.histogram("ckpt.restore_s").observe(self.sim.now - t0)
        return result

    def _restore_inner(self, world_agree, allow_beyond_xor: bool):
        mine = self.completed_ids()
        entries = yield from self.comm.allgather(list(mine), nbytes=16.0)
        n = len(entries)
        missing = [pos for pos, ids in enumerate(entries) if not ids]
        if len(missing) == n:
            # Nobody in the group has anything.  Without a deeper tier
            # that is a cold start; with one it might be a wiped group
            # (every member's node died), so let level 2 decide.
            candidate = self.BEYOND if allow_beyond_xor else -1
        else:
            survivor_sets = [set(ids) for ids in entries if ids]
            common = set.intersection(*survivor_sets)
            if not common or not self.scheme.can_repair(missing, n):
                # Either the losses exceed what this scheme encodes for,
                # or the survivors hold no common complete dataset.
                if not allow_beyond_xor:
                    raise UnrecoverableFailure(
                        f"{self.scheme.name} group beyond level-1 repair "
                        f"({len(missing)} members lost, common datasets: "
                        f"{sorted(common) if common else []})"
                    )
                candidate = self.BEYOND
            else:
                candidate = max(common)

        if world_agree is not None:
            dataset = yield from world_agree(candidate)
        else:
            dataset = candidate
        if dataset == self.BEYOND:
            return "beyond-xor"
        if dataset == -1:
            # Cold start everywhere: wipe any partial local state.
            for ds in mine:
                self._drop_dataset(ds)
            if mine:
                yield from self._store_completed([])
            return None
        if self.comm.rank not in missing and dataset not in mine:
            raise UnrecoverableFailure(
                f"agreed dataset {dataset} not held locally (have {mine})"
            )

        # Prune datasets newer than the agreed one: they belong to the
        # rolled-back timeline.
        if self.comm.rank not in missing:
            keep = [i for i in mine if i <= dataset]
            for ds in mine:
                if ds > dataset:
                    self._drop_dataset(ds)
            if keep != mine:
                yield from self._store_completed(keep)

        if not missing:
            blob = yield from self.storage.load(_blob_key(dataset))
            meta = yield from self._my_meta(dataset)
            return meta, _slice(blob, meta)

        # Rebuild every lost member (XOR repairs at most one; partner
        # repairs any non-adjacent set, one at a time).
        blob: Optional[Payload] = None
        meta: Optional[CheckpointDataset] = None
        for f in missing:
            t_rebuild = self.sim.now
            if self.comm.rank == f:
                blob, redundancy, group_meta = (
                    yield from self.scheme.rebuild_replacement(f, dataset)
                )
                if self.sim.tracer.enabled:
                    self._trace_span("ckpt.rebuild", t_rebuild,
                                     dataset=dataset, role="replacement")
                yield from self.storage.store(_blob_key(dataset), blob)
                if redundancy is not None:
                    yield from self.storage.store(
                        self.scheme.redundancy_key(dataset), redundancy
                    )
                yield from self.storage.store_meta(_meta_key(dataset), group_meta)
                yield from self._store_completed([dataset])
                meta = CheckpointDataset.from_dict(group_meta["group"][str(f)])
            else:
                assisted = yield from self.scheme.assist_rebuild(f, dataset)
                if assisted is not None:
                    if self.sim.tracer.enabled:
                        self._trace_span("ckpt.rebuild", t_rebuild,
                                         dataset=dataset, role="survivor")
                    blob = assisted
        if meta is None:
            # Survivor (or uninvolved member): the assist may already
            # have loaded my blob; otherwise read it back now.
            if blob is None:
                blob = yield from self.storage.load(_blob_key(dataset))
            meta = yield from self._my_meta(dataset)
        return meta, _slice(blob, meta)

    def _my_meta(self, dataset: int):
        raw = yield from self.storage.load_meta(_meta_key(dataset))
        return CheckpointDataset.from_dict(raw["group"][str(self.comm.rank)])

    # ------------------------------------------------ partial (logged) rebuild
    def rebuild_missing(self, missing: List[int]):
        """Sidecar rebuild for the message-logging recovery plane.

        Unlike :meth:`restore`, survivors are **not** rolled back: no
        world agreement, no pruning of newer datasets, and survivor
        storages are read-only except for the rebuilt members'.  The
        members in ``missing`` (group positions) receive the newest
        dataset common to every survivor; survivors assist exactly as
        in a global restore and keep their running state untouched.

        Returns ``(meta, payloads)`` on a rebuilt member, the dataset
        id on a survivor, or ``None`` on a group-wide cold start (no
        survivor has checkpointed yet -- the caller replays the full
        log from scratch).  Raises :class:`UnrecoverableFailure` when
        the scheme cannot repair ``missing``, or when the survivors
        hold no common complete dataset.
        """
        n = self.comm.size
        me = self.comm.rank
        missing = sorted(missing)
        mine = self.completed_ids()
        entries = yield from self.comm.allgather(list(mine), nbytes=16.0)
        survivor_sets = [
            set(ids) for pos, ids in enumerate(entries) if pos not in missing
        ]
        common = set.intersection(*survivor_sets) if survivor_sets else set()
        if not common:
            if any(survivor_sets):
                raise UnrecoverableFailure(
                    f"{self.scheme.name} group survivors hold no common "
                    f"dataset (partial rollback cannot proceed)"
                )
            return None  # nobody has checkpointed yet: cold start
        if not self.scheme.can_repair(missing, n):
            raise UnrecoverableFailure(
                f"{self.scheme.name} group beyond repair for partial "
                f"rollback ({len(missing)} members lost)"
            )
        dataset = max(common)
        if me not in missing and dataset not in mine:
            raise UnrecoverableFailure(
                f"agreed dataset {dataset} not held locally (have {mine})"
            )
        blob: Optional[Payload] = None
        meta: Optional[CheckpointDataset] = None
        for f in missing:
            t_rebuild = self.sim.now
            if me == f:
                blob, redundancy, group_meta = (
                    yield from self.scheme.rebuild_replacement(f, dataset)
                )
                if self.sim.tracer.enabled:
                    self._trace_span("ckpt.rebuild", t_rebuild,
                                     dataset=dataset, role="replacement")
                yield from self.storage.store(_blob_key(dataset), blob)
                if redundancy is not None:
                    yield from self.storage.store(
                        self.scheme.redundancy_key(dataset), redundancy
                    )
                yield from self.storage.store_meta(_meta_key(dataset), group_meta)
                yield from self._store_completed([dataset])
                meta = CheckpointDataset.from_dict(group_meta["group"][str(f)])
            else:
                assisted = yield from self.scheme.assist_rebuild(f, dataset)
                if assisted is not None and self.sim.tracer.enabled:
                    self._trace_span("ckpt.rebuild", t_rebuild,
                                     dataset=dataset, role="survivor")
        if me in missing:
            return meta, _slice(blob, meta)
        return dataset


class XorCheckpointEngine(CheckpointEngine):
    """The seed engine's name: a :class:`CheckpointEngine` pinned to
    the paper's ring-pipelined XOR scheme."""

    def __init__(self, comm, storage, mem_charge):
        super().__init__(comm, storage, mem_charge, scheme=XorScheme())


# ------------------------------------------------------------------ helpers
def _pairmax(a, b):
    return (max(a[0], b[0]), max(a[1], b[1]))


def _round_up(value: int, multiple: int) -> int:
    return -(-value // multiple) * multiple


def _concat(payloads: Sequence[Payload]) -> Payload:
    import numpy as np

    if not payloads:
        return Payload(np.zeros(1, dtype=np.uint8), nbytes=1.0)
    data = np.concatenate([p.data for p in payloads])
    declared = sum(p.nbytes for p in payloads)
    return Payload(data, nbytes=max(declared, float(data.nbytes)))


def _slice(blob: Payload, meta: CheckpointDataset) -> List[Payload]:
    out: List[Payload] = []
    offset = 0
    for data_len, declared in meta.sections:
        piece = blob.data[offset : offset + data_len].copy()
        out.append(Payload(piece, nbytes=max(declared, float(data_len))))
        offset += data_len
    return out
