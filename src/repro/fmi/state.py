"""Process states (Figure 5) and a transition log for observability."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

__all__ = ["ProcState", "Transition", "TransitionLog"]


class ProcState(enum.Enum):
    """The paper's three live states plus terminal ones."""

    H1_BOOTSTRAPPING = "H1"
    H2_CONNECTING = "H2"
    H3_RUNNING = "H3"
    DONE = "done"
    DEAD = "dead"


@dataclass(frozen=True)
class Transition:
    time: float
    rank: int
    incarnation: int
    state: ProcState
    epoch: int


class TransitionLog:
    """Job-wide record of every state transition (tests and traces)."""

    def __init__(self) -> None:
        self.entries: List[Transition] = []

    def record(self, time: float, rank: int, incarnation: int,
               state: ProcState, epoch: int) -> None:
        self.entries.append(Transition(time, rank, incarnation, state, epoch))

    def of_rank(self, rank: int) -> List[Transition]:
        return [t for t in self.entries if t.rank == rank]

    def states_of_rank(self, rank: int) -> List[ProcState]:
        return [t.state for t in self.of_rank(rank)]
