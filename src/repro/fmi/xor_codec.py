"""Pure XOR erasure-code math (no simulation, no timing).

The scheme is SCR's level-1 XOR encoding (Section V-A / Figure 9),
RAID-5 style with rotated parity:

* a group of ``n`` ranks; rank ``r``'s checkpoint is split into
  ``n - 1`` equal chunks ``C_r[0..n-2]``;
* chunk ``m`` of rank ``r`` is assigned to *parity slot*
  ``j = (r + 1 + m) mod n`` (never ``r`` itself), so each slot ``j``
  receives exactly one chunk from every rank except ``j``;
* rank ``j`` stores ``P_j = XOR of its slot's chunks`` -- an extra
  ``s / (n-1)`` bytes, the 6.6 % memory overhead at group size 16 the
  paper quotes.

Losing any single rank ``f`` is repairable: chunk ``C_f[m]`` lives in
slot ``j = (f+1+m) mod n`` and equals ``P_j`` XORed with the surviving
chunks of that slot.

These functions operate on :class:`~repro.fmi.payload.Payload` chunks;
the timed engine (:mod:`repro.fmi.checkpoint`) moves the same chunks
through the simulated network.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.fmi.payload import Payload

__all__ = [
    "slot_of_chunk",
    "chunk_of_slot",
    "split_into_chunks",
    "compute_parity_slot",
    "reconstruct_chunk",
    "encode_group",
    "reconstruct_rank",
]


def slot_of_chunk(rank: int, m: int, n: int) -> int:
    """Parity slot holding chunk ``m`` of ``rank`` in a group of ``n``."""
    if not 0 <= m < n - 1:
        raise ValueError(f"chunk index {m} out of range for group size {n}")
    return (rank + 1 + m) % n


def chunk_of_slot(rank: int, j: int, n: int) -> int:
    """Which chunk of ``rank`` lives in slot ``j`` (requires j != rank)."""
    if j == rank:
        raise ValueError("a rank contributes no chunk to its own slot")
    return (j - rank - 1) % n


def split_into_chunks(payload: Payload, n: int) -> List[Payload]:
    """Split a (padded) checkpoint into the group's ``n - 1`` chunks."""
    if n < 2:
        raise ValueError("XOR group size must be >= 2")
    return payload.split(n - 1)


def compute_parity_slot(j: int, chunks_by_rank: Dict[int, List[Payload]], n: int) -> Payload:
    """``P_j`` from every member's chunk assigned to slot ``j``."""
    parity = None
    for rank in range(n):
        if rank == j:
            continue
        chunk = chunks_by_rank[rank][chunk_of_slot(rank, j, n)]
        if parity is None:
            parity = chunk.copy()
        else:
            parity.xor_inplace(chunk)
    assert parity is not None
    return parity


def encode_group(payloads: Sequence[Payload]) -> List[Payload]:
    """Parity slots ``P_0..P_{n-1}`` for a group's (padded) checkpoints.

    Reference implementation used by tests and by the timed engine's
    data plane.  Payload ``i`` belongs to group member ``i``.
    """
    n = len(payloads)
    if n < 2:
        raise ValueError("XOR group size must be >= 2")
    lengths = {p.data.nbytes for p in payloads}
    if len(lengths) != 1:
        raise ValueError("group payloads must be padded to equal length")
    chunks = {r: split_into_chunks(payloads[r], n) for r in range(n)}
    return [compute_parity_slot(j, chunks, n) for j in range(n)]


def reconstruct_chunk(
    f: int, m: int, parity_j: Payload, chunks_by_rank: Dict[int, List[Payload]], n: int
) -> Payload:
    """Rebuild chunk ``m`` of failed rank ``f`` from slot ``j``'s
    parity and the surviving chunks of that slot."""
    j = slot_of_chunk(f, m, n)
    out = parity_j.copy()
    for rank in range(n):
        if rank in (f, j):
            continue
        out.xor_inplace(chunks_by_rank[rank][chunk_of_slot(rank, j, n)])
    return out


def reconstruct_rank(
    f: int,
    survivor_payloads: Dict[int, Payload],
    parity_slots: Dict[int, Payload],
    n: int,
    data_len: int,
    nbytes: float,
) -> Payload:
    """Rebuild rank ``f``'s full (padded) checkpoint.

    ``survivor_payloads`` maps every surviving member rank to its own
    checkpoint; ``parity_slots`` maps slot index ``j`` to ``P_j`` for
    the slots needed (all ``j != f``).
    """
    if f in survivor_payloads:
        raise ValueError("failed rank listed among survivors")
    if set(survivor_payloads) != set(range(n)) - {f}:
        raise ValueError("need every survivor's checkpoint to reconstruct")
    chunks = {r: split_into_chunks(p, n) for r, p in survivor_payloads.items()}
    rebuilt = [
        reconstruct_chunk(f, m, parity_slots[slot_of_chunk(f, m, n)], chunks, n)
        for m in range(n - 1)
    ]
    return Payload.join(rebuilt, data_len=data_len, nbytes=nbytes)
