"""Checkpoint payloads: declared size vs. representative data.

The paper checkpoints 6 GB/node; materialising that for 1,536 simulated
processes is impossible, so a :class:`Payload` separates:

* ``nbytes``  -- the *declared* size, used for every timing charge
  (memcpy, network transfer, XOR encode);
* ``data``    -- a real ``uint8`` array carried through every code path
  (messages, XOR parity, reconstruction) so data integrity is
  verifiable bit-for-bit.

When ``nbytes == data.nbytes`` (the default for :meth:`wrap`) the model
is exact; large-scale benches use :meth:`synthetic` payloads whose
representative array is small but whose declared size is the full
checkpoint.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

__all__ = ["Payload"]

ArrayLike = Union[np.ndarray, bytes, bytearray, memoryview]


class Payload:
    """A sized blob of checkpoint (or message) data."""

    __slots__ = ("nbytes", "data")

    def __init__(self, data: np.ndarray, nbytes: float = None):
        if not isinstance(data, np.ndarray):
            raise TypeError("Payload data must be a numpy array")
        self.data = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        self.nbytes = float(self.data.nbytes if nbytes is None else nbytes)
        if self.nbytes < self.data.nbytes:
            raise ValueError(
                f"declared nbytes ({self.nbytes}) smaller than real data "
                f"({self.data.nbytes})"
            )

    # -- constructors ---------------------------------------------------------
    @classmethod
    def wrap(cls, obj: ArrayLike) -> "Payload":
        """Exact payload around real bytes / an ndarray (copies)."""
        if isinstance(obj, np.ndarray):
            return cls(obj.copy())
        if not isinstance(obj, (bytes, bytearray, memoryview)):
            # Guard against bytes(int) creating an n-byte zero buffer.
            raise TypeError(
                f"cannot wrap {type(obj).__name__}; pass an ndarray or bytes"
            )
        return cls(np.frombuffer(bytes(obj), dtype=np.uint8).copy())

    @classmethod
    def synthetic(cls, nbytes: float, seed: int = 0, rep_bytes: int = 256) -> "Payload":
        """Declared-size payload with a small deterministic witness array."""
        rep = min(int(rep_bytes), int(nbytes)) or 1
        rng = np.random.default_rng(seed)
        return cls(rng.integers(0, 256, size=rep, dtype=np.uint8), nbytes=nbytes)

    @classmethod
    def zeros_like(cls, other: "Payload") -> "Payload":
        return cls(np.zeros_like(other.data), nbytes=other.nbytes)

    # -- behaviour ------------------------------------------------------------
    @property
    def exact(self) -> bool:
        """True when declared size equals real size (full fidelity)."""
        return self.nbytes == self.data.nbytes

    def copy(self) -> "Payload":
        return Payload(self.data.copy(), nbytes=self.nbytes)

    def xor_inplace(self, other: "Payload") -> "Payload":
        """``self ^= other`` over the representative data.

        Payloads in one XOR group must have equal representative
        lengths (group members are padded by the checkpoint engine).
        """
        if other.data.nbytes != self.data.nbytes:
            raise ValueError("XOR of payloads with mismatched data lengths")
        np.bitwise_xor(self.data, other.data, out=self.data)
        return self

    def padded(self, data_len: int, nbytes: float) -> "Payload":
        """Copy padded with zeros to ``data_len`` real bytes and at
        least ``nbytes`` declared bytes (XOR groups pad to max)."""
        if data_len < self.data.nbytes:
            raise ValueError("cannot pad to a smaller length")
        buf = np.zeros(data_len, dtype=np.uint8)
        buf[: self.data.nbytes] = self.data
        return Payload(buf, nbytes=max(nbytes, float(data_len), self.nbytes))

    def split(self, k: int) -> List["Payload"]:
        """Split into ``k`` equal chunks (zero-padding the tail).

        Chunk declared size is ``ceil(nbytes / k)``; chunk data length
        is ``ceil(data_len / k)``.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        chunk_data = -(-self.data.nbytes // k)  # ceil
        chunk_declared = self.nbytes / k
        out = []
        for i in range(k):
            piece = np.zeros(chunk_data, dtype=np.uint8)
            lo = i * chunk_data
            hi = min(lo + chunk_data, self.data.nbytes)
            if lo < self.data.nbytes:
                piece[: hi - lo] = self.data[lo:hi]
            out.append(Payload(piece, nbytes=max(chunk_declared, float(chunk_data))))
        return out

    @staticmethod
    def join(chunks: List["Payload"], data_len: int, nbytes: float) -> "Payload":
        """Inverse of :meth:`split`: concatenate and trim."""
        buf = np.concatenate([c.data for c in chunks])[:data_len]
        return Payload(buf.copy(), nbytes=nbytes)

    def tobytes(self) -> bytes:
        return self.data.tobytes()

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Payload)
            and self.nbytes == other.nbytes
            and self.data.nbytes == other.data.nbytes
            and bool(np.array_equal(self.data, other.data))
        )

    def __hash__(self):  # pragma: no cover - payloads are not dict keys
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover
        marker = "" if self.exact else f" (rep {self.data.nbytes}B)"
        return f"<Payload {self.nbytes:.0f}B{marker}>"
