"""FmiContext -- the per-rank handle FMI applications program against.

MPI-like semantics come from :class:`~repro.mpi.api.ParallelApi`; the
FMI specifics are:

* **virtual ranks** -- routing goes through the job's *current*
  endpoint table, so a rank keeps its identity across process
  replacement (Figure 2);
* **epoch stamping** -- every envelope carries the current recovery
  epoch, and the transport drops stale pre-failure messages
  (Section IV-D);
* **failure errors** -- once this process has been notified of a
  failure, every communication call raises
  :class:`~repro.fmi.errors.FailureNotified` until recovery completes
  (the runtime driver catches it; applications do not);
* **FMI_Loop** -- :meth:`loop` synchronises, checkpoints, and
  rolls back / restores, per Section III-B.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.fmi.checkpoint import CheckpointEngine
from repro.fmi.errors import FailureNotified
from repro.fmi.redundancy import make_scheme
from repro.fmi.payload import Payload
from repro.mpi.api import ParallelApi
from repro.mpi.communicator import Communicator

__all__ = ["FmiContext"]

#: reserved communicator-id space for XOR-group communicators
GROUP_COMM_BASE = 1 << 30

CkptBuffer = Union[np.ndarray, Payload]


class FmiContext(ParallelApi):
    """What an FMI application generator receives."""

    def __init__(self, fproc):
        job = fproc.job
        super().__init__(job.transport, fproc.ctx, fproc.rank, job.num_ranks)
        self.fproc = fproc
        self.fmi_job = job
        layout = job.xor_layout
        group_idx = layout.group_of(fproc.rank)
        self.group_comm = Communicator(
            self, GROUP_COMM_BASE + group_idx, layout.members(group_idx)
        )
        self.engine = CheckpointEngine(
            self.group_comm, fproc.storage, self.memcpy,
            scheme=make_scheme(job.config.redundancy),
        )
        self.l2store = None
        if job.config.level2_every is not None:
            from repro.fmi.multilevel import Level2Store

            self.l2store = Level2Store(job.machine.pfs, job.name, fproc.rank)

    # -- FMI-specific plumbing ------------------------------------------------
    def _check_ok(self) -> None:
        if self.fproc.notified_pending:
            raise FailureNotified(
                self.fproc.notified_gen, "communication after failure notice"
            )

    def _epoch(self) -> int:
        return self.ctx.epoch

    def _route(self, world_rank: int) -> Tuple[int, int]:
        return self.fmi_job.addr_table[world_rank]

    def _stamp(self, env, dst_world: int) -> None:
        plane = self.fmi_job.recovery_plane
        if plane is not None:
            plane.on_send(self.world_rank, dst_world, env, self.ctx)

    def _post_recv(self, comm: Communicator, source: int, tag: int):
        plane = self.fmi_job.recovery_plane
        if plane is not None and (
            source == self.ANY_SOURCE or tag == self.ANY_TAG
        ):
            if plane.kind == "replicated":
                # Replica consistency: followers replay the lead's
                # recorded match order (parking until it is recorded);
                # the lead posts natively and the sink records.
                self._check_ok()
                evt = plane.post_wildcard(self, source, tag, comm.id)
                if evt is not None:
                    return evt
                return super()._post_recv(comm, source, tag)
            # Piecewise-deterministic replay: a re-executed wildcard
            # receive is rewritten to the *exact* (source, tag) its
            # original execution matched, in recorded order, until the
            # determinant cursor reaches the failure point.
            det = plane.next_determinant(self.world_rank, source, tag, comm.id)
            if det is not None:
                self._check_ok()
                evt = self.ctx.matching.post(det.env_src, det.env_tag, comm.id)
                plane.check_replayed_match(evt, det, self.world_rank)
                return evt
        return super()._post_recv(comm, source, tag)

    # -- the programming model (Figure 3) ------------------------------------------
    def init(self):
        """``FMI_Init``.  The heavy lifting (PMGR bootstrap, log-ring
        build) happened in the runtime's H1/H2 states before the
        application generator started, so this is a cheap sync point
        kept for API fidelity."""
        self._check_ok()
        return None
        yield  # pragma: no cover - makes this a generator

    def finalize(self):
        """``FMI_Finalize``: global barrier, then teardown."""
        yield from self.barrier()

    def loop(self, ckpts: Sequence[CkptBuffer], nbytes: Optional[Sequence[float]] = None):
        """``FMI_Loop(ckpts, sizes, len)``.

        Returns the loop id (0, 1, 2, ... in failure-free execution).
        On the first call after a recovery it restores the last good
        checkpoint *into* ``ckpts`` and returns the loop id at which
        that checkpoint was written; the application then redoes the
        lost iterations.  Checkpoints are written on the first call and
        thereafter per the interval policy (fixed interval or
        Vaidya-tuned from the configured MTBF).

        The whole call runs under :meth:`hop_fidelity`: checkpoint
        rendezvous, restore agreement and log replay are exactly where
        per-hop message timing is load-bearing, so the collectives
        inside never take the macro-event fast path.
        """
        with self.hop_fidelity():
            result = yield from self._loop_impl(ckpts, nbytes)
        return result

    def _loop_impl(self, ckpts, nbytes):
        self._check_ok()
        rs = self.fproc.rank_state
        plane = self.fmi_job.recovery_plane
        if rs.restore_pending:
            rs.restore_pending = False
            if plane is not None:
                # Partial rollback: sidecar rebuild + log replay; no
                # world agreement, survivors never enter this branch.
                restored = yield from plane.partial_restore(self)
            else:
                restored = yield from self.engine.restore(
                    world_agree=self._agree_min,
                    allow_beyond_xor=self.l2store is not None,
                )
            if restored == "beyond-xor":
                restored = yield from self._restore_from_level2()
            if restored is not None:
                meta, payloads = restored
                yield from self._copy_into(ckpts, payloads)
                rs.loop_id = meta.dataset_id + 1
                rs.last_ckpt_loop = meta.dataset_id
                rs.policy.reset_after_recovery(self.now)
                self.fmi_job.restores_done += 1
                return meta.dataset_id
            # Cold start: the failure predates the first checkpoint.
            rs.loop_id = 0
            rs.policy = type(rs.policy)(self.fmi_job.config)

        want = rs.policy.should_checkpoint(self.now)
        if self.fmi_job.config.checkpoint_enabled:
            # "FMI_Loop ... synchronizes the application": the
            # checkpoint decision is global, so a time-based (Vaidya)
            # policy can never split the ranks.
            from repro.mpi.ops import MAX

            want = bool((yield from self.allreduce(1 if want else 0, MAX)))
        if want:
            t0 = self.now
            payloads = [self._as_payload(c, i, nbytes) for i, c in enumerate(ckpts)]
            if plane is not None:
                plane.note_ckpt_begin(self.world_rank, rs.loop_id, self.ctx)
            meta = yield from self.engine.checkpoint(payloads, dataset_id=rs.loop_id)
            rs.policy.record_checkpoint(self.now, self.now - t0)
            rs.last_ckpt_loop = rs.loop_id
            self.fmi_job.checkpoints_done += 1
            if plane is not None:
                plane.note_rank_checkpoint(self.world_rank, rs.loop_id, self.ctx)
            if (
                self.l2store is not None
                and rs.loop_id >= self.fmi_job.next_l2_at
            ):
                yield from self._flush_level2(meta)

        current = rs.loop_id
        rs.loop_id += 1
        return current

    # -- level 2 (multilevel C/R, §VIII) ---------------------------------------
    def _flush_level2(self, meta):
        """Copy the just-written level-1 dataset to the PFS and stamp
        it complete once every rank has flushed."""
        job = self.fmi_job
        ds = meta.dataset_id
        blob = yield from self.engine.load_blob(ds)
        yield from self.l2store.flush(ds, blob, meta.sections)
        yield from self.barrier()  # everyone's blob is on the PFS
        if self.rank == 0:
            yield from self.l2store.mark_complete(ds, self.size)
        yield from self.barrier()  # marker visible before proceeding
        keep = self.l2store.complete_datasets()[-2:]
        self.l2store.prune(keep)
        job.next_l2_at = ds + job.config.level2_every
        if self.rank == 0:
            job.level2_flushes += 1

    def _restore_from_level2(self):
        """The failure exceeded XOR protection: roll the whole job back
        to the newest complete PFS dataset, then re-seed level 1."""
        job = self.fmi_job
        ds = yield from self._agree_min(self.l2store.latest_for_me())
        if ds < 0:
            return None  # no level-2 dataset either: cold start
        blob, sections = yield from self.l2store.read(ds)
        payloads = _slice_sections(blob, sections)
        # Local level-1 state is a stale timeline; wipe and re-encode
        # so the XOR tier protects the restored state immediately.
        yield from self.engine.reset_local()
        meta = yield from self.engine.checkpoint(payloads, dataset_id=ds)
        if self.rank == 0:
            job.level2_restores += 1
        return meta, payloads

    def _agree_min(self, candidate: int):
        """Job-wide agreement on the restore dataset (world MIN).

        Hop-fidelity even when driven outside :meth:`loop` (the
        checkpoint engine takes this as its ``world_agree`` callback).
        """
        from repro.mpi.ops import MIN

        with self.hop_fidelity():
            result = yield from self.allreduce(candidate, MIN)
        return result


    # -- helpers -----------------------------------------------------------------
    @staticmethod
    def _as_payload(buf: CkptBuffer, index: int, nbytes) -> Payload:
        declared = None if nbytes is None else float(nbytes[index])
        if isinstance(buf, Payload):
            return buf if declared is None else Payload(buf.data, nbytes=declared)
        if isinstance(buf, np.ndarray):
            return Payload(buf.copy(), nbytes=declared)
        raise TypeError("checkpoint buffers must be numpy arrays or Payloads")

    def _copy_into(self, ckpts: Sequence[CkptBuffer], payloads: List[Payload]):
        if len(ckpts) != len(payloads):
            raise ValueError(
                f"checkpoint has {len(payloads)} buffers, app passed {len(ckpts)}"
            )
        total = sum(p.nbytes for p in payloads)
        yield self.memcpy(total)  # restoring user buffers is one more memcpy
        for buf, payload in zip(ckpts, payloads):
            if isinstance(buf, Payload):
                if buf.data.nbytes != payload.data.nbytes:
                    raise ValueError("restored payload shape mismatch")
                buf.data[:] = payload.data
                buf.nbytes = payload.nbytes
            else:
                flat = buf.view(np.uint8).reshape(-1)
                if flat.nbytes != payload.data.nbytes:
                    raise ValueError("restored array shape mismatch")
                flat[:] = payload.data
def _slice_sections(blob: Payload, sections) -> List[Payload]:
    out = []
    offset = 0
    for data_len, declared in sections:
        piece = blob.data[offset : offset + data_len].copy()
        out.append(Payload(piece, nbytes=max(float(declared), float(data_len))))
        offset += data_len
    return out
