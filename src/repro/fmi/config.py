"""FMI runtime configuration (the paper's environment variables)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["FmiConfig", "RECOVERY_MODES", "check_recovery_mode"]

#: recovery-plane selection: "global" rolls every rank back to the last
#: coordinated checkpoint; "logged" replays sender-based message logs
#: into only the restarted ranks (partial rollback); "replicated" backs
#: every virtual rank with live replica processes and *fails over*
#: instead of rolling back
RECOVERY_MODES = ("global", "logged", "replicated")


def check_recovery_mode(name: str) -> str:
    """Validate a recovery-plane name; returns it unchanged."""
    if name not in RECOVERY_MODES:
        raise ValueError(
            f"unknown recovery mode {name!r} "
            f"(choose from {sorted(RECOVERY_MODES)})"
        )
    return name


@dataclass
class FmiConfig:
    """Knobs of the FMI runtime.

    Mirrors the paper's configuration surface: a fixed checkpoint
    ``interval`` (the *interval* environment variable, in FMI_Loop
    iterations) **or** an expected ``mtbf_seconds`` from which the
    runtime auto-tunes a time-based interval with Vaidya's model
    (Section III-B).  If neither is given, a checkpoint is written on
    the first FMI_Loop call only (the minimum the paper guarantees).
    """

    #: checkpoint every k-th FMI_Loop call (k >= 1); None = use MTBF
    interval: Optional[int] = None
    #: expected machine MTBF driving Vaidya auto-tuning; None = off
    mtbf_seconds: Optional[float] = None
    #: redundancy group size in ranks (Section V-C tunes this; 16 is
    #: the paper's choice). Groups are laid out across nodes.
    xor_group_size: int = 16
    #: level-1 redundancy scheme: "xor" (the paper's ring-pipelined
    #: parity), "partner" (full-copy neighbour replication), or
    #: "single" (node-local only; pair with ``level2_every``)
    redundancy: str = "xor"
    #: recovery plane: "global" (every failure rolls all ranks back to
    #: the last checkpoint -- the paper's behaviour) or "logged"
    #: (sender-based message logging + receiver determinants: only the
    #: restarted ranks roll back, survivors replay logged traffic) or
    #: "replicated" (dual-modular ranks: a primary death promotes the
    #: live replica in place -- no rollback at all)
    recovery: str = "global"
    #: physical processes per virtual rank under recovery="replicated"
    #: (2 = dual-modular redundancy, the FTHP-MPI default); ignored by
    #: the rollback-based planes
    replication_degree: int = 2
    #: log-ring base k (Section IV-C; k=2 is the paper's default)
    logring_k: int = 2
    #: pre-reserved spare nodes requested with the allocation
    spare_nodes: int = 1
    #: master switch: False disables FMI_Loop checkpointing entirely
    #: ("users can run with the fault tolerance capabilities disabled")
    checkpoint_enabled: bool = True
    #: multilevel C/R (the paper's §VIII future work): every k-th
    #: level-1 checkpoint is also flushed to the PFS, and failures that
    #: exceed XOR protection fall back to the newest level-2 dataset.
    #: None disables level 2 (the 2014 prototype's behaviour).
    level2_every: Optional[int] = None
    #: give up after this many recoveries (safety valve for tests);
    #: None = unlimited, the paper's run-through-everything behaviour
    max_recoveries: Optional[int] = None
    #: how long fmirun will wait for the resource manager to grant a
    #: replacement node before aborting the job.  None = wait forever
    #: (the paper: "fmirun waits until new nodes are allocated").
    replacement_timeout: Optional[float] = None
    #: how long the detector sits on a partition-rooted disconnect
    #: before acting on it: the suspicion is verified out-of-band
    #: (fmirun's management network) and dropped if the suspect is
    #: alive, preventing split-brain double recovery on a cut.
    suspicion_grace: float = 0.5

    def __post_init__(self) -> None:
        if self.interval is not None and self.interval < 1:
            raise ValueError("interval must be >= 1")
        if self.mtbf_seconds is not None and self.mtbf_seconds <= 0:
            raise ValueError("mtbf_seconds must be positive")
        if self.xor_group_size < 2:
            raise ValueError("xor_group_size must be >= 2")
        # Late import: redundancy.py owns the scheme registry and the
        # config module must stay importable before it.
        from repro.fmi.redundancy import SCHEMES

        if self.redundancy not in SCHEMES:
            raise ValueError(
                f"unknown redundancy scheme {self.redundancy!r} "
                f"(choose from {sorted(SCHEMES)})"
            )
        check_recovery_mode(self.recovery)
        if self.recovery == "logged" and self.level2_every is not None:
            raise ValueError(
                "recovery='logged' does not support multilevel C/R "
                "(level2_every): partial rollback restores from the "
                "level-1 tier only"
            )
        if self.replication_degree < 1:
            raise ValueError(
                "replication_degree must be >= 1 (1 = no redundancy, "
                "2 = dual-modular)"
            )
        if self.recovery == "replicated" and self.level2_every is not None:
            raise ValueError(
                "recovery='replicated' does not support multilevel C/R "
                "(level2_every): failover promotes a live replica and "
                "never restores from a checkpoint tier"
            )
        if (self.recovery == "replicated"
                and self.spare_nodes < self.replication_degree - 1):
            raise ValueError(
                f"recovery='replicated' with replication_degree="
                f"{self.replication_degree} needs spare_nodes >= "
                f"{self.replication_degree - 1} to re-arm replicas after "
                f"a failover (got spare_nodes={self.spare_nodes})"
            )
        if self.logring_k < 2:
            raise ValueError("logring_k must be >= 2")
        if self.spare_nodes < 0:
            raise ValueError("spare_nodes must be >= 0")
        if self.level2_every is not None and self.level2_every < 1:
            raise ValueError("level2_every must be >= 1")
        if self.suspicion_grace <= 0:
            raise ValueError("suspicion_grace must be positive")
