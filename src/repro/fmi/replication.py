"""Replication recovery plane: dual-modular ranks that fail over.

Every virtual rank is backed by ``replication_degree`` physical
processes (FTHP-MPI's model; ReStore's in-memory state angle).  All
copies execute the application; the *lead* copy owns the rank's entry
in the endpoint table, and the transport mirrors every lseq-stamped
envelope addressed to a lead onto its live replicas, so each copy
observes the same message stream.

Three mechanisms keep the copies bit-identical:

* **channel dedup** -- senders stamp ``env.lseq = (src, dst, n)`` from
  a per-context channel counter (the msglog determinant machinery);
  since every copy of a sender re-sends the same logical message, each
  receiving copy keeps the first arrival per ``(src, n)`` and drops
  the rest.
* **determinant latch** -- wildcard receives are nondeterministic, so
  the lead records ``(env_src, env_tag)`` per match into a per-rank
  determinant list and followers *replay* it: their wildcard posts are
  rewritten to the exact recorded source, parking until the lead's
  record arrives.  A promoted copy first drains any recorded
  determinants it has not consumed, then posts natively.
* **standby re-arm** -- a respawned copy buffers mirrored traffic,
  waits for the lead's next checkpoint, clones the lead's in-memory
  checkpoint storage plus the channel counters snapshotted at that
  checkpoint, restores, and re-executes into sync (its duplicate sends
  are suppressed at every receiver by the channel dedup).

Failure handling is a two-tier ladder (``try_failover``):

* a death that leaves every virtual rank with at least one live,
  synced copy is absorbed without *any* rollback -- replica-only
  deaths complete recovery instantly; a lead death promotes the
  surviving copy in place after ``FAILOVER_DELAY`` while survivors
  never leave their compute state (H3);
* only when some rank loses its last synced copy does the plane fall
  back to the classic coordinated restore: it elects one copy per
  rank, retires the rest to the standby protocol, and the elected
  cohort performs a plain global rollback (epoch-fenced by ``era``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.fmi.checkpoint import _slice
from repro.mpi.datatypes import snapshot as _snapshot
from repro.net.message import Envelope
from repro.simt.kernel import Event

__all__ = ["ReplicationPlane", "ReplicaDeterminant"]


class ReplicaDeterminant:
    """One recorded wildcard match: what the lead actually received."""

    __slots__ = ("env_src", "env_tag", "comm_id", "lseq")

    def __init__(self, env_src: int, env_tag: int, comm_id: int, lseq):
        self.env_src = env_src
        self.env_tag = env_tag
        self.comm_id = comm_id
        self.lseq = lseq

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<RDet src={self.env_src} tag={self.env_tag} "
            f"comm={self.comm_id} lseq={self.lseq}>"
        )


class _StandbyRec:
    """Book-keeping for one re-arming copy awaiting its sync point."""

    __slots__ = ("rank", "copy", "eligible_ds", "sync")

    def __init__(self, rank: int, copy: int, sim):
        self.rank = rank
        self.copy = copy
        #: first dataset whose *begin* fell after this standby started
        #: buffering (checkpoints already in flight at registration may
        #: predate some mirrored traffic, so they cannot be sync points)
        self.eligible_ds: Optional[int] = None
        self.sync = Event(sim)


class _ChannelSnapshot:
    """Lead channel state at one checkpoint (the standby's seed)."""

    __slots__ = ("counters", "consumed", "det_len")

    def __init__(self, counters: Dict[int, int], consumed: Set[Tuple[int, int]],
                 det_len: int):
        self.counters = counters
        self.consumed = consumed
        self.det_len = det_len


def _chain(inner: Event, outer: Event) -> None:
    """Forward ``inner``'s outcome into ``outer`` (parked wildcards)."""

    def _cb(evt: Event) -> None:
        if outer.triggered:
            return
        if evt._ok:
            outer.succeed(evt._value)
        else:
            outer.fail(evt._value)

    if inner.triggered:
        _cb(inner)
    else:
        inner.callbacks.append(_cb)


class ReplicationPlane:
    """Shared state of the ``recovery="replicated"`` family."""

    kind = "replicated"

    #: promotion latency: failure-notice fan-in plus republishing the
    #: endpoint table -- no state movement, which is the whole point
    #: (well under the logged plane's measured 0.455 s recovery)
    FAILOVER_DELAY = 0.15

    def __init__(self, job):
        self.job = job
        self.sim = job.sim
        self.degree: int = job.config.replication_degree
        #: rank -> copy -> FmiProcess (current incarnations)
        self.copies: Dict[int, Dict[int, object]] = {}
        #: which copy currently owns the rank's endpoint-table entry
        self.lead_copy: Dict[int, int] = {}
        #: lead address -> live replica contexts (transport mirror fan-out)
        self.mirrors: Dict[Tuple[int, int], List[object]] = {}
        self._mirror_key: Dict[int, Tuple[int, int]] = {}
        # -- per-context channel state (the dedup/determinant machinery) --
        self.counters: Dict[object, Dict[int, int]] = {}
        self.seen: Dict[object, Set[Tuple[int, int]]] = {}
        self.consumed: Dict[object, Set[Tuple[int, int]]] = {}
        #: per-rank recorded wildcard matches, in lead match order
        self.dets: Dict[int, List[ReplicaDeterminant]] = {}
        #: per-context replay position into ``dets[rank]``
        self.det_cursor: Dict[object, int] = {}
        #: rank -> [(ctx, source, tag, comm_id, event)] wildcards parked
        #: on followers until the lead's determinant arrives
        self.parked: Dict[int, List[tuple]] = {}
        # -- standby protocol --
        #: unsynced standby ctx -> buffered mirrored envelopes
        self.pending: Dict[object, List[Envelope]] = {}
        self.standby_recs: Dict[object, _StandbyRec] = {}
        #: (rank, copy) slots whose next incarnation must re-arm as a
        #: standby instead of booting as a peer copy
        self.standby_expected: Set[Tuple[int, int]] = set()
        #: (rank, dataset_id) -> lead channel snapshot (keep-2, in step
        #: with the checkpoint engine's retention)
        self.snapshots: Dict[Tuple[int, int], _ChannelSnapshot] = {}
        self._snap_ids: Dict[int, List[int]] = {}
        # -- epoch fencing --
        #: the epoch every replicated context stamps/filters at.  Only a
        #: fallback bumps it: failovers must *not* fence out in-flight
        #: traffic (survivors keep computing), and a re-arming standby
        #: must accept survivor traffic stamped before its respawn.
        self.era = 0
        #: epoch of the most recent fallback (None = never fell back)
        self.fallback_epoch: Optional[int] = None
        # -- counters (bench / invariant surface) --
        self.promotions = 0
        self.replica_losses = 0
        self.fallbacks = 0
        self.mirrored = 0
        self.dup_suppressed = 0
        self.det_recorded = 0
        self.det_mismatches = 0
        self.standby_buffered = 0
        self.standby_syncs = 0

    # ------------------------------------------------------------ geometry
    def adopt(self, fproc) -> None:
        """A (re)spawned copy registers itself (``JobBase`` adoption)."""
        rank, copy = fproc.rank, fproc.copy
        self.copies.setdefault(rank, {})[copy] = fproc
        if (rank, copy) in self.standby_expected:
            return  # re-arming: never the lead, even at the lead index
        if copy == self.lead_copy.setdefault(rank, 0):
            self.job.rank_procs[rank] = fproc

    def all_procs(self) -> List[object]:
        out: List[object] = []
        for cps in self.copies.values():
            out.extend(cps.values())
        return out

    def slot_procs(self, slot: int) -> List[object]:
        """Every current process of one *physical* slot (task)."""
        job = self.job
        copy, vslot = divmod(slot, job.num_nodes)
        return [
            self.copies[r][copy]
            for r in job.ranks_of_slot(vslot)
            if copy in self.copies.get(r, ())
        ]

    def is_unsynced(self, fproc) -> bool:
        return (
            (fproc.rank, fproc.copy) in self.standby_expected
            or fproc.ctx in self.standby_recs
        )

    # ------------------------------------------------------------ boot (H1)
    def on_h1(self, fproc) -> None:
        """Wire one copy's fresh context into the plane."""
        job = self.job
        ctx = fproc.ctx
        rank = fproc.rank
        ctx.epoch = self.era
        ctx.matching.match_sink = self._make_sink(fproc)
        ctx.recv_filter = self._make_recv_filter(ctx)
        ctx.matching.reset()
        # A context entering H1 starts (or restarts) with clean channel
        # state; post-fallback survivors re-enter here after the
        # wholesale era reset.
        self.counters.pop(ctx, None)
        self.seen.pop(ctx, None)
        self.consumed.pop(ctx, None)
        self.det_cursor.pop(ctx, None)
        if (rank, fproc.copy) in self.standby_expected:
            self.standby_expected.discard((rank, fproc.copy))
            self.standby_recs[ctx] = _StandbyRec(rank, fproc.copy, self.sim)
            self.pending[ctx] = []
            self._rebuild_mirrors(rank)
            if self.sim.tracer.enabled:
                self.sim.tracer.instant(
                    "repl.standby.register", "repl", rank=rank,
                    copy=fproc.copy, epoch=job.epoch,
                )
            return
        if job.rank_procs.get(rank) is fproc:
            job.register_endpoint(rank, ctx)
        self._rebuild_mirrors(rank)

    def _rebuild_mirrors(self, rank: int) -> None:
        old = self._mirror_key.pop(rank, None)
        if old is not None:
            self.mirrors.pop(old, None)
        lead = self.job.rank_procs.get(rank)
        if lead is None:
            return
        followers = [
            p.ctx
            for _c, p in sorted(self.copies.get(rank, {}).items())
            if p is not lead and p.alive and not p.ctx.closed
        ]
        if followers:
            addr = lead.ctx.addr
            self.mirrors[addr] = followers
            self._mirror_key[rank] = addr

    def _rebuild_all_mirrors(self) -> None:
        for rank in list(self.copies):
            self._rebuild_mirrors(rank)

    # ------------------------------------------------------------ data plane
    def on_send(self, src: int, dst: int, env: Envelope, ctx=None) -> None:
        """Stamp the sender's channel sequence (per *context*: each copy
        runs the same channel schedule, so copies of one rank produce
        identical lseq streams)."""
        counters = self.counters.setdefault(ctx, {})
        n = counters.get(dst, 0)
        counters[dst] = n + 1
        env.lseq = (src, dst, n)

    def mirror_copies(self, dst_addr, env: Envelope):
        """Clones of ``env`` for the replicas shadowing ``dst_addr``.

        Payloads are snapshotted per clone: copies of a rank must never
        share one mutable buffer.  Clones keep the lseq (dedup
        identity) but draw fresh global seqs.
        """
        targets = self.mirrors.get(dst_addr)
        if not targets:
            return ()
        out = []
        for ctx in targets:
            if ctx.closed or not ctx.node.alive:
                continue
            menv = Envelope(
                src=env.src, dst=env.dst, tag=env.tag, comm_id=env.comm_id,
                epoch=env.epoch, nbytes=env.nbytes, data=_snapshot(env.data),
            )
            menv.lseq = env.lseq
            out.append((ctx.addr, menv))
        self.mirrored += len(out)
        return out

    def _make_recv_filter(self, ctx):
        def accept(env: Envelope) -> bool:
            lseq = env.lseq
            if lseq is None:
                return True
            pend = self.pending.get(ctx)
            if pend is not None:
                # Unsynced standby: park everything until the sync
                # point tells us which messages the snapshot consumed.
                pend.append(env)
                self.standby_buffered += 1
                return False
            key = (lseq[0], lseq[2])
            seen = self.seen.get(ctx)
            if seen is None:
                seen = self.seen[ctx] = set()
            if key in seen:
                self.dup_suppressed += 1
                return False
            seen.add(key)
            return True

        return accept

    def _make_sink(self, fproc):
        rank = fproc.rank
        ctx = fproc.ctx

        def sink(source: int, tag: int, env: Envelope) -> None:
            lseq = env.lseq
            if lseq is not None:
                self.consumed.setdefault(ctx, set()).add((lseq[0], lseq[2]))
            from repro.net.matching import ANY_SOURCE, ANY_TAG

            if source == ANY_SOURCE or tag == ANY_TAG:
                if self.job.rank_procs.get(rank) is fproc:
                    dets = self.dets.setdefault(rank, [])
                    dets.append(
                        ReplicaDeterminant(env.src, env.tag, env.comm_id, lseq)
                    )
                    # The recorder is, by definition, caught up: without
                    # this a since-boot lead would later replay its own
                    # record instead of posting natively.
                    self.det_cursor[ctx] = len(dets)
                    self.det_recorded += 1
                    self._drain_parked(rank)

        return sink

    # ------------------------------------------------- wildcard determinants
    def post_wildcard(self, fmi_ctx, source: int, tag: int, comm_id: int):
        """Replicated wildcard post.

        Returns an event for the caller to yield, or ``None`` when the
        caller (the current lead, fully caught up on its own record)
        should post natively and let the sink record the match.
        """
        rank = fmi_ctx.world_rank
        ctx = fmi_ctx.ctx
        dets = self.dets.get(rank, ())
        cursor = self.det_cursor.get(ctx, 0)
        if cursor < len(dets):
            det = dets[cursor]
            self.det_cursor[ctx] = cursor + 1
            if det.comm_id != comm_id:
                # Copies run the same program, so pattern drift should
                # be impossible; degrade to a native post rather than
                # matching into the wrong communicator.
                self.det_mismatches += 1
                return None
            return ctx.matching.post(det.env_src, det.env_tag, comm_id)
        if self.job.rank_procs.get(rank) is fmi_ctx.fproc:
            return None
        evt = Event(self.sim)
        self.parked.setdefault(rank, []).append((ctx, source, tag, comm_id, evt))
        return evt

    def _drain_parked(self, rank: int) -> None:
        waiters = self.parked.pop(rank, None)
        if not waiters:
            return
        dets = self.dets.get(rank, ())
        lead = self.job.rank_procs.get(rank)
        remaining = []
        for entry in waiters:
            ctx, source, tag, comm_id, evt = entry
            if evt.triggered or ctx.closed or not ctx.node.alive:
                continue
            cursor = self.det_cursor.get(ctx, 0)
            if cursor < len(dets):
                det = dets[cursor]
                self.det_cursor[ctx] = cursor + 1
                _chain(ctx.matching.post(det.env_src, det.env_tag, comm_id), evt)
            elif lead is not None and lead.ctx is ctx:
                # This copy was promoted while parked: its wildcard is
                # now the recording side -- post natively.
                _chain(ctx.matching.post(source, tag, comm_id), evt)
            else:
                remaining.append(entry)
        if remaining:
            # Native posts above may have recursed through the sink and
            # parked/drained more entries; keep FIFO order per rank.
            self.parked[rank] = remaining + self.parked.get(rank, [])

    # ------------------------------------------------------------ failover
    def try_failover(self, policy, cause: str) -> bool:
        """Classify the damage; True = handled without any rollback."""
        job = self.job
        if (
            self.fallback_epoch is not None
            and self.fallback_epoch not in job.recovered_at
        ):
            # A failure landed *during* a fallback restore: restart the
            # fallback at the fresh epoch (it must own the new
            # generation or nobody would unwind for it).
            self._fallback(cause)
            return False
        dead_lead_slots: List[int] = []
        lost_replica = False
        for vslot in range(job.num_nodes):
            ranks = [
                r for r in job.ranks_of_slot(vslot)
                if r not in job.finished_ranks
            ]
            if not ranks:
                continue
            lead_dead = any(
                job.rank_procs.get(r) is None or not job.rank_procs[r].alive
                for r in ranks
            )
            if lead_dead:
                if self._live_synced_copy(vslot) is None:
                    self._fallback(cause)
                    return False
                dead_lead_slots.append(vslot)
            elif any(
                not p.alive
                for r in ranks
                for p in self.copies.get(r, {}).values()
            ):
                lost_replica = True
        # Every dead copy's next incarnation re-arms as a standby (a
        # fresh process has no state and must never act as a peer).
        for rank, cps in self.copies.items():
            if rank in job.finished_ranks:
                continue
            for copy, p in cps.items():
                if not p.alive:
                    self.standby_expected.add((rank, copy))
        self._rebuild_all_mirrors()
        if dead_lead_slots:
            self.sim.spawn(
                self._promote(job.epoch, dead_lead_slots, cause),
                name="repl.promote",
            )
            return True
        if lost_replica:
            self.replica_losses += 1
            if self.sim.tracer.enabled:
                self.sim.tracer.instant(
                    "repl.replica_lost", "repl", epoch=job.epoch, cause=cause,
                )
        # Service never blinked: recovery is complete the instant the
        # failure was classified.
        job.note_recovery_complete()
        return True

    def _live_synced_copy(self, vslot: int) -> Optional[int]:
        """A copy index with live, synced processes for every rank of
        ``vslot`` -- deaths are task-granular, so copies live or die as
        whole slots."""
        job = self.job
        ranks = [
            r for r in job.ranks_of_slot(vslot)
            if r not in job.finished_ranks
        ]
        for copy in range(self.degree):
            for r in ranks:
                p = self.copies.get(r, {}).get(copy)
                if p is None or not p.alive or self.is_unsynced(p):
                    break
            else:
                return copy
        return None

    def _promote(self, epoch: int, vslots: List[int], cause: str):
        yield self.sim.timeout(self.FAILOVER_DELAY)
        job = self.job
        if job.finished:
            return
        if (
            self.fallback_epoch is not None
            and self.fallback_epoch not in job.recovered_at
        ):
            return  # superseded by a fallback
        for vslot in vslots:
            ranks = [
                r for r in job.ranks_of_slot(vslot)
                if r not in job.finished_ranks
            ]
            if not ranks or all(
                job.rank_procs.get(r) is not None and job.rank_procs[r].alive
                for r in ranks
            ):
                continue  # a later recovery already handled it
            copy = self._live_synced_copy(vslot)
            if copy is None:
                continue  # the later death's own recovery takes over
            for r in ranks:
                proc = self.copies[r][copy]
                self.lead_copy[r] = copy
                job.rank_procs[r] = proc
                job.register_endpoint(r, proc.ctx)
                self._rebuild_mirrors(r)
                self.promotions += 1
                if self.sim.tracer.enabled:
                    self.sim.tracer.instant(
                        "repl.promote", "repl", rank=r, copy=copy,
                        epoch=epoch, cause=cause,
                    )
                self._drain_parked(r)
        if job.epoch == epoch:
            job.note_recovery_complete()

    # ------------------------------------------------------------ fallback
    def _fallback(self, cause: str) -> None:
        """Some rank lost its last synced copy: coordinated rollback.

        Elect exactly one copy per virtual slot (two live copies of a
        rank must not both join the restore collectives -- their
        contributions would collide on identical lseq), retire every
        other copy to the standby protocol, fence the old era's
        traffic, and let the elected cohort run a plain global restore.
        """
        job = self.job
        epoch = job.epoch
        self.fallbacks += 1
        self.fallback_epoch = epoch
        self.era = epoch
        if self.sim.tracer.enabled:
            self.sim.tracer.instant(
                "repl.fallback", "repl", epoch=epoch, cause=cause,
            )
        # Wholesale era reset: channel counters restart from zero on
        # both sides, and the epoch fence disposes of old-era traffic.
        self.dets.clear()
        self.det_cursor.clear()
        self.counters.clear()
        self.seen.clear()
        self.consumed.clear()
        self.parked.clear()
        self.pending.clear()
        self.standby_recs.clear()
        self.standby_expected.clear()
        self.snapshots.clear()
        self._snap_ids.clear()
        self.mirrors.clear()
        self._mirror_key.clear()
        for vslot in range(job.num_nodes):
            active = [
                r for r in job.ranks_of_slot(vslot)
                if r not in job.finished_ranks
            ]
            elected = None
            if active:
                cur = self.lead_copy.get(active[0], 0)
                for copy in [cur] + [
                    c for c in range(self.degree) if c != cur
                ]:
                    if all(
                        self.copies.get(r, {}).get(copy) is not None
                        and self.copies[r][copy].alive
                        for r in active
                    ):
                        elected = copy
                        break
                if elected is None:
                    elected = 0  # every copy died: copy 0's respawn
                    # rejoins the cohort and restores via XOR rebuild
                for r in active:
                    self.lead_copy[r] = elected
                    p = self.copies.get(r, {}).get(elected)
                    if p is not None:
                        job.rank_procs[r] = p
            for r in job.ranks_of_slot(vslot):
                for copy, p in self.copies.get(r, {}).items():
                    if copy == elected and r in active:
                        continue
                    if p.alive:
                        p.kill("replication fallback: redundant copy")
                    if not p.ctx.closed:
                        # Retired copies often sit on live nodes (the
                        # kill is task-granular); close their contexts
                        # so parked receives are cancelled and stray
                        # mirrored traffic is dropped at the transport.
                        p.ctx.close()
                    if r in active:
                        self.standby_expected.add((r, copy))
        # The overlay is degraded after failovers (promoted leads never
        # re-joined the log-ring), so poke every surviving copy
        # directly instead of trusting detector propagation.
        for p in self.all_procs():
            if p.alive:
                p.notify_failure(epoch, "replication fallback")

    # ------------------------------------------------------------ checkpoints
    def note_ckpt_begin(self, rank: int, dataset_id: int, ctx=None) -> None:
        lead = self.job.rank_procs.get(rank)
        if lead is None or lead.ctx is not ctx:
            return
        for rec in self.standby_recs.values():
            if rec.rank == rank and rec.eligible_ds is None:
                rec.eligible_ds = dataset_id

    def note_rank_checkpoint(self, rank: int, dataset_id: int, ctx=None) -> None:
        lead = self.job.rank_procs.get(rank)
        if lead is None or lead.ctx is not ctx:
            return  # follower checkpoints are local redundancy only
        self.snapshots[(rank, dataset_id)] = _ChannelSnapshot(
            dict(self.counters.get(ctx, {})),
            set(self.consumed.get(ctx, ())),
            len(self.dets.get(rank, ())),
        )
        retained = self._snap_ids.setdefault(rank, [])
        if dataset_id not in retained:
            retained.append(dataset_id)
            retained.sort()
        while len(retained) > 2:  # in step with CheckpointEngine.KEEP
            self.snapshots.pop((rank, retained.pop(0)), None)
        for rec in self.standby_recs.values():
            if (
                rec.rank == rank
                and rec.eligible_ds is not None
                and dataset_id >= rec.eligible_ds
                and not rec.sync.triggered
            ):
                rec.sync.succeed(dataset_id)

    # ------------------------------------------------------------ restore
    def partial_restore(self, fmi_ctx):
        """FMI_Loop restore hook for a replicated context.

        Standbys sync against their lead's live state; fallback-cohort
        members run the ordinary coordinated restore this plane
        otherwise never touches.
        """
        rec = self.standby_recs.get(fmi_ctx.ctx)
        if rec is None:
            restored = yield from fmi_ctx.engine.restore(
                world_agree=fmi_ctx._agree_min, allow_beyond_xor=False,
            )
            return restored
        result = yield from self._standby_sync(fmi_ctx, rec)
        return result

    def _standby_sync(self, fmi_ctx, rec: _StandbyRec):
        job = self.job
        ctx = fmi_ctx.ctx
        rank = fmi_ctx.world_rank
        t0 = self.sim.now
        while True:
            yield rec.sync
            lead = job.rank_procs.get(rank)
            if lead is None or not lead.alive:
                # The lead died between its checkpoint and our clone;
                # whatever recovery that death triggered owns us now --
                # re-arm against the next lead checkpoint in case we
                # stay a standby.
                rec.sync = Event(self.sim)
                rec.eligible_ds = None
                continue
            nbytes = max(
                sum(p.nbytes for p in lead.storage._blobs.values()), 64.0
            )
            try:
                yield job.machine.fabric.send(
                    lead.node, fmi_ctx.node, nbytes,
                    sw_overhead=job.transport.sw_overhead,
                )
                yield fmi_ctx.node.memcpy(nbytes)
            except Exception:
                rec.sync = Event(self.sim)
                rec.eligible_ds = None
                continue
            if lead.alive:
                break
            rec.sync = Event(self.sim)
            rec.eligible_ds = None
        # Clone the lead's in-memory checkpoint storage wholesale, then
        # restore the newest dataset we hold a channel snapshot for
        # (the lead may have checkpointed again mid-transfer).
        fmi_ctx.fproc.storage._blobs = {
            k: p.copy() for k, p in lead.storage._blobs.items()
        }
        fmi_ctx.fproc.storage._meta = {
            k: dict(m) for k, m in lead.storage._meta.items()
        }
        ids = [
            ds for ds in fmi_ctx.engine.completed_ids()
            if (rank, ds) in self.snapshots
        ]
        if not ids:
            # Snapshot/storage retention rotate together, so this means
            # the plane state was wiped (fallback) under our feet; the
            # fallback killed or will kill this copy.
            rec.sync = Event(self.sim)
            yield rec.sync
            raise AssertionError("unreachable: standby outlived fallback")
        dataset = max(ids)
        snap = self.snapshots[(rank, dataset)]
        self.counters[ctx] = dict(snap.counters)
        seen = set(snap.consumed)
        self.seen[ctx] = seen
        self.consumed[ctx] = set(snap.consumed)
        self.det_cursor[ctx] = snap.det_len
        # Synced: stop buffering and deliver what the snapshot has not
        # already consumed.
        pend = self.pending.pop(ctx, [])
        self.standby_recs.pop(ctx, None)
        delivered = 0
        for env in pend:
            if env.epoch < ctx.epoch:
                continue
            key = (env.lseq[0], env.lseq[2])
            if key in seen:
                continue
            seen.add(key)
            ctx.matching.deliver(env)
            delivered += 1
        self.standby_syncs += 1
        if self.sim.tracer.enabled:
            self.sim.tracer.instant(
                "repl.standby.sync", "repl", rank=rank, copy=rec.copy,
                dataset=dataset, waited=self.sim.now - t0,
                delivered=delivered, buffered=len(pend),
            )
        meta = yield from fmi_ctx.engine._my_meta(dataset)
        blob = yield from fmi_ctx.engine.load_blob(dataset)
        return meta, _slice(blob, meta)
