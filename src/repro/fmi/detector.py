"""The log-ring failure detector (Section IV-C).

Each rank in the H2 Connecting state joins the current epoch's overlay:
ibverbs-style connections to its log-ring neighbours.  When a process
dies, every connection it held raises a disconnection event on the
surviving side after the ~0.2 s ibverbs close delay.  A survivor that
receives such an event

1. *cascades*: explicitly closes its remaining overlay connections, so
   its neighbours hear within one hop delay, and
2. *notifies* its own process, which aborts C/R and application work
   and transitions back to H1.

The cascade reaches every rank within ``ceil(ceil(log2 n)/2)`` hops
(Figure 7); the measured notification times are Fig 13.

Gray-failure hardening: a disconnect event whose root cause is a
network partition (``partition:`` reason) is *not* proof of death --
the peer is usually alive on the other side of the cut, and treating
the event as a failure on both sides would trigger split-brain double
recovery.  Such events only raise a *suspicion*; after a grace period
the detector verifies the suspect out-of-band (fmirun's management
network, which a compute-fabric partition does not touch) and either
clears the suspicion or escalates it into a real notification.  When
the partition heals, the detector re-establishes the overlay edges the
cut destroyed, in the current epoch.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.net.endpoint import Connection, ConnectionManager
from repro.net.overlay import hops_of_reason, logring_neighbors, root_reason

__all__ = ["LogRingDetector"]

Key = Tuple[int, int]  # (rank, overlay epoch)


class LogRingDetector:
    """Builds per-epoch log-ring overlays and turns connection events
    into FMI failure notifications."""

    def __init__(self, job):
        self.job = job
        self.cm = ConnectionManager(job.machine)
        self.k = job.config.logring_k
        self.suspicion_grace = getattr(job.config, "suspicion_grace", 0.5)
        self._conns: Dict[int, List[Connection]] = {}
        self._joined_epoch: Dict[int, int] = {}
        self._cascaded: Dict[int, int] = {}  # rank -> last generation cascaded
        #: (rank, time, generation) notification record -- Fig 13's data
        self.notifications: List[Tuple[int, float, int]] = []
        #: pending partition-rooted suspicions: (rank, peer) -> raised-at
        self._suspected: Dict[Tuple[int, int], float] = {}
        #: suspicions cleared because the suspect was alive (gray stats)
        self.false_suspicions = 0
        #: overlay edges re-established after partition heals
        self.repaired_edges = 0
        # Registered after the ConnectionManager's own death listener, so
        # by the time _on_node_death runs the node's edges are closed.
        job.machine.on_node_death(self._on_node_death)
        job.machine.fabric.on_heal(self._on_partition_heal)

    def detach(self) -> None:
        """Unhook this job's detector from the machine (job teardown).
        Tenants come and go on a shared cluster; a finished job's
        detector must stop hearing node deaths entirely rather than
        early-returning forever."""
        self.job.machine.remove_death_listener(self._on_node_death)
        self.job.machine.fabric.remove_heal_listener(self._on_partition_heal)
        self.cm.detach()

    # -- membership -----------------------------------------------------------
    def connections_per_rank(self, n: int) -> int:
        return len(logring_neighbors(0, n, self.k))

    def _unlink(self, conn: Connection) -> None:
        """Drop a (closed) connection from both endpoints' lists.

        Every teardown path must call this: ``join`` appends each edge
        to *both* ends, so popping only the dying rank's list leaves the
        closed object in its neighbours' lists until they happen to
        rejoin -- which a long failure-free stretch or an early-finished
        rank never does.
        """
        for key in conn.ends:
            rank = key[0]
            lst = self._conns.get(rank)
            if lst is None:
                continue
            try:
                lst.remove(conn)
            except ValueError:
                continue
            if not lst:
                self._conns.pop(rank, None)

    def join(self, fproc, epoch: int) -> None:
        """``fproc`` (in H2) enters the epoch's overlay.

        Old-epoch edges are torn down silently (both sides rebuild).
        Edges appear when the *second* endpoint of a pair joins, so
        after every member has joined the overlay is complete.
        """
        rank = fproc.rank
        for conn in self._conns.pop(rank, []):
            conn.close_silent()
            self._unlink(conn)
        self._joined_epoch[rank] = epoch
        self._conns[rank] = []
        n = self.job.num_ranks
        out = logring_neighbors(rank, n, self.k)
        neighbours = set(out)
        # Incoming edges are the mirror image: rank - offset for every
        # log-ring offset (closed form; avoids an O(n) scan per join).
        offsets = [(peer - rank) % n for peer in out]
        neighbours |= {(rank - off) % n for off in offsets}
        neighbours.discard(rank)
        for peer in neighbours:
            if self._joined_epoch.get(peer) != epoch:
                continue  # peer will create the edge when it joins
            peer_proc = self.job.rank_procs.get(peer)
            if peer_proc is None or not peer_proc.alive:
                continue
            try:
                conn = self.cm.connect(
                    (rank, epoch), fproc.node, (peer, epoch), peer_proc.node
                )
            except ConnectionError:
                # The peer is behind an active partition cut: the edge
                # cannot be established now; _on_partition_heal repairs
                # it once the fabric reconnects.
                continue
            conn.on_disconnect((rank, epoch), self._on_event)
            conn.on_disconnect((peer, epoch), self._on_event)
            self._conns[rank].append(conn)
            self._conns.setdefault(peer, []).append(conn)
        sim = self.job.sim
        if sim.tracer.enabled:
            sim.tracer.instant(
                "overlay.join", "overlay", rank=rank, node=fproc.node.id,
                incarnation=fproc.incarnation, epoch=epoch,
                edges=len(self._conns[rank]), job=self.job.job_id,
            )

    def leave(self, rank: int) -> None:
        """Silently drop a rank's overlay edges (finished rank)."""
        for conn in self._conns.pop(rank, []):
            conn.close_silent()
            self._unlink(conn)
        self._joined_epoch.pop(rank, None)
        self._clear_suspicions(rank, resolution="left")

    # -- death without node death ------------------------------------------------
    def process_died(self, rank: int, reason: str) -> None:
        """fmirun.task saw a child die while its node stayed up; break
        the child's connections as the ibverbs layer would."""
        for conn in self._conns.pop(rank, []):
            epoch = self._joined_epoch.get(rank, 0)
            conn.break_by_owner_death((rank, epoch), reason)
            self._unlink(conn)
        self._joined_epoch.pop(rank, None)
        self._clear_suspicions(rank, resolution="dead")

    def _on_node_death(self, node, cause) -> None:
        """Purge the table entries of every rank that died with ``node``.

        Edges with a surviving endpoint are unlinked when the survivor's
        disconnect event fires, but an edge between two ranks on the
        *same* dead node never raises an event on either side -- nobody
        would drop it until a replacement rejoins, which can be seconds
        away when spares are exhausted.
        """
        if self.job.finished:
            return
        for rank, rproc in list(self.job.rank_procs.items()):
            if rproc.node is not node:
                continue
            for conn in list(self._conns.get(rank, ())):
                if not conn.open:
                    self._unlink(conn)
            self._joined_epoch.pop(rank, None)
            self._clear_suspicions(rank, resolution="dead")

    # -- event handling -----------------------------------------------------------
    def _on_event(self, conn: Connection, key: Any, reason: str) -> None:
        rank, epoch = key
        # The connection fired a disconnect event, so it is closed:
        # unlink it even when this endpoint is itself already dead (the
        # early return below) or the cascade was already run.
        self._unlink(conn)
        fproc = self.job.rank_procs.get(rank)
        if fproc is None or not fproc.alive:
            return
        if root_reason(reason).startswith("partition:"):
            # A cut is not a death: both endpoints of the broken edge
            # are (usually) alive, and acting on the event directly
            # would start recovery on *both* sides of the partition.
            peer_rank = conn.peer_of(key)[0]
            self._suspect(rank, epoch, peer_rank, reason)
            return
        self._escalate(rank, epoch, reason)

    def _escalate(self, rank: int, epoch: int, reason: str) -> None:
        """A confirmed failure: cascade through the overlay and notify
        this endpoint's process."""
        generation = epoch + 1  # a failure under epoch e leads to epoch e+1
        fproc = self.job.rank_procs.get(rank)
        if fproc is None or not fproc.alive:
            return
        if self._cascaded.get(rank, -1) < generation:
            self._cascaded[rank] = generation
            for other in self._conns.pop(rank, []):
                if other.open:
                    other.close_from((rank, epoch), reason=f"cascade:{reason}")
                self._unlink(other)
            sim = self.job.sim
            self.notifications.append((rank, sim.now, generation))
            hop = hops_of_reason(reason)
            if sim.tracer.enabled:
                sim.tracer.instant(
                    "overlay.notified", "overlay", rank=rank,
                    node=fproc.node.id, incarnation=fproc.incarnation,
                    epoch=generation, hop=hop, reason=reason,
                    job=self.job.job_id,
                )
            if sim.metrics.enabled:
                sim.metrics.histogram("overlay.notify_hops").observe(hop)
        fproc.notify_failure(generation, reason)

    # -- suspicion (partition-rooted events) ----------------------------------
    def _suspect(self, rank: int, epoch: int, peer_rank: int, reason: str) -> None:
        """``rank`` lost its edge to ``peer_rank`` through a partition
        cut; hold the event as a suspicion and verify after a grace
        period instead of acting on it."""
        pair = (rank, peer_rank)
        if pair in self._suspected:
            return  # flapping link: one pending verification per pair
        sim = self.job.sim
        self._suspected[pair] = sim.now
        if sim.tracer.enabled:
            sim.tracer.instant(
                "overlay.suspect", "overlay", rank=rank,
                peer=peer_rank, reason=reason, job=self.job.job_id,
            )
        timer = sim.timeout(self.suspicion_grace)
        timer.callbacks.append(
            lambda _e: self._verify(rank, epoch, peer_rank, reason)
        )

    def _verify(self, rank: int, epoch: int, peer_rank: int, reason: str) -> None:
        """Grace period over: probe the suspect out-of-band.

        The compute fabric may be partitioned but fmirun's management
        network (PMGR, login node) is not, so the master can always
        answer "is this process alive?".  Alive => false positive,
        drop the suspicion.  Dead => escalate as a confirmed failure.
        """
        if self._suspected.pop((rank, peer_rank), None) is None:
            return  # already resolved (heal, leave, or death)
        fproc = self.job.rank_procs.get(rank)
        if fproc is None or not fproc.alive:
            return
        sim = self.job.sim
        peer_proc = self.job.rank_procs.get(peer_rank)
        if peer_proc is not None and peer_proc.alive:
            self.false_suspicions += 1
            if sim.tracer.enabled:
                sim.tracer.instant(
                    "overlay.suspect.cleared", "overlay", rank=rank,
                    peer=peer_rank, resolution="peer-alive",
                    job=self.job.job_id,
                )
            return
        if sim.tracer.enabled:
            sim.tracer.instant(
                "overlay.suspect.cleared", "overlay", rank=rank,
                peer=peer_rank, resolution="confirmed-dead",
                job=self.job.job_id,
            )
        self._escalate(rank, epoch, f"confirmed:{reason}")

    def _clear_suspicions(self, rank: Optional[int] = None, resolution: str = "healed") -> None:
        """Resolve pending suspicions involving ``rank`` (or all, when
        ``rank`` is None).  The grace timer still fires but finds the
        pair gone and does nothing."""
        sim = self.job.sim
        for pair in [p for p in self._suspected if rank is None or rank in p]:
            self._suspected.pop(pair, None)
            if sim.tracer.enabled:
                sim.tracer.instant(
                    "overlay.suspect.cleared", "overlay", rank=pair[0],
                    peer=pair[1], resolution=resolution,
                    job=self.job.job_id,
                )

    # -- partition heal: rejoin the overlay -----------------------------------
    def _on_partition_heal(self, tag: str) -> None:
        if self.job.finished:
            return
        self._clear_suspicions(resolution="healed")
        self._repair()

    def _has_open_edge(self, rank: int, peer: int) -> bool:
        for conn in self._conns.get(rank, ()):
            if conn.open and {key[0] for key in conn.ends} == {rank, peer}:
                return True
        return False

    def _repair(self) -> None:
        """Re-establish the overlay edges the partition destroyed.

        Only pairs where both ranks are alive and joined in the
        *current* epoch are rebuilt -- a healed partition rejoins the
        current epoch's overlay, never a stale one.
        """
        job = self.job
        epoch = job.epoch
        members = []
        for rank in sorted(self._joined_epoch):
            if self._joined_epoch[rank] != epoch:
                continue
            rproc = job.rank_procs.get(rank)
            if rproc is not None and rproc.alive:
                members.append(rank)
        joined = set(members)
        n = job.num_ranks
        sim = job.sim
        # The cut's broken connections are still listed until their
        # disconnect events fire (~the ibverbs close delay).  Purge
        # them now, or the repaired edges would transiently push the
        # table past its 2 x out-degree bound.
        for rank in members:
            for conn in [c for c in self._conns.get(rank, ()) if not c.open]:
                self._unlink(conn)
        for rank in members:
            for peer in logring_neighbors(rank, n, self.k):
                if peer not in joined or self._has_open_edge(rank, peer):
                    continue
                fproc = job.rank_procs[rank]
                peer_proc = job.rank_procs[peer]
                try:
                    conn = self.cm.connect(
                        (rank, epoch), fproc.node, (peer, epoch), peer_proc.node
                    )
                except ConnectionError:
                    continue  # still unreachable (e.g. a new partition)
                conn.on_disconnect((rank, epoch), self._on_event)
                conn.on_disconnect((peer, epoch), self._on_event)
                self._conns.setdefault(rank, []).append(conn)
                self._conns.setdefault(peer, []).append(conn)
                self.repaired_edges += 1
                if sim.tracer.enabled:
                    sim.tracer.instant(
                        "overlay.repair", "overlay", rank=rank,
                        epoch=epoch, peer=peer, job=self.job.job_id,
                    )
