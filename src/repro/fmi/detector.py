"""The log-ring failure detector (Section IV-C).

Each rank in the H2 Connecting state joins the current epoch's overlay:
ibverbs-style connections to its log-ring neighbours.  When a process
dies, every connection it held raises a disconnection event on the
surviving side after the ~0.2 s ibverbs close delay.  A survivor that
receives such an event

1. *cascades*: explicitly closes its remaining overlay connections, so
   its neighbours hear within one hop delay, and
2. *notifies* its own process, which aborts C/R and application work
   and transitions back to H1.

The cascade reaches every rank within ``ceil(ceil(log2 n)/2)`` hops
(Figure 7); the measured notification times are Fig 13.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.net.endpoint import Connection, ConnectionManager
from repro.net.overlay import hops_of_reason, logring_neighbors

__all__ = ["LogRingDetector"]

Key = Tuple[int, int]  # (rank, overlay epoch)


class LogRingDetector:
    """Builds per-epoch log-ring overlays and turns connection events
    into FMI failure notifications."""

    def __init__(self, job):
        self.job = job
        self.cm = ConnectionManager(job.machine)
        self.k = job.config.logring_k
        self._conns: Dict[int, List[Connection]] = {}
        self._joined_epoch: Dict[int, int] = {}
        self._cascaded: Dict[int, int] = {}  # rank -> last generation cascaded
        #: (rank, time, generation) notification record -- Fig 13's data
        self.notifications: List[Tuple[int, float, int]] = []
        # Registered after the ConnectionManager's own death listener, so
        # by the time _on_node_death runs the node's edges are closed.
        job.machine.on_node_death(self._on_node_death)

    # -- membership -----------------------------------------------------------
    def connections_per_rank(self, n: int) -> int:
        return len(logring_neighbors(0, n, self.k))

    def _unlink(self, conn: Connection) -> None:
        """Drop a (closed) connection from both endpoints' lists.

        Every teardown path must call this: ``join`` appends each edge
        to *both* ends, so popping only the dying rank's list leaves the
        closed object in its neighbours' lists until they happen to
        rejoin -- which a long failure-free stretch or an early-finished
        rank never does.
        """
        for key in conn.ends:
            rank = key[0]
            lst = self._conns.get(rank)
            if lst is None:
                continue
            try:
                lst.remove(conn)
            except ValueError:
                continue
            if not lst:
                self._conns.pop(rank, None)

    def join(self, fproc, epoch: int) -> None:
        """``fproc`` (in H2) enters the epoch's overlay.

        Old-epoch edges are torn down silently (both sides rebuild).
        Edges appear when the *second* endpoint of a pair joins, so
        after every member has joined the overlay is complete.
        """
        rank = fproc.rank
        for conn in self._conns.pop(rank, []):
            conn.close_silent()
            self._unlink(conn)
        self._joined_epoch[rank] = epoch
        self._conns[rank] = []
        n = self.job.num_ranks
        out = logring_neighbors(rank, n, self.k)
        neighbours = set(out)
        # Incoming edges are the mirror image: rank - offset for every
        # log-ring offset (closed form; avoids an O(n) scan per join).
        offsets = [(peer - rank) % n for peer in out]
        neighbours |= {(rank - off) % n for off in offsets}
        neighbours.discard(rank)
        for peer in neighbours:
            if self._joined_epoch.get(peer) != epoch:
                continue  # peer will create the edge when it joins
            peer_proc = self.job.rank_procs.get(peer)
            if peer_proc is None or not peer_proc.alive:
                continue
            conn = self.cm.connect(
                (rank, epoch), fproc.node, (peer, epoch), peer_proc.node
            )
            conn.on_disconnect((rank, epoch), self._on_event)
            conn.on_disconnect((peer, epoch), self._on_event)
            self._conns[rank].append(conn)
            self._conns.setdefault(peer, []).append(conn)
        sim = self.job.sim
        if sim.tracer.enabled:
            sim.tracer.instant(
                "overlay.join", "overlay", rank=rank, node=fproc.node.id,
                incarnation=fproc.incarnation, epoch=epoch,
                edges=len(self._conns[rank]),
            )

    def leave(self, rank: int) -> None:
        """Silently drop a rank's overlay edges (finished rank)."""
        for conn in self._conns.pop(rank, []):
            conn.close_silent()
            self._unlink(conn)
        self._joined_epoch.pop(rank, None)

    # -- death without node death ------------------------------------------------
    def process_died(self, rank: int, reason: str) -> None:
        """fmirun.task saw a child die while its node stayed up; break
        the child's connections as the ibverbs layer would."""
        for conn in self._conns.pop(rank, []):
            epoch = self._joined_epoch.get(rank, 0)
            conn.break_by_owner_death((rank, epoch), reason)
            self._unlink(conn)
        self._joined_epoch.pop(rank, None)

    def _on_node_death(self, node, cause) -> None:
        """Purge the table entries of every rank that died with ``node``.

        Edges with a surviving endpoint are unlinked when the survivor's
        disconnect event fires, but an edge between two ranks on the
        *same* dead node never raises an event on either side -- nobody
        would drop it until a replacement rejoins, which can be seconds
        away when spares are exhausted.
        """
        if self.job.finished:
            return
        for rank, rproc in list(self.job.rank_procs.items()):
            if rproc.node is not node:
                continue
            for conn in list(self._conns.get(rank, ())):
                if not conn.open:
                    self._unlink(conn)
            self._joined_epoch.pop(rank, None)

    # -- event handling -----------------------------------------------------------
    def _on_event(self, conn: Connection, key: Any, reason: str) -> None:
        rank, epoch = key
        generation = epoch + 1  # a failure under epoch e leads to epoch e+1
        # The connection fired a disconnect event, so it is closed:
        # unlink it even when this endpoint is itself already dead (the
        # early return below) or the cascade was already run.
        self._unlink(conn)
        fproc = self.job.rank_procs.get(rank)
        if fproc is None or not fproc.alive:
            return
        if self._cascaded.get(rank, -1) < generation:
            self._cascaded[rank] = generation
            for other in self._conns.pop(rank, []):
                if other.open:
                    other.close_from((rank, epoch), reason=f"cascade:{reason}")
                self._unlink(other)
            sim = self.job.sim
            self.notifications.append((rank, sim.now, generation))
            hop = hops_of_reason(reason)
            if sim.tracer.enabled:
                sim.tracer.instant(
                    "overlay.notified", "overlay", rank=rank,
                    node=fproc.node.id, incarnation=fproc.incarnation,
                    epoch=generation, hop=hop, reason=reason,
                )
            if sim.metrics.enabled:
                sim.metrics.histogram("overlay.notify_hops").observe(hop)
        fproc.notify_failure(generation, reason)
