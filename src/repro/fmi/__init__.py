"""repro.fmi -- the Fault Tolerant Messaging Interface (the paper's
contribution).

Public surface:

* :class:`~repro.fmi.job.FmiJob` -- launch an FMI application on a
  simulated machine and run it *through* failures.
* :class:`~repro.fmi.api.FmiContext` -- the per-rank handle an
  application generator receives: MPI-like messaging plus
  :meth:`~repro.fmi.api.FmiContext.loop` (``FMI_Loop``).
* :class:`~repro.fmi.config.FmiConfig` -- knobs: XOR group size,
  checkpoint interval or MTBF-driven auto-tuning, log-ring base k.
* :mod:`~repro.fmi.checkpoint` -- the in-memory XOR checkpoint engine.
* :mod:`~repro.fmi.detector` -- the log-ring failure detector.
* :mod:`~repro.fmi.msglog` -- the message-logging recovery plane
  behind ``FmiConfig(recovery="logged")`` (partial rollback: sender
  payload logs, receiver determinants, survivor replay).

A minimal FMI application::

    def app(fmi):
        u = np.zeros(1000)
        yield from fmi.init()
        while True:
            n = yield from fmi.loop([u])
            if n >= NUM_LOOPS:
                break
            ...compute on u, exchange halos via fmi.send/recv...
        yield from fmi.finalize()
"""

from repro.fmi.config import FmiConfig
from repro.fmi.errors import FailureNotified, FmiAbort, UnrecoverableFailure
from repro.fmi.payload import Payload


def __getattr__(name):
    # FmiContext/FmiJob are exported lazily (PEP 562): they pull in
    # repro.mpi.api, which itself imports repro.fmi.payload -- eager
    # imports here would make the package order-sensitive.
    if name == "FmiContext":
        from repro.fmi.api import FmiContext

        return FmiContext
    if name == "FmiJob":
        from repro.fmi.job import FmiJob

        return FmiJob
    if name == "RecoveryPlane":
        from repro.fmi.msglog import RecoveryPlane

        return RecoveryPlane
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "FailureNotified",
    "FmiAbort",
    "FmiConfig",
    "FmiContext",
    "FmiJob",
    "Payload",
    "RecoveryPlane",
    "UnrecoverableFailure",
]
