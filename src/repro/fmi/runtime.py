"""The survivable FMI runtime: fmirun, fmirun.task, and rank processes.

Hierarchy (Figure 6):

* :class:`Fmirun` -- the master process.  Lives on the login node
  (outside the compute failure domain -- the paper acknowledges this
  single point of failure and argues its MTBF is years).  It is the
  FMI face of the shared :class:`~repro.runtime.policy.Survivable`
  fault policy: allocation with pre-reserved spares, per-node task
  monitoring, recovery-epoch bumps, replacement acquisition, and
  graceful drain all live in :mod:`repro.runtime`; this subclass binds
  the knobs to :class:`~repro.fmi.config.FmiConfig` and supplies the
  FMI task/process classes.
* :class:`FmirunTask` -- one per node; spawns the node's application
  processes, kills its remaining children when one dies, and reports
  EXIT_FAILURE up to fmirun.
* :class:`FmiProcess` -- one per rank slot; runs the H1 -> H2 -> H3
  state machine (Figure 5).  A failure notification anywhere inside H3
  (including mid-collective, mid-checkpoint) unwinds the application
  generator and loops back to H1 -- the paper's Notified transition.

Survivor processes are *never* restarted as processes; their
in-memory checkpoint storage survives recovery, which is what makes
FMI's restart so much cheaper than MPI's relaunch.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.node import Node
from repro.fmi.checkpoint import MemoryStorage
from repro.fmi.errors import FailureNotified, FmiAbort
from repro.fmi.interval import IntervalPolicy
from repro.fmi.state import ProcState
from repro.runtime.core import RankProcess
from repro.runtime.policy import Survivable
from repro.simt.kernel import Event
from repro.simt.process import Interrupt, ProcessKilled

__all__ = ["Fmirun", "FmirunTask", "FmiProcess", "RankState"]


class RankState:
    """Per-rank FMI bookkeeping that survives application restarts
    (but not process death -- replacements start fresh)."""

    def __init__(self, config):
        self.loop_id = 0
        self.last_ckpt_loop: Optional[int] = None
        self.restore_pending = False
        self.policy = IntervalPolicy(config)


class FmiProcess(RankProcess):
    """One rank's runtime process (one incarnation)."""

    def __init__(self, job, rank: int, node: Node, incarnation: int,
                 copy: int = 0):
        #: which physical copy of the virtual rank this process is
        #: (always 0 unless recovery="replicated")
        self.copy = copy
        self.storage = MemoryStorage(node)
        self.rank_state = RankState(job.config)
        self.state = ProcState.H1_BOOTSTRAPPING
        self.notified_gen = -1
        self._notified_pending = False
        super().__init__(job, rank, node, incarnation)

    def _ctx_label(self) -> str:
        if self.copy:
            return f"fmi:r{self.rank}c{self.copy}i{self.incarnation}"
        return f"fmi:r{self.rank}i{self.incarnation}"

    def _proc_name(self) -> str:
        if self.copy:
            return f"fmi:rank{self.rank}c{self.copy}.{self.incarnation}"
        return f"fmi:rank{self.rank}.{self.incarnation}"

    # -- liveness / notification ------------------------------------------------
    @property
    def notified_pending(self) -> bool:
        return self._notified_pending

    @property
    def needs_resync(self) -> bool:
        # H1/H2 processes have no log-ring overlay yet; fmirun must
        # poke them directly over the PMGR tree.
        return self.state in (
            ProcState.H1_BOOTSTRAPPING, ProcState.H2_CONNECTING
        )

    def notify_failure(self, generation: int, reason: str = "") -> None:
        """Deliver a failure notification (log-ring event or fmirun
        re-sync).  Idempotent per generation."""
        if not self.alive or self.state is ProcState.DONE:
            return
        if self.notified_gen >= generation:
            return
        if self.job.recovery_strategy.absorb_notification(self, generation):
            # Partial rollback: this survivor keeps computing.  Record
            # the generation (so re-sync sweeps stay quiet) but do not
            # unwind the application.
            self.notified_gen = generation
            if self.sim.tracer.enabled:
                self.sim.tracer.instant(
                    "fmi.notify", "recovery", rank=self.rank,
                    node=self.node.id, incarnation=self.incarnation,
                    epoch=generation, reason=reason, absorbed=True,
                    job=self.job.job_id,
                )
            return
        self.notified_gen = generation
        self._notified_pending = True
        if self.sim.tracer.enabled:
            self.sim.tracer.instant(
                "fmi.notify", "recovery", rank=self.rank, node=self.node.id,
                incarnation=self.incarnation, epoch=generation, reason=reason,
                job=self.job.job_id,
            )
        self.proc.interrupt(FailureNotified(generation, reason))

    # -- the state machine ----------------------------------------------------------
    def _set_state(self, state: ProcState) -> None:
        self.state = state
        self.job.transitions.record(
            self.sim.now, self.rank, self.incarnation, state, self.job.epoch
        )
        if self.sim.tracer.enabled:
            self.sim.tracer.instant(
                "fmi.state", "state", rank=self.rank, node=self.node.id,
                incarnation=self.incarnation, epoch=self.job.epoch,
                state=state.value, job=self.job.job_id,
            )

    def _main(self):
        # Overrides the fail-stop-shaped base: the boot latency is paid
        # once per *process*, but the H1 -> H2 -> H3 body loops on every
        # Notified transition -- a notification during boot must not
        # re-charge the fork/exec cost.
        job = self.job
        booted = False
        while True:
            try:
                if not booted:
                    yield from self._boot()
                    booted = True
                result = yield from self._body()
                return result
            except (FailureNotified, Interrupt) as exc:
                self._notified_pending = True  # stays set until H1 resets it
                gen = getattr(exc, "epoch", None)
                if gen is None and isinstance(exc, Interrupt):
                    cause = exc.cause
                    gen = getattr(cause, "epoch", None)
                self.notified_gen = max(
                    self.notified_gen, gen if gen is not None else job.epoch
                )
                continue  # Notified transition: back to H1

    def _body(self):
        yield from self._h1()
        yield from self._h2()
        result = yield from self._h3()
        self._set_state(ProcState.DONE)
        self.job.rank_finished(self.rank, result)
        return result

    def _h1(self):
        """Bootstrapping: synchronise every rank, exchange endpoints."""
        self._set_state(ProcState.H1_BOOTSTRAPPING)
        job = self.job
        self._notified_pending = False
        self.notified_gen = max(self.notified_gen, job.epoch)
        plane = job.recovery_plane
        if plane is None:
            self.ctx.epoch = job.epoch  # stale pre-failure traffic now drops
            self.ctx.matching.reset()
            job.register_endpoint(self.rank, self.ctx)
        elif plane.kind == "replicated":
            # The plane owns the whole wiring decision: era epoch,
            # dedup filter, determinant sink, and whether this copy is
            # the lead (endpoint table), a follower (mirror target), or
            # a re-arming standby (buffer + sync record).
            plane.on_h1(self)
        else:
            # Partial rollback never raises the envelope epoch:
            # survivor traffic stays valid across the recovery, and
            # exact-once delivery is the plane's lseq filter instead.
            self.ctx.matching.match_sink = plane.make_sink(self.rank)
            self.ctx.matching.reset()
            job.register_endpoint(self.rank, self.ctx)
        rdv = job.h1_rendezvous(self.rank, self)
        yield rdv.arrive()

    def _h2(self):
        """Connecting: build this epoch's log-ring overlay."""
        self._set_state(ProcState.H2_CONNECTING)
        job = self.job
        n_conn = job.detector.connections_per_rank(job.num_ranks)
        yield self.sim.timeout(job.machine.spec.network.overlay_connect_cost * n_conn)
        # Under partial rollback survivors never re-join, so a
        # replacement must join the epoch-0 overlay to reach them.
        # Replicated jobs only ring the *lead* copies together
        # (followers and standbys are shadows; fmirun's task monitoring
        # plus the plane's direct pokes cover them).
        plane = job.recovery_plane
        is_lead = (
            plane is None
            or plane.kind != "replicated"
            or job.rank_procs.get(self.rank) is self
        )
        if is_lead:
            overlay_epoch = 0 if plane is not None else job.epoch
            job.detector.join(self, overlay_epoch)
        rdv = job.h2_rendezvous(self.rank, self)
        yield rdv.arrive()
        if is_lead:
            job.note_recovery_complete()

    def _h3(self):
        """Running: (re)start the application generator."""
        self._set_state(ProcState.H3_RUNNING)
        job = self.job
        if job.epoch > 0:
            # Recovery restart: FMI_Loop must restore the checkpoint.
            self.rank_state.restore_pending = True
        api = job.make_api(self)
        result = yield from job.app(api)
        return result


class FmirunTask:
    """Per-node process manager (the second tier of Figure 6)."""

    def __init__(self, fmirun: "Fmirun", slot: int, node: Node):
        self.fmirun = fmirun
        self.slot = slot
        self.node = node
        self.sim = fmirun.sim
        self.failed = False
        self.children: List[FmiProcess] = []
        self._guard = node.spawn(self._task_main(), name=f"fmirun.task[{node.id}]")
        self._guard.callbacks.append(self._on_guard_exit)

    def _task_main(self):
        yield Event(self.sim)  # exists until killed (node crash / teardown)

    def _on_guard_exit(self, evt: Event) -> None:
        # Only reached by kill (node crash or job teardown).
        if not self.failed and not self.fmirun.job.finished:
            self.failed = True
            self.fmirun.on_task_failure(self, "node-crash")

    def spawn_ranks(self, ranks: List[int], incarnation: int) -> None:
        job = self.fmirun.job
        copy = self.slot // job.num_nodes  # replica tier of this slot
        for rank in ranks:
            fproc = job.make_rank_process(
                rank, self.node, incarnation=incarnation, copy=copy
            )
            self.children.append(fproc)
            fproc.proc.callbacks.append(self._child_exit(fproc))
            job.adopt_rank_process(fproc)

    def _child_exit(self, fproc: FmiProcess):
        def cb(evt: Event) -> None:
            if evt._ok or self.failed or self.fmirun.job.finished:
                return
            if not self.node.alive:
                return  # node crash: guard path reports it
            if not isinstance(evt._value, ProcessKilled):
                return  # app exception: job.abort already triggered
            # A child died while the node stayed up: kill the other
            # children and exit with EXIT_FAILURE (Section IV-B).
            self.failed = True
            for sibling in self.children:
                if sibling is not fproc and sibling.proc.alive:
                    sibling.proc.kill(cause="fmirun.task sibling kill")
            # Only a *lead* copy's death is overlay-visible: follower
            # and standby deaths never joined the ring and must not
            # trigger a detector broadcast under their rank's name.
            if self.fmirun.job.rank_procs.get(fproc.rank) is fproc:
                self.fmirun.job.detector.process_died(fproc.rank, "child-death")
            self._guard.kill(cause="fmirun.task EXIT_FAILURE")
            self.fmirun.on_task_failure(self, f"child rank {fproc.rank} died")

        return cb

    def shutdown(self) -> None:
        self.failed = True
        if self._guard.alive:
            self._guard.kill(cause="job teardown")


class Fmirun(Survivable):
    """The master runtime process (head-node side).

    All the recovery machinery is inherited from
    :class:`~repro.runtime.policy.Survivable`; this subclass wires the
    policy knobs to the job's :class:`~repro.fmi.config.FmiConfig` and
    supplies :class:`FmirunTask` as the per-node monitor.
    """

    abort_error = FmiAbort

    # -- knobs from FmiConfig -------------------------------------------------
    @property
    def num_spares(self) -> int:
        return self.job.config.spare_nodes

    @property
    def max_recoveries(self) -> Optional[int]:
        return self.job.config.max_recoveries

    @property
    def replacement_timeout(self) -> Optional[float]:
        return self.job.config.replacement_timeout

    @property
    def num_copies(self) -> int:
        if self.job.config.recovery == "replicated":
            return self.job.config.replication_degree
        return 1

    # -- replication-aware recovery hooks -------------------------------------
    def _notify_targets(self):
        plane = self.job.recovery_plane
        if plane is not None and plane.kind == "replicated":
            return plane.all_procs()
        return super()._notify_targets()

    def _slot_procs(self, slot: int):
        plane = self.job.recovery_plane
        if plane is not None and plane.kind == "replicated":
            return plane.slot_procs(slot)
        return super()._slot_procs(slot)

    def _reuse_healthy_node(self, slot: int) -> bool:
        # A replicated slot whose processes were sibling-killed (not a
        # node crash) respawns on its own still-healthy node instead of
        # burning a spare -- re-arming must not exhaust the pool.
        return self.num_copies > 1

    # -- FMI-specific pieces ---------------------------------------------------
    def make_task(self, slot: int, node: Node) -> FmirunTask:
        return FmirunTask(self, slot, node)

    def wrap_abort(self, cause) -> BaseException:
        if isinstance(cause, FmiAbort):
            return cause
        return FmiAbort(repr(cause))
