"""The survivable FMI runtime: fmirun, fmirun.task, and rank processes.

Hierarchy (Figure 6):

* :class:`Fmirun` -- the master process.  Lives on the login node
  (outside the compute failure domain -- the paper acknowledges this
  single point of failure and argues its MTBF is years).  Allocates
  nodes (+ pre-reserved spares), starts an ``fmirun.task`` per node,
  and on task failure finds a replacement node and respawns the lost
  ranks.
* :class:`FmirunTask` -- one per node; spawns the node's application
  processes, kills its remaining children when one dies, and reports
  EXIT_FAILURE up to fmirun.
* :class:`FmiProcess` -- one per rank slot; runs the H1 -> H2 -> H3
  state machine (Figure 5).  A failure notification anywhere inside H3
  (including mid-collective, mid-checkpoint) unwinds the application
  generator and loops back to H1 -- the paper's Notified transition.

Survivor processes are *never* restarted as processes; their
in-memory checkpoint storage survives recovery, which is what makes
FMI's restart so much cheaper than MPI's relaunch.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.cluster.node import Node
from repro.fmi.checkpoint import MemoryStorage
from repro.fmi.errors import FailureNotified, FmiAbort
from repro.fmi.interval import IntervalPolicy
from repro.fmi.state import ProcState
from repro.simt.kernel import Event
from repro.simt.process import Interrupt, ProcessKilled

__all__ = ["Fmirun", "FmirunTask", "FmiProcess", "RankState"]


class RankState:
    """Per-rank FMI bookkeeping that survives application restarts
    (but not process death -- replacements start fresh)."""

    def __init__(self, config):
        self.loop_id = 0
        self.last_ckpt_loop: Optional[int] = None
        self.restore_pending = False
        self.policy = IntervalPolicy(config)


class FmiProcess:
    """One rank's runtime process (one incarnation)."""

    def __init__(self, job, rank: int, node: Node, incarnation: int):
        self.job = job
        self.rank = rank
        self.node = node
        self.incarnation = incarnation
        self.sim = job.sim
        self.ctx = job.transport.create_context(node, f"fmi:r{rank}i{incarnation}")
        self.storage = MemoryStorage(node)
        self.rank_state = RankState(job.config)
        self.state = ProcState.H1_BOOTSTRAPPING
        #: highest recovery generation this process has been told about
        self.notified_gen = -1
        self._notified_pending = False
        self.proc = node.spawn(self._main(), name=f"fmi:rank{rank}.{incarnation}")
        self.proc.callbacks.append(self._on_exit)

    # -- liveness / notification ------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.proc.alive and self.node.alive

    @property
    def notified_pending(self) -> bool:
        return self._notified_pending

    def notify_failure(self, generation: int, reason: str = "") -> None:
        """Deliver a failure notification (log-ring event or fmirun
        re-sync).  Idempotent per generation."""
        if not self.alive or self.state is ProcState.DONE:
            return
        if self.notified_gen >= generation:
            return
        self.notified_gen = generation
        self._notified_pending = True
        if self.sim.tracer.enabled:
            self.sim.tracer.instant(
                "fmi.notify", "recovery", rank=self.rank, node=self.node.id,
                incarnation=self.incarnation, epoch=generation, reason=reason,
            )
        self.proc.interrupt(FailureNotified(generation, reason))

    # -- the state machine ----------------------------------------------------------
    def _set_state(self, state: ProcState) -> None:
        self.state = state
        self.job.transitions.record(
            self.sim.now, self.rank, self.incarnation, state, self.job.epoch
        )
        if self.sim.tracer.enabled:
            self.sim.tracer.instant(
                "fmi.state", "state", rank=self.rank, node=self.node.id,
                incarnation=self.incarnation, epoch=self.job.epoch,
                state=state.value,
            )

    def _main(self):
        job = self.job
        spec = job.machine.spec
        booted = False
        while True:
            try:
                if not booted:
                    # fork/exec + loading the executable (once per process).
                    yield self.sim.timeout(
                        spec.proc_spawn_latency + spec.exec_load_latency
                    )
                    booted = True
                yield from self._h1()
                yield from self._h2()
                result = yield from self._h3()
                self._set_state(ProcState.DONE)
                job.rank_finished(self.rank, result)
                return result
            except (FailureNotified, Interrupt) as exc:
                self._notified_pending = True  # stays set until H1 resets it
                gen = getattr(exc, "epoch", None)
                if gen is None and isinstance(exc, Interrupt):
                    cause = exc.cause
                    gen = getattr(cause, "epoch", None)
                self.notified_gen = max(
                    self.notified_gen, gen if gen is not None else job.epoch
                )
                continue  # Notified transition: back to H1

    def _h1(self):
        """Bootstrapping: synchronise every rank, exchange endpoints."""
        self._set_state(ProcState.H1_BOOTSTRAPPING)
        job = self.job
        self._notified_pending = False
        self.notified_gen = max(self.notified_gen, job.epoch)
        self.ctx.epoch = job.epoch  # stale pre-failure traffic now drops
        self.ctx.matching.reset()
        job.register_endpoint(self.rank, self)
        rdv = job.h1_rendezvous()
        yield rdv.arrive()

    def _h2(self):
        """Connecting: build this epoch's log-ring overlay."""
        self._set_state(ProcState.H2_CONNECTING)
        job = self.job
        n_conn = job.detector.connections_per_rank(job.num_ranks)
        yield self.sim.timeout(job.machine.spec.network.overlay_connect_cost * n_conn)
        job.detector.join(self, job.epoch)
        rdv = job.h2_rendezvous()
        yield rdv.arrive()
        job.note_recovery_complete()

    def _h3(self):
        """Running: (re)start the application generator."""
        self._set_state(ProcState.H3_RUNNING)
        job = self.job
        if job.epoch > 0:
            # Recovery restart: FMI_Loop must restore the checkpoint.
            self.rank_state.restore_pending = True
        api = job.make_api(self)
        result = yield from job.app(api)
        return result

    # -- exit handling ------------------------------------------------------------
    def _on_exit(self, proc_evt: Event) -> None:
        if proc_evt._ok or self.state is ProcState.DONE:
            return
        exc = proc_evt._value
        if isinstance(exc, ProcessKilled):
            # Injected failure / node crash: the survivable path.
            self.job.process_lost(self, exc)
        else:
            # Programming error or unrecoverable condition: abort.
            self.job.abort(exc)


class FmirunTask:
    """Per-node process manager (the second tier of Figure 6)."""

    def __init__(self, fmirun: "Fmirun", slot: int, node: Node):
        self.fmirun = fmirun
        self.slot = slot
        self.node = node
        self.sim = fmirun.sim
        self.failed = False
        self.children: List[FmiProcess] = []
        self._guard = node.spawn(self._task_main(), name=f"fmirun.task[{node.id}]")
        self._guard.callbacks.append(self._on_guard_exit)

    def _task_main(self):
        yield Event(self.sim)  # exists until killed (node crash / teardown)

    def _on_guard_exit(self, evt: Event) -> None:
        # Only reached by kill (node crash or job teardown).
        if not self.failed and not self.fmirun.job.finished:
            self.failed = True
            self.fmirun.on_task_failure(self, "node-crash")

    def spawn_ranks(self, ranks: List[int], incarnation: int) -> None:
        for rank in ranks:
            fproc = FmiProcess(self.fmirun.job, rank, self.node, incarnation)
            self.children.append(fproc)
            fproc.proc.callbacks.append(self._child_exit(fproc))
            self.fmirun.job.rank_procs[rank] = fproc

    def _child_exit(self, fproc: FmiProcess):
        def cb(evt: Event) -> None:
            if evt._ok or self.failed or self.fmirun.job.finished:
                return
            if not self.node.alive:
                return  # node crash: guard path reports it
            if not isinstance(evt._value, ProcessKilled):
                return  # app exception: job.abort already triggered
            # A child died while the node stayed up: kill the other
            # children and exit with EXIT_FAILURE (Section IV-B).
            self.failed = True
            for sibling in self.children:
                if sibling is not fproc and sibling.proc.alive:
                    sibling.proc.kill(cause="fmirun.task sibling kill")
            self.fmirun.job.detector.process_died(fproc.rank, "child-death")
            self._guard.kill(cause="fmirun.task EXIT_FAILURE")
            self.fmirun.on_task_failure(self, f"child rank {fproc.rank} died")

        return cb

    def shutdown(self) -> None:
        self.failed = True
        if self._guard.alive:
            self._guard.kill(cause="job teardown")


class Fmirun:
    """The master runtime process (head-node side)."""

    def __init__(self, job):
        self.job = job
        self.sim = job.sim
        self.machine = job.machine
        self.alloc = None
        self.node_slots: List[Node] = []
        self.tasks: Dict[int, FmirunTask] = {}
        self._last_bump_time: Optional[float] = None
        self._recovery_proc = None

    # -- launch -----------------------------------------------------------------
    def start(self) -> None:
        job = self.job
        self.alloc = self.machine.rm.allocate(
            job.num_nodes, num_spares=job.config.spare_nodes
        )
        self.node_slots = list(self.alloc.nodes)
        for slot, node in enumerate(self.node_slots):
            self._start_task(slot, node, incarnation=0)

    def _start_task(self, slot: int, node: Node, incarnation: int) -> None:
        task = FmirunTask(self, slot, node)
        self.tasks[slot] = task
        ranks = self.job.ranks_of_slot(slot)
        task.spawn_ranks(ranks, incarnation)

    # -- failure handling -----------------------------------------------------------
    def on_task_failure(self, task: FmirunTask, cause: str) -> None:
        if self.job.finished:
            return
        self.begin_recovery(f"task[{task.slot}]: {cause}")

    def begin_recovery(self, cause: str) -> None:
        """Bump the recovery epoch (coalescing same-instant failures)
        and make sure the replacement machinery is running."""
        job = self.job
        if self._last_bump_time == self.sim.now:
            return
        self._last_bump_time = self.sim.now
        job.epoch += 1
        job.recovery_causes.append((self.sim.now, cause))
        if self.sim.tracer.enabled:
            self.sim.tracer.instant(
                "recovery.begin", "recovery", epoch=job.epoch, cause=cause,
            )
        if self.sim.metrics.enabled:
            self.sim.metrics.counter("fmi.recoveries").inc()
            self.sim.metrics.gauge("fmi.epoch").set(job.epoch)
        if job.config.max_recoveries is not None and job.epoch > job.config.max_recoveries:
            job.abort(FmiAbort(f"exceeded max_recoveries={job.config.max_recoveries}"))
            return
        # Processes already back in H1/H2 (recovering from an earlier
        # failure) have no overlay to hear through; fmirun re-syncs them
        # over the PMGR tree.  H3 processes hear via the log-ring.
        for fproc in job.rank_procs.values():
            if fproc.alive and fproc.state in (
                ProcState.H1_BOOTSTRAPPING, ProcState.H2_CONNECTING
            ):
                fproc.notify_failure(job.epoch, "fmirun re-sync")
        if self._recovery_proc is None or not self._recovery_proc.alive:
            self._recovery_proc = self.sim.spawn(
                self._recover(), name="fmirun.recover"
            )
        # Safety sweep: anything still un-notified well after the
        # log-ring should have reached it gets a direct poke.
        sweep = self.sim.timeout(1.0)
        target = job.epoch
        sweep.callbacks.append(lambda _e: self._sweep(target))

    def _sweep(self, generation: int) -> None:
        job = self.job
        if job.finished or job.epoch != generation:
            return
        for fproc in job.rank_procs.values():
            if fproc.alive and fproc.notified_gen < generation:
                fproc.notify_failure(generation, "fmirun sweep")

    def _recover(self):
        """Replace failed nodes and respawn their ranks (Figure 6)."""
        job = self.job
        spec = self.machine.spec
        while True:
            target_epoch = job.epoch
            for slot in range(job.num_nodes):
                node = self.node_slots[slot]
                task = self.tasks.get(slot)
                ranks = job.ranks_of_slot(slot)
                if all(
                    job.rank_procs[r].alive or r in job.finished_ranks
                    for r in ranks
                ) and node.alive and task is not None and not task.failed:
                    continue
                # This slot needs a fresh node (spare list first, then
                # the resource manager).
                if task is not None:
                    task.shutdown()
                new_node = self.alloc.take_spare()
                if new_node is None:
                    request = self.machine.rm.request_replacement()
                    deadline = job.config.replacement_timeout
                    if deadline is None:
                        new_node = yield request
                    else:
                        from repro.simt.primitives import AnyOf

                        idx, value = yield AnyOf(
                            self.sim, [request, self.sim.timeout(deadline)]
                        )
                        if idx == 1:
                            job.abort(FmiAbort(
                                f"no replacement node granted within "
                                f"{deadline}s (machine exhausted?)"
                            ))
                            return
                        new_node = value
                self.node_slots[slot] = new_node
                yield self.sim.timeout(spec.proc_spawn_latency)  # start fmirun.task
                incarnation = max(
                    job.rank_procs[r].incarnation for r in ranks
                ) + 1
                self._start_task(slot, new_node, incarnation)
            if job.epoch == target_epoch:
                return

    # -- dynamic leave (maintenance drain) ------------------------------------
    def drain_slot(self, slot: int) -> None:
        """Gracefully vacate a node ("compute nodes ... leave the job
        dynamically", Section III-A).

        The slot's ranks are migrated onto a replacement node through
        the ordinary recovery machinery -- one rollback to the last
        checkpoint, XOR rebuild of the leaving ranks' state -- and the
        *healthy* node goes back to the resource manager's idle pool,
        immediately available to other jobs (or as this job's next
        replacement).
        """
        if self.job.finished:
            raise RuntimeError("cannot drain a finished job")
        task = self.tasks.get(slot)
        node = self.node_slots[slot]
        if task is None or task.failed or not node.alive:
            raise RuntimeError(f"slot {slot} is not drainable")
        for child in list(task.children):
            if child.proc.alive:
                child.proc.kill(cause=f"drain slot {slot}")
                break  # the sibling-kill path takes down the rest
        # The node is healthy; put it back in the pool once its guard
        # process is gone (the child-death path killed it synchronously).
        self.machine.rm.return_node(node)

    # -- teardown ---------------------------------------------------------------
    def shutdown(self) -> None:
        for task in self.tasks.values():
            task.shutdown()
        if self.alloc is not None:
            self.alloc.release()
