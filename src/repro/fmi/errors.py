"""FMI exception types."""

from __future__ import annotations

__all__ = ["FmiError", "FailureNotified", "UnrecoverableFailure", "FmiAbort"]


class FmiError(RuntimeError):
    """Base class for FMI runtime errors."""


class FailureNotified(FmiError):
    """Raised inside application/runtime code when this process learns
    of a failure (log-ring event or fmirun re-sync).

    The FMI process driver catches it and transitions back to the H1
    Bootstrapping state -- user code never needs to handle it, which is
    the paper's "transparent recovery" contract.
    """

    def __init__(self, epoch: int, reason: str = ""):
        super().__init__(f"failure notified (recovery epoch {epoch}): {reason}")
        self.epoch = epoch
        self.reason = reason


class UnrecoverableFailure(FmiError):
    """The failure pattern exceeds what level-1 XOR C/R can repair
    (e.g. two ranks of the same XOR group lost at once)."""


class FmiAbort(FmiError):
    """The job was aborted (unrecoverable failure or explicit abort)."""
