"""Runtime-wide invariants checked after (and during) every chaos run.

Each checker consumes the observability streams -- the trace, the
metrics, and a handful of public runtime counters -- and returns a list
of :class:`Violation` s (empty = green):

* **epoch-monotone** -- per rank, the recovery epoch stamped on
  ``fmi.state`` transitions never decreases, and ``fmi.notify``
  generations are strictly increasing per incarnation.
* **no-stale-delivery** -- every ``net.recv`` carries the receiving
  context's epoch (``ctx_epoch``); a delivery with an envelope epoch
  older than its context would mean the transport's epoch filter
  (Section IV-D) was bypassed.
* **posted-receives** -- at job end, every context that is still live
  has no pending (un-triggered) posted receive: each posted receive was
  either matched or cancelled by a recovery reset; superseded contexts
  must have been closed.
* **detector-bounded** -- the log-ring connection table holds at most
  ``2 x out-degree`` entries per rank, and no *closed* connection
  lingers in it longer than the ibverbs close delay allows
  (:class:`DetectorMonitor` samples during the run, since the table is
  legitimately empty once every rank has left).
* **answer** -- the application's per-rank results are bit-equal to the
  failure-free reference run.

Gray-failure invariants:

* **no-split-brain** -- a network partition alone must never be treated
  as a failure: no rank may act on a partition-rooted notification that
  was not out-of-band confirmed, and the number of recovery epochs must
  not exceed the number of *real* injected deaths/drains (a partition
  that triggered recovery on both sides would double it).
* **suspicion-resolved** -- every ``overlay.suspect`` the detector
  raises is eventually cleared (peer alive, healed, dead, or the rank
  left); an unresolved suspicion is a leaked timer or a lost decision.
* **link-accounting** -- after the run, no message is still parked at a
  healed partition cut, and the receiver never suppressed more
  duplicates than the fault model injected.

Replication invariant:

* **zero-rollback** -- a replicated run (any ``repl.*`` trace event)
  must never restore a checkpoint: failover promotes a live copy in
  place.  The only legal restores are at/after an explicit
  ``repl.fallback`` (every copy of some rank died).

Multi-tenant invariant (shared-cluster runs that pass ``jobs=``):

* **tenant-isolation** -- a kill aimed at one tenant is invisible to
  every other tenant: bystanders end at epoch 0 with zero detector
  notifications, targeted tenants each recover through their *own*
  epochs, and nobody opens more epochs than kills aimed at it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.net.overlay import root_reason

__all__ = [
    "Violation", "DetectorMonitor",
    "check_epoch_monotone", "check_no_stale_delivery",
    "check_posted_receives", "check_detector_bounded", "check_answer",
    "check_no_split_brain", "check_suspicion_resolved",
    "check_link_accounting", "check_no_orphans", "check_zero_rollback",
    "check_tenant_isolation", "check_all",
]


@dataclass(frozen=True)
class Violation:
    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"


# ----------------------------------------------------------- trace checkers
def check_epoch_monotone(tracer) -> List[Violation]:
    """Recovery epochs never run backwards, per (tenant, rank).

    Keyed by the ``job`` label the runtime stamps on every ``fmi.*``
    event: on a shared cluster two tenants legitimately run the same
    rank numbers at unrelated epochs, and only same-tenant regressions
    are bugs.
    """
    out: List[Violation] = []
    last_state_epoch: Dict[tuple, int] = {}
    last_notify_gen: Dict[tuple, int] = {}
    for ev in tracer.events:
        if ev.name == "fmi.state":
            key = (ev.args.get("job"), ev.rank)
            prev = last_state_epoch.get(key)
            if prev is not None and ev.epoch < prev:
                out.append(Violation(
                    "epoch-monotone",
                    f"job {key[0]} rank {ev.rank} state epoch went "
                    f"{prev} -> {ev.epoch} at t={ev.ts:.6g}",
                ))
            last_state_epoch[key] = ev.epoch
        elif ev.name == "fmi.notify":
            key = (ev.args.get("job"), ev.rank, ev.incarnation)
            prev = last_notify_gen.get(key)
            if prev is not None and ev.epoch <= prev:
                out.append(Violation(
                    "epoch-monotone",
                    f"job {key[0]} rank {ev.rank} (inc {ev.incarnation}) "
                    f"notified of generation {ev.epoch} after {prev} "
                    f"at t={ev.ts:.6g}",
                ))
            last_notify_gen[key] = ev.epoch
    return out


def check_no_stale_delivery(tracer) -> List[Violation]:
    """No envelope from an older epoch was delivered into a context."""
    out: List[Violation] = []
    for ev in tracer.events:
        if ev.name != "net.recv":
            continue
        ctx_epoch = ev.args.get("ctx_epoch")
        if ctx_epoch is not None and ev.epoch < ctx_epoch:
            out.append(Violation(
                "no-stale-delivery",
                f"rank {ev.rank} received an epoch-{ev.epoch} envelope "
                f"in an epoch-{ctx_epoch} context at t={ev.ts:.6g}",
            ))
    return out


def check_no_orphans(tracer) -> List[Violation]:
    """Partial rollback never leaves an orphan receive behind.

    An *orphan* is a process whose state depends on a message its
    sender's rollback "unsent" and that the system can no longer
    account for.  Under sender-based logging the accounting obligation
    is: every logged channel message ``(src, dst, n)`` whose sender
    later rewound past it (the rewind's channel counter is <= n, which
    truncates the log entry) must be logged *again* after that rewind
    -- piecewise-deterministic re-execution regenerated the identical
    send, and the receiver's lseq filter deduplicates the copy.
    No-op for runs without mlog events (global recovery plane).
    """
    # (src, dst, n) -> send-log timestamps, in trace order
    log_times: Dict[tuple, List[float]] = {}
    # (src, dst, n) -> delivered at least once
    delivered: set = set()
    # sender rewinds: (ts, rank, {dst: counter})
    rewinds: List[tuple] = []
    for ev in tracer.events:
        if ev.name == "mlog.log":
            key = (ev.rank, ev.args.get("dst"), ev.args.get("n"))
            log_times.setdefault(key, []).append(ev.ts)
        elif ev.name == "mlog.rewind":
            counters = {
                int(d): n for d, n in ev.args.get("counters", {}).items()
            }
            rewinds.append((ev.ts, ev.rank, counters))
        elif ev.name == "net.recv":
            lseq = ev.args.get("lseq")
            if lseq is not None:
                delivered.add(tuple(lseq))
    if not rewinds:
        return []
    out: List[Violation] = []
    for key in delivered:
        times = log_times.get(key)
        if not times:
            continue  # never logged: an intra-unit channel
        src, dst, n = key
        for ts, rank, counters in rewinds:
            if rank != src or n < counters.get(dst, 0):
                continue  # not this sender / survived the rewind
            if not any(t < ts for t in times):
                continue  # first logged after this rewind
            if not any(t > ts for t in times):
                out.append(Violation(
                    "no-orphans",
                    f"message ({src}->{dst}, n={n}) was delivered, then "
                    f"rolled back by rank {src}'s rewind at t={ts:.6g}, "
                    f"and never re-logged: the receiver's state is an "
                    f"orphan of an unsent message",
                ))
    return out


def check_zero_rollback(tracer) -> List[Violation]:
    """Replicated recovery never restores a checkpoint -- failover is
    the whole point -- except after an explicit fallback.

    Gated on the presence of ``repl.*`` trace events (a no-op for the
    global and logged families).  A standby re-arm clones its lead's
    live storage directly and never runs the restore collectives, so
    any ``ckpt.restore.begin`` before the first ``repl.fallback`` (or
    without one at all) means a survivor was rolled back.
    """
    replicated = False
    first_fallback: Optional[float] = None
    restores: List = []
    for ev in tracer.events:
        if ev.name.startswith("repl."):
            replicated = True
            if ev.name == "repl.fallback" and first_fallback is None:
                first_fallback = ev.ts
        elif ev.name == "ckpt.restore.begin":
            restores.append(ev)
    if not replicated:
        return []
    out: List[Violation] = []
    for ev in restores:
        if first_fallback is None:
            out.append(Violation(
                "zero-rollback",
                f"rank {ev.rank} began a checkpoint restore at "
                f"t={ev.ts:.6g} although replication never fell back",
            ))
        elif ev.ts < first_fallback:
            out.append(Violation(
                "zero-rollback",
                f"rank {ev.rank} began a checkpoint restore at "
                f"t={ev.ts:.6g}, before the first fallback at "
                f"t={first_fallback:.6g}",
            ))
    return out


# ---------------------------------------------------------- state checkers
def check_posted_receives(job) -> List[Violation]:
    """Every posted receive was matched or cancelled.

    Swept over *all* contexts the job's transport ever created: live
    contexts must have drained (their ranks finished); contexts of dead
    incarnations must have been closed or sit on dead nodes.
    """
    out: List[Violation] = []
    for ctx in job.transport.contexts:
        if ctx.closed or not ctx.node.alive:
            continue
        pending = ctx.matching.pending_posted
        if pending:
            out.append(Violation(
                "posted-receives",
                f"context {ctx.label} (addr {ctx.addr}) still has "
                f"{pending} pending posted receive(s) at job end",
            ))
    return out


class DetectorMonitor:
    """Samples the log-ring detector's connection table during a run.

    The boundedness invariant cannot be checked only at job end -- every
    rank's ``leave()`` empties its own list, so the final table is empty
    even with the accumulation bug present.  Instead the monitor samples
    every ``sample_dt`` simulated seconds and records:

    * the largest per-rank entry count seen (must stay within
      ``2 x out-degree``: a rank's incoming plus outgoing log-ring
      edges);
    * any *closed* connection that stays in the table longer than
      ``grace`` seconds.  Transiently-closed entries are legal (a node
      death closes edges ~0.2 s before the detector hears the ibverbs
      event); a closed entry that survives past the grace window is the
      neighbour-list leak.
    """

    def __init__(self, job, sample_dt: float = 0.25, grace: float = 1.0):
        self.job = job
        self.sample_dt = sample_dt
        self.grace = grace
        self.samples = 0
        self.max_entries = 0
        self._stale_first_seen: Dict[int, float] = {}
        self.violations: List[Violation] = []

    def start(self) -> None:
        self.job.sim.spawn(self._run(), name="chaos.detector-monitor")

    def _run(self):
        sim = self.job.sim
        while not self.job.finished:
            self.sample()
            yield sim.timeout(self.sample_dt)

    def sample(self) -> None:
        self.samples += 1
        now = self.job.sim.now
        seen_stale = set()
        for rank, conns in self.job.detector._conns.items():
            self.max_entries = max(self.max_entries, len(conns))
            rproc = self.job.rank_procs.get(rank)
            if rproc is None or not rproc.alive:
                # A dead rank's list is garbage-collected when its
                # replacement rejoins; nobody is alive to hear its
                # disconnect events meanwhile.  The leak this monitor
                # hunts is closed entries in *live* ranks' lists.
                continue
            for conn in conns:
                if conn.open:
                    continue
                seen_stale.add(id(conn))
                first = self._stale_first_seen.setdefault(id(conn), now)
                if now - first > self.grace:
                    self.violations.append(Violation(
                        "detector-bounded",
                        f"closed connection {conn.ends} still in rank "
                        f"{rank}'s table {now - first:.3g}s after it was "
                        f"first seen closed (t={now:.6g})",
                    ))
                    seen_stale.discard(id(conn))  # report once
        self._stale_first_seen = {
            k: v for k, v in self._stale_first_seen.items() if k in seen_stale
        }


def check_detector_bounded(job, monitor: DetectorMonitor) -> List[Violation]:
    out = list(monitor.violations)
    bound = 2 * job.detector.connections_per_rank(job.num_ranks)
    if monitor.max_entries > bound:
        out.append(Violation(
            "detector-bounded",
            f"a rank's connection table reached {monitor.max_entries} "
            f"entries (log-ring bound: {bound})",
        ))
    return out


# ------------------------------------------------------- gray-failure checks
def check_no_split_brain(tracer) -> List[Violation]:
    """A partition alone must never drive recovery.

    Two teeth: (1) no ``fmi.notify`` whose root reason is a raw
    ``partition:`` event -- the detector must hold such events as
    suspicions and only act after out-of-band confirmation
    (``confirmed:...``); (2) the job never opens more recovery epochs
    than real deaths/drains were injected, so a cut observed on both
    sides cannot silently double the recovery count.
    """
    out: List[Violation] = []
    deaths = 0
    recoveries = 0
    for ev in tracer.events:
        if ev.name == "node.crash":
            deaths += 1
        elif ev.name == "chaos.inject":
            action = ev.args.get("action", "")
            # Process-only kills and drains cause recovery without a
            # node.crash trace; refused/no-op records do not count.
            if (
                (action.startswith("kill rank") or action.startswith("drain slot"))
                and "refused" not in action
                and "already dead" not in action
            ):
                deaths += 1
        elif ev.name == "recovery.begin":
            recoveries += 1
        elif ev.name == "fmi.notify":
            reason = root_reason(str(ev.args.get("reason", "")))
            if reason.startswith("partition:"):
                out.append(Violation(
                    "no-split-brain",
                    f"rank {ev.rank} acted on unconfirmed partition event "
                    f"{reason!r} at t={ev.ts:.6g}",
                ))
    if recoveries > deaths:
        out.append(Violation(
            "no-split-brain",
            f"{recoveries} recovery epoch(s) opened for only {deaths} "
            f"real injected death(s)/drain(s)",
        ))
    return out


def check_suspicion_resolved(tracer) -> List[Violation]:
    """Every raised suspicion is eventually cleared (per tenant)."""
    pending: Dict[tuple, float] = {}
    for ev in tracer.events:
        if ev.name == "overlay.suspect":
            pending[(ev.args.get("job"), ev.rank, ev.args.get("peer"))] = ev.ts
        elif ev.name == "overlay.suspect.cleared":
            pending.pop(
                (ev.args.get("job"), ev.rank, ev.args.get("peer")), None
            )
    return [
        Violation(
            "suspicion-resolved",
            f"job {jid} rank {rank}'s suspicion of rank {peer} "
            f"(raised t={ts:.6g}) was never resolved",
        )
        for (jid, rank, peer), ts in pending.items()
    ]


def check_link_accounting(job) -> List[Violation]:
    """No lost or fabricated messages at the gray-failure layer."""
    out: List[Violation] = []
    transport = job.transport
    if transport._stalled and not job.machine.fabric.partitioned:
        out.append(Violation(
            "link-accounting",
            f"{len(transport._stalled)} message(s) still parked at a "
            f"partition cut although the fabric is healed",
        ))
    if transport.dup_dropped > transport.omission_dups:
        out.append(Violation(
            "link-accounting",
            f"suppressed {transport.dup_dropped} duplicate(s) but the "
            f"fault model only injected {transport.omission_dups}",
        ))
    return out


# --------------------------------------------------------- tenant isolation
def check_tenant_isolation(tracer, jobs) -> List[Violation]:
    """One tenant's failure stays that tenant's problem.

    Multi-tenant runs only (``jobs`` is every co-resident job).  Kills
    injected through :class:`~repro.chaos.scenario.KillTenantSlot` tag
    their ``chaos.inject`` record with the victim's ``job_id``; from
    that tag and the per-tenant ``job`` labels on the recovery streams,
    three teeth:

    * a *bystander* (tenant never targeted) must end with epoch 0 --
      zero ``recovery.begin``, zero ``fmi.notify``, zero detector
      ``overlay.notified`` events carry its id (no cross-tenant epoch
      bumps, no detector split-brain);
    * every *targeted* tenant opened at least one recovery epoch of its
      own (it recovered independently rather than riding another
      tenant's recovery);
    * no tenant opens more recovery epochs than kills aimed at it
      (allocations are node-exclusive, so a neighbour's dead node can
      never be mistaken for ours).
    """
    kills: Dict[str, int] = {}
    recoveries: Dict[str, int] = {}
    notified: Dict[str, int] = {}
    max_epoch: Dict[str, int] = {}
    for ev in tracer.events:
        jid = ev.args.get("job")
        if ev.name == "chaos.inject":
            action = ev.args.get("action", "")
            if (jid is not None and action.startswith("kill tenant")
                    and "already dead" not in action):
                kills[jid] = kills.get(jid, 0) + 1
        elif ev.name == "recovery.begin" and jid is not None:
            recoveries[jid] = recoveries.get(jid, 0) + 1
        elif ev.name == "overlay.notified" and jid is not None:
            notified[jid] = notified.get(jid, 0) + 1
        elif ev.name in ("fmi.state", "fmi.notify") and jid is not None:
            max_epoch[jid] = max(max_epoch.get(jid, 0), ev.epoch)
    out: List[Violation] = []
    for job in jobs:
        jid = job.job_id
        if kills.get(jid, 0) == 0:
            for what, count in [
                ("recovery epoch(s)", recoveries.get(jid, 0)),
                ("detector notification(s)", notified.get(jid, 0)),
            ]:
                if count:
                    out.append(Violation(
                        "tenant-isolation",
                        f"bystander {jid} saw {count} {what} although no "
                        f"kill targeted it",
                    ))
            if max_epoch.get(jid, 0) > 0:
                out.append(Violation(
                    "tenant-isolation",
                    f"bystander {jid} reached epoch {max_epoch[jid]} "
                    f"although no kill targeted it",
                ))
        else:
            if recoveries.get(jid, 0) == 0:
                out.append(Violation(
                    "tenant-isolation",
                    f"{jid} was targeted by {kills[jid]} kill(s) but never "
                    f"opened a recovery epoch of its own",
                ))
            if recoveries.get(jid, 0) > kills[jid]:
                out.append(Violation(
                    "tenant-isolation",
                    f"{jid} opened {recoveries[jid]} recovery epoch(s) for "
                    f"only {kills[jid]} kill(s) aimed at it",
                ))
    return out


# -------------------------------------------------------------- the answer
def check_answer(results: Sequence, reference: Sequence) -> List[Violation]:
    """Per-rank results must be *bit-equal* to the failure-free run."""
    out: List[Violation] = []
    if len(results) != len(reference):
        return [Violation(
            "answer",
            f"{len(results)} results vs {len(reference)} in the reference",
        )]
    for rank, (got, want) in enumerate(zip(results, reference)):
        if isinstance(want, np.ndarray):
            same = isinstance(got, np.ndarray) and np.array_equal(got, want)
        else:
            same = got == want
        if not same:
            out.append(Violation(
                "answer",
                f"rank {rank}: {got!r} != failure-free {want!r}",
            ))
    return out


# ------------------------------------------------------------------ driver
def check_all(
    job,
    tracer,
    results: Optional[Sequence],
    reference: Optional[Sequence],
    monitor: Optional[DetectorMonitor] = None,
    jobs: Optional[Sequence] = None,
) -> List[Violation]:
    """Run every checker; ``results=None`` means the job never finished
    (already reported by the runner as its own violation).  ``jobs``
    lists every co-resident tenant on a shared cluster -- passing it
    turns on the tenant-isolation invariant (single-tenant runs omit
    it)."""
    out: List[Violation] = []
    out += check_epoch_monotone(tracer)
    out += check_no_stale_delivery(tracer)
    out += check_no_split_brain(tracer)
    out += check_suspicion_resolved(tracer)
    out += check_no_orphans(tracer)
    out += check_zero_rollback(tracer)
    out += check_posted_receives(job)
    out += check_link_accounting(job)
    if monitor is not None:
        out += check_detector_bounded(job, monitor)
    if results is not None and reference is not None:
        out += check_answer(results, reference)
    if jobs is not None:
        out += check_tenant_isolation(tracer, jobs)
    return out
