"""The chaos soak driver.

Sweeps campaigns x seeds, reports survival per campaign, records every
failing (campaign, seed) pair, and replays any pair deterministically::

    python -m repro.chaos --campaign all --seeds 25
    python -m repro.chaos --campaign spare-exhaustion --seed-list 3,7,11
    python -m repro.chaos --replay kill-during-recovery:7 --trace-out t.jsonl
    python -m repro.chaos --list

Exit status is non-zero when any invariant was violated, so the CI
smoke job fails loudly.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.chaos.campaigns import CAMPAIGNS
from repro.chaos.runner import RunResult, run_campaign


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="fault-injection campaign soak for the FMI runtime",
    )
    parser.add_argument(
        "--campaign", default="all",
        help="campaign name, comma-separated names, or 'all' (default)",
    )
    parser.add_argument(
        "--seeds", type=int, default=10,
        help="sweep seeds 0..N-1 (default: 10)",
    )
    parser.add_argument(
        "--seed-list", default=None,
        help="explicit comma-separated seed list (overrides --seeds)",
    )
    parser.add_argument(
        "--replay", default=None, metavar="CAMPAIGN:SEED",
        help="re-run one (campaign, seed) pair with a verbose report",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="with --replay: write the run's trace as JSONL to PATH",
    )
    parser.add_argument("--list", action="store_true",
                        help="list campaigns and exit")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print every run, not just failures")
    return parser.parse_args(argv)


def _campaign_names(spec: str) -> List[str]:
    if spec == "all":
        return list(CAMPAIGNS)
    names = [n.strip() for n in spec.split(",") if n.strip()]
    for name in names:
        if name not in CAMPAIGNS:
            known = ", ".join(CAMPAIGNS)
            raise SystemExit(f"unknown campaign {name!r} (known: {known})")
    return names


def _print_result(result: RunResult, verbose: bool) -> None:
    status = "ok " if result.ok else "FAIL"
    print(
        f"  [{status}] {result.campaign} seed={result.seed} "
        f"recoveries={result.recoveries} sim_t={result.sim_time:.2f}s "
        f"events={result.trace_events}"
    )
    if verbose or not result.ok:
        for t, desc in result.injected:
            print(f"         t={t:.3f}s inject: {desc}")
    for violation in result.violations:
        print(f"         VIOLATION {violation}")


def _replay(pair: str, trace_out, verbose: bool) -> int:
    try:
        name, seed_s = pair.rsplit(":", 1)
        seed = int(seed_s)
    except ValueError:
        raise SystemExit(f"--replay wants CAMPAIGN:SEED, got {pair!r}")
    if name not in CAMPAIGNS:
        raise SystemExit(f"unknown campaign {name!r}")
    print(f"replaying ({name}, seed {seed}) ...")
    result = run_campaign(name, seed, keep_trace=True)
    _print_result(result, verbose=True)
    if trace_out:
        from repro.obs import write_jsonl

        write_jsonl(result.tracer.events, trace_out)
        print(f"  trace written to {trace_out} "
              f"({result.trace_events} events)")
    print("invariants GREEN" if result.ok
          else f"{len(result.violations)} invariant violation(s)")
    return 0 if result.ok else 1


def main(argv=None) -> int:
    args = _parse_args(argv if argv is not None else sys.argv[1:])

    if args.list:
        for campaign in CAMPAIGNS.values():
            print(f"{campaign.name:24s} {campaign.summary}")
        return 0

    if args.replay:
        return _replay(args.replay, args.trace_out, args.verbose)

    names = _campaign_names(args.campaign)
    if args.seed_list:
        seeds = [int(s) for s in args.seed_list.split(",") if s.strip()]
    else:
        seeds = list(range(args.seeds))

    print(f"chaos soak: {len(names)} campaign(s) x {len(seeds)} seed(s)")
    failing: List[RunResult] = []
    t_wall = time.time()
    for name in names:
        results = []
        for seed in seeds:
            result = run_campaign(name, seed)
            results.append(result)
            if args.verbose or not result.ok:
                _print_result(result, args.verbose)
        ok = sum(1 for r in results if r.ok)
        recoveries = [r.recoveries for r in results]
        print(
            f"{name:24s} {ok}/{len(results)} ok   recoveries "
            f"min/mean/max = {min(recoveries)}/"
            f"{sum(recoveries) / len(recoveries):.1f}/{max(recoveries)}"
        )
        failing.extend(r for r in results if not r.ok)

    wall = time.time() - t_wall
    total = len(names) * len(seeds)
    if failing:
        print(f"\nFAILING PAIRS ({len(failing)}/{total} runs, {wall:.1f}s):")
        for result in failing:
            worst = result.violations[0]
            print(f"  ({result.campaign}, {result.seed}): {worst}")
            print(f"    replay: python -m repro.chaos "
                  f"--replay {result.campaign}:{result.seed}")
        return 1
    print(f"\nall invariants green across {total} runs ({wall:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
