"""repro.chaos -- fault-injection campaigns for the survivable runtime.

A Jepsen-style adversarial-schedule harness on top of the simulator and
the observability layer:

* :mod:`~repro.chaos.scenario` -- the declarative DSL: triggers
  (fixed time, trace event, seeded random schedule) x actions (kill
  slot/node/rank, drain, partition/heal, lossy links, limping nodes)
  armed by a :class:`ChaosEngine`;
* :mod:`~repro.chaos.campaigns` -- canned campaigns covering the
  corner matrix: crash faults (mid-checkpoint kill, kill-during-
  recovery, double kill in one XOR group, spare exhaustion,
  drain-then-fail) and gray failures (partition-heal, partition-kill-
  mid-heal, flapping-partition, lossy-links, limping-node);
* :mod:`~repro.chaos.invariants` -- runtime-wide properties checked
  against the trace and runtime state after every run;
* :mod:`~repro.chaos.runner` -- deterministic (campaign, seed)
  execution and the seed-sweep soak.

CLI (see ``python -m repro.chaos --help``)::

    python -m repro.chaos --campaign all --seeds 25   # the soak
    python -m repro.chaos --replay drain-then-fail:7  # one failing pair
"""

from repro.chaos.campaigns import CAMPAIGNS, GRAY_CAMPAIGNS, Campaign
from repro.chaos.invariants import (
    DetectorMonitor,
    Violation,
    check_all,
    check_answer,
    check_detector_bounded,
    check_epoch_monotone,
    check_link_accounting,
    check_no_split_brain,
    check_no_stale_delivery,
    check_posted_receives,
    check_suspicion_resolved,
)
from repro.chaos.runner import MAX_EVENTS, RunResult, run_campaign, soak
from repro.chaos.scenario import (
    AtTime,
    ChaosEngine,
    DrainSlot,
    HealPartition,
    KillNode,
    KillRandomSlot,
    KillRank,
    KillSlot,
    LimpSlot,
    Omission,
    OmissionOff,
    OnEvent,
    Partition,
    RandomTimes,
    Rule,
    Scenario,
    UnlimpSlot,
)

__all__ = [
    "AtTime", "OnEvent", "RandomTimes",
    "KillSlot", "KillRandomSlot", "KillNode", "KillRank", "DrainSlot",
    "Partition", "HealPartition", "Omission", "OmissionOff",
    "LimpSlot", "UnlimpSlot",
    "Rule", "Scenario", "ChaosEngine",
    "CAMPAIGNS", "GRAY_CAMPAIGNS", "Campaign",
    "Violation", "DetectorMonitor", "check_all",
    "check_epoch_monotone", "check_no_stale_delivery",
    "check_posted_receives", "check_detector_bounded", "check_answer",
    "check_no_split_brain", "check_suspicion_resolved",
    "check_link_accounting",
    "RunResult", "run_campaign", "soak", "MAX_EVENTS",
]
