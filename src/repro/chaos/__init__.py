"""repro.chaos -- fault-injection campaigns for the survivable runtime.

A Jepsen-style adversarial-schedule harness on top of the simulator and
the observability layer:

* :mod:`~repro.chaos.scenario` -- the declarative DSL: triggers
  (fixed time, trace event, seeded random schedule) x actions (kill
  slot/node/rank, drain) armed by a :class:`ChaosEngine`;
* :mod:`~repro.chaos.campaigns` -- canned campaigns covering the
  corner matrix (mid-checkpoint kill, kill-during-recovery, double
  kill in one XOR group, spare exhaustion, drain-then-fail);
* :mod:`~repro.chaos.invariants` -- runtime-wide properties checked
  against the trace and runtime state after every run;
* :mod:`~repro.chaos.runner` -- deterministic (campaign, seed)
  execution and the seed-sweep soak.

CLI (see ``python -m repro.chaos --help``)::

    python -m repro.chaos --campaign all --seeds 25   # the soak
    python -m repro.chaos --replay drain-then-fail:7  # one failing pair
"""

from repro.chaos.campaigns import CAMPAIGNS, Campaign
from repro.chaos.invariants import (
    DetectorMonitor,
    Violation,
    check_all,
    check_answer,
    check_detector_bounded,
    check_epoch_monotone,
    check_no_stale_delivery,
    check_posted_receives,
)
from repro.chaos.runner import MAX_EVENTS, RunResult, run_campaign, soak
from repro.chaos.scenario import (
    AtTime,
    ChaosEngine,
    DrainSlot,
    KillNode,
    KillRandomSlot,
    KillRank,
    KillSlot,
    OnEvent,
    RandomTimes,
    Rule,
    Scenario,
)

__all__ = [
    "AtTime", "OnEvent", "RandomTimes",
    "KillSlot", "KillRandomSlot", "KillNode", "KillRank", "DrainSlot",
    "Rule", "Scenario", "ChaosEngine",
    "CAMPAIGNS", "Campaign",
    "Violation", "DetectorMonitor", "check_all",
    "check_epoch_monotone", "check_no_stale_delivery",
    "check_posted_receives", "check_detector_bounded", "check_answer",
    "RunResult", "run_campaign", "soak", "MAX_EVENTS",
]
