"""The canned campaign library: the corner matrix of recovery.

Each campaign is one adversarial failure *class*; the seed parametrises
victim choice and timing inside that class, so a seed sweep explores
many schedules of the same shape.  All campaigns run the verifiable
:func:`~repro.apps.synthetic.bsp_app` recurrence, so the invariant
checker can demand the surviving run's answer be bit-equal to the
failure-free one.

* ``mid-checkpoint-kill`` -- a node dies exactly when an XOR encode
  starts (the ``ckpt.encode.begin`` marker), leaving the group with a
  torn dataset that versioning must roll back.
* ``kill-during-recovery`` -- a second node dies inside the recovery
  window opened by the first (at ``recovery.begin`` + jitter), nesting
  epochs.
* ``double-kill-xor-group`` -- both nodes of one XOR group die within a
  tiny gap: beyond level-1 repair, so the multilevel fallback must pull
  the level-2 dataset from the PFS.
* ``spare-exhaustion`` -- more kills than pre-reserved spares; fmirun
  must fall through to on-demand resource-manager grants.
* ``drain-then-fail`` -- a healthy node is drained (and returned to the
  pool), then another node fails; the recovery may reclaim the drained
  node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro.chaos.scenario import (
    AtTime,
    DrainSlot,
    KillRandomSlot,
    KillSlot,
    OnEvent,
    RandomTimes,
    Rule,
)
from repro.fmi.config import FmiConfig

__all__ = ["Campaign", "CAMPAIGNS"]

RulesFn = Callable[[np.random.Generator, "Campaign"], List[Rule]]


@dataclass(frozen=True)
class Campaign:
    """One failure class: job geometry + config + seeded rule builder."""

    name: str
    summary: str
    rules: RulesFn
    num_ranks: int = 8
    ppn: int = 2
    iterations: int = 10
    work_s: float = 0.25
    halo_bytes: float = 1e4
    spare_nodes: int = 2
    #: idle nodes beyond job + spares (the RM's on-demand pool)
    pool_extra: int = 2
    config_extra: Dict = field(default_factory=dict)

    @property
    def num_slots(self) -> int:
        return self.num_ranks // self.ppn

    @property
    def total_nodes(self) -> int:
        return self.num_slots + self.spare_nodes + self.pool_extra

    def make_config(self) -> FmiConfig:
        kwargs = dict(
            interval=1, xor_group_size=4, spare_nodes=self.spare_nodes,
        )
        kwargs.update(self.config_extra)
        return FmiConfig(**kwargs)


# --------------------------------------------------------------- rule builders
def _mid_checkpoint_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    # Every checkpoint round emits one encode.begin per rank; picking
    # the n-th marker lands the kill inside one of the first few
    # checkpoints, with sub-encode jitter.
    nth = int(rng.integers(1, 3 * c.num_ranks + 1))
    slot = int(rng.integers(c.num_slots))
    delay = float(rng.uniform(0.0, 0.005))
    return [Rule(OnEvent("ckpt.encode.begin", count=nth, delay=delay),
                 KillSlot(slot))]


def _kill_during_recovery_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    first = int(rng.integers(c.num_slots))
    second = int((first + 1 + rng.integers(c.num_slots - 1)) % c.num_slots)
    t0 = float(rng.uniform(1.5, 3.5))
    # delay 0 coalesces into one epoch; > 0 nests a second recovery
    # inside the H1/H2 window of the first.
    delay = float(rng.choice([0.0, 0.05, 0.2, 0.5]))
    return [
        Rule(AtTime(t0), KillSlot(first)),
        Rule(OnEvent("recovery.begin", count=1, delay=delay), KillSlot(second)),
    ]


def _double_kill_xor_group_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    # Group 0 (ranks 0..3 at ppn=2) lives on slots 0 and 1: killing
    # both wipes the whole group -- beyond XOR repair.
    t = float(rng.uniform(2.0, 4.0))
    gap = float(rng.choice([0.0, 0.02, 0.2]))
    return [
        Rule(AtTime(t), KillSlot(0)),
        Rule(AtTime(t + gap), KillSlot(1)),
    ]


def _spare_exhaustion_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    spacing = float(rng.uniform(1.5, 2.5))
    return [Rule(RandomTimes(k=3, mean_spacing=spacing, start=1.5),
                 KillRandomSlot())]


def _drain_then_fail_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    drained = int(rng.integers(c.num_slots))
    victim = int(rng.integers(c.num_slots))
    t1 = float(rng.uniform(1.0, 2.0))
    t2 = t1 + float(rng.uniform(1.0, 2.0))
    return [
        Rule(AtTime(t1), DrainSlot(drained)),
        Rule(AtTime(t2), KillSlot(victim)),
    ]


# ------------------------------------------------------------------ registry
CAMPAIGNS: Dict[str, Campaign] = {
    c.name: c
    for c in [
        Campaign(
            "mid-checkpoint-kill",
            "node dies while an XOR encode is in flight",
            _mid_checkpoint_rules,
        ),
        Campaign(
            "kill-during-recovery",
            "second failure lands inside the recovery window",
            _kill_during_recovery_rules,
            pool_extra=3,
            # At ppn=2 a 4-rank XOR group spans two slots, so the two
            # kills can wipe a whole group; level 2 makes that survivable.
            config_extra={"level2_every": 1},
        ),
        Campaign(
            "double-kill-xor-group",
            "both nodes of one XOR group die; level-2 fallback",
            _double_kill_xor_group_rules,
            config_extra={"level2_every": 1},
            pool_extra=3,
        ),
        Campaign(
            "spare-exhaustion",
            "more kills than pre-reserved spares; on-demand RM grants",
            _spare_exhaustion_rules,
            spare_nodes=1,
            pool_extra=4,
            config_extra={"level2_every": 1},
        ),
        Campaign(
            "drain-then-fail",
            "graceful drain, then a real failure",
            _drain_then_fail_rules,
            spare_nodes=1,
            pool_extra=3,
            config_extra={"level2_every": 1},
        ),
    ]
}
