"""The canned campaign library: the corner matrix of recovery.

Each campaign is one adversarial failure *class*; the seed parametrises
victim choice and timing inside that class, so a seed sweep explores
many schedules of the same shape.  All campaigns run the verifiable
:func:`~repro.apps.synthetic.bsp_app` recurrence, so the invariant
checker can demand the surviving run's answer be bit-equal to the
failure-free one.

* ``mid-checkpoint-kill`` -- a node dies exactly when an XOR encode
  starts (the ``ckpt.encode.begin`` marker), leaving the group with a
  torn dataset that versioning must roll back.
* ``kill-during-recovery`` -- a second node dies inside the recovery
  window opened by the first (at ``recovery.begin`` + jitter), nesting
  epochs.
* ``double-kill-xor-group`` -- both nodes of one XOR group die within a
  tiny gap: beyond level-1 repair, so the multilevel fallback must pull
  the level-2 dataset from the PFS.
* ``spare-exhaustion`` -- more kills than pre-reserved spares; fmirun
  must fall through to on-demand resource-manager grants.
* ``drain-then-fail`` -- a healthy node is drained (and returned to the
  pool), then another node fails; the recovery may reclaim the drained
  node.

Gray-failure campaigns (nothing needs to die for these to hurt):

* ``partition-heal`` -- the fabric splits into two halves, stays cut
  for a while, then heals; the detector must *suspect* but never act
  (zero recoveries), and the overlay must repair itself.
* ``partition-kill-mid-heal`` -- a real node death lands inside the
  partition window; exactly that one failure may drive recovery, and
  the answer must still be bit-equal.
* ``flapping-partition`` -- several short cuts in a row, some shorter
  than the ibverbs close delay, so disconnect events land after their
  partition already healed.
* ``lossy-links`` -- a seeded drop/duplicate/delay model afflicts every
  link for the whole run, plus one mid-run node kill.
* ``limping-node`` -- one node limps (degraded NIC), a *different* node
  dies; the limping node must not be falsely suspected.

Message-logging (partial rollback) campaigns -- the same kills, run on
``recovery="logged"``; survivors must keep computing while only the
restarted slot rolls back, and the answer must stay bit-equal:

* ``logged-single-kill`` -- one random slot dies mid-run.
* ``logged-sequential-kills`` -- a second slot dies after the first
  recovery's log replay completed, exercising log GC and re-logging
  across epochs.

Replication (failover) campaigns -- ``recovery="replicated"`` backs
every rank with ``replication_degree`` physical copies; a single death
must be absorbed with *zero* rollback (the ``zero-rollback``
invariant), and only losing every copy of a slot may fall back to the
coordinated restore:

* ``replicated-single-kill`` -- one physical slot (a lead or a
  replica) dies; a lead death promotes its replica in place, a replica
  death only triggers a background re-arm.
* ``replicated-kill-both-copies`` -- both copies of one virtual slot
  die within a tiny gap, wiping the rank's last synced copy; the plane
  must fall back gracefully and the answer must stay bit-equal.

Multi-tenant campaign (service mode: several jobs share one cluster):

* ``multi-tenant-kill`` -- three co-resident FMI jobs on one machine;
  kills land in two of them within a small window.  Both victims must
  recover independently (their own epochs, bit-equal answers) and the
  bystander must never leave epoch 0 -- the ``tenant-isolation``
  invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro.chaos.scenario import (
    AtTime,
    DrainSlot,
    KillRandomSlot,
    KillSlot,
    KillTenantSlot,
    LimpSlot,
    Omission,
    OnEvent,
    Partition,
    RandomTimes,
    Rule,
)
from repro.fmi.config import FmiConfig

__all__ = [
    "Campaign", "CAMPAIGNS", "GRAY_CAMPAIGNS", "LOGGED_CAMPAIGNS",
    "REPLICATED_CAMPAIGNS",
]

RulesFn = Callable[[np.random.Generator, "Campaign"], List[Rule]]


@dataclass(frozen=True)
class Campaign:
    """One failure class: job geometry + config + seeded rule builder."""

    name: str
    summary: str
    rules: RulesFn
    num_ranks: int = 8
    ppn: int = 2
    iterations: int = 10
    work_s: float = 0.25
    halo_bytes: float = 1e4
    spare_nodes: int = 2
    #: idle nodes beyond job + spares (the RM's on-demand pool)
    pool_extra: int = 2
    config_extra: Dict = field(default_factory=dict)
    #: co-resident copies of the job on one shared cluster; > 1 turns
    #: on the multi-tenant runner path and the tenant-isolation check
    tenants: int = 1

    @property
    def num_slots(self) -> int:
        """Virtual slots (node-sized tasks) of one copy of the job."""
        return self.num_ranks // self.ppn

    @property
    def replication_degree(self) -> int:
        """Physical copies per rank (1 unless ``recovery="replicated"``)."""
        cfg = self.make_config()
        return cfg.replication_degree if cfg.recovery == "replicated" else 1

    @property
    def nodes_per_tenant(self) -> int:
        """One tenant's allocation footprint (compute tiers + spares)."""
        # Replicated jobs allocate one node tier per copy: physical
        # slot s hosts copy s // num_slots of virtual slot s % num_slots.
        return self.num_slots * self.replication_degree + self.spare_nodes

    @property
    def total_nodes(self) -> int:
        return self.nodes_per_tenant * self.tenants + self.pool_extra

    def make_config(self) -> FmiConfig:
        kwargs = dict(
            interval=1, xor_group_size=4, spare_nodes=self.spare_nodes,
        )
        kwargs.update(self.config_extra)
        return FmiConfig(**kwargs)


# --------------------------------------------------------------- rule builders
def _mid_checkpoint_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    # Every checkpoint round emits one encode.begin per rank; picking
    # the n-th marker lands the kill inside one of the first few
    # checkpoints, with sub-encode jitter.
    nth = int(rng.integers(1, 3 * c.num_ranks + 1))
    slot = int(rng.integers(c.num_slots))
    delay = float(rng.uniform(0.0, 0.005))
    return [Rule(OnEvent("ckpt.encode.begin", count=nth, delay=delay),
                 KillSlot(slot))]


def _kill_during_recovery_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    first = int(rng.integers(c.num_slots))
    second = int((first + 1 + rng.integers(c.num_slots - 1)) % c.num_slots)
    t0 = float(rng.uniform(1.5, 3.5))
    # delay 0 coalesces into one epoch; > 0 nests a second recovery
    # inside the H1/H2 window of the first.
    delay = float(rng.choice([0.0, 0.05, 0.2, 0.5]))
    return [
        Rule(AtTime(t0), KillSlot(first)),
        Rule(OnEvent("recovery.begin", count=1, delay=delay), KillSlot(second)),
    ]


def _double_kill_xor_group_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    # Group 0 (ranks 0..3 at ppn=2) lives on slots 0 and 1: killing
    # both wipes the whole group -- beyond XOR repair.
    t = float(rng.uniform(2.0, 4.0))
    gap = float(rng.choice([0.0, 0.02, 0.2]))
    return [
        Rule(AtTime(t), KillSlot(0)),
        Rule(AtTime(t + gap), KillSlot(1)),
    ]


def _spare_exhaustion_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    spacing = float(rng.uniform(1.5, 2.5))
    return [Rule(RandomTimes(k=3, mean_spacing=spacing, start=1.5),
                 KillRandomSlot())]


def _drain_then_fail_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    drained = int(rng.integers(c.num_slots))
    victim = int(rng.integers(c.num_slots))
    t1 = float(rng.uniform(1.0, 2.0))
    t2 = t1 + float(rng.uniform(1.0, 2.0))
    return [
        Rule(AtTime(t1), DrainSlot(drained)),
        Rule(AtTime(t2), KillSlot(victim)),
    ]


def _halves(c: Campaign):
    """Split the slots into two contiguous halves (the canonical cut)."""
    mid = c.num_slots // 2
    return (tuple(range(mid)), tuple(range(mid, c.num_slots)))


def _partition_heal_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    t0 = float(rng.uniform(1.5, 3.0))
    dur = float(rng.uniform(0.5, 1.5))
    mode = str(rng.choice(["stall", "drop"]))
    return [Rule(AtTime(t0), Partition(_halves(c), heal_after=dur, mode=mode))]


def _partition_kill_mid_heal_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    # The acceptance scenario: cut the cluster, kill a node while the
    # cut is open, heal.  The kill's recovery has to rendezvous through
    # the (partition-immune) management network, resume on a split
    # fabric, and the heal must stitch the overlay back together.
    t0 = float(rng.uniform(1.5, 2.5))
    dur = float(rng.uniform(0.8, 1.5))
    kill_at = t0 + float(rng.uniform(0.1, 0.9)) * dur
    victim = int(rng.integers(c.num_slots))
    mode = str(rng.choice(["stall", "drop"]))
    return [
        Rule(AtTime(t0), Partition(_halves(c), heal_after=dur, mode=mode)),
        Rule(AtTime(kill_at), KillSlot(victim)),
    ]


def _flapping_partition_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    # Several short cuts; some shorter than the 0.2 s ibverbs close
    # delay, so the disconnect events arrive after the heal -- the
    # flap the suspicion machinery has to shrug off.
    rules: List[Rule] = []
    t = float(rng.uniform(1.0, 2.0))
    for _ in range(3):
        dur = float(rng.uniform(0.05, 0.4))
        rules.append(Rule(AtTime(t), Partition(_halves(c), heal_after=dur)))
        t += dur + float(rng.uniform(0.4, 0.9))
    return rules


def _lossy_links_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    drop_p = float(rng.uniform(0.02, 0.08))
    dup_p = float(rng.uniform(0.01, 0.05))
    delay_p = float(rng.uniform(0.02, 0.08))
    victim = int(rng.integers(c.num_slots))
    kill_at = float(rng.uniform(2.0, 4.0))
    return [
        Rule(AtTime(0.5), Omission(drop_p=drop_p, dup_p=dup_p, delay_p=delay_p)),
        Rule(AtTime(kill_at), KillSlot(victim)),
    ]


def _limping_node_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    limper = int(rng.integers(c.num_slots))
    victim = int((limper + 1 + rng.integers(c.num_slots - 1)) % c.num_slots)
    t0 = float(rng.uniform(1.0, 2.0))
    dur = float(rng.uniform(1.0, 3.0))
    bw = float(rng.choice([4.0, 16.0, 64.0]))
    lat = float(rng.choice([2.0, 8.0]))
    kill_at = t0 + float(rng.uniform(0.2, 0.8)) * dur
    return [
        Rule(AtTime(t0), LimpSlot(limper, bw_factor=bw, latency_factor=lat,
                                  duration=dur)),
        Rule(AtTime(kill_at), KillSlot(victim)),
    ]


def _logged_single_kill_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    t0 = float(rng.uniform(1.5, 3.5))
    return [Rule(AtTime(t0), KillRandomSlot())]


def _logged_sequential_kills_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    # The second kill waits for the first recovery's replay to finish
    # (one mlog.replay.done per restarted rank), so the restarted
    # slot's fresh log entries and the survivors' GC'd logs both feed
    # the second partial rollback.
    t0 = float(rng.uniform(1.5, 2.5))
    delay = float(rng.uniform(0.1, 0.8))
    return [
        Rule(AtTime(t0), KillRandomSlot()),
        Rule(OnEvent("mlog.replay.done", count=c.ppn, delay=delay),
             KillRandomSlot()),
    ]


def _multi_tenant_kill_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    # Kill one compute slot in each of the first two tenants within a
    # small window; the remaining tenant(s) are bystanders.  Both
    # victims must recover through their own epochs with no detector
    # split-brain, and the bystanders must never leave epoch 0.
    t0 = float(rng.uniform(1.5, 3.0))
    gap = float(rng.choice([0.0, 0.05, 0.3]))
    s0 = int(rng.integers(c.num_slots))
    s1 = int(rng.integers(c.num_slots))
    return [
        Rule(AtTime(t0), KillTenantSlot(0, s0)),
        Rule(AtTime(t0 + gap), KillTenantSlot(1, s1)),
    ]


def _replicated_single_kill_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    # Any *physical* slot: the copy-0 tier holds the boot-time leads
    # (killing one forces an in-place promotion), the upper tiers hold
    # replicas (killing one only triggers a background re-arm).  Either
    # way the zero-rollback invariant must hold.
    slot = int(rng.integers(c.num_slots * c.replication_degree))
    t0 = float(rng.uniform(1.5, 3.5))
    return [Rule(AtTime(t0), KillSlot(slot))]


def _replicated_kill_both_copies_rules(rng: np.random.Generator, c: Campaign) -> List[Rule]:
    # Both copies of one virtual slot die within a tiny gap.  A gap
    # under FAILOVER_DELAY lands the second kill inside the promotion
    # window; a larger gap kills the freshly promoted lead before its
    # standby re-armed.  Either way no synced copy remains, so the
    # plane must fall back to the coordinated restore.
    vslot = int(rng.integers(c.num_slots))
    # Upper bound stays inside the failure-free makespan (~3 s) so the
    # double kill always actually lands.
    t = float(rng.uniform(1.5, 2.5))
    gap = float(rng.choice([0.02, 0.05, 0.2]))
    return [
        Rule(AtTime(t), KillSlot(vslot)),
        Rule(AtTime(t + gap), KillSlot(vslot + c.num_slots)),
    ]


# ------------------------------------------------------------------ registry
CAMPAIGNS: Dict[str, Campaign] = {
    c.name: c
    for c in [
        Campaign(
            "mid-checkpoint-kill",
            "node dies while an XOR encode is in flight",
            _mid_checkpoint_rules,
        ),
        Campaign(
            "kill-during-recovery",
            "second failure lands inside the recovery window",
            _kill_during_recovery_rules,
            pool_extra=3,
            # At ppn=2 a 4-rank XOR group spans two slots, so the two
            # kills can wipe a whole group; level 2 makes that survivable.
            config_extra={"level2_every": 1},
        ),
        Campaign(
            "double-kill-xor-group",
            "both nodes of one XOR group die; level-2 fallback",
            _double_kill_xor_group_rules,
            config_extra={"level2_every": 1},
            pool_extra=3,
        ),
        Campaign(
            "spare-exhaustion",
            "more kills than pre-reserved spares; on-demand RM grants",
            _spare_exhaustion_rules,
            spare_nodes=1,
            pool_extra=4,
            config_extra={"level2_every": 1},
        ),
        Campaign(
            "drain-then-fail",
            "graceful drain, then a real failure",
            _drain_then_fail_rules,
            spare_nodes=1,
            pool_extra=3,
            config_extra={"level2_every": 1},
        ),
        Campaign(
            "partition-heal",
            "fabric splits in half, then heals; nobody must die",
            _partition_heal_rules,
        ),
        Campaign(
            "partition-kill-mid-heal",
            "node dies while the fabric is partitioned",
            _partition_kill_mid_heal_rules,
            pool_extra=3,
            config_extra={"level2_every": 1},
        ),
        Campaign(
            "flapping-partition",
            "repeated short cuts, some under the ibverbs close delay",
            _flapping_partition_rules,
        ),
        Campaign(
            "lossy-links",
            "seeded drop/dup/delay on every link, plus one node kill",
            _lossy_links_rules,
            pool_extra=3,
            config_extra={"level2_every": 1},
        ),
        Campaign(
            "limping-node",
            "one node limps while a different node dies",
            _limping_node_rules,
            pool_extra=3,
            config_extra={"level2_every": 1},
        ),
        Campaign(
            "logged-single-kill",
            "partial rollback: one slot dies, survivors replay its logs",
            _logged_single_kill_rules,
            config_extra={"recovery": "logged"},
        ),
        Campaign(
            "logged-sequential-kills",
            "partial rollback: second kill after the first replay",
            _logged_sequential_kills_rules,
            pool_extra=3,
            config_extra={"recovery": "logged"},
        ),
        Campaign(
            "multi-tenant-kill",
            "kills land in two co-resident tenants; both recover alone",
            _multi_tenant_kill_rules,
            tenants=3,
            spare_nodes=1,
            pool_extra=2,
            config_extra={"level2_every": 1},
        ),
        Campaign(
            "replicated-single-kill",
            "failover: one copy dies, nobody rolls back",
            _replicated_single_kill_rules,
            pool_extra=3,
            config_extra={"recovery": "replicated"},
        ),
        Campaign(
            "replicated-kill-both-copies",
            "both copies of one slot die; graceful fallback to rollback",
            _replicated_kill_both_copies_rules,
            pool_extra=3,
            config_extra={"recovery": "replicated"},
        ),
    ]
}

#: names of the gray-failure campaigns (the CI gray-soak job's set)
GRAY_CAMPAIGNS: List[str] = [
    "partition-heal",
    "partition-kill-mid-heal",
    "flapping-partition",
    "lossy-links",
    "limping-node",
]

#: names of the message-logging campaigns (the CI recovery-ablation set)
LOGGED_CAMPAIGNS: List[str] = [
    "logged-single-kill",
    "logged-sequential-kills",
]

#: names of the replication campaigns (the CI replication-ablation set)
REPLICATED_CAMPAIGNS: List[str] = [
    "replicated-single-kill",
    "replicated-kill-both-copies",
]
