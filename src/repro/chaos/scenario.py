"""Declarative fault-injection scenarios: the chaos DSL.

A :class:`Scenario` is a named list of :class:`Rule` s, each pairing a
*trigger* (when) with an *action* (what):

triggers
    :class:`AtTime` -- a fixed simulated time;
    :class:`OnEvent` -- the ``count``-th trace event matching a name
    (and optional predicate), plus an optional extra ``delay`` -- this
    is how a kill lands exactly at ``ckpt.encode.begin`` or
    ``recovery.begin``;
    :class:`RandomTimes` -- ``k`` firings with exponential spacing
    drawn from the engine's seeded RNG stream.

actions
    :class:`KillSlot` / :class:`KillRandomSlot` -- crash whichever node
    currently holds a job slot (replacements included);
    :class:`KillNode` -- crash a machine node by id;
    :class:`KillRank` -- kill one rank's *process*, leaving its node up
    (exercises the fmirun.task sibling-kill / EXIT_FAILURE path);
    :class:`DrainSlot` -- gracefully vacate a slot (Section III-A).

gray-failure actions (nothing dies; see DESIGN.md)
    :class:`Partition` / :class:`HealPartition` -- cut the fabric into
    slot groups (in-flight cross-cut messages stall or drop), then heal;
    :class:`Omission` / :class:`OmissionOff` -- attach/detach a seeded
    per-link drop/duplicate/delay model to the job's transport;
    :class:`LimpSlot` / :class:`UnlimpSlot` -- degrade/restore one
    slot's NIC bandwidth and latency.

The :class:`ChaosEngine` arms a scenario against a launched job.  Every
action fires from the event heap (a timeout callback), never from
inside a tracer listener: the trace event that triggers a kill is
frequently emitted by the very generator the kill would close, and a
generator cannot be closed from its own frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

from repro.cluster.failures import EventInjector
from repro.net.faults import LinkFaultModel

__all__ = [
    "AtTime", "OnEvent", "RandomTimes",
    "KillSlot", "KillRandomSlot", "KillNode", "KillRank", "DrainSlot",
    "KillTenantSlot",
    "Partition", "HealPartition", "Omission", "OmissionOff",
    "LimpSlot", "UnlimpSlot",
    "Rule", "Scenario", "ChaosEngine",
]


# ---------------------------------------------------------------- triggers
@dataclass(frozen=True)
class AtTime:
    """Fire at a fixed simulated time (clamped to now if in the past)."""

    t: float


@dataclass(frozen=True)
class OnEvent:
    """Fire ``delay`` seconds after the ``count``-th trace event whose
    name equals ``name`` and for which ``where`` (if given) is true."""

    name: str
    count: int = 1
    delay: float = 0.0
    where: Optional[Callable[[object], bool]] = None


@dataclass(frozen=True)
class RandomTimes:
    """Fire ``k`` times, with Exp(``mean_spacing``) gaps drawn from the
    engine's seeded RNG stream, starting at ``start``."""

    k: int
    mean_spacing: float
    start: float = 0.0


Trigger = Union[AtTime, OnEvent, RandomTimes]


# ----------------------------------------------------------------- actions
@dataclass(frozen=True)
class KillSlot:
    """Crash the node currently holding job slot ``slot``."""

    slot: int


@dataclass(frozen=True)
class KillRandomSlot:
    """Crash a uniformly random *live* slot (engine RNG stream)."""


@dataclass(frozen=True)
class KillNode:
    """Crash machine node ``node_id``."""

    node_id: int


@dataclass(frozen=True)
class KillRank:
    """Kill rank ``rank``'s process; its node stays up."""

    rank: int


@dataclass(frozen=True)
class DrainSlot:
    """Gracefully vacate slot ``slot`` (maintenance drain)."""

    slot: int


@dataclass(frozen=True)
class KillTenantSlot:
    """Crash the node currently holding slot ``slot`` of the
    ``tenant``-th job (multi-tenant engines only).  The record and the
    ``chaos.inject`` trace event carry the victim's ``job_id``, so the
    tenant-isolation invariant can tell targeted tenants from
    bystanders."""

    tenant: int
    slot: int


@dataclass(frozen=True)
class Partition:
    """Split the fabric into components of job *slots*.

    ``groups`` lists slot indices per component (slots map to their
    current nodes at fire time; unlisted nodes -- spares, the RM pool
    -- join component 0).  Cross-cut in-flight messages are stalled
    until heal (``mode="stall"``) or dropped-and-retransmitted
    (``mode="drop"``); overlay connections across the cut raise
    disconnect events with a ``partition:`` reason on *both* (live)
    ends.  ``heal_after`` schedules the heal; None leaves the cut until
    an explicit :class:`HealPartition`.
    """

    groups: Tuple[Tuple[int, ...], ...]
    heal_after: Optional[float] = None
    mode: str = "stall"


@dataclass(frozen=True)
class HealPartition:
    """Heal the active partition (no-op when fully connected)."""


@dataclass(frozen=True)
class Omission:
    """Attach a seeded lossy-link model to the job's transport.

    Per message: each transmission attempt is lost with ``drop_p``
    (costing one ``rto`` retransmission each), the receiver sees a
    duplicate with ``dup_p``, and extra Exp(``delay_mean``) queueing
    delay strikes with ``delay_p``.  ``duration`` auto-detaches the
    model after that many seconds; None keeps it for the whole run.
    """

    drop_p: float = 0.0
    dup_p: float = 0.0
    delay_p: float = 0.0
    rto: float = 0.05
    delay_mean: float = 0.01
    duration: Optional[float] = None


@dataclass(frozen=True)
class OmissionOff:
    """Detach the lossy-link model (in-flight faults still play out)."""


@dataclass(frozen=True)
class LimpSlot:
    """Degrade the network path of the node holding ``slot``: NIC
    bandwidth divided by ``bw_factor``, per-message latencies times
    ``latency_factor``.  ``duration`` auto-reverts; None limps until an
    explicit :class:`UnlimpSlot`."""

    slot: int
    bw_factor: float = 8.0
    latency_factor: float = 4.0
    duration: Optional[float] = None


@dataclass(frozen=True)
class UnlimpSlot:
    """Restore the network health of the node holding ``slot``."""

    slot: int


Action = Union[
    KillSlot, KillRandomSlot, KillNode, KillRank, DrainSlot, KillTenantSlot,
    Partition, HealPartition, Omission, OmissionOff, LimpSlot, UnlimpSlot,
]


@dataclass(frozen=True)
class Rule:
    trigger: Trigger
    action: Action


@dataclass
class Scenario:
    """A named fault schedule: what to break, and when."""

    name: str
    rules: List[Rule] = field(default_factory=list)


# ------------------------------------------------------------------ engine
class ChaosEngine:
    """Arms a :class:`Scenario` against a (survivable) job.

    ``rng`` is the seeded stream used by :class:`RandomTimes` spacing
    and :class:`KillRandomSlot` victim selection; scenarios without
    either can omit it.  ``injected`` records ``(time, description)``
    for every action fired -- the soak driver prints it when replaying
    a failing seed.
    """

    def __init__(self, job, rng=None, jobs=None):
        self.job = job
        #: every tenant the engine may target; single-tenant runs have
        #: exactly ``[job]`` here
        self.jobs = list(jobs) if jobs is not None else [job]
        self.sim = job.sim
        self.rng = rng
        self.injected: List[Tuple[float, str]] = []
        self._injectors: List[EventInjector] = []
        self._macro_blocked = False

    # -- arming -----------------------------------------------------------
    def arm(self, scenario: Scenario) -> None:
        # Chaos actions fire at arbitrary points; every collective in a
        # chaos run keeps per-hop fidelity (campaigns also always trace,
        # but the veto holds even for forced-macro experiment modes).
        if not self._macro_blocked:
            for job in self.jobs:
                transport = getattr(job, "transport", None)
                if transport is not None:
                    transport.block_macro()
            self._macro_blocked = True
        for rule in scenario.rules:
            self._arm_rule(rule)

    def _arm_rule(self, rule: Rule) -> None:
        trig = rule.trigger
        if isinstance(trig, AtTime):
            self._at(max(0.0, trig.t - self.sim.now), rule.action)
        elif isinstance(trig, RandomTimes):
            if self.rng is None:
                raise ValueError("RandomTimes triggers need an engine rng")
            t = trig.start
            for _ in range(trig.k):
                t += float(self.rng.exponential(trig.mean_spacing))
                self._at(max(0.0, t - self.sim.now), rule.action)
        elif isinstance(trig, OnEvent):
            name, where = trig.name, trig.where

            def match(ev, _name=name, _where=where):
                return ev.name == _name and (_where is None or _where(ev))

            injector = EventInjector(
                self.sim, match,
                lambda action=rule.action: self._fire(action),
                count=trig.count, delay=trig.delay,
            )
            injector.start()
            self._injectors.append(injector)
        else:
            raise TypeError(f"unknown trigger {trig!r}")

    def _at(self, delay: float, action: Action) -> None:
        timer = self.sim.timeout(delay)
        timer.callbacks.append(lambda _e: self._fire(action))

    def disarm(self) -> None:
        for injector in self._injectors:
            injector.stop()
        self._injectors.clear()
        if self._macro_blocked:
            self._macro_blocked = False
            for job in self.jobs:
                job.transport.unblock_macro()

    # -- firing -----------------------------------------------------------
    def _record(self, desc: str, job_id=None) -> None:
        self.injected.append((self.sim.now, desc))
        if self.sim.tracer.enabled:
            if job_id is None:
                self.sim.tracer.instant("chaos.inject", "failure", action=desc)
            else:
                self.sim.tracer.instant(
                    "chaos.inject", "failure", action=desc, job=job_id
                )

    def _fire(self, action: Action) -> None:
        job = self.job
        if isinstance(action, KillTenantSlot):
            # Tenant-scoped: only the *target* job finishing disables
            # the action -- the engine's primary job may already be done
            # while other tenants still run.
            victim_job = self.jobs[action.tenant]
            if victim_job.finished:
                return
            node = victim_job.fmirun.node_slots[action.slot]
            if not node.alive:
                self._record(
                    f"kill tenant {action.tenant} slot {action.slot}: "
                    f"already dead",
                    job_id=victim_job.job_id,
                )
                return
            self._record(
                f"kill tenant {action.tenant} slot {action.slot} "
                f"(node {node.id})",
                job_id=victim_job.job_id,
            )
            node.crash(f"chaos: tenant {action.tenant} slot {action.slot}")
            return
        if job.finished:
            return
        if isinstance(action, KillRandomSlot):
            if self.rng is None:
                raise ValueError("KillRandomSlot needs an engine rng")
            live = [
                slot for slot, node in enumerate(job.fmirun.node_slots)
                if node.alive
            ]
            if not live:
                self._record("kill-random-slot: no live slots")
                return
            action = KillSlot(live[int(self.rng.integers(len(live)))])
        if isinstance(action, KillSlot):
            node = job.fmirun.node_slots[action.slot]
            if not node.alive:
                self._record(f"kill slot {action.slot}: already dead")
                return
            self._record(f"kill slot {action.slot} (node {node.id})")
            node.crash(f"chaos: slot {action.slot}")
        elif isinstance(action, KillNode):
            node = job.machine.node(action.node_id)
            if not node.alive:
                self._record(f"kill node {action.node_id}: already dead")
                return
            self._record(f"kill node {action.node_id}")
            node.crash("chaos: node kill")
        elif isinstance(action, KillRank):
            rproc = job.rank_procs.get(action.rank)
            if rproc is None or not rproc.proc.alive:
                self._record(f"kill rank {action.rank}: already dead")
                return
            self._record(f"kill rank {action.rank} (process only)")
            rproc.proc.kill(cause=f"chaos: rank {action.rank}")
        elif isinstance(action, DrainSlot):
            try:
                job.fmirun.drain_slot(action.slot)
            except RuntimeError as exc:
                self._record(f"drain slot {action.slot}: refused ({exc})")
                return
            self._record(f"drain slot {action.slot}")
        elif isinstance(action, Partition):
            fabric = job.machine.fabric
            if fabric.partitioned:
                self._record("partition: refused (already partitioned)")
                return
            node_groups = [
                sorted({job.fmirun.node_slots[s].id for s in group})
                for group in action.groups
            ]
            job.transport.partition_mode = action.mode
            tag = fabric.partition(node_groups)
            desc = f"partition {tag} groups={node_groups} mode={action.mode}"
            if action.heal_after is not None:
                desc += f" heal_after={action.heal_after:g}"
                timer = self.sim.timeout(action.heal_after)
                timer.callbacks.append(lambda _e: self._heal(tag))
            self._record(desc)
        elif isinstance(action, HealPartition):
            fabric = job.machine.fabric
            if not fabric.partitioned:
                self._record("heal: no active partition")
                return
            tag = fabric.partition_tag
            self._record(f"heal partition {tag}")
            fabric.heal()
        elif isinstance(action, Omission):
            if self.rng is None:
                raise ValueError("Omission needs an engine rng")
            model = LinkFaultModel(
                self.rng, drop_p=action.drop_p, dup_p=action.dup_p,
                delay_p=action.delay_p, rto=action.rto,
                delay_mean=action.delay_mean,
            )
            job.transport.set_faults(model)
            desc = f"omission on ({model.describe()})"
            if action.duration is not None:
                desc += f" duration={action.duration:g}"
                timer = self.sim.timeout(action.duration)
                timer.callbacks.append(lambda _e: self._omission_off(model))
            self._record(desc)
        elif isinstance(action, OmissionOff):
            if job.transport.faults is None:
                self._record("omission off: no model attached")
                return
            job.transport.clear_faults()
            self._record("omission off")
        elif isinstance(action, LimpSlot):
            node = job.fmirun.node_slots[action.slot]
            if not node.alive:
                self._record(f"limp slot {action.slot}: refused (node dead)")
                return
            node.set_limp(action.bw_factor, action.latency_factor)
            desc = (
                f"limp slot {action.slot} (node {node.id}) "
                f"bw/{action.bw_factor:g} lat*{action.latency_factor:g}"
            )
            if action.duration is not None:
                desc += f" duration={action.duration:g}"
                timer = self.sim.timeout(action.duration)
                timer.callbacks.append(lambda _e: self._unlimp(node))
            self._record(desc)
        elif isinstance(action, UnlimpSlot):
            node = job.fmirun.node_slots[action.slot]
            if not node.alive:
                self._record(f"unlimp slot {action.slot}: refused (node dead)")
                return
            node.clear_limp()
            self._record(f"unlimp slot {action.slot} (node {node.id})")
        else:
            raise TypeError(f"unknown action {action!r}")

    # -- deferred revert helpers (auto-heal / auto-detach / auto-unlimp) ----
    def _heal(self, tag: str) -> None:
        fabric = self.job.machine.fabric
        if self.job.finished or fabric.partition_tag != tag:
            return
        self._record(f"heal partition {tag} (scheduled)")
        fabric.heal()

    def _omission_off(self, model: LinkFaultModel) -> None:
        if self.job.finished or self.job.transport.faults is not model:
            return
        self.job.transport.clear_faults()
        self._record("omission off (scheduled)")

    def _unlimp(self, node) -> None:
        if self.job.finished or not node.alive or not node.limping:
            return
        node.clear_limp()
        self._record(f"unlimp node {node.id} (scheduled)")
