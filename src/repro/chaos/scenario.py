"""Declarative fault-injection scenarios: the chaos DSL.

A :class:`Scenario` is a named list of :class:`Rule` s, each pairing a
*trigger* (when) with an *action* (what):

triggers
    :class:`AtTime` -- a fixed simulated time;
    :class:`OnEvent` -- the ``count``-th trace event matching a name
    (and optional predicate), plus an optional extra ``delay`` -- this
    is how a kill lands exactly at ``ckpt.encode.begin`` or
    ``recovery.begin``;
    :class:`RandomTimes` -- ``k`` firings with exponential spacing
    drawn from the engine's seeded RNG stream.

actions
    :class:`KillSlot` / :class:`KillRandomSlot` -- crash whichever node
    currently holds a job slot (replacements included);
    :class:`KillNode` -- crash a machine node by id;
    :class:`KillRank` -- kill one rank's *process*, leaving its node up
    (exercises the fmirun.task sibling-kill / EXIT_FAILURE path);
    :class:`DrainSlot` -- gracefully vacate a slot (Section III-A).

The :class:`ChaosEngine` arms a scenario against a launched job.  Every
action fires from the event heap (a timeout callback), never from
inside a tracer listener: the trace event that triggers a kill is
frequently emitted by the very generator the kill would close, and a
generator cannot be closed from its own frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

from repro.cluster.failures import EventInjector

__all__ = [
    "AtTime", "OnEvent", "RandomTimes",
    "KillSlot", "KillRandomSlot", "KillNode", "KillRank", "DrainSlot",
    "Rule", "Scenario", "ChaosEngine",
]


# ---------------------------------------------------------------- triggers
@dataclass(frozen=True)
class AtTime:
    """Fire at a fixed simulated time (clamped to now if in the past)."""

    t: float


@dataclass(frozen=True)
class OnEvent:
    """Fire ``delay`` seconds after the ``count``-th trace event whose
    name equals ``name`` and for which ``where`` (if given) is true."""

    name: str
    count: int = 1
    delay: float = 0.0
    where: Optional[Callable[[object], bool]] = None


@dataclass(frozen=True)
class RandomTimes:
    """Fire ``k`` times, with Exp(``mean_spacing``) gaps drawn from the
    engine's seeded RNG stream, starting at ``start``."""

    k: int
    mean_spacing: float
    start: float = 0.0


Trigger = Union[AtTime, OnEvent, RandomTimes]


# ----------------------------------------------------------------- actions
@dataclass(frozen=True)
class KillSlot:
    """Crash the node currently holding job slot ``slot``."""

    slot: int


@dataclass(frozen=True)
class KillRandomSlot:
    """Crash a uniformly random *live* slot (engine RNG stream)."""


@dataclass(frozen=True)
class KillNode:
    """Crash machine node ``node_id``."""

    node_id: int


@dataclass(frozen=True)
class KillRank:
    """Kill rank ``rank``'s process; its node stays up."""

    rank: int


@dataclass(frozen=True)
class DrainSlot:
    """Gracefully vacate slot ``slot`` (maintenance drain)."""

    slot: int


Action = Union[KillSlot, KillRandomSlot, KillNode, KillRank, DrainSlot]


@dataclass(frozen=True)
class Rule:
    trigger: Trigger
    action: Action


@dataclass
class Scenario:
    """A named fault schedule: what to break, and when."""

    name: str
    rules: List[Rule] = field(default_factory=list)


# ------------------------------------------------------------------ engine
class ChaosEngine:
    """Arms a :class:`Scenario` against a (survivable) job.

    ``rng`` is the seeded stream used by :class:`RandomTimes` spacing
    and :class:`KillRandomSlot` victim selection; scenarios without
    either can omit it.  ``injected`` records ``(time, description)``
    for every action fired -- the soak driver prints it when replaying
    a failing seed.
    """

    def __init__(self, job, rng=None):
        self.job = job
        self.sim = job.sim
        self.rng = rng
        self.injected: List[Tuple[float, str]] = []
        self._injectors: List[EventInjector] = []

    # -- arming -----------------------------------------------------------
    def arm(self, scenario: Scenario) -> None:
        for rule in scenario.rules:
            self._arm_rule(rule)

    def _arm_rule(self, rule: Rule) -> None:
        trig = rule.trigger
        if isinstance(trig, AtTime):
            self._at(max(0.0, trig.t - self.sim.now), rule.action)
        elif isinstance(trig, RandomTimes):
            if self.rng is None:
                raise ValueError("RandomTimes triggers need an engine rng")
            t = trig.start
            for _ in range(trig.k):
                t += float(self.rng.exponential(trig.mean_spacing))
                self._at(max(0.0, t - self.sim.now), rule.action)
        elif isinstance(trig, OnEvent):
            name, where = trig.name, trig.where

            def match(ev, _name=name, _where=where):
                return ev.name == _name and (_where is None or _where(ev))

            injector = EventInjector(
                self.sim, match,
                lambda action=rule.action: self._fire(action),
                count=trig.count, delay=trig.delay,
            )
            injector.start()
            self._injectors.append(injector)
        else:
            raise TypeError(f"unknown trigger {trig!r}")

    def _at(self, delay: float, action: Action) -> None:
        timer = self.sim.timeout(delay)
        timer.callbacks.append(lambda _e: self._fire(action))

    def disarm(self) -> None:
        for injector in self._injectors:
            injector.stop()
        self._injectors.clear()

    # -- firing -----------------------------------------------------------
    def _record(self, desc: str) -> None:
        self.injected.append((self.sim.now, desc))
        if self.sim.tracer.enabled:
            self.sim.tracer.instant("chaos.inject", "failure", action=desc)

    def _fire(self, action: Action) -> None:
        job = self.job
        if job.finished:
            return
        if isinstance(action, KillRandomSlot):
            if self.rng is None:
                raise ValueError("KillRandomSlot needs an engine rng")
            live = [
                slot for slot, node in enumerate(job.fmirun.node_slots)
                if node.alive
            ]
            if not live:
                self._record("kill-random-slot: no live slots")
                return
            action = KillSlot(live[int(self.rng.integers(len(live)))])
        if isinstance(action, KillSlot):
            node = job.fmirun.node_slots[action.slot]
            if not node.alive:
                self._record(f"kill slot {action.slot}: already dead")
                return
            self._record(f"kill slot {action.slot} (node {node.id})")
            node.crash(f"chaos: slot {action.slot}")
        elif isinstance(action, KillNode):
            node = job.machine.node(action.node_id)
            if not node.alive:
                self._record(f"kill node {action.node_id}: already dead")
                return
            self._record(f"kill node {action.node_id}")
            node.crash("chaos: node kill")
        elif isinstance(action, KillRank):
            rproc = job.rank_procs.get(action.rank)
            if rproc is None or not rproc.proc.alive:
                self._record(f"kill rank {action.rank}: already dead")
                return
            self._record(f"kill rank {action.rank} (process only)")
            rproc.proc.kill(cause=f"chaos: rank {action.rank}")
        elif isinstance(action, DrainSlot):
            try:
                job.fmirun.drain_slot(action.slot)
            except RuntimeError as exc:
                self._record(f"drain slot {action.slot}: refused ({exc})")
                return
            self._record(f"drain slot {action.slot}")
        else:
            raise TypeError(f"unknown action {action!r}")
