"""Run one (campaign, seed) pair and check every invariant.

The runner builds a fresh simulator + machine + traced FMI job for the
pair, arms the campaign's scenario through a :class:`ChaosEngine`,
samples the failure detector with a :class:`DetectorMonitor`, drives
the simulation to completion (bounded by ``MAX_EVENTS`` so a livelock
becomes a reported violation instead of a hang), and runs the full
invariant suite against the trace and runtime state.

Determinism: everything stochastic -- victim slots, kill times, event
jitter -- is drawn from the machine's seeded ``"chaos"`` RNG stream, so
``run_campaign(c, seed)`` replays the exact same schedule every time.
The failure-free reference results are computed once per campaign and
cached (they do not depend on the seed: the BSP app is deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.chaos.campaigns import CAMPAIGNS, Campaign
from repro.chaos.invariants import (
    DetectorMonitor,
    Violation,
    check_all,
    check_answer,
    check_detector_bounded,
    check_link_accounting,
    check_posted_receives,
)
from repro.chaos.scenario import ChaosEngine, Scenario
from repro.cluster import Machine
from repro.cluster.spec import SIERRA
from repro.apps.synthetic import bsp_app
from repro.fmi import FmiJob
from repro.obs import MetricsRegistry, Tracer
from repro.simt import Simulator
from repro.simt.kernel import SimulationError
from repro.simt.primitives import AllOf
from repro.simt.rng import RngRegistry

__all__ = ["RunResult", "run_campaign", "soak", "MAX_EVENTS"]

#: hard event budget per run; hitting it is reported as a liveness
#: violation (a deadlocked run would otherwise just run out of heap,
#: a livelocked one would spin forever)
MAX_EVENTS = 3_000_000

_reference_cache: Dict[str, list] = {}


@dataclass
class RunResult:
    campaign: str
    seed: int
    violations: List[Violation]
    recoveries: int
    injected: List[Tuple[float, str]]
    sim_time: float
    trace_events: int
    stale_dropped: int
    #: gray-failure statistics (all zero for kill-only campaigns)
    false_suspicions: int = 0
    repaired_edges: int = 0
    partition_stalls: int = 0
    partition_retries: int = 0
    omission_drops: int = 0
    omission_dups: int = 0
    dup_dropped: int = 0
    tracer: Optional[Tracer] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return not self.violations


def _resolve(campaign: Union[str, Campaign]) -> Campaign:
    if isinstance(campaign, Campaign):
        return campaign
    try:
        return CAMPAIGNS[campaign]
    except KeyError:
        known = ", ".join(sorted(CAMPAIGNS))
        raise KeyError(f"unknown campaign {campaign!r} (known: {known})")


def _build_job(campaign: Campaign, seed: int):
    sim = Simulator()
    machine = Machine(
        sim, SIERRA.with_nodes(campaign.total_nodes), RngRegistry(seed)
    )
    job = FmiJob(
        machine,
        bsp_app(campaign.iterations, campaign.work_s, campaign.halo_bytes),
        num_ranks=campaign.num_ranks,
        procs_per_node=campaign.ppn,
        config=campaign.make_config(),
    )
    return sim, machine, job


def reference_results(campaign: Union[str, Campaign]) -> list:
    """The failure-free per-rank results (cached per campaign)."""
    campaign = _resolve(campaign)
    cached = _reference_cache.get(campaign.name)
    if cached is None:
        sim, _machine, job = _build_job(campaign, seed=0)
        cached = sim.run(until=job.launch(), max_events=MAX_EVENTS)
        _reference_cache[campaign.name] = cached
    return cached


def run_campaign(
    campaign: Union[str, Campaign], seed: int, keep_trace: bool = False
) -> RunResult:
    """One deterministic chaos run + full invariant check."""
    campaign = _resolve(campaign)
    reference = reference_results(campaign)
    if campaign.tenants > 1:
        return _run_multi_tenant(campaign, seed, reference, keep_trace)

    sim, machine, job = _build_job(campaign, seed)
    tracer = Tracer(sim)
    MetricsRegistry(sim)
    rng = machine.rng.stream("chaos")
    scenario = Scenario(campaign.name, campaign.rules(rng, campaign))
    engine = ChaosEngine(job, rng)
    monitor = DetectorMonitor(job)

    done = job.launch()
    engine.arm(scenario)
    monitor.start()

    violations: List[Violation] = []
    results: Optional[Sequence] = None
    try:
        results = sim.run(until=done, max_events=MAX_EVENTS)
    except SimulationError as exc:
        violations.append(Violation("liveness", str(exc)))
    except Exception as exc:  # job aborted (FmiAbort, ...)
        violations.append(Violation("liveness", f"job failed: {exc!r}"))
    engine.disarm()
    monitor.sample()  # one final look at the detector table

    violations += check_all(job, tracer, results, reference, monitor)
    return RunResult(
        campaign=campaign.name,
        seed=seed,
        violations=violations,
        recoveries=job.epoch,
        injected=list(engine.injected),
        sim_time=sim.now,
        trace_events=len(tracer.events),
        stale_dropped=job.transport.dropped_stale,
        false_suspicions=job.detector.false_suspicions,
        repaired_edges=job.detector.repaired_edges,
        partition_stalls=job.transport.partition_stalls,
        partition_retries=job.transport.partition_retries,
        omission_drops=job.transport.omission_drops,
        omission_dups=job.transport.omission_dups,
        dup_dropped=job.transport.dup_dropped,
        tracer=tracer if keep_trace else None,
    )


def _run_multi_tenant(
    campaign: Campaign, seed: int, reference: list, keep_trace: bool
) -> RunResult:
    """Service mode: ``campaign.tenants`` identical FMI jobs share one
    machine, each on its own allocation from the shared resource
    manager.  Kills are aimed at specific tenants
    (:class:`~repro.chaos.scenario.KillTenantSlot`), the trace-level
    invariants run once over the merged trace (keyed by ``job`` label),
    the per-job state invariants and the bit-equality check run per
    tenant, and the ``tenant-isolation`` invariant ties them together.
    """
    sim = Simulator()
    machine = Machine(
        sim, SIERRA.with_nodes(campaign.total_nodes), RngRegistry(seed)
    )
    tracer = Tracer(sim)
    MetricsRegistry(sim)
    jobs = [
        FmiJob(
            machine,
            bsp_app(campaign.iterations, campaign.work_s, campaign.halo_bytes),
            num_ranks=campaign.num_ranks,
            procs_per_node=campaign.ppn,
            config=campaign.make_config(),
            name=f"t{t}",
        )
        for t in range(campaign.tenants)
    ]
    rng = machine.rng.stream("chaos")
    scenario = Scenario(campaign.name, campaign.rules(rng, campaign))
    engine = ChaosEngine(jobs[0], rng, jobs=jobs)
    monitors = [DetectorMonitor(job) for job in jobs]

    all_done = AllOf(sim, [job.launch() for job in jobs])
    engine.arm(scenario)
    for monitor in monitors:
        monitor.start()

    violations: List[Violation] = []
    results_list: Optional[list] = None
    try:
        results_list = sim.run(until=all_done, max_events=MAX_EVENTS)
    except SimulationError as exc:
        violations.append(Violation("liveness", str(exc)))
    except Exception as exc:  # some tenant aborted (FmiAbort, ...)
        violations.append(Violation("liveness", f"job failed: {exc!r}"))
    engine.disarm()
    for monitor in monitors:
        monitor.sample()

    # Trace-level checkers once (keyed by job label), state checkers and
    # the answer per tenant, tenant-isolation across all of them.
    violations += check_all(
        jobs[0], tracer,
        results_list[0] if results_list is not None else None,
        reference, monitors[0], jobs=jobs,
    )
    for idx in range(1, len(jobs)):
        job, monitor = jobs[idx], monitors[idx]
        violations += check_posted_receives(job)
        violations += check_link_accounting(job)
        violations += check_detector_bounded(job, monitor)
        if results_list is not None:
            violations += [
                Violation(v.invariant, f"{job.job_id}: {v.detail}")
                for v in check_answer(results_list[idx], reference)
            ]
    return RunResult(
        campaign=campaign.name,
        seed=seed,
        violations=violations,
        recoveries=sum(j.epoch for j in jobs),
        injected=list(engine.injected),
        sim_time=sim.now,
        trace_events=len(tracer.events),
        stale_dropped=sum(j.transport.dropped_stale for j in jobs),
        false_suspicions=sum(j.detector.false_suspicions for j in jobs),
        repaired_edges=sum(j.detector.repaired_edges for j in jobs),
        partition_stalls=sum(j.transport.partition_stalls for j in jobs),
        partition_retries=sum(j.transport.partition_retries for j in jobs),
        omission_drops=sum(j.transport.omission_drops for j in jobs),
        omission_dups=sum(j.transport.omission_dups for j in jobs),
        dup_dropped=sum(j.transport.dup_dropped for j in jobs),
        tracer=tracer if keep_trace else None,
    )


def soak(
    campaigns: Sequence[Union[str, Campaign]], seeds: Sequence[int]
) -> List[RunResult]:
    """Sweep ``campaigns x seeds``; returns every run's result."""
    out: List[RunResult] = []
    for campaign in campaigns:
        for seed in seeds:
            out.append(run_campaign(campaign, seed))
    return out
