"""repro.models -- the paper's analytic models.

* :mod:`~repro.models.cr_model` -- Section V-B checkpoint/restart time
  (Figs 10-12 overlay curves).
* :mod:`~repro.models.vaidya` -- checkpoint-interval optimisation from
  MTBF (Section III-B's auto-tuning).
* :mod:`~repro.models.availability` -- Fig 16: probability of running
  24 h continuously.
* :mod:`~repro.models.efficiency` -- Fig 17: multilevel-C/R efficiency
  under scaled failure rates and level-2 costs.
* :mod:`~repro.models.msglog_model` -- the message-logging plane: log
  volume, replay latency, and the partial-vs-global crossover.
* :mod:`~repro.models.queueing` -- M/G/c capacity model for the
  service-mode job-stream scheduler (wait times, goodput).
"""

from repro.models.availability import prob_continuous_run, run_probability_curve
from repro.models.cr_model import checkpoint_time, restart_time
from repro.models.efficiency import multilevel_efficiency, single_level_efficiency
from repro.models.msglog_model import (
    global_recovery_latency,
    log_volume,
    partial_beats_global,
    partial_recovery_latency,
    replay_crossover_bytes,
    replay_latency,
)
from repro.models.queueing import (
    CapacityEstimate,
    erlang_c,
    estimate_capacity,
    mgc_mean_wait,
    mmc_mean_wait,
)
from repro.models.vaidya import expected_runtime_factor, optimal_interval

__all__ = [
    "CapacityEstimate",
    "checkpoint_time",
    "erlang_c",
    "estimate_capacity",
    "expected_runtime_factor",
    "mgc_mean_wait",
    "mmc_mean_wait",
    "global_recovery_latency",
    "log_volume",
    "multilevel_efficiency",
    "optimal_interval",
    "partial_beats_global",
    "partial_recovery_latency",
    "prob_continuous_run",
    "replay_crossover_bytes",
    "replay_latency",
    "restart_time",
    "run_probability_curve",
    "single_level_efficiency",
]
