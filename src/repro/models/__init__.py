"""repro.models -- the paper's analytic models.

* :mod:`~repro.models.cr_model` -- Section V-B checkpoint/restart time
  (Figs 10-12 overlay curves).
* :mod:`~repro.models.vaidya` -- checkpoint-interval optimisation from
  MTBF (Section III-B's auto-tuning).
* :mod:`~repro.models.availability` -- Fig 16: probability of running
  24 h continuously.
* :mod:`~repro.models.efficiency` -- Fig 17: multilevel-C/R efficiency
  under scaled failure rates and level-2 costs.
"""

from repro.models.availability import prob_continuous_run, run_probability_curve
from repro.models.cr_model import checkpoint_time, restart_time
from repro.models.efficiency import multilevel_efficiency, single_level_efficiency
from repro.models.vaidya import expected_runtime_factor, optimal_interval

__all__ = [
    "checkpoint_time",
    "expected_runtime_factor",
    "multilevel_efficiency",
    "optimal_interval",
    "prob_continuous_run",
    "restart_time",
    "run_probability_curve",
    "single_level_efficiency",
]
