"""M/G/c-style queueing model for service-mode capacity planning.

The scheduler admits a stream of jobs onto a cluster of ``N`` nodes;
with (roughly) homogeneous jobs of ``k`` nodes each the cluster behaves
like a ``c = N // k`` server queue.  This module prices that queue:

* :func:`erlang_c` -- the M/M/c probability an arrival has to wait.
* :func:`mmc_mean_wait` -- exact M/M/c mean queue wait.
* :func:`mgc_mean_wait` -- the Allen-Cunneen approximation for general
  service-time distributions (scales the M/M/c wait by ``(1+scv)/2``).
* :func:`effective_service_time` -- stretches a job's failure-free
  runtime by Vaidya's expected-runtime factor, so the failure rate and
  recovery scheme enter the queueing model through the service time.
* :func:`estimate_capacity` -- the one-call planner behind
  ``examples/capacity_planner.py`` and ``benchmarks/bench_sched_capacity``.

All waits are *queue* waits (time from submission to nodes granted),
matching the scheduler's ``sched.wait_s`` metric.  The model assumes
FCFS and no backfill; backfill only lowers waits, so the model is an
upper bound at moderate utilization and tight at low utilization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.models.vaidya import expected_runtime_factor

__all__ = [
    "erlang_c",
    "mmc_mean_wait",
    "mgc_mean_wait",
    "effective_service_time",
    "CapacityEstimate",
    "estimate_capacity",
]


def erlang_c(c: int, offered_load: float) -> float:
    """M/M/c probability that an arriving job must queue (Erlang C).

    ``offered_load`` is ``lambda / mu`` in units of servers (erlangs).
    Returns 1.0 at or beyond saturation (``offered_load >= c``).
    """
    if c < 1:
        raise ValueError("need at least one server")
    if offered_load < 0:
        raise ValueError("offered_load must be >= 0")
    if offered_load == 0:
        return 0.0
    if offered_load >= c:
        return 1.0
    # Stable recurrence on the Erlang-B blocking probability.
    b = 1.0
    for k in range(1, c + 1):
        b = offered_load * b / (k + offered_load * b)
    rho = offered_load / c
    return b / (1.0 - rho + rho * b)


def mmc_mean_wait(arrival_rate: float, service_mean: float, c: int) -> float:
    """Exact M/M/c mean queue wait; ``inf`` at or past saturation."""
    if arrival_rate < 0 or service_mean <= 0:
        raise ValueError("arrival_rate must be >= 0, service_mean > 0")
    a = arrival_rate * service_mean
    if a >= c:
        return math.inf
    pw = erlang_c(c, a)
    return pw * service_mean / (c - a)


def mgc_mean_wait(
    arrival_rate: float, service_mean: float, c: int, service_scv: float = 1.0
) -> float:
    """Allen-Cunneen M/G/c mean queue wait.

    ``service_scv`` is the squared coefficient of variation of the
    service time (variance / mean^2); 1.0 recovers M/M/c, 0.0 halves
    the wait (deterministic service), heavy-tailed runtimes push it up.
    """
    if service_scv < 0:
        raise ValueError("service_scv must be >= 0")
    return mmc_mean_wait(arrival_rate, service_mean, c) * (1.0 + service_scv) / 2.0


def effective_service_time(
    ideal_runtime: float,
    mtbf: Optional[float],
    interval: float,
    ckpt_cost: float,
    restart_cost: float = 0.0,
) -> float:
    """A job's expected wall runtime under failures.

    Stretches the failure-free runtime by Vaidya's expected-runtime
    factor for the given checkpoint interval and per-node-scaled MTBF;
    ``mtbf=None`` means no failures (the factor still charges the
    checkpoint overhead when ``ckpt_cost > 0``).
    """
    if ideal_runtime <= 0:
        raise ValueError("ideal_runtime must be positive")
    if mtbf is None:
        if interval <= 0:
            return ideal_runtime
        return ideal_runtime * (1.0 + ckpt_cost / interval)
    factor = expected_runtime_factor(interval, ckpt_cost, mtbf, restart_cost)
    return ideal_runtime * factor


@dataclass(frozen=True)
class CapacityEstimate:
    """The analytic answer to "what happens at this operating point?"."""

    #: concurrent job slots the cluster offers (N // nodes_per_job)
    servers: int
    #: lambda * E[S] / c -- fraction of slot capacity in use
    utilization: float
    #: probability an arriving job queues (Erlang C)
    prob_wait: float
    #: mean queue wait, seconds (Allen-Cunneen)
    mean_wait: float
    #: approximate 99th-percentile queue wait, seconds
    p99_wait: float
    #: expected wall runtime of one job under the failure model
    service_time: float
    #: useful compute seconds per wall second of service (<= 1.0)
    goodput: float

    @property
    def mean_latency(self) -> float:
        """Mean submission-to-completion time."""
        return self.mean_wait + self.service_time


def estimate_capacity(
    num_nodes: int,
    nodes_per_job: int,
    arrival_rate: float,
    ideal_runtime: float,
    mtbf: Optional[float] = None,
    interval: float = 1.0,
    ckpt_cost: float = 0.0,
    restart_cost: float = 0.0,
    service_scv: float = 1.0,
) -> CapacityEstimate:
    """Price an operating point of the service-mode scheduler.

    ``mtbf`` is the *per-job* mean time between failures (a machine
    MTBF divided by the job's share of the nodes); the failure rate and
    recovery cost enter the queue through the stretched service time,
    which is how goodput degrades gracefully rather than cliffing.
    """
    if num_nodes < nodes_per_job:
        raise ValueError("cluster smaller than one job")
    c = num_nodes // nodes_per_job
    service = effective_service_time(
        ideal_runtime, mtbf, interval, ckpt_cost, restart_cost
    )
    a = arrival_rate * service
    rho = a / c
    pw = erlang_c(c, a)
    mean_wait = mgc_mean_wait(arrival_rate, service, c, service_scv)
    # Conditional M/M/c wait is exponential with rate (c - a)/E[S];
    # scale its mean by the Allen-Cunneen factor for the p99 tail.
    if rho >= 1.0 or mean_wait == math.inf:
        p99 = math.inf
    elif pw <= 0.01:
        p99 = 0.0
    else:
        tail_mean = service / (c - a) * (1.0 + service_scv) / 2.0
        p99 = tail_mean * math.log(pw / 0.01)
    return CapacityEstimate(
        servers=c,
        utilization=rho,
        prob_wait=pw,
        mean_wait=mean_wait,
        p99_wait=max(p99, 0.0),
        service_time=service,
        goodput=ideal_runtime / service,
    )
